// The phase-split solver API: analyze once, solve many times.
//
// SpTRSV is almost never a one-off: it runs inside iterative methods and
// preconditioner applications, where the same factor is solved against a
// new right-hand side every iteration. The symbolic work -- input
// validation, level analysis, partitioning, per-component in-degrees,
// comm-policy sizing -- depends only on the matrix structure, so it must be
// paid once and amortized (the cuSPARSE csrsv2 analyze/solve split; the
// inspector-executor model).
//
//   auto plan = core::SolverPlan::analyze(L, options);     // symbolic phase
//   if (!plan.ok()) { /* plan.status(), plan.message() */ }
//   auto r1 = plan->solve(b1);                             // numeric phase
//   auto r2 = plan->solve(b2);                             // ... no re-analysis
//   auto rb = plan->solve_batch(B, k);                     // k rhs, column-major
//   plan->update_values(new_vals);                         // same sparsity,
//   auto r3 = plan->solve(b1);                             // ... new numerics
//
// Execution engine: the numeric phase runs on plan-owned persistent state.
// Host-parallel backends lease a SolveWorkspace (parked worker threads +
// generation-tagged scratch; see workspace.hpp), so repeated solves spawn
// no threads and never re-zero O(n) scratch. solve_batch runs the FUSED
// multi-RHS kernel by default (SolveOptions::fuse_batch): one dependency
// resolution and one sweep over the matrix structure per batch, identical
// bits to looped solves, amortized launch/sync accounting on the simulated
// backends. Concurrent solve()/solve_batch() calls on one plan are safe on
// every backend (concurrent callers lease disjoint workspaces).
//
// Reports from plan solves charge the analysis phase exactly once: the
// per-solve RunReport carries analysis_us == 0 and the plan exposes the
// one-time charge via analysis_us() / analysis_seconds(). The legacy
// one-shot core::solve() wrapper folds the charge back into its report.
//
// Persistence: the symbolic state is an explicit PlanSnapshot
// (core/plan_snapshot.hpp) that save()/load() round-trip through a
// versioned, CRC-guarded blob -- the durable-schedule artifact of the
// inspector-executor model. A loaded plan never pays analysis again
// (analysis_us() == 0; the read cost is exposed via load_us()) and solves
// bit-for-bit like the freshly analyzed plan it was saved from:
//
//   plan->save("factor.plan");
//   // ... later, any process:
//   auto back = core::SolverPlan::load("factor.plan", options);
//   auto rb = back->solve(b);            // identical bits, zero analysis
//
// User-input errors (shape mismatch, non-triangular input, singular
// diagonal, bad options) come back through the Expected/SolveStatus channel
// instead of thrown contract violations.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/solver.hpp"
#include "core/status.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/partition.hpp"

namespace msptrsv::sparse {
struct TaskGraph;  // sparse/task_graph.hpp
}

namespace msptrsv::core {

struct SnapshotBlob;          // core/plan_snapshot.hpp
struct SnapshotWriteOptions;  // core/plan_snapshot.hpp
struct TunedDecision;         // core/plan_snapshot.hpp

class SolverPlan {
 public:
  /// Symbolic phase for a lower-triangular factor: validates the input,
  /// builds the partition and the backend's analysis state, and captures
  /// the matrix (pass an rvalue to avoid the copy). A 0x0 system is
  /// vacuously solvable (the plan short-circuits). Errors:
  /// kNotTriangular, kSingularDiagonal, kInvalidOptions.
  static Expected<SolverPlan> analyze(sparse::CscMatrix lower,
                                      SolveOptions options);

  /// As analyze() but WITHOUT taking ownership: the plan keeps a reference
  /// to `lower`, which must outlive the plan (the cuSPARSE handle
  /// contract). Use when the factor is large and already owned elsewhere;
  /// the one-shot core::solve wrappers use this for their throwaway plans.
  static Expected<SolverPlan> analyze_borrowed(const sparse::CscMatrix& lower,
                                               SolveOptions options);

  /// Symbolic phase for an upper-triangular factor (backward substitution).
  /// The reduction to lower form (reference.hpp) is performed HERE, once,
  /// so repeated solves pay only an O(n) vector reversal -- and so the
  /// transform never pollutes per-solve timings.
  static Expected<SolverPlan> analyze_upper(sparse::CscMatrix upper,
                                            SolveOptions options);

  /// Numeric phase: solves against the cached analysis. No re-analysis, no
  /// revalidation of the matrix; only the rhs length is checked
  /// (kShapeMismatch). The result's report has analysis_us == 0.
  Expected<SolveResult> solve(std::span<const value_t> b) const;

  /// Batched numeric phase: `rhs` holds `num_rhs` right-hand sides of
  /// length rows() each, column-major (rhs[j*n + i] is entry i of rhs j).
  /// The solution uses the same layout; x is bit-for-bit what num_rhs
  /// looped solve() calls would produce, in either mode:
  ///  * fused (options().fuse_batch, the registry default): one kernel
  ///    sweep solves the whole batch; report.solve_us is the amortized
  ///    batch makespan (== max_solve_us) and launch/update counters are
  ///    per-batch, not per-rhs.
  ///  * looped: num_rhs independent solves; reports accumulate (solve_us
  ///    sums, max_solve_us tracks the slowest single solve).
  Expected<SolveResult> solve_batch(std::span<const value_t> rhs,
                                    index_t num_rhs) const;

  /// Cancellable forms: `cancel` (a CancelSource token, a budget token, or
  /// both) is checked cooperatively inside the host kernels at level/claim
  /// boundaries; a fired token aborts MID-SOLVE with kDeadlineExceeded
  /// (deadline) or kOverloaded (flag -- the service's abandon-on-shutdown
  /// path), leaving the plan and its workspaces immediately reusable.
  /// Composes with options().time_budget: the earlier deadline wins.
  /// Simulated backends check only at entry. The plain overloads above are
  /// equivalent to passing an inert token.
  Expected<SolveResult> solve(std::span<const value_t> b,
                              const CancelToken& cancel) const;
  Expected<SolveResult> solve_batch(std::span<const value_t> rhs,
                                    index_t num_rhs,
                                    const CancelToken& cancel) const;

  /// Value-only refresh: replaces the factor's numeric values while
  /// reusing every cached analysis (levels, in-degrees, partition,
  /// comm sizing) -- the sparsity pattern MUST be unchanged. `values`
  /// follows the analyzed matrix's CSC nonzero order (for upper plans:
  /// the original upper factor's order; the plan re-applies the reversal
  /// mapping internally). Rejects kShapeMismatch when values.size() !=
  /// nnz, kSingularDiagonal (before mutating) when a new diagonal entry
  /// is zero, and kInvalidOptions on borrowed plans -- a borrowed plan
  /// reads the caller's matrix, so update it in place instead (except on
  /// the host-parallel backends, which snapshot values into the cached
  /// row form at analysis: re-analyze there). NOT safe concurrently with
  /// solve()/solve_batch(); values are shared by every copy of this plan.
  Expected<bool> update_values(std::span<const value_t> values);

  /// As the span overload, but sparsity-checks `m` against the cached
  /// pattern first (dims + col_ptr + row_idx must be IDENTICAL; for upper
  /// plans `m` is the upper factor and is checked against the mirrored
  /// pattern). kShapeMismatch names the first divergence; on success
  /// delegates to the span path (same rejection rules).
  Expected<bool> update_values(const sparse::CscMatrix& m);

  // ---- persistence ---------------------------------------------------------
  // The symbolic phase as a durable artifact: serialize() captures the
  // analyzed factor plus the whole PlanSnapshot (levels, in-degrees, row
  // form, comm sizing) into a versioned, endianness-tagged, CRC-guarded
  // blob; the load paths restore it without re-running ANY analysis.

  /// Sealed blob image of this plan (works on borrowed plans too -- the
  /// factor is read through the plan's view). Cheap relative to analysis:
  /// one pass over the stored arrays. Since v2 the image is LEAN: the
  /// row-form view is rebuilt at load instead of stored (it duplicates
  /// every factor value). The overload takes explicit format knobs --
  /// v1-format or fat images for compatibility tests and the restore-cost
  /// bench.
  Expected<std::vector<std::uint8_t>> serialize() const;
  Expected<std::vector<std::uint8_t>> serialize(
      SnapshotWriteOptions write_options) const;

  /// serialize() + atomic-enough file write. kBadSnapshot on I/O failure.
  Expected<bool> save(const std::string& path) const;

  /// Restores a plan from a blob image, owning the embedded factor.
  /// `options` supplies the runtime configuration (machine cost model,
  /// cpu_threads, fuse_batch, nvshmem ablations...); the blob's identity
  /// section must agree with it on backend, GPU count, and task
  /// granularity -- a mismatched pairing would silently execute a schedule
  /// computed for a different configuration, so it is kBadSnapshot.
  /// Loaded plans report analysis_us() == 0 and expose the restore cost
  /// via load_us().
  static Expected<SolverPlan> deserialize(std::span<const std::uint8_t> bytes,
                                          SolveOptions options);

  /// read_file + deserialize. kBadSnapshot on unreadable/invalid blobs.
  static Expected<SolverPlan> load(const std::string& path,
                                   SolveOptions options);

  /// Borrowed-load: restores the symbolic state from the blob but solves
  /// against the CALLER's matrix (which must outlive the plan, the
  /// analyze_borrowed contract). The caller's matrix must hash-match the
  /// blob's recorded sparsity pattern (kBadSnapshot otherwise); its VALUES
  /// may differ -- the cached row form is re-synced when they do. Only
  /// lower-triangular plans support borrowed loading (an upper plan's
  /// internal factor is the reversed form, which no caller owns).
  static Expected<SolverPlan> load_borrowed(const std::string& path,
                                            const sparse::CscMatrix& lower,
                                            SolveOptions options);

  /// Host wall-clock microseconds spent restoring this plan from a blob
  /// (0 for plans built by the analyze paths).
  double load_us() const;

  index_t rows() const;
  /// True for plans built by analyze_upper.
  bool is_upper() const;
  /// The plan's RESOLVED internal RHS layout (never kAuto; see
  /// resolve_rhs_layout). Persisted with the plan, so a loaded plan
  /// reports what its solves will actually run.
  RhsLayout rhs_layout() const;
  const SolveOptions& options() const;
  /// The lower-triangular factor solves execute against (for upper plans:
  /// the reversed form).
  const sparse::CscMatrix& factor() const;
  /// The component-to-GPU distribution this backend/options pair implies
  /// (cached for the multi-GPU backends, derived on demand otherwise).
  /// Requires a non-empty plan (a 0x0 system has no partition).
  sparse::Partition partition() const;
  /// Per-component in-degrees (empty for backends that do not use them).
  std::span<const index_t> in_degrees() const;
  /// Level-set analysis (null for backends that do not use it).
  const sparse::LevelAnalysis* level_analysis() const;
  /// The analyze-time schedule decision: present on every autotuned plan
  /// (SolveOptions::autotune / registry preset "auto") and on every
  /// cpu-taskgraph plan; null otherwise. Round-trips through v3 plan
  /// blobs, so a LOADED plan reports the choice its analysis made.
  const TunedDecision* tuned() const;
  /// The coarsened task DAG (cpu-taskgraph plans only; null otherwise).
  const sparse::TaskGraph* task_graph() const;

  /// Host workspaces materialized so far: 0 before the first solve on a
  /// host-parallel backend (and always for other backends), then one per
  /// peak-concurrent solve -- sequential reuse never grows it. Exposed for
  /// observability and the reuse tests.
  std::size_t workspace_count() const;

  /// Per-workspace worker threads currently OWNED by this plan: always 0
  /// before the first solve, and 0 forever when
  /// options().use_shared_pool routes the kernels through the shared
  /// pool (the zero-idle-threads guarantee of the solve service).
  std::size_t owned_thread_count() const;

  /// Stable identity of the shared symbolic state: equal across copies of
  /// the same plan, distinct across independently analyzed plans. The
  /// solve service keys request coalescing on it -- two submits may be
  /// fused into one batch iff their state_id() match (copies of one plan
  /// share factor, analysis, and workspaces, so fusing them is exactly
  /// solve_batch's contract).
  const void* state_id() const;

  /// Approximate resident footprint of this plan's shared state in bytes:
  /// the owned factor plus every snapshot section (row form, levels,
  /// in-degrees, partition). What a byte-budgeted PlanCache charges per
  /// entry. Borrowed plans exclude the caller's matrix.
  std::size_t resident_bytes() const;

  /// One-time simulated analysis charge (0 for the real host backends).
  sim_time_t analysis_us() const;
  /// Host wall-clock seconds spent inside analyze().
  double analysis_seconds() const;

  /// Per-GPU memory sizing under this plan's partition and the backend's
  /// state layout (symmetric heap for the NVSHMEM designs, managed arrays
  /// otherwise) -- the comm-policy/capacity sizing captured at analysis.
  sparse::FootprintEstimate footprint() const;

 private:
  struct State;
  explicit SolverPlan(std::shared_ptr<State> state);

  static Expected<std::shared_ptr<State>> analyze_state(
      std::shared_ptr<State> st);

  /// Shared blob-restore path: validates the parsed snapshot against
  /// `options`, optionally borrows the caller's matrix, rebuilds derived
  /// runtime state (partition, workspace pool), and stamps load_us().
  static Expected<SolverPlan> restore(SnapshotBlob parsed,
                                      SolveOptions options,
                                      const sparse::CscMatrix* borrow,
                                      std::chrono::steady_clock::time_point t0);

  /// Fused execution of num_rhs rhs (column-major) on the lower factor.
  /// `cancel` may be null (no checks); a fired token maps to
  /// kDeadlineExceeded / kOverloaded.
  Expected<SolveResult> run_batch_lower(std::span<const value_t> b,
                                        index_t num_rhs,
                                        const CancelToken* cancel) const;
  Expected<SolveResult> run_one(std::span<const value_t> b,
                                const CancelToken* cancel) const;
  /// The caller-visible token composed with options().time_budget
  /// (earlier deadline wins); inert when neither is set.
  CancelToken effective_token(const CancelToken& cancel) const;

  /// Shared by all copies of the plan; mutable only through
  /// update_values() and the internal workspace pool (which is
  /// internally synchronized -- solves stay const and thread-safe).
  std::shared_ptr<State> state_;
};

}  // namespace msptrsv::core
