// Cooperative cancellation for in-flight solves.
//
// A CancelToken carries (either or both of) a shared cancellation flag and
// a steady-clock deadline. The host kernels check it at their natural sync
// points -- level barriers, component-claim strides -- so a solve that
// exceeds SolveOptions::time_budget stops MID-EXECUTION with
// kDeadlineExceeded (not after burning the full solve), and a draining
// service can abandon everything in flight by flipping one CancelSource.
//
// Cost discipline: a default-constructed token is inert and free to test
// (`active()` is one null/bool check), so plumbing a `const CancelToken*`
// through the kernels costs a predictable branch when no budget is set --
// the <=1% bench_micro acceptance bound. Clock reads are the expensive
// part of deadline checks; the kernels stride them (every level / every
// K components), never per entry.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace msptrsv::core {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert token: never cancelled, free to check.
  CancelToken() = default;

  /// Token that expires `seconds` from now (a SolveOptions::time_budget
  /// turned into an absolute execution deadline at solve entry).
  static CancelToken with_budget(double seconds) {
    CancelToken t;
    t.deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(seconds));
    t.has_deadline_ = true;
    return t;
  }

  /// This token with its deadline tightened to at most `seconds` from now
  /// (keeps the flag). How a caller-supplied token composes with a plan's
  /// own time_budget: the earlier of the two wins.
  CancelToken capped(double seconds) const {
    const Clock::time_point cap =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    CancelToken t = *this;
    if (!t.has_deadline_ || cap < t.deadline_) t.deadline_ = cap;
    t.has_deadline_ = true;
    return t;
  }

  /// False for the inert default token: callers skip all checks.
  bool active() const { return flag_ != nullptr || has_deadline_; }

  /// Flag-only check (no clock read; safe at any frequency).
  bool flag_cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// Deadline-only check (one clock read).
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Either condition. The kernels call this on a stride.
  bool cancelled() const { return flag_cancelled() || deadline_expired(); }

 private:
  friend class CancelSource;
  std::shared_ptr<const std::atomic<bool>> flag_;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// The owning side: cancel() flips every token handed out, immediately and
/// irrevocably (sources are one-shot; make a new one to "reset"). The
/// solve service holds one per lifetime for abandon-on-shutdown.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

  CancelToken token() const {
    CancelToken t;
    t.flag_ = flag_;
    return t;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace msptrsv::core
