// Communication policy of Algorithm 3: the zero-copy, read-only inter-GPU
// communication model over NVSHMEM.
//
// Writers never touch remote memory: every PE accumulates its contributions
// to s.in_degree / s.left_sum in its *own* symmetric heap with device-scope
// atomics. A waiting component polls the still-active PEs with one-sided
// gets (the r.in_degree cache skips PEs whose contribution count already
// reached zero) and, on exit, gathers the left_sum partials warp-parallel
// and combines them with an O(log P) __shfl_down_sync reduction.
//
// Two ablation switches reproduce the design alternatives the paper argues
// against in Section IV:
//  * naive_get_update_put: remote updates Get-Update-Put the *owner's* heap
//    with fences, serializing every writer on the target entry (Fig. 4's
//    "only one PE can operate on shared data");
//  * gather_from_all_pes: the final gather reads every PE instead of only
//    the PEs that contributed (no r.in_degree read-skipping).
//  * linear_reduction: O(P) sequential summation instead of the O(log P)
//    warp shuffle.
#pragma once

#include <vector>

#include "core/mg_engine.hpp"
#include "sim/nvshmem.hpp"

namespace msptrsv::core {

struct NvshmemCommOptions {
  bool naive_get_update_put = false;
  bool gather_from_all_pes = false;
  bool linear_reduction = false;
};

class NvshmemComm final : public CommPolicy {
 public:
  /// `batch_width` is the fused-batch RHS width k: every PE's s.left_sum
  /// heap slab holds k partials per component, and each value-carrying
  /// one-sided op (naive put/get chains, the final left_sum gather) moves
  /// k values. Operation COUNTS stay per-edge/per-gather -- the fused
  /// amortization -- while the payload bytes scale with k.
  NvshmemComm(sim::Interconnect& net, const sim::CostModel& cost, int num_pes,
              index_t n, NvshmemCommOptions options = {},
              index_t batch_width = 1);

  std::string name() const override {
    return options_.naive_get_update_put ? "nvshmem-naive" : "nvshmem-zerocopy";
  }

  UpdateTiming push_update(int src_gpu, int dst_gpu, index_t dep,
                           sim_time_t issue, bool is_final) override;

  sim_time_t gather_before_solve(int gpu, index_t comp,
                                 std::span<const int> remote_gpus,
                                 sim_time_t start) override;

  void fill_report(sim::RunReport& report) const override;

  const sim::NvshmemStats& nvshmem_stats() const { return nv_.stats(); }
  /// Bytes of symmetric heap reserved on every PE (2 n-sized arrays).
  double symmetric_heap_bytes() const { return nv_.symmetric_heap_bytes(); }

 private:
  const sim::CostModel& cost_;
  sim::NvshmemModel nv_;
  NvshmemCommOptions options_;
  int num_pes_;
  /// Bytes of left-sum payload per value-carrying message (k values).
  double value_payload_bytes_;
  /// Per-entry serialization of the naive ablation's remote read-modify-
  /// write chains (unused -- empty -- in the read-only model).
  std::vector<sim_time_t> entry_available_;
};

}  // namespace msptrsv::core
