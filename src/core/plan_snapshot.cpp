#include "core/plan_snapshot.hpp"

#include "core/registry.hpp"

namespace msptrsv::core {

namespace {

/// Section presence flags (bitmask so the format stays self-describing as
/// backends grow state).
enum SectionFlags : std::uint32_t {
  kHasInDegrees = 1u << 0,
  kHasLevels = 1u << 1,
  kHasRowForm = 1u << 2,
};

}  // namespace

std::vector<std::uint8_t> serialize_snapshot(const PlanSnapshot& snap,
                                             const sparse::CscMatrix& factor) {
  support::BlobWriter w(kPlanBlobVersion);

  // Identity section. The backend travels as its canonical registry key,
  // not the enum value, so enumerator reordering can never misload a blob.
  w.write_string(registry::entry_of(snap.backend).key);
  w.write_i32(snap.tasks_per_gpu);
  w.write_i32(snap.num_gpus);
  w.write_u8(snap.upper ? 1 : 0);
  w.write_f64(snap.analysis_us);

  const sparse::StructuralHash hash = sparse::hash_csc(factor);
  w.write_u64(hash.pattern);
  w.write_u64(hash.values);

  sparse::write_csc(w, factor);

  std::uint32_t flags = 0;
  if (!snap.in_degrees.empty()) flags |= kHasInDegrees;
  if (snap.levels.has_value()) flags |= kHasLevels;
  if (snap.row_form.has_value()) flags |= kHasRowForm;
  w.write_u32(flags);
  if (flags & kHasInDegrees) {
    w.write_span(std::span<const index_t>(snap.in_degrees));
  }
  if (flags & kHasLevels) sparse::write_levels(w, *snap.levels);
  if (flags & kHasRowForm) sparse::write_csr(w, *snap.row_form);

  return std::move(w).finish();
}

std::string deserialize_snapshot(std::span<const std::uint8_t> bytes,
                                 SnapshotBlob& out, SnapshotRead mode) {
  support::BlobReader r(bytes, kPlanBlobVersion);
  if (!r.ok()) return r.error();

  const std::string backend_key = r.read_string();
  out.snapshot.tasks_per_gpu = r.read_i32();
  out.snapshot.num_gpus = r.read_i32();
  out.snapshot.upper = r.read_u8() != 0;
  out.snapshot.analysis_us = r.read_f64();
  out.factor_hash.pattern = r.read_u64();
  out.factor_hash.values = r.read_u64();
  if (mode == SnapshotRead::kSkipFactor) {
    out.factor = sparse::skip_csc(r, out.factor_nnz);
  } else {
    out.factor = sparse::read_csc(r);
    out.factor_nnz = out.factor.nnz();
  }
  if (!r.ok()) return r.error();

  const Expected<Backend> backend = registry::parse_backend(backend_key);
  if (!backend.ok()) {
    return "snapshot names unknown backend '" + backend_key + "'";
  }
  out.snapshot.backend = backend.value();

  const std::uint32_t flags = r.read_u32();
  if (flags & kHasInDegrees) {
    out.snapshot.in_degrees = r.read_vector<index_t>();
  }
  if (flags & kHasLevels) out.snapshot.levels = sparse::read_levels(r);
  if (flags & kHasRowForm) out.snapshot.row_form = sparse::read_csr(r);
  if (!r.ok()) return r.error();
  if (!r.at_end()) return "trailing bytes after the last snapshot section";

  // Cross-section consistency: per-component arrays must cover the factor.
  const auto n = static_cast<std::size_t>(out.factor.rows);
  if (!out.snapshot.in_degrees.empty() &&
      out.snapshot.in_degrees.size() != n) {
    return "in-degree section does not match the factor dimension";
  }
  if (out.snapshot.levels.has_value() &&
      static_cast<std::size_t>(out.snapshot.levels->n) != n) {
    return "level-analysis section does not match the factor dimension";
  }
  if (out.snapshot.row_form.has_value() &&
      (out.snapshot.row_form->rows != out.factor.rows ||
       out.snapshot.row_form->cols != out.factor.cols ||
       out.snapshot.row_form->nnz() != out.factor_nnz)) {
    return "row-form section does not match the factor shape";
  }
  return {};
}

}  // namespace msptrsv::core
