#include "core/plan_snapshot.hpp"

#include "core/registry.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {

namespace {

/// Section presence flags (bitmask so the format stays self-describing as
/// backends grow state).
enum SectionFlags : std::uint32_t {
  kHasInDegrees = 1u << 0,
  kHasLevels = 1u << 1,
  kHasRowForm = 1u << 2,
  /// v3+: the analyze-time tuned decision (autotuner choice + features +
  /// coarsening thresholds). Never set by v1/v2 streams.
  kHasTuned = 1u << 3,
};

void write_tuned(support::BlobWriter& w, const TunedDecision& d) {
  w.write_u8(d.autotuned ? 1 : 0);
  // The chosen backend travels as its registry key, like the identity
  // section's backend: enumerator reordering must never flip a decision.
  w.write_string(registry::entry_of(d.backend).key);
  w.write_u8(d.schedule);
  w.write_i32(d.gang_width);
  w.write_i32(static_cast<std::int32_t>(d.coarsen.narrow_width));
  w.write_i32(static_cast<std::int32_t>(d.coarsen.block_rows));
  w.write_f64(d.features.nnz_per_row);
  w.write_i32(static_cast<std::int32_t>(d.features.num_levels));
  w.write_i32(static_cast<std::int32_t>(d.features.max_level_width));
  w.write_f64(d.features.avg_level_width);
  w.write_f64(d.features.narrow_level_fraction);
  w.write_i32(static_cast<std::int32_t>(d.features.longest_narrow_run));
  w.write_f64(d.features.avg_narrow_run);
}

std::string read_tuned(support::BlobReader& r, TunedDecision& d) {
  d.autotuned = r.read_u8() != 0;
  const std::string backend_key = r.read_string();
  d.schedule = r.read_u8();
  d.gang_width = r.read_i32();
  d.coarsen.narrow_width = static_cast<index_t>(r.read_i32());
  d.coarsen.block_rows = static_cast<index_t>(r.read_i32());
  d.features.nnz_per_row = r.read_f64();
  d.features.num_levels = static_cast<index_t>(r.read_i32());
  d.features.max_level_width = static_cast<index_t>(r.read_i32());
  d.features.avg_level_width = r.read_f64();
  d.features.narrow_level_fraction = r.read_f64();
  d.features.longest_narrow_run = static_cast<index_t>(r.read_i32());
  d.features.avg_narrow_run = r.read_f64();
  if (!r.ok()) return r.error();
  const Expected<Backend> backend = registry::parse_backend(backend_key);
  if (!backend.ok()) {
    return "tuned section names unknown backend '" + backend_key + "'";
  }
  d.backend = backend.value();
  if (d.schedule > 1) {
    return "tuned section carries unknown schedule value " +
           std::to_string(d.schedule);
  }
  if (d.coarsen.narrow_width < 0 || d.coarsen.block_rows < 0 ||
      d.gang_width < 0) {
    return "tuned section carries negative thresholds";
  }
  return {};
}

}  // namespace

std::vector<std::uint8_t> serialize_snapshot(const PlanSnapshot& snap,
                                             const sparse::CscMatrix& factor,
                                             SnapshotWriteOptions options) {
  MSPTRSV_REQUIRE(options.format_version >= 1 &&
                      options.format_version <= kPlanBlobVersion,
                  "unsupported plan blob format version");
  support::BlobWriter w(options.format_version);

  // Identity section. The backend travels as its canonical registry key,
  // not the enum value, so enumerator reordering can never misload a blob.
  w.write_string(registry::entry_of(snap.backend).key);
  w.write_i32(snap.tasks_per_gpu);
  w.write_i32(snap.num_gpus);
  w.write_u8(snap.upper ? 1 : 0);
  if (options.format_version >= 2) {
    // v2: the plan's resolved RHS layout, immediately after the identity
    // byte it extends. v1 streams carry no layout and re-resolve at load.
    w.write_u8(static_cast<std::uint8_t>(snap.rhs_layout));
  }
  w.write_f64(snap.analysis_us);

  const sparse::StructuralHash hash = sparse::hash_csc(factor);
  w.write_u64(hash.pattern);
  w.write_u64(hash.values);

  sparse::write_csc(w, factor);

  // Lean by default since v2: the row form duplicates every factor value
  // (it is csr_from_csc(factor), bit for bit), so storing it doubled the
  // dominant payload for the host-parallel backends. The load path
  // rebuilds it at memory speed; tests opt back in to exercise the fat
  // read path.
  const bool store_row_form =
      snap.row_form.has_value() &&
      (options.format_version == 1 || options.include_row_form);
  // The tuned decision is a v3 section: older-format writes drop it (a
  // v1/v2 reader would choke on an unknown flag bit).
  const bool store_tuned =
      snap.tuned.has_value() && options.format_version >= 3;
  std::uint32_t flags = 0;
  if (!snap.in_degrees.empty()) flags |= kHasInDegrees;
  if (snap.levels.has_value()) flags |= kHasLevels;
  if (store_row_form) flags |= kHasRowForm;
  if (store_tuned) flags |= kHasTuned;
  w.write_u32(flags);
  if (flags & kHasInDegrees) {
    w.write_span(std::span<const index_t>(snap.in_degrees));
  }
  if (flags & kHasLevels) sparse::write_levels(w, *snap.levels);
  if (flags & kHasRowForm) sparse::write_csr(w, *snap.row_form);
  if (flags & kHasTuned) write_tuned(w, *snap.tuned);

  return std::move(w).finish();
}

std::string deserialize_snapshot(std::span<const std::uint8_t> bytes,
                                 SnapshotBlob& out, SnapshotRead mode) {
  // Version acceptance: the header pins the stored version at bytes 4-5
  // (little-endian, after the 4-byte magic). BlobReader hard-rejects any
  // version other than the one it is told to expect -- the right contract
  // for a cache format -- so to accept BOTH the current format and the
  // still-loadable v1, peek the stored version first and construct the
  // reader against it when it is one we understand; unknown versions fall
  // through to the reader's canonical mismatch diagnostic.
  std::uint16_t stored = kPlanBlobVersion;
  if (bytes.size() >= 6) {
    stored = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(bytes[4]) |
        (static_cast<std::uint16_t>(bytes[5]) << 8));
  }
  const bool known = stored >= 1 && stored <= kPlanBlobVersion;
  support::BlobReader r(bytes, known ? stored : kPlanBlobVersion);
  if (!r.ok()) return r.error();

  const std::string backend_key = r.read_string();
  out.snapshot.tasks_per_gpu = r.read_i32();
  out.snapshot.num_gpus = r.read_i32();
  out.snapshot.upper = r.read_u8() != 0;
  if (r.version() >= 2) {
    const std::uint8_t layout = r.read_u8();
    if (layout > static_cast<std::uint8_t>(RhsLayout::kInterleaved)) {
      return "snapshot carries unknown rhs-layout value " +
             std::to_string(layout);
    }
    out.snapshot.rhs_layout = static_cast<RhsLayout>(layout);
  }
  // v1 blobs leave rhs_layout at kAuto; the restore path re-resolves it
  // by backend, reproducing what v1-era plans did implicitly.
  out.snapshot.analysis_us = r.read_f64();
  out.factor_hash.pattern = r.read_u64();
  out.factor_hash.values = r.read_u64();
  if (mode == SnapshotRead::kSkipFactor) {
    out.factor = sparse::skip_csc(r, out.factor_nnz);
  } else {
    out.factor = sparse::read_csc(r);
    out.factor_nnz = out.factor.nnz();
  }
  if (!r.ok()) return r.error();

  const Expected<Backend> backend = registry::parse_backend(backend_key);
  if (!backend.ok()) {
    return "snapshot names unknown backend '" + backend_key + "'";
  }
  out.snapshot.backend = backend.value();

  const std::uint32_t flags = r.read_u32();
  if (r.version() < 3 && (flags & kHasTuned)) {
    return "pre-v3 snapshot carries a tuned-decision section";
  }
  if (flags & kHasInDegrees) {
    out.snapshot.in_degrees = r.read_vector<index_t>();
  }
  if (flags & kHasLevels) out.snapshot.levels = sparse::read_levels(r);
  if (flags & kHasRowForm) out.snapshot.row_form = sparse::read_csr(r);
  if (flags & kHasTuned) {
    TunedDecision d;
    const std::string err = read_tuned(r, d);
    if (!err.empty()) return err;
    out.snapshot.tuned = d;
  }
  if (!r.ok()) return r.error();
  if (!r.at_end()) return "trailing bytes after the last snapshot section";

  // Cross-section consistency: per-component arrays must cover the factor.
  const auto n = static_cast<std::size_t>(out.factor.rows);
  if (!out.snapshot.in_degrees.empty() &&
      out.snapshot.in_degrees.size() != n) {
    return "in-degree section does not match the factor dimension";
  }
  if (out.snapshot.levels.has_value() &&
      static_cast<std::size_t>(out.snapshot.levels->n) != n) {
    return "level-analysis section does not match the factor dimension";
  }
  if (out.snapshot.row_form.has_value() &&
      (out.snapshot.row_form->rows != out.factor.rows ||
       out.snapshot.row_form->cols != out.factor.cols ||
       out.snapshot.row_form->nnz() != out.factor_nnz)) {
    return "row-form section does not match the factor shape";
  }
  if (out.snapshot.tuned.has_value() &&
      out.snapshot.tuned->backend != out.snapshot.backend) {
    return "tuned section disagrees with the snapshot backend";
  }
  return {};
}

}  // namespace msptrsv::core
