// String-keyed backend registry.
//
// Every bench/example binary used to hand-roll its own Backend dispatch;
// the registry centralizes the key -> backend mapping, per-backend default
// SolveOptions, and the catalogue used for --help text and report tables.
//
//   auto b = registry::parse_backend("mg-zerocopy");      // Expected<Backend>
//   core::SolveOptions opt = registry::default_options(b.value());
//   for (const auto& e : registry::backends()) { ... }    // the catalogue
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "core/plan.hpp"
#include "core/solver.hpp"
#include "core/status.hpp"

namespace msptrsv::core::registry {

struct BackendEntry {
  Backend backend;
  /// Canonical CLI/config key ("mg-zerocopy").
  const char* key;
  /// One-line description for --help and docs.
  const char* summary;
  /// Runs on the simulated machine (vs real host threads).
  bool simulated;
  /// Distributes components across multiple simulated GPUs.
  bool multi_gpu;
  /// solve_batch runs the fused multi-RHS kernel (one dependency
  /// resolution per batch). default_options seeds SolveOptions::fuse_batch
  /// from this, so batch-capable backends are batch-fast by default.
  bool fused_batch;
};

/// The full catalogue, one entry per Backend enumerator, in enum order.
std::span<const BackendEntry> backends();

/// Catalogue entry for a backend (never null: every enumerator is listed).
const BackendEntry& entry_of(Backend b);

/// Resolves a key to a backend. Case-insensitive; accepts the canonical
/// keys, the display names produced by backend_name(), and a few common
/// short aliases ("zerocopy", "unified", "csrsv2", ...). Unknown keys come
/// back as SolveStatus::kUnknownBackend with a message listing the
/// canonical keys.
Expected<Backend> parse_backend(std::string_view key);

/// Factory of per-backend default SolveOptions: the paper's reference
/// configuration for each design point (4-GPU DGX-1 + 8 tasks/GPU for the
/// multi-GPU designs, single-GPU machine for the host/single-GPU ones).
SolveOptions default_options(Backend b);

/// parse_backend + default_options in one step (the common bench path).
/// Additionally accepts the preset key "auto": default host options with
/// SolveOptions::autotune set, so the analyze phase picks backend +
/// schedule + gang width from the matrix structure.
Expected<SolveOptions> options_for(std::string_view key);

/// Comma-separated canonical key list ("serial, cpu-levelset, ...") for
/// help text and error messages.
std::string backend_keys();

// ---- plan cache ------------------------------------------------------------

/// Cache-backed analysis: consults the process-wide core::PlanCache, so a
/// repeated analyze() of the same matrix content under the same
/// configuration is an O(1) hit instead of a re-analysis (and, when the
/// cache has a blob directory, a cross-process O(read)). The returned plan
/// owns its matrix; copies share the symbolic state.
Expected<SolverPlan> analyze_cached(const sparse::CscMatrix& lower,
                                    const SolveOptions& options);

/// parse_backend + default_options + analyze_cached in one step. (A
/// caller with its own PlanCache -- e.g. a solve service with a private
/// byte budget -- calls cache.get_or_analyze directly.)
Expected<SolverPlan> analyze_cached(const sparse::CscMatrix& lower,
                                    std::string_view key);

// ---- solve service ---------------------------------------------------------

/// Options for plans that will be SERVED: options_for(key) with
/// use_shared_pool set, so every served plan's kernel parallelism comes
/// from the process-wide SharedWorkerPool instead of plan-owned threads.
/// This is what service::SolveService stamps on analyze-on-first-use.
Expected<SolveOptions> service_options(std::string_view key);

/// preset_options + use_shared_pool: serve a pre-tuned deployment.
Expected<SolveOptions> service_preset_options(
    std::string_view preset_key, Backend backend = Backend::kMgZeroCopy);

// ---- machine presets -------------------------------------------------------

/// A pre-tuned machine configuration: topology + task granularity of a
/// named deployment, applied on top of a backend's default options.
struct MachinePreset {
  /// Canonical config key ("dgx1x8").
  const char* key;
  /// One-line description for --help and docs.
  const char* summary;
  int num_gpus;
  int tasks_per_gpu;
};

/// The preset catalogue (currently the two reference deployments of the
/// paper's Fig. 8 study at full machine scale plus their 4-GPU slices).
std::span<const MachinePreset> machine_presets();

/// Resolves a preset key ("dgx1x8", "dgx2x16", ...) into SolveOptions for
/// `backend`: the preset's machine and tuned tasks_per_gpu over the
/// backend defaults. Unknown keys are kInvalidOptions with the catalogue
/// in the message.
Expected<SolveOptions> preset_options(std::string_view preset_key,
                                      Backend backend = Backend::kMgZeroCopy);

/// Comma-separated preset key list for help text.
std::string preset_keys();

}  // namespace msptrsv::core::registry
