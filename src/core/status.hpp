// Error channel of the phase-split solver API.
//
// User-input mistakes (wrong rhs length, a non-triangular matrix, an
// unknown backend key) are *expected* conditions in a long-running service:
// they must come back as values the caller can branch on, not as thrown
// contract violations. SolverPlan/registry functions therefore return
// Expected<T>; MSPTRSV_REQUIRE stays reserved for internal invariants and
// for the legacy free-function wrappers (which translate a bad status back
// into the PreconditionError their callers historically caught).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "support/contracts.hpp"

namespace msptrsv::core {

enum class SolveStatus {
  kOk = 0,
  /// rhs/batch dimensions disagree with the matrix (b.size() != n, batch
  /// stride mismatch, num_rhs < 1).
  kShapeMismatch,
  /// The input is not a (structurally valid) triangular matrix of the
  /// orientation the call expects -- includes non-square inputs.
  kNotTriangular,
  /// A diagonal entry is missing or zero: the factor is singular.
  kSingularDiagonal,
  /// A backend key did not resolve against the registry.
  kUnknownBackend,
  /// SolveOptions are inconsistent (tasks_per_gpu < 1, more partition GPUs
  /// than the machine has, ...).
  kInvalidOptions,
  /// A serialized plan could not be (re)used: the blob is truncated,
  /// corrupted, of an unsupported version/endianness, internally
  /// inconsistent, or its structural hash / configuration does not match
  /// what the caller supplied.
  kBadSnapshot,
  /// The solve service refused admission: its pending-request queue is at
  /// capacity (backpressure -- retry later or slow down), or the service
  /// is shutting down. Typed so clients can branch on it without string
  /// matching.
  kOverloaded,
  /// The request carried a deadline and the service could not start it in
  /// time: it was shed instead of being solved late (solving it anyway
  /// would burn gang time on an answer the client has already abandoned).
  /// Typed so SLO-aware clients can distinguish "too late" from "too
  /// loaded" -- a shed request was admitted and queued; retrying it with a
  /// fresh deadline is reasonable, backing off is not required.
  kDeadlineExceeded,
  /// A socket-level failure between a solve client and server: connect
  /// refused, the peer closed mid-request, a read/write error, or retries
  /// exhausted against a dead endpoint. Retryable in principle (the
  /// client library reconnects and retries these under its backoff
  /// policy); surfaced when the policy gives up.
  kNetworkError,
  /// The bytes on the wire were not a valid protocol frame: bad length
  /// prefix, oversized frame, CRC mismatch, unknown frame type, or a
  /// field that fails bounds checks. NOT retryable -- one side is
  /// speaking a different protocol (or the stream is corrupt), and the
  /// connection is fail-stopped.
  kProtocolError,
  /// A library bug surfaced through the status channel.
  kInternalError,
};

constexpr std::string_view to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kShapeMismatch: return "shape-mismatch";
    case SolveStatus::kNotTriangular: return "not-triangular";
    case SolveStatus::kSingularDiagonal: return "singular-diagonal";
    case SolveStatus::kUnknownBackend: return "unknown-backend";
    case SolveStatus::kInvalidOptions: return "invalid-options";
    case SolveStatus::kBadSnapshot: return "bad-snapshot";
    case SolveStatus::kOverloaded: return "overloaded";
    case SolveStatus::kDeadlineExceeded: return "deadline-exceeded";
    case SolveStatus::kNetworkError: return "network-error";
    case SolveStatus::kProtocolError: return "protocol-error";
    case SolveStatus::kInternalError: return "internal-error";
  }
  return "unknown-status";
}

/// The error half of an Expected: a status code plus a human-readable
/// diagnostic naming the offending input.
struct SolveError {
  SolveStatus status = SolveStatus::kInternalError;
  std::string message;
};

/// Minimal expected-style result carrier (std::expected arrives in C++23;
/// the toolchain baseline is C++20). Holds either a T or a SolveError.
template <typename T>
class Expected {
 public:
  Expected(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Expected(SolveStatus status, std::string message)
      : payload_(SolveError{status, std::move(message)}) {}
  Expected(SolveError error) : payload_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }
  explicit operator bool() const { return ok(); }

  SolveStatus status() const {
    return ok() ? SolveStatus::kOk : std::get<SolveError>(payload_).status;
  }
  /// Empty string when ok().
  const std::string& message() const {
    static const std::string empty;
    return ok() ? empty : std::get<SolveError>(payload_).message;
  }
  /// The error half; requires !ok().
  const SolveError& error() const { return std::get<SolveError>(payload_); }

  /// Accessors require ok(); a violation is a PreconditionError carrying the
  /// original diagnostic, which is exactly what the legacy throwing
  /// wrappers want to propagate.
  T& value() & {
    require_ok();
    return std::get<T>(payload_);
  }
  const T& value() const& {
    require_ok();
    return std::get<T>(payload_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(payload_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  void require_ok() const {
    if (!ok()) {
      const SolveError& e = std::get<SolveError>(payload_);
      throw support::PreconditionError(std::string(to_string(e.status)) +
                                       ": " + e.message);
    }
  }

  std::variant<T, SolveError> payload_;
};

}  // namespace msptrsv::core
