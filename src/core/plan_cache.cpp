#include "core/plan_cache.hpp"

#include <cstdio>

#include "core/registry.hpp"
#include "sparse/serialize.hpp"

namespace msptrsv::core {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Filename-safe machine tag: the machine name with anything exotic
/// squashed to '-' (machine names are short and human-chosen; distinct
/// cost models should use distinct names to get distinct cache entries).
std::string machine_tag(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!keep) c = '-';
  }
  return out.empty() ? "host" : out;
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

std::string PlanCache::key_of(const sparse::CscMatrix& lower,
                              const SolveOptions& options) {
  const sparse::StructuralHash h = sparse::hash_csc(lower);
  // Runtime-behavioral options are part of the key too (not only the
  // symbolic-phase inputs): a hit returns a SHARED plan, so every field
  // that changes what its solves do or report must disambiguate the
  // entry. Otherwise the first caller's ablation flags / thread count
  // would silently apply to everyone hitting the same structure.
  const int nvshmem_bits = (options.nvshmem.naive_get_update_put ? 4 : 0) |
                           (options.nvshmem.gather_from_all_pes ? 2 : 0) |
                           (options.nvshmem.linear_reduction ? 1 : 0);
  return hex64(h.pattern) + "-" + hex64(h.values) + "-" +
         registry::entry_of(options.backend).key + "-g" +
         std::to_string(options.machine.num_gpus()) + "-t" +
         std::to_string(options.tasks_per_gpu) + "-c" +
         std::to_string(options.cpu_threads) + "-" +
         (options.fuse_batch ? "fb" : "lb") + "-n" +
         std::to_string(nvshmem_bits) + "-" +
         machine_tag(options.machine.name);
}

const SolverPlan* PlanCache::find_locked(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->plan;
}

void PlanCache::insert_locked(const std::string& key, const SolverPlan& plan) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = plan;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, plan});
  index_[key] = lru_.begin();
  evict_to_capacity_locked();
}

void PlanCache::evict_to_capacity_locked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

Expected<SolverPlan> PlanCache::get_or_analyze(const sparse::CscMatrix& lower,
                                               const SolveOptions& options) {
  const std::string key = key_of(lower, options);
  std::string disk_dir;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const SolverPlan* hit = find_locked(key)) {
      ++stats_.hits;
      return *hit;
    }
    ++stats_.misses;
    disk_dir = disk_dir_;
  }

  // Miss path, outside the lock: probe the blob directory, then analyze.
  if (!disk_dir.empty()) {
    const std::string path = disk_dir + "/" + key + ".plan";
    Expected<SolverPlan> from_disk = SolverPlan::load(path, options);
    if (from_disk.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_hits;
      insert_locked(key, from_disk.value());
      return from_disk;
    }
    // Missing or stale blob: fall through to analysis (and overwrite it).
  }

  Expected<SolverPlan> analyzed =
      SolverPlan::analyze(sparse::CscMatrix(lower), options);
  if (!analyzed.ok()) return analyzed;  // never cache failures

  bool stored = false;
  if (!disk_dir.empty()) {
    stored = analyzed.value().save(disk_dir + "/" + key + ".plan").ok();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stored) ++stats_.disk_stores;
    insert_locked(key, analyzed.value());
  }
  return analyzed;
}

void PlanCache::set_disk_directory(std::string dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_dir_ = std::move(dir);
}

std::string PlanCache::disk_directory() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_dir_;
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evict_to_capacity_locked();
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
}

}  // namespace msptrsv::core
