#include "core/plan_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "core/plan_snapshot.hpp"
#include "core/registry.hpp"
#include "sparse/serialize.hpp"
#include "support/blob.hpp"

namespace msptrsv::core {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Filename-safe machine tag: the machine name with anything exotic
/// squashed to '-' (machine names are short and human-chosen; distinct
/// cost models should use distinct names to get distinct cache entries).
std::string machine_tag(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!keep) c = '-';
  }
  return out.empty() ? "host" : out;
}

}  // namespace

PlanCache::PlanCache(CacheOptions options)
    : capacity_(options.capacity), max_bytes_(options.max_bytes) {}

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

std::string PlanCache::key_of(const sparse::CscMatrix& lower,
                              const SolveOptions& options) {
  return key_of(sparse::hash_csc(lower), options);
}

std::string PlanCache::key_of(const sparse::StructuralHash& h,
                              const SolveOptions& options) {
  // Runtime-behavioral options are part of the key too (not only the
  // symbolic-phase inputs): a hit returns a SHARED plan, so every field
  // that changes what its solves do or report must disambiguate the
  // entry. Otherwise the first caller's ablation flags / thread count
  // would silently apply to everyone hitting the same structure.
  const int nvshmem_bits = (options.nvshmem.naive_get_update_put ? 4 : 0) |
                           (options.nvshmem.gather_from_all_pes ? 2 : 0) |
                           (options.nvshmem.linear_reduction ? 1 : 0);
  return hex64(h.pattern) + "-" + hex64(h.values) + "-" +
         registry::entry_of(options.backend).key + "-g" +
         std::to_string(options.machine.num_gpus()) + "-t" +
         std::to_string(options.tasks_per_gpu) + "-c" +
         std::to_string(options.cpu_threads) + "-" +
         (options.fuse_batch ? "fb" : "lb") + "-n" +
         std::to_string(nvshmem_bits) +
         // Unconditional fixed-width token: a conditional one adjacent to
         // the free-form machine tag would let (no flag, machine "sp-x")
         // collide with (flag, machine "x").
         (options.use_shared_pool ? "-sp1" : "-sp0") + "-" +
         machine_tag(options.machine.name);
}

const SolverPlan* PlanCache::find_locked(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->plan;
}

void PlanCache::insert_locked(const std::string& key, const SolverPlan& plan) {
  // An entry larger than the whole byte budget can never stay resident:
  // refuse it up front rather than letting the LRU sweep evict every
  // OTHER entry first on its way to the oversized newcomer.
  if (max_bytes_ != 0 && plan.resident_bytes() > max_bytes_) {
    const auto stale = index_.find(key);
    if (stale != index_.end()) {
      resident_bytes_ -= stale->second->bytes;
      lru_.erase(stale->second);
      index_.erase(stale);
      ++stats_.evictions;
      ++stats_.byte_evictions;
    }
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    resident_bytes_ -= it->second->bytes;
    it->second->plan = plan;
    it->second->bytes = plan.resident_bytes();
    resident_bytes_ += it->second->bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_budget_locked();
    return;
  }
  lru_.push_front(Entry{key, plan, plan.resident_bytes()});
  resident_bytes_ += lru_.front().bytes;
  index_[key] = lru_.begin();
  evict_to_budget_locked();
}

void PlanCache::evict_to_budget_locked() {
  while (!lru_.empty() &&
         (lru_.size() > capacity_ ||
          (max_bytes_ != 0 && resident_bytes_ > max_bytes_))) {
    if (lru_.size() <= capacity_) ++stats_.byte_evictions;
    resident_bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

Expected<SolverPlan> PlanCache::get_or_analyze(const sparse::CscMatrix& lower,
                                               const SolveOptions& options) {
  const std::string key = key_of(lower, options);
  std::string disk_dir;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const SolverPlan* hit = find_locked(key)) {
      ++stats_.hits;
      return *hit;
    }
    ++stats_.misses;
    disk_dir = disk_dir_;
  }

  // Miss path, outside the lock: probe the blob directory, then analyze.
  if (!disk_dir.empty()) {
    const std::string path = disk_dir + "/" + key + ".plan";
    Expected<SolverPlan> from_disk = SolverPlan::load(path, options);
    if (from_disk.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_hits;
      insert_locked(key, from_disk.value());
      return from_disk;
    }
    // Missing or stale blob: fall through to analysis (and overwrite it).
  }

  Expected<SolverPlan> analyzed =
      SolverPlan::analyze(sparse::CscMatrix(lower), options);
  if (!analyzed.ok()) return analyzed;  // never cache failures

  bool stored = false;
  if (!disk_dir.empty()) {
    stored = analyzed.value().save(disk_dir + "/" + key + ".plan").ok();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stored) ++stats_.disk_stores;
    insert_locked(key, analyzed.value());
  }
  return analyzed;
}

void PlanCache::set_disk_directory(std::string dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_dir_ = std::move(dir);
}

std::string PlanCache::disk_directory() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disk_dir_;
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evict_to_budget_locked();
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void PlanCache::set_max_bytes(std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_bytes_ = max_bytes;
  evict_to_budget_locked();
}

std::size_t PlanCache::max_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_bytes_;
}

std::size_t PlanCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  resident_bytes_ = 0;
  stats_ = Stats{};
}

PlanCache::FsckReport PlanCache::fsck(bool repair) {
  namespace fs = std::filesystem;
  FsckReport report;
  const std::string dir = disk_directory();
  if (dir.empty()) return report;

  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    report.problems.push_back(dir + ": " + ec.message());
    return report;
  }

  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".plan") continue;
    ++report.scanned;
    const std::string name = path.stem().string();  // the cache key

    std::string problem;
    bool corrupt = false;
    std::vector<std::uint8_t> bytes;
    SnapshotBlob parsed;
    if (!support::read_file(path.string(), bytes)) {
      problem = "unreadable";
      corrupt = true;
    } else {
      // Full-format parse: verifies magic, version, endianness, the
      // whole-payload CRC, and every section's internal consistency.
      // kSkipFactor still CRC-checks the factor bytes, so the sweep is
      // allocation-light even on multi-MB blobs.
      const std::string err =
          deserialize_snapshot(bytes, parsed, SnapshotRead::kSkipFactor);
      if (!err.empty()) {
        problem = err;
        corrupt = true;
      }
    }
    if (!corrupt) {
      // The filename key leads with <pattern>-<values> (16 hex chars
      // each); a blob that parses but no longer matches its name is a
      // stale leftover -- a lookup under this key would reject it with
      // kBadSnapshot and re-analyze every time.
      const std::string want_hash = hex64(parsed.factor_hash.pattern) + "-" +
                                    hex64(parsed.factor_hash.values);
      const std::string want_config =
          std::string("-") +
          registry::entry_of(parsed.snapshot.backend).key + "-g" +
          std::to_string(parsed.snapshot.num_gpus) + "-t" +
          std::to_string(parsed.snapshot.tasks_per_gpu) + "-";
      if (name.rfind(want_hash, 0) != 0) {
        problem = "content hash disagrees with the filename key";
      } else if (name.find(want_config) == std::string::npos) {
        problem = "analysis configuration disagrees with the filename key";
      }
    }

    if (problem.empty()) {
      ++report.valid;
      continue;
    }
    (corrupt ? report.corrupt : report.mismatched) += 1;
    report.problems.push_back(path.filename().string() + ": " + problem);
    if (repair) {
      std::uintmax_t size = entry.file_size(ec);
      if (ec) size = 0;
      if (fs::remove(path, ec) && !ec) {
        ++report.pruned;
        report.bytes_freed += static_cast<std::uint64_t>(size);
      }
    }
  }
  return report;
}

}  // namespace msptrsv::core
