// The explicit, serializable form of a SolverPlan's symbolic state.
//
// Everything the analysis phase derives from the matrix STRUCTURE lives
// here -- level sets, per-component in-degrees, the row-form gather view,
// the partition, and the one-time simulated analysis charge -- keyed by the
// configuration that produced it (backend, task granularity, GPU count).
// SolverPlan::State owns one PlanSnapshot; save()/load() round-trip it
// through the versioned blob format (support/blob.hpp) together with the
// analyzed factor and its structural hash, which is what turns cold-start
// for a known matrix from O(analysis) into O(read).
//
// The partition is deliberately NOT serialized: it is a deterministic O(n)
// function of (backend, n, num_gpus, tasks_per_gpu) -- partition_for --
// and rebuilding it at load keeps the blob free of Partition's internal
// layout. Everything expensive or branchy (levels, in-degrees, row form)
// is stored verbatim and restored by memcpy-speed reads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "sparse/csr.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/partition.hpp"
#include "sparse/serialize.hpp"

namespace msptrsv::core {

struct PlanSnapshot {
  /// Configuration identity: the load path refuses to marry this snapshot
  /// to SolveOptions that would have produced a different analysis.
  Backend backend = Backend::kSerial;
  int tasks_per_gpu = 1;
  int num_gpus = 1;
  /// Built by analyze_upper: the factor is the REVERSED lower form and
  /// solves apply the O(n) vector reversal around the kernel.
  bool upper = false;

  /// Component-to-GPU distribution (multi-GPU backends; rebuilt at load).
  std::optional<sparse::Partition> partition;
  /// Per-component in-degrees (sync-free backends).
  std::vector<index_t> in_degrees;
  /// Level-set analysis (level-scheduled backends).
  std::optional<sparse::LevelAnalysis> levels;
  /// CSR view of the factor for the host-parallel pull-based gather.
  /// Carries values, so value refreshes rewrite it. NOT serialized by the
  /// v2 lean format -- it is a deterministic O(nnz) transpose of the
  /// factor (sparse::csr_from_csc) and storing it doubled the blob's
  /// value payload; the load path rebuilds it. v1 blobs (and fat v2 ones
  /// written for tests) still carry it and are honored.
  std::optional<sparse::CsrMatrix> row_form;
  /// The RESOLVED RhsLayout of the plan (never kAuto after analysis; see
  /// resolve_rhs_layout). Persisted by v2 blobs; v1 blobs deserialize it
  /// as kAuto and the load path re-resolves by backend -- which lands on
  /// the same answer, since resolution depends only on the backend.
  RhsLayout rhs_layout = RhsLayout::kAuto;
  /// One-time simulated analysis charge (comm/analysis sizing; 0 for the
  /// real host backends and for LOADED plans, which never paid it).
  sim_time_t analysis_us = 0.0;
};

/// On-disk format version of plan blobs. The reader accepts the current
/// version AND v1 (pre-layout, fat row-form blobs) -- a plan cache must
/// outlive a binary upgrade; anything else is rejected (kBadSnapshot).
/// v2: adds the rhs_layout byte, stops storing the row-form section.
inline constexpr std::uint16_t kPlanBlobVersion = 2;

/// Serialization knobs, defaulted to the production format. Tests and the
/// bench use these to produce v1-format and fat (row-form-carrying) blobs
/// for the compatibility and restore-cost studies.
struct SnapshotWriteOptions {
  /// 1 or 2. Version 1 writes the exact pre-v2 byte stream (no layout
  /// byte, row form included when present).
  std::uint16_t format_version = kPlanBlobVersion;
  /// v2 only: force the row-form section in despite the lean default.
  bool include_row_form = false;
};

/// Serializes `snap` plus the analyzed factor (and its structural hash)
/// into a sealed blob image ready for write_file.
std::vector<std::uint8_t> serialize_snapshot(
    const PlanSnapshot& snap, const sparse::CscMatrix& factor,
    SnapshotWriteOptions options = {});

/// Parse result of a plan blob.
struct SnapshotBlob {
  PlanSnapshot snapshot;
  /// The embedded factor. Under kSkipFactor only the dims are filled --
  /// the arrays are never materialized.
  sparse::CscMatrix factor;
  /// Stored nonzero count (factor.nnz() under kFull; survives the skip).
  offset_t factor_nnz = 0;
  /// Structural hash of `factor` as recorded at save time; borrowed-mode
  /// loads check a caller-supplied matrix against it.
  sparse::StructuralHash factor_hash;
};

enum class SnapshotRead {
  kFull,
  /// Skip materializing the embedded factor (borrowed loads: the caller
  /// supplies the matrix, so reading ~half the blob into vectors that
  /// are immediately freed would be pure waste).
  kSkipFactor,
};

/// Parses a plan blob image. Returns the empty string on success, else a
/// diagnostic (truncation, corruption, version/endianness mismatch,
/// unknown backend key, inconsistent record shapes).
std::string deserialize_snapshot(std::span<const std::uint8_t> bytes,
                                 SnapshotBlob& out,
                                 SnapshotRead mode = SnapshotRead::kFull);

}  // namespace msptrsv::core
