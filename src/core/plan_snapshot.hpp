// The explicit, serializable form of a SolverPlan's symbolic state.
//
// Everything the analysis phase derives from the matrix STRUCTURE lives
// here -- level sets, per-component in-degrees, the row-form gather view,
// the partition, and the one-time simulated analysis charge -- keyed by the
// configuration that produced it (backend, task granularity, GPU count).
// SolverPlan::State owns one PlanSnapshot; save()/load() round-trip it
// through the versioned blob format (support/blob.hpp) together with the
// analyzed factor and its structural hash, which is what turns cold-start
// for a known matrix from O(analysis) into O(read).
//
// The partition is deliberately NOT serialized: it is a deterministic O(n)
// function of (backend, n, num_gpus, tasks_per_gpu) -- partition_for --
// and rebuilding it at load keeps the blob free of Partition's internal
// layout. Everything expensive or branchy (levels, in-degrees, row form)
// is stored verbatim and restored by memcpy-speed reads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "sparse/csr.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/partition.hpp"
#include "sparse/serialize.hpp"
#include "sparse/task_graph.hpp"

namespace msptrsv::core {

/// The analyze-time schedule decision (autotuned plans and every
/// cpu-taskgraph plan), persisted as a v3 blob section so a loaded plan
/// reports -- and replays -- exactly the choice the analysis made, instead
/// of re-tuning against whatever the loading machine measures.
struct TunedDecision {
  /// The decision came from the autotuner (vs an explicit cpu-taskgraph
  /// request, which records only its coarsening parameters here).
  bool autotuned = false;
  /// Chosen backend (== PlanSnapshot::backend after analysis).
  Backend backend = Backend::kSerial;
  /// 0 = flat (backend-native) schedule, 1 = coarsened task graph.
  std::uint8_t schedule = 0;
  /// Chosen gang width (SolveOptions::cpu_threads semantics; 0 = hw).
  int gang_width = 0;
  /// Coarsening thresholds the task graph was (or would be) built with.
  /// Pinned in the blob: the per-process sync-cost measurement may differ
  /// on the loading machine, and the rebuilt graph must be THIS one.
  sparse::CoarsenOptions coarsen;
  /// Structural features the decision was made from (observability).
  sparse::ScheduleFeatures features;
};

struct PlanSnapshot {
  /// Configuration identity: the load path refuses to marry this snapshot
  /// to SolveOptions that would have produced a different analysis.
  Backend backend = Backend::kSerial;
  int tasks_per_gpu = 1;
  int num_gpus = 1;
  /// Built by analyze_upper: the factor is the REVERSED lower form and
  /// solves apply the O(n) vector reversal around the kernel.
  bool upper = false;

  /// Component-to-GPU distribution (multi-GPU backends; rebuilt at load).
  std::optional<sparse::Partition> partition;
  /// Per-component in-degrees (sync-free backends).
  std::vector<index_t> in_degrees;
  /// Level-set analysis (level-scheduled backends).
  std::optional<sparse::LevelAnalysis> levels;
  /// CSR view of the factor for the host-parallel pull-based gather.
  /// Carries values, so value refreshes rewrite it. NOT serialized by the
  /// v2 lean format -- it is a deterministic O(nnz) transpose of the
  /// factor (sparse::csr_from_csc) and storing it doubled the blob's
  /// value payload; the load path rebuilds it. v1 blobs (and fat v2 ones
  /// written for tests) still carry it and are honored.
  std::optional<sparse::CsrMatrix> row_form;
  /// The RESOLVED RhsLayout of the plan (never kAuto after analysis; see
  /// resolve_rhs_layout). Persisted by v2 blobs; v1 blobs deserialize it
  /// as kAuto and the load path re-resolves by backend -- which lands on
  /// the same answer, since resolution depends only on the backend.
  RhsLayout rhs_layout = RhsLayout::kAuto;
  /// One-time simulated analysis charge (comm/analysis sizing; 0 for the
  /// real host backends and for LOADED plans, which never paid it).
  sim_time_t analysis_us = 0.0;
  /// Analyze-time schedule decision (autotune / cpu-taskgraph plans;
  /// absent otherwise). Serialized by v3 blobs; older formats drop it and
  /// the load path falls back to default coarsening thresholds.
  std::optional<TunedDecision> tuned;
  /// Coarsened task DAG of the cpu-taskgraph backend. NOT serialized --
  /// like the lean row form, it is a deterministic O(n + nnz) function of
  /// the levels and the (persisted) coarsening thresholds, and the load
  /// path rebuilds it.
  std::optional<sparse::TaskGraph> tasks;
};

/// On-disk format version of plan blobs. The reader accepts the current
/// version AND every older one back to v1 -- a plan cache must outlive a
/// binary upgrade; anything else is rejected (kBadSnapshot).
/// v2: adds the rhs_layout byte, stops storing the row-form section.
/// v3: adds the tuned-decision section (autotuner choice + features +
///     coarsening thresholds; the task graph itself is rebuilt at load).
inline constexpr std::uint16_t kPlanBlobVersion = 3;

/// Serialization knobs, defaulted to the production format. Tests and the
/// bench use these to produce older-format and fat (row-form-carrying)
/// blobs for the compatibility and restore-cost studies.
struct SnapshotWriteOptions {
  /// 1..kPlanBlobVersion. Version 1 writes the exact pre-v2 byte stream
  /// (no layout byte, row form included when present); version 2 the
  /// pre-v3 stream (no tuned section).
  std::uint16_t format_version = kPlanBlobVersion;
  /// v2+ only: force the row-form section in despite the lean default.
  bool include_row_form = false;
};

/// Serializes `snap` plus the analyzed factor (and its structural hash)
/// into a sealed blob image ready for write_file.
std::vector<std::uint8_t> serialize_snapshot(
    const PlanSnapshot& snap, const sparse::CscMatrix& factor,
    SnapshotWriteOptions options = {});

/// Parse result of a plan blob.
struct SnapshotBlob {
  PlanSnapshot snapshot;
  /// The embedded factor. Under kSkipFactor only the dims are filled --
  /// the arrays are never materialized.
  sparse::CscMatrix factor;
  /// Stored nonzero count (factor.nnz() under kFull; survives the skip).
  offset_t factor_nnz = 0;
  /// Structural hash of `factor` as recorded at save time; borrowed-mode
  /// loads check a caller-supplied matrix against it.
  sparse::StructuralHash factor_hash;
};

enum class SnapshotRead {
  kFull,
  /// Skip materializing the embedded factor (borrowed loads: the caller
  /// supplies the matrix, so reading ~half the blob into vectors that
  /// are immediately freed would be pure waste).
  kSkipFactor,
};

/// Parses a plan blob image. Returns the empty string on success, else a
/// diagnostic (truncation, corruption, version/endianness mismatch,
/// unknown backend key, inconsistent record shapes).
std::string deserialize_snapshot(std::span<const std::uint8_t> bytes,
                                 SnapshotBlob& out,
                                 SnapshotRead mode = SnapshotRead::kFull);

}  // namespace msptrsv::core
