#include "core/registry.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "core/plan_cache.hpp"

namespace msptrsv::core::registry {

namespace {

constexpr std::array<BackendEntry, 9> kBackends{{
    {Backend::kSerial, "serial",
     "host reference, Algorithm 1 column sweep", false, false, true},
    {Backend::kCpuLevelSet, "cpu-levelset",
     "real-thread level-set (Naumov on the host)", false, false, true},
    {Backend::kCpuSyncFree, "cpu-syncfree",
     "real-thread sync-free (Liu on the host)", false, false, true},
    {Backend::kCpuTaskGraph, "cpu-taskgraph",
     "real-thread coarsened task DAG (chain-fused levels)", false, false,
     true},
    {Backend::kGpuLevelSet, "gpu-levelset",
     "simulated cuSPARSE csrsv2 level-set baseline", true, false, true},
    {Backend::kMgUnified, "mg-unified",
     "Algorithm 2: Unified Memory, block distribution", true, true, true},
    {Backend::kMgUnifiedTask, "mg-unified-task",
     "Algorithm 2 + round-robin task pool", true, true, true},
    {Backend::kMgShmem, "mg-shmem",
     "Algorithm 3: NVSHMEM read-only, block distribution", true, true, true},
    {Backend::kMgZeroCopy, "mg-zerocopy",
     "Algorithm 3 + task pool (the paper's design)", true, true, true},
}};

std::string lower_key(std::string_view key) {
  std::string out(key);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::span<const BackendEntry> backends() { return kBackends; }

const BackendEntry& entry_of(Backend b) {
  for (const BackendEntry& e : kBackends) {
    if (e.backend == b) return e;
  }
  // Unreachable for valid enumerators; fall back to the reference design.
  return kBackends.front();
}

Expected<Backend> parse_backend(std::string_view key) {
  const std::string k = lower_key(key);
  for (const BackendEntry& e : kBackends) {
    if (k == e.key) return e.backend;
  }
  // Display names from backend_name() and common shorthand.
  if (k == "gpu-levelset(csrsv2)" || k == "csrsv2" || k == "levelset") {
    return Backend::kGpuLevelSet;
  }
  if (k == "mg-unified+task" || k == "unified-task" || k == "unified+task") {
    return Backend::kMgUnifiedTask;
  }
  if (k == "unified") return Backend::kMgUnified;
  if (k == "shmem") return Backend::kMgShmem;
  if (k == "zerocopy" || k == "zero-copy") return Backend::kMgZeroCopy;
  if (k == "syncfree") return Backend::kCpuSyncFree;
  if (k == "taskgraph" || k == "task-graph") return Backend::kCpuTaskGraph;
  return Expected<Backend>(SolveStatus::kUnknownBackend,
                           "unknown backend '" + std::string(key) +
                               "'; known backends: " + backend_keys());
}

SolveOptions default_options(Backend b) {
  SolveOptions opt;
  opt.backend = b;
  const BackendEntry& e = entry_of(b);
  // The paper's reference configuration: multi-GPU designs on a 4-GPU
  // DGX-1 with 8 tasks/GPU; everything else on a single GPU / the host.
  opt.machine = e.multi_gpu ? sim::Machine::dgx1(4) : sim::Machine::dgx1(1);
  opt.tasks_per_gpu = 8;
  // Batch-aware default: every catalogued backend that supports the fused
  // multi-RHS kernel gets it out of the box.
  opt.fuse_batch = e.fused_batch;
  // kAuto resolves at analyze time: interleaved panels on the real host
  // backends, column-major on the simulated ones (resolve_rhs_layout).
  opt.rhs_layout = RhsLayout::kAuto;
  return opt;
}

Expected<SolveOptions> options_for(std::string_view key) {
  // "auto" is a PRESET, not a backend: the analyze-time autotuner picks
  // the backend (and schedule, and gang width) per matrix and overwrites
  // options.backend with the decision. The placeholder backend only names
  // what a 0x0 matrix (which has no features) falls back to.
  if (lower_key(key) == "auto") {
    SolveOptions opt = default_options(Backend::kCpuLevelSet);
    opt.autotune = true;
    return opt;
  }
  Expected<Backend> b = parse_backend(key);
  if (!b.ok()) return Expected<SolveOptions>(b.error());
  return default_options(b.value());
}

std::string backend_keys() {
  std::string out;
  for (const BackendEntry& e : kBackends) {
    if (!out.empty()) out += ", ";
    out += e.key;
  }
  return out;
}

Expected<SolverPlan> analyze_cached(const sparse::CscMatrix& lower,
                                    const SolveOptions& options) {
  return PlanCache::instance().get_or_analyze(lower, options);
}

Expected<SolverPlan> analyze_cached(const sparse::CscMatrix& lower,
                                    std::string_view key) {
  Expected<SolveOptions> opt = options_for(key);
  if (!opt.ok()) return Expected<SolverPlan>(opt.error());
  return analyze_cached(lower, opt.value());
}

Expected<SolveOptions> service_options(std::string_view key) {
  Expected<SolveOptions> opt = options_for(key);
  if (!opt.ok()) return opt;
  opt.value().use_shared_pool = true;
  return opt;
}

Expected<SolveOptions> service_preset_options(std::string_view preset_key,
                                              Backend backend) {
  Expected<SolveOptions> opt = preset_options(preset_key, backend);
  if (!opt.ok()) return opt;
  opt.value().use_shared_pool = true;
  return opt;
}

namespace {

// Pre-tuned deployments. Task granularity follows the paper's Fig. 9
// sweet spot (total task count a small multiple of the GPU count, ~32-64
// launches per pass): the 4-GPU slices and the 8-GPU DGX-1 keep the
// reference 8 tasks/GPU; the 16-GPU DGX-2 halves it so the per-GPU launch
// streams stay short.
constexpr std::array<MachinePreset, 4> kPresets{{
    {"dgx1x4", "DGX-1, 4-GPU fully-connected NVLink quad (paper config)", 4,
     8},
    {"dgx1x8", "DGX-1, all 8 GPUs (hybrid-cube-mesh NVLink)", 8, 8},
    {"dgx2x4", "DGX-2, 4 GPUs over NVSwitch", 4, 8},
    {"dgx2x16", "DGX-2, all 16 GPUs over NVSwitch", 16, 4},
}};

bool preset_is_dgx2(std::string_view key) {
  return key.substr(0, 4) == "dgx2";
}

}  // namespace

std::span<const MachinePreset> machine_presets() { return kPresets; }

Expected<SolveOptions> preset_options(std::string_view preset_key,
                                      Backend backend) {
  const std::string k = lower_key(preset_key);
  for (const MachinePreset& p : kPresets) {
    if (k != p.key) continue;
    SolveOptions opt = default_options(backend);
    opt.machine = preset_is_dgx2(p.key) ? sim::Machine::dgx2(p.num_gpus)
                                        : sim::Machine::dgx1(p.num_gpus);
    opt.tasks_per_gpu = p.tasks_per_gpu;
    return opt;
  }
  return Expected<SolveOptions>(SolveStatus::kInvalidOptions,
                                "unknown machine preset '" +
                                    std::string(preset_key) +
                                    "'; known presets: " + preset_keys());
}

std::string preset_keys() {
  std::string out;
  for (const MachinePreset& p : kPresets) {
    if (!out.empty()) out += ", ";
    out += p.key;
  }
  return out;
}

}  // namespace msptrsv::core::registry
