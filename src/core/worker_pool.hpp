// Worker pools for the real host backends.
//
// The paper's central claim is that SpTRSV is dominated by fixed per-solve
// overheads; on the host the analogous overhead is std::thread create/join,
// which costs tens of microseconds per thread -- often more than the solve
// itself on small factors. Two pool designs share that insight:
//
//  * WorkerPool -- the per-plan gang of PR 2: parks its threads on a
//    condition variable between solves, so a plan's hot path pays one
//    wake/park cycle instead of a full spawn/join cycle per solve. Owned
//    by one SolveWorkspace; exactly parties() threads per run.
//
//  * SharedWorkerPool -- the multi-tenant substrate: ONE process-wide set
//    of parked threads serving every plan and the solve service. Each
//    worker owns a deque of submitted tasks (service dispatch jobs);
//    an idle worker drains its own deque first and STEALS from a sibling's
//    when empty, so a burst of requests against one plan spreads across
//    the machine without any central run queue. Solve kernels claim
//    temporary GANGS of idle workers instead: a gang claim never blocks
//    and never waits for busy workers -- it takes whatever is parked right
//    now and runs with a smaller party count otherwise (the kernels'
//    pull-based gather is bit-identical at any thread count, so shrinking
//    is free). That non-blocking shrink is what makes nested use safe: a
//    task running ON the pool can open a gang without any deadlock cycle,
//    and total host threads stay capped at the pool size no matter how
//    many plans solve concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/numa.hpp"

namespace msptrsv::core {

/// Construction-time knobs shared by both pool designs. Placement is a
/// pool property (workers pin once, at spawn) rather than a per-run one:
/// re-pinning per solve would cost a syscall on the hot path and migrate
/// already-touched pages away from their first-touch node.
struct PoolOptions {
  /// Worker CPU placement (see support::NumaPolicy). Workers pin
  /// themselves as they start; the CALLING thread (tid 0 of every
  /// gang/run) is never pinned -- the pool does not own it. kNone spawns
  /// byte-for-byte the pre-NUMA workers.
  support::NumaPolicy numa_policy = support::NumaPolicy::kNone;
};

class WorkerPool {
 public:
  /// Spawns `parties - 1` parked worker threads (requires parties >= 1).
  explicit WorkerPool(int parties, PoolOptions options = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int parties() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(tid) on all parties (caller is tid 0) and returns when every
  /// party is done. Not reentrant: one run() at a time per pool. The
  /// callable is borrowed in place -- no std::function, no allocation on
  /// the hot path. Exception-safe: run() always waits for every worker
  /// before returning (the pool and the callable stay valid for their
  /// whole execution), then rethrows the first exception any party threw.
  template <typename F>
  void run(F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run_job({&fn, [](void* ctx, int tid) { (*static_cast<Fn*>(ctx))(tid); }});
  }

 private:
  /// Non-owning type-erased job: valid only for the duration of run_job.
  struct Job {
    void* ctx;
    void (*invoke)(void* ctx, int tid);
  };

  void run_job(Job job);
  void worker_loop(int tid);

  PoolOptions options_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  /// Incremented per run(); workers wake when it moves past the epoch they
  /// last executed (condvar wakeups are spurious-safe this way).
  std::uint64_t epoch_ = 0;
  std::size_t done_ = 0;
  Job job_{nullptr, nullptr};
  /// First exception thrown by any party this epoch (rethrown by run).
  std::exception_ptr failure_;
  bool stopping_ = false;
};

/// Reusable barrier whose party count can change BETWEEN runs (std::barrier
/// fixes it at construction, which a shrinking shared-pool gang cannot
/// live with). Sense-reversing: arrivals count up against the current
/// phase; the last arriver resets the count and releases the phase.
/// Waiters spin briefly (level waits are usually shorter than a context
/// switch) and then BLOCK on a condition variable -- so an owned pool
/// oversubscribed past the physical cores (cpu_threads > hardware, or
/// many full-width plans solving at once) degrades to the blocking
/// behavior the old std::barrier had instead of burning whole scheduler
/// quanta in a yield loop.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties = 1) : parties_(parties) {}

  /// Only between runs: no party may be inside arrive_and_wait().
  void reset(int parties) { parties_ = parties; }
  int parties() const { return parties_; }

  void arrive_and_wait() {
    const std::uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      {
        // Publish the phase under the mutex so a waiter cannot check the
        // predicate and sleep between our store and our notify.
        std::lock_guard<std::mutex> lock(mutex_);
        phase_.store(phase + 1, std::memory_order_release);
      }
      cv_.notify_all();
      return;
    }
    for (int spin = 0; spin < kSpins; ++spin) {
      if (phase_.load(std::memory_order_acquire) != phase) return;
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return phase_.load(std::memory_order_acquire) != phase;
    });
  }

 private:
  /// Yields before sleeping; enough for same-core handoffs and short
  /// levels without measurable cost when the wait really is long.
  static constexpr int kSpins = 64;

  std::atomic<std::uint64_t> phase_{0};
  std::atomic<int> arrived_{0};
  int parties_ = 1;
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// The process-wide shared pool (see the file comment for the design).
/// Thread-safe throughout; one instance serves every plan and service in
/// the process via instance(), though tests may build private ones.
class SharedWorkerPool {
 public:
  /// Spawns `threads` parked workers (>= 1).
  explicit SharedWorkerPool(int threads, PoolOptions options = {});
  ~SharedWorkerPool();

  SharedWorkerPool(const SharedWorkerPool&) = delete;
  SharedWorkerPool& operator=(const SharedWorkerPool&) = delete;

  /// The process-wide instance: resolve_cpu_threads(0) workers, created on
  /// first use and alive for the rest of the process.
  static SharedWorkerPool& instance();

  /// Sizes the process-wide instance() BEFORE its first use: the next
  /// instance() call spawns resolve_cpu_threads(threads) workers instead
  /// of full hardware concurrency. The capacity knob of a sharded
  /// deployment -- a server process run as one shard of N on a box caps
  /// its kernel threads here so shards share the machine by construction
  /// (tools/solve_serverd --threads). Returns false (and changes nothing)
  /// once the instance already exists; 0 restores the default.
  static bool configure_instance_threads(int threads);

  /// Sets the process-wide instance's NUMA policy BEFORE its first use
  /// (same pre-first-use contract as configure_instance_threads): the
  /// next instance() call spawns its workers under `policy`. Returns
  /// false once the instance already exists. Single-node machines are
  /// unaffected by any value (pinning degrades to sequential CPUs and
  /// the page hints no-op).
  static bool configure_instance_numa(support::NumaPolicy policy);

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues an independent task (a service dispatch job). The task lands
  /// on one worker's deque round-robin; any idle sibling may steal it.
  /// Tasks must not throw (they are request handlers that report through
  /// their own promise channel); a task that does throw aborts via the
  /// noexcept worker loop, loudly. `urgent` tasks land on a separate
  /// per-worker queue that both owners and thieves drain BEFORE any
  /// normal task (FIFO within each class), so a latency-class dispatch
  /// overtakes queued background dispatches -- the last FIFO stage
  /// between the priority queue and a worker. Urgency never preempts a
  /// RUNNING task; it only reorders the untaken ones.
  void submit(std::function<void()> task, bool urgent = false);

  /// Claims up to `max_extra` currently-parked workers and runs
  /// fn(tid, parties) on each of them (tids 1..parties-1) plus the calling
  /// thread (tid 0), where parties = claimed + 1 <= max_extra + 1. Never
  /// blocks waiting for workers: if fewer are parked the gang shrinks,
  /// down to the caller alone. Returns the party count actually used.
  /// Rethrows the first exception any party threw, after all have
  /// finished. `configure(parties)` runs on the caller before any member
  /// starts -- the hook where the workspace sizes its barrier.
  ///
  /// RESERVATION: with gang reservation enabled (the default), a gang is
  /// additionally capped at threads() / active_gangs parties, counting
  /// itself -- an equal-share hint, not a guarantee. A lone solve still
  /// claims the whole pool; when k solves overlap, each claims at most
  /// ~1/k of it, so no tenant's gang monopolizes the workers another
  /// tenant's next level wave needs (the tail-latency collapse under
  /// multi-tenant contention). The claimable-NOW semantics are untouched:
  /// the cap only lowers how many idle workers a claim may take, it never
  /// waits for one, so the no-deadlock argument is exactly as before.
  template <typename F, typename C>
  int run_gang(int max_extra, C&& configure, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    GangRun gang;
    claim_members(max_extra, gang);
    const int parties = static_cast<int>(gang.members.size()) + 1;
    try {
      configure(parties);
    } catch (...) {
      // Claimed members point at this stack frame: release them through a
      // no-op job before letting the exception unwind it.
      gang.job = {nullptr, [](void*, int, int) {}};
      run_claimed(gang, parties);
      throw;
    }
    gang.job = {&fn, [](void* ctx, int tid, int p) {
                  (*static_cast<Fn*>(ctx))(tid, p);
                }};
    return run_claimed(gang, parties);
  }

  struct Stats {
    std::uint64_t tasks_run = 0;
    std::uint64_t tasks_stolen = 0;
    std::uint64_t gangs = 0;
    std::uint64_t gang_members = 0;
    /// Gangs that got fewer extras than they asked for (the contention
    /// signal: solves are sharing the machine).
    std::uint64_t gang_shrinks = 0;
    /// Gangs whose ask was lowered by the equal-share reservation cap
    /// (threads / active gangs) -- the multi-tenant smoothing signal, a
    /// subset of neither `gangs` nor `gang_shrinks` necessarily.
    std::uint64_t gang_capped = 0;
  };
  Stats stats() const;

  /// Toggles the equal-share reservation cap on gang claims (see
  /// run_gang). On by default; off restores the greedy take-all-idle
  /// claims of PR 4. Safe to flip at any time (claims in flight keep the
  /// policy they started with).
  void set_gang_reservation(bool enabled) {
    reserve_gangs_.store(enabled, std::memory_order_relaxed);
  }
  bool gang_reservation() const {
    return reserve_gangs_.load(std::memory_order_relaxed);
  }

  /// Gangs currently between claim and completion (the reservation
  /// denominator, live).
  int active_gangs() const {
    return active_gangs_.load(std::memory_order_relaxed);
  }

 private:
  /// One gang execution: the claimed members, the type-erased job, and the
  /// completion state the caller waits on. Lives on the caller's stack.
  struct GangRun {
    struct Job {
      void* ctx;
      void (*invoke)(void* ctx, int tid, int parties);
    };
    std::vector<int> members;  ///< worker indices, tid = position + 1
    Job job{nullptr, nullptr};
    /// Members wait for this (under the pool mutex) before touching `job`:
    /// a claim happens before the job is published.
    bool ready = false;
    int parties = 1;
    std::atomic<int> remaining{0};
    std::exception_ptr failure;
    std::mutex failure_mutex;
  };

  struct Worker {
    std::thread thread;
    /// Local task deques: the urgent one drains before the normal one,
    /// and each is FIFO within itself (urgent tasks must not LIFO past
    /// each other -- that would trade one starvation for another). Owner
    /// pops fronts; thieves steal the urgent front (the oldest urgent
    /// task is the most overdue) and the normal back (classic stealing).
    std::mutex deque_mutex;
    std::deque<std::function<void()>> urgent_deque;
    std::deque<std::function<void()>> deque;
    /// Gang assignment, set under the pool mutex while the worker parks.
    GangRun* gang = nullptr;
    int gang_tid = 0;
    bool parked = false;
  };

  void worker_loop(int self);
  /// Pops one task: own deque front first, then steals a sibling's back.
  bool take_task(int self, std::function<void()>& out);
  void claim_members(int max_extra, GangRun& gang);
  int run_claimed(GangRun& gang, int parties);
  void finish_member(GangRun& gang, std::exception_ptr thrown);

  PoolOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Parking lot: guards parked flags, gang assignments, pending count,
  /// and the stop flag. Task deques have their own mutexes so stealing
  /// never contends with parking.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Workers currently parked (claimable for gangs), as indices.
  std::vector<int> idle_;
  /// Tickets: one per submitted-but-untaken task (see take_task).
  std::size_t pending_ = 0;
  std::atomic<std::uint64_t> next_victim_{0};
  bool stopping_ = false;
  /// Completion signal for gang callers (waits are rare and short).
  std::condition_variable gang_cv_;

  /// Untaken urgent tasks across all workers (a hint: lets take_task
  /// skip the urgent steal sweep -- an extra lock pass over every
  /// sibling -- in the common no-urgent-traffic case). Incremented
  /// BEFORE the task is visible in a deque, decremented at take, so a
  /// zero read can only be stale in the safe direction for one scan and
  /// the ticket retry loop rescans.
  std::atomic<std::size_t> urgent_pending_{0};

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<std::uint64_t> gangs_{0};
  std::atomic<std::uint64_t> gang_members_{0};
  std::atomic<std::uint64_t> gang_shrinks_{0};
  std::atomic<std::uint64_t> gang_capped_{0};
  /// Gangs between claim_members and run_claimed completion; the
  /// reservation divisor. Incremented in claim_members, decremented on
  /// every run_claimed exit path (including the configure-throw release).
  std::atomic<int> active_gangs_{0};
  std::atomic<bool> reserve_gangs_{true};
};

/// Resolves a user-facing thread-count option: values > 0 pass through,
/// anything else means std::thread::hardware_concurrency() (minimum 2 when
/// the runtime cannot report it).
int resolve_cpu_threads(int num_threads);

}  // namespace msptrsv::core
