// Persistent worker pool for the real host backends.
//
// The paper's central claim is that SpTRSV is dominated by fixed per-solve
// overheads; on the host the analogous overhead is std::thread create/join,
// which costs tens of microseconds per thread -- often more than the solve
// itself on small factors. A WorkerPool parks its threads on a condition
// variable between solves, so a plan's hot path pays one wake/park cycle
// instead of a full spawn/join cycle per solve.
//
// Execution model: run(fn) executes fn(tid) on every party of the pool.
// The calling thread participates as tid 0; the pool owns parties()-1
// background threads for tids 1..parties()-1. A pool with parties() == 1
// therefore owns no threads at all and run() degenerates to a direct call.
//
// One run() at a time: the pool is a single-tenant resource (SolveWorkspace
// leases guarantee exclusivity; see workspace.hpp). run() returns only
// after every party has finished, which also gives the caller a
// happens-before edge over all worker writes.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace msptrsv::core {

class WorkerPool {
 public:
  /// Spawns `parties - 1` parked worker threads (requires parties >= 1).
  explicit WorkerPool(int parties);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int parties() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(tid) on all parties (caller is tid 0) and returns when every
  /// party is done. Not reentrant: one run() at a time per pool. The
  /// callable is borrowed in place -- no std::function, no allocation on
  /// the hot path. Exception-safe: run() always waits for every worker
  /// before returning (the pool and the callable stay valid for their
  /// whole execution), then rethrows the first exception any party threw.
  template <typename F>
  void run(F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run_job({&fn, [](void* ctx, int tid) { (*static_cast<Fn*>(ctx))(tid); }});
  }

 private:
  /// Non-owning type-erased job: valid only for the duration of run_job.
  struct Job {
    void* ctx;
    void (*invoke)(void* ctx, int tid);
  };

  void run_job(Job job);
  void worker_loop(int tid);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  /// Incremented per run(); workers wake when it moves past the epoch they
  /// last executed (condvar wakeups are spurious-safe this way).
  std::uint64_t epoch_ = 0;
  std::size_t done_ = 0;
  Job job_{nullptr, nullptr};
  /// First exception thrown by any party this epoch (rethrown by run).
  std::exception_ptr failure_;
  bool stopping_ = false;
};

/// Resolves a user-facing thread-count option: values > 0 pass through,
/// anything else means std::thread::hardware_concurrency() (minimum 2 when
/// the runtime cannot report it).
int resolve_cpu_threads(int num_threads);

}  // namespace msptrsv::core
