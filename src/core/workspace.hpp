// Reusable per-plan solve state for the real host backends.
//
// The PR 1 kernels spawned threads AND allocated + zeroed O(n) arrays of
// atomics (left-sum accumulators, sync-free pending countdowns) on every
// solve -- exactly the per-solve overhead the analyze/solve split was
// supposed to hoist. A SolveWorkspace owns the persistent execution state
// for the lifetime of a plan:
//
//  * an execution context of up to `parties` threads per solve. In OWNED
//    mode that is a WorkerPool of parked threads materialized lazily on
//    the FIRST run -- a plan that is analyzed (or cached) but never solved
//    holds zero threads. In SHARED mode the workspace owns no threads at
//    all: each run claims a gang of idle workers from the process-wide
//    core::SharedWorkerPool and shrinks gracefully when the machine is
//    busy (the pull-based kernels are bit-identical at any party count),
//    which is what caps total host threads when many plans coexist;
//
//  * the reusable per-level barrier (resized to the actual gang width at
//    the start of each run);
//
//  * MONOTONIC delivery counters tagged by a per-workspace generation,
//    replacing the sync-free pending countdowns. Every solve (or fused
//    batch) delivers exactly in_degree(i) updates to component i -- one
//    per incoming edge, regardless of the batch width -- so in solve
//    generation g the component is ready when delivered[i] reaches
//    g * in_degree(i). The counters are never reset or re-copied; the
//    target moves instead.
//
// There are no left-sum accumulators anymore: the fused kernels gather a
// component's partial sums by READING the already-final x entries of its
// dependencies through the plan's cached row-form structure (the host
// analogue of the paper's read-only NVSHMEM gather, Algorithm 3), so no
// O(n) value scratch exists to zero in the first place.
//
// Concurrency: a workspace is single-tenant. WorkspacePool hands out
// exclusive leases (growing on demand), which is what makes concurrent
// plan.solve()/solve_batch() calls from many threads safe on the host
// backends -- each caller gets its own workspace, and the pool mutex gives
// the lease handoff a happens-before edge.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/worker_pool.hpp"
#include "support/types.hpp"

namespace msptrsv::core {

/// Thread-local cap on the gang width of shared-pool solves started from
/// the current thread while the guard lives (1 = solve alone). The solve
/// service's cross-plan packed dispatch runs several small tenants' solves
/// as sibling tasks of ONE claimed gang: each sibling pins its nested
/// solve to width 1 so the siblings do not fight each other (or the next
/// packed dispatch) for the very workers their own gang already holds.
/// Bits are unaffected -- the pull-based kernels are bit-identical at any
/// party count, width 1 included. Guards nest; the innermost (smallest)
/// cap wins. No effect on owned-pool (non-shared) workspaces, whose party
/// count is fixed at analysis.
class ScopedGangCap {
 public:
  explicit ScopedGangCap(int max_parties)
      : previous_(cap_) {
    cap_ = max_parties < 1 ? 1 : (max_parties < cap_ ? max_parties : cap_);
  }
  ~ScopedGangCap() { cap_ = previous_; }
  ScopedGangCap(const ScopedGangCap&) = delete;
  ScopedGangCap& operator=(const ScopedGangCap&) = delete;

  /// The width cap active on this thread (INT_MAX-ish sentinel when none).
  static int current() { return cap_; }

 private:
  static thread_local int cap_;
  int previous_;
};

class SolveWorkspace {
 public:
  /// Up to `parties` real threads cooperate on every solve run on this
  /// workspace (>= 1; the calling thread counts as one of them). With a
  /// non-null `shared`, runs execute as gangs claimed from that pool and
  /// the workspace never owns a thread; otherwise an owned WorkerPool of
  /// parties-1 threads is created lazily on the first run. `options`
  /// configures the owned pool's worker placement and enables the
  /// first-touch pass on freshly grown scratch (kNone = pre-NUMA
  /// behavior, byte for byte).
  explicit SolveWorkspace(int parties, SharedWorkerPool* shared = nullptr,
                          PoolOptions options = {});

  SolveWorkspace(const SolveWorkspace&) = delete;
  SolveWorkspace& operator=(const SolveWorkspace&) = delete;

  /// The party-count CAP for runs on this workspace; gather_scratch sizes
  /// per-thread slices against it. Shared-mode runs may use fewer.
  int threads() const { return parties_; }

  /// True when this workspace gangs on the shared pool (observability).
  bool uses_shared_pool() const { return shared_ != nullptr; }
  /// True once an owned WorkerPool has materialized (always false in
  /// shared mode -- the lazy-pool guarantee the tests pin down). Safe to
  /// poll from other threads while the single tenant runs.
  bool owns_threads() const {
    return has_owned_pool_.load(std::memory_order_acquire);
  }

  /// Runs fn(tid, parties) on `parties` cooperating threads (caller is
  /// tid 0) and returns the party count used: exactly threads() in owned
  /// mode, 1..threads() in shared mode depending on how many shared
  /// workers were idle at claim time, on the pool's equal-share
  /// reservation cap, and on any ScopedGangCap active on the calling
  /// thread. level_barrier() is resized to the returned width before any
  /// party starts.
  template <typename F>
  int run_parallel(F&& fn) {
    if (shared_ != nullptr) {
      const int cap = ScopedGangCap::current();
      const int ask = (cap < parties_ ? cap : parties_) - 1;
      if (ask <= 0) {
        // Capped to a solo run: no claim, no barrier traffic at all.
        barrier_.reset(1);
        fn(0, 1);
        return 1;
      }
      return shared_->run_gang(
          ask, [this](int parties) { barrier_.reset(parties); },
          static_cast<F&&>(fn));
    }
    if (pool_ == nullptr) {
      pool_ = std::make_unique<WorkerPool>(parties_, options_);
      has_owned_pool_.store(true, std::memory_order_release);
    }
    barrier_.reset(parties_);
    pool_->run([&fn, this](int tid) { fn(tid, parties_); });
    return parties_;
  }

  /// Reusable per-level barrier, sized by run_parallel for each run.
  SpinBarrier& level_barrier() { return barrier_; }

  /// Monotonic per-component delivery counters (sync-free backend).
  /// Zero-initialized once on first use, never reset afterwards.
  std::atomic<std::uint64_t>* delivered(index_t n);

  /// Per-thread gather accumulators for a num_rhs-wide solve: thread tid
  /// uses the slice starting at tid * gather_stride(). Allocated lazily
  /// (sized for threads() slices, the cap), grown only when num_rhs
  /// exceeds the capacity -- steady-state solves allocate nothing. Slices
  /// are cache-line padded against false sharing.
  value_t* gather_scratch(index_t num_rhs);
  /// Per-thread slice stride in doubles; always a full-cache-line
  /// multiple (64 bytes) with the base 64-byte aligned, so adjacent
  /// threads' hot accumulators can never share a line.
  std::size_t gather_stride() const { return gather_stride_; }

  /// Interleaved (component-major) RHS panels for the host kernels: the
  /// column-major batch is transposed into panel_b once on entry and the
  /// solution transposed out of panel_x once on exit (see
  /// RhsLayout::kInterleaved in solver.hpp). `elems` = n * num_rhs.
  /// Lazily allocated, 64-byte aligned, grown only when a batch exceeds
  /// capacity -- steady-state solves allocate nothing. With a NUMA
  /// policy set, freshly grown panels (and gather scratch) are
  /// first-touched by the gang -- page p zeroed by party p % parties --
  /// so pages spread across the workers' nodes instead of all homing on
  /// the calling thread's.
  value_t* panel_b(std::size_t elems) {
    return grow_panel(panel_b_store_, panel_b_base_, panel_b_capacity_, elems);
  }
  value_t* panel_x(std::size_t elems) {
    return grow_panel(panel_x_store_, panel_x_base_, panel_x_capacity_, elems);
  }

  /// Starts a new sync-free solve generation and returns it (>= 1). The
  /// ready target of component i this generation is
  /// generation * in_degree(i).
  std::uint64_t begin_generation() { return ++generation_; }

  /// Rewinds the delivery protocol after an ABORTED sync-free solve: a
  /// cancelled generation leaves the counters partially advanced, so the
  /// next generation's targets would never be reached. Zeroes every
  /// materialized counter and restarts the generation count. Must only be
  /// called by the lease holder with no solve running (single-tenant, like
  /// every other workspace mutation).
  void reset_delivery() {
    for (std::size_t i = 0; i < delivered_capacity_; ++i) {
      delivered_[i].store(0, std::memory_order_relaxed);
    }
    generation_ = 0;
  }

 private:
  value_t* grow_panel(std::unique_ptr<value_t[]>& store, value_t*& base,
                      std::size_t& capacity, std::size_t elems);
  /// Parallel page-interleaved zeroing of fresh scratch (no-op under
  /// NumaPolicy::kNone -- the pre-NUMA allocation already zeroed it).
  void first_touch(value_t* p, std::size_t elems);

  int parties_;
  SharedWorkerPool* shared_;
  PoolOptions options_;
  /// Owned-mode gang, created on first run (lazy: idle plans hold zero
  /// threads). Null forever in shared mode.
  std::unique_ptr<WorkerPool> pool_;
  std::atomic<bool> has_owned_pool_{false};
  SpinBarrier barrier_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> delivered_;
  std::size_t delivered_capacity_ = 0;
  std::unique_ptr<value_t[]> gather_;
  /// Cache-line-aligned base inside gather_ (see gather_scratch).
  value_t* gather_base_ = nullptr;
  std::size_t gather_stride_ = 0;
  std::unique_ptr<value_t[]> panel_b_store_;
  std::unique_ptr<value_t[]> panel_x_store_;
  value_t* panel_b_base_ = nullptr;
  value_t* panel_x_base_ = nullptr;
  std::size_t panel_b_capacity_ = 0;
  std::size_t panel_x_capacity_ = 0;
  std::uint64_t generation_ = 0;
};

/// Lease-based pool of SolveWorkspaces, owned by a SolverPlan. A solve
/// checks a workspace out for its duration; concurrent solves get disjoint
/// workspaces (the pool grows on demand and retains every workspace until
/// the plan dies, so steady-state solving allocates nothing).
class WorkspacePool {
 public:
  /// `shared` (may be null) is handed to every workspace this pool
  /// creates: non-null routes all of the plan's kernel parallelism
  /// through the process-wide shared pool. `options` likewise (owned
  /// worker placement + first-touch, see PoolOptions).
  explicit WorkspacePool(int parties_per_workspace,
                         SharedWorkerPool* shared = nullptr,
                         PoolOptions options = {});

  class Lease {
   public:
    Lease(WorkspacePool* pool, SolveWorkspace* ws) : pool_(pool), ws_(ws) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(ws_);
    }
    Lease(Lease&& o) noexcept : pool_(o.pool_), ws_(o.ws_) {
      o.pool_ = nullptr;
      o.ws_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    SolveWorkspace& ws() { return *ws_; }

   private:
    WorkspacePool* pool_;
    SolveWorkspace* ws_;
  };

  Lease acquire();
  /// Workspaces ever created (grows only under concurrent solves).
  std::size_t size() const;
  /// Owned worker threads currently alive across all workspaces: 0 until
  /// the first solve, and 0 forever in shared mode (the lazy-threads
  /// guarantee of the solve service).
  std::size_t owned_threads() const;
  bool uses_shared_pool() const { return shared_ != nullptr; }

 private:
  friend class Lease;
  void release(SolveWorkspace* ws);

  mutable std::mutex mutex_;
  int parties_;
  SharedWorkerPool* shared_;
  PoolOptions options_;
  std::vector<std::unique_ptr<SolveWorkspace>> all_;
  std::vector<SolveWorkspace*> idle_;
};

}  // namespace msptrsv::core
