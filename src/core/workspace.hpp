// Reusable per-plan solve state for the real host backends.
//
// The PR 1 kernels spawned threads AND allocated + zeroed O(n) arrays of
// atomics (left-sum accumulators, sync-free pending countdowns) on every
// solve -- exactly the per-solve overhead the analyze/solve split was
// supposed to hoist. A SolveWorkspace owns the persistent execution state
// for the lifetime of a plan:
//
//  * a WorkerPool of parked threads (no spawn/join on the hot path) and
//    the reusable per-level barrier;
//
//  * MONOTONIC delivery counters tagged by a per-workspace generation,
//    replacing the sync-free pending countdowns. Every solve (or fused
//    batch) delivers exactly in_degree(i) updates to component i -- one
//    per incoming edge, regardless of the batch width -- so in solve
//    generation g the component is ready when delivered[i] reaches
//    g * in_degree(i). The counters are never reset or re-copied; the
//    target moves instead.
//
// There are no left-sum accumulators anymore: the fused kernels gather a
// component's partial sums by READING the already-final x entries of its
// dependencies through the plan's cached row-form structure (the host
// analogue of the paper's read-only NVSHMEM gather, Algorithm 3), so no
// O(n) value scratch exists to zero in the first place.
//
// Concurrency: a workspace is single-tenant. WorkspacePool hands out
// exclusive leases (growing on demand), which is what makes concurrent
// plan.solve()/solve_batch() calls from many threads safe on the host
// backends -- each caller gets its own workspace and worker pool, and the
// pool mutex gives the lease handoff a happens-before edge.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/worker_pool.hpp"
#include "support/types.hpp"

namespace msptrsv::core {

class SolveWorkspace {
 public:
  /// `parties` real threads cooperate on every solve run on this
  /// workspace (>= 1; the calling thread counts as one of them).
  explicit SolveWorkspace(int parties);

  SolveWorkspace(const SolveWorkspace&) = delete;
  SolveWorkspace& operator=(const SolveWorkspace&) = delete;

  int threads() const { return pool_.parties(); }
  WorkerPool& pool() { return pool_; }
  /// Reusable per-level barrier (all threads() parties).
  std::barrier<>& level_barrier() { return barrier_; }

  /// Monotonic per-component delivery counters (sync-free backend).
  /// Zero-initialized once on first use, never reset afterwards.
  std::atomic<std::uint64_t>* delivered(index_t n);

  /// Per-thread gather accumulators for a num_rhs-wide solve: thread tid
  /// uses the slice starting at tid * gather_stride(). Allocated lazily,
  /// grown only when num_rhs exceeds the capacity -- steady-state solves
  /// allocate nothing. Slices are cache-line padded against false sharing.
  value_t* gather_scratch(index_t num_rhs);
  std::size_t gather_stride() const { return gather_stride_; }

  /// Starts a new sync-free solve generation and returns it (>= 1). The
  /// ready target of component i this generation is
  /// generation * in_degree(i).
  std::uint64_t begin_generation() { return ++generation_; }

 private:
  WorkerPool pool_;
  std::barrier<> barrier_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> delivered_;
  std::size_t delivered_capacity_ = 0;
  std::unique_ptr<value_t[]> gather_;
  /// Cache-line-aligned base inside gather_ (see gather_scratch).
  value_t* gather_base_ = nullptr;
  std::size_t gather_stride_ = 0;
  std::uint64_t generation_ = 0;
};

/// Lease-based pool of SolveWorkspaces, owned by a SolverPlan. A solve
/// checks a workspace out for its duration; concurrent solves get disjoint
/// workspaces (the pool grows on demand and retains every workspace until
/// the plan dies, so steady-state solving allocates nothing).
class WorkspacePool {
 public:
  explicit WorkspacePool(int parties_per_workspace);

  class Lease {
   public:
    Lease(WorkspacePool* pool, SolveWorkspace* ws) : pool_(pool), ws_(ws) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(ws_);
    }
    Lease(Lease&& o) noexcept : pool_(o.pool_), ws_(o.ws_) {
      o.pool_ = nullptr;
      o.ws_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    SolveWorkspace& ws() { return *ws_; }

   private:
    WorkspacePool* pool_;
    SolveWorkspace* ws_;
  };

  Lease acquire();
  /// Workspaces ever created (grows only under concurrent solves).
  std::size_t size() const;

 private:
  friend class Lease;
  void release(SolveWorkspace* ws);

  mutable std::mutex mutex_;
  int parties_;
  std::vector<std::unique_ptr<SolveWorkspace>> all_;
  std::vector<SolveWorkspace*> idle_;
};

}  // namespace msptrsv::core
