// Top-level SpTRSV interface: pick a backend, a machine, and solve.
//
// Backends map one-to-one onto the design points of the paper's Fig. 7
// plus the host baselines:
//   kSerial         Algorithm 1 (host reference)
//   kCpuLevelSet    real-thread level-set (Naumov on the host)
//   kCpuSyncFree    real-thread sync-free (Liu on the host)
//   kCpuTaskGraph   real-thread coarsened task DAG (chain-fused levels)
//   kGpuLevelSet    simulated cuSPARSE csrsv2 (Fig. 10 baseline)
//   kMgUnified      "4GPU-Unified":      Algorithm 2, block distribution
//   kMgUnifiedTask  "4GPU-Unified+task": Algorithm 2 + task pool
//   kMgShmem        "4GPU-Shmem":        Algorithm 3, block distribution
//   kMgZeroCopy     "4GPU-Zerocopy":     Algorithm 3 + task pool
//
// kMgZeroCopy with machine.num_gpus()==1 degenerates to the single-GPU
// sync-free solver (no remote traffic, one task stream).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/comm_nvshmem.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sparse/csc.hpp"
#include "sparse/partition.hpp"
#include "support/numa.hpp"
#include "support/trace.hpp"

namespace msptrsv::core {

enum class Backend {
  kSerial,
  kCpuLevelSet,
  kCpuSyncFree,
  kCpuTaskGraph,
  kGpuLevelSet,
  kMgUnified,
  kMgUnifiedTask,
  kMgShmem,
  kMgZeroCopy,
};

/// Internal RHS batch layout of the host kernels. The PUBLIC solve_batch
/// API is column-major (entry i of rhs r at [r*n + i]) in every mode --
/// the layout only selects what the kernels iterate over internally.
enum class RhsLayout : std::uint8_t {
  /// Resolved at analyze time: interleaved for the parallel host
  /// backends (their pull-based per-dependency gather runs over the RHS
  /// dimension), column-major for the serial sweep (push-based, already
  /// unit-stride; see resolve_rhs_layout) and the simulated backends.
  /// The resolved choice is persisted in the plan snapshot.
  kAuto = 0,
  /// Kernels read b/x column-major directly: entry i of rhs r at
  /// [r*n + i]. Zero transposition cost, but the per-component inner RHS
  /// loop strides by n -- one cache line touched PER RHS per nonzero.
  kColumnMajor = 1,
  /// Component-major panel: entry i of rhs r at [i*k + r], so the inner
  /// RHS loop is unit-stride (vectorizable, k/8 lines per nonzero). The
  /// batch is transposed into the workspace panel once on entry and the
  /// solution transposed back once on exit; per-rhs operation ORDER is
  /// unchanged, so results stay bit-for-bit equal to column-major (and to
  /// looped single solves). Engaged for num_rhs >= 2 (the layouts
  /// coincide at k = 1).
  kInterleaved = 2,
};

/// Human-readable layout name ("auto" / "column-major" / "interleaved").
std::string rhs_layout_name(RhsLayout layout);

/// Resolves kAuto against a backend (parallel host backends interleave;
/// the serial sweep and the simulated backends stay column-major) and
/// clamps an explicit kInterleaved request on a simulated backend back to
/// kColumnMajor (those kernels have no panel path). Never returns kAuto.
RhsLayout resolve_rhs_layout(RhsLayout requested, Backend backend);

/// Human-readable backend name (used in reports and bench tables).
std::string backend_name(Backend b);

/// True for the backends that run on the simulated machine.
bool is_simulated(Backend b);

struct SolveOptions {
  Backend backend = Backend::kMgZeroCopy;
  /// Machine model for the simulated backends.
  sim::Machine machine = sim::Machine::dgx1(4);
  /// Tasks per GPU for the task-pool backends (Section V; the paper's
  /// default configuration is 8).
  int tasks_per_gpu = 8;
  /// Thread count for the real host backends (0 = hardware concurrency).
  int cpu_threads = 0;
  /// Internal RHS batch layout for the host kernels (see RhsLayout).
  /// kAuto resolves at analyze time and the choice is persisted in the
  /// plan snapshot; an explicit value overrides a stored one at restore.
  RhsLayout rhs_layout = RhsLayout::kAuto;
  /// Worker placement for the host gangs (see support::NumaPolicy).
  /// kNone -- the default -- pins nothing and skips the first-touch /
  /// page-interleave passes: single-node machines run the exact pre-NUMA
  /// code path. Results are bit-identical under every policy (placement
  /// moves bytes, never operations).
  support::NumaPolicy numa_policy = support::NumaPolicy::kNone;
  /// NVSHMEM design ablations (Section IV alternatives).
  NvshmemCommOptions nvshmem;
  /// Include the analysis phase in reported simulated time.
  bool include_analysis = true;
  /// solve_batch execution mode. true (the registry default for every
  /// backend) runs the fused multi-RHS kernel: one dependency resolution
  /// and one sweep over the matrix structure per batch, launches/syncs
  /// amortized across the rhs, report.solve_us = the batch makespan.
  /// false loops single solves (the PR 1 semantics: per-rhs reports
  /// accumulate). Both modes produce bit-for-bit identical x.
  bool fuse_batch = true;
  /// Host-parallel kernel threads come from the process-wide
  /// core::SharedWorkerPool (claimed as a per-solve gang that shrinks
  /// under contention) instead of plan-owned WorkerPools. Caps total host
  /// threads when many plans solve concurrently -- the multi-tenant
  /// service (service::SolveService) turns this on for every plan it
  /// builds. Off by default: a single-plan process keeps its dedicated
  /// full-width gang. Results are bit-identical either way (the pull-based
  /// gather order does not depend on the party count).
  bool use_shared_pool = false;
  /// Execution-time budget in wall-clock seconds per solve/solve_batch
  /// call (0 = unlimited). Unlike a service start-by deadline -- which
  /// only sheds requests BEFORE they run -- the budget is enforced
  /// MID-EXECUTION: the host kernels check a cancellation token at their
  /// level/claim boundaries and the call returns kDeadlineExceeded with
  /// the workspace immediately reusable. Simulated backends check only at
  /// batch entry (their "execution" is an event simulation, not wall
  /// time). When no budget is set the kernels skip every check (one null
  /// test per solve).
  double time_budget = 0.0;
  /// Analyze-time schedule autotuner (registry preset "auto"): the
  /// symbolic phase extracts structural features from the level analysis
  /// (level-width histogram, chain-run lengths, nnz/row), picks the host
  /// backend + schedule (flat levels vs coarsened task graph) + gang
  /// width, and OVERWRITES `backend`/`cpu_threads` with the decision.
  /// The choice and its features are recorded in the plan snapshot
  /// (SolverPlan::tuned()) and persist through v3 plan blobs; loading a
  /// blob with autotune set adopts the stored decision instead of
  /// requiring a backend match. Schedule choice never changes bits --
  /// every candidate backend is bit-for-bit identical.
  bool autotune = false;
};

struct SolveResult {
  std::vector<value_t> x;
  /// Filled by simulated backends; solver/machine names always set.
  sim::RunReport report;
  /// Wall-clock seconds for the real host backends (0 for simulated).
  double wall_seconds = 0.0;
  /// Per-phase latency attribution (claim/pack/kernel/unpack measured by
  /// the host backends; queue/coalesce/reply stamped by the layers above).
  support::trace::PhaseBreakdown phases;
  /// trace_now_ns() at batch completion -- lets the completion pump
  /// attribute the reply phase without re-deriving the finish time.
  std::uint64_t completed_ns = 0;
};

/// One-shot convenience: solves lower * x = b with the configured backend.
/// Thin wrapper over a throwaway SolverPlan (core/plan.hpp) -- it re-runs
/// the analysis phase on every call, so repeated solves against the same
/// factor should build a plan instead. Throws PreconditionError on invalid
/// input (the plan API reports the same conditions as SolveStatus values).
SolveResult solve(const sparse::CscMatrix& lower, std::span<const value_t> b,
                  const SolveOptions& options);

/// One-shot backward substitution: solves upper * x = b by reducing to the
/// lower form (see reference.hpp) and dispatching to the same backend. The
/// reduction happens in the (untimed) analysis phase; wall_seconds and
/// report timings cover only backend execution. Prefer
/// SolverPlan::analyze_upper for repeated solves.
SolveResult solve_upper(const sparse::CscMatrix& upper,
                        std::span<const value_t> b,
                        const SolveOptions& options);

/// The partition a backend/options pair implies for a given n (exposed for
/// footprint estimation and tests).
sparse::Partition partition_for(const SolveOptions& options, index_t n);

}  // namespace msptrsv::core
