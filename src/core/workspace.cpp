#include "core/workspace.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace msptrsv::core {

/// No cap by default: a value above any plausible parties_ behaves as
/// "unlimited" without a branch on a sentinel.
thread_local int ScopedGangCap::cap_ = 1 << 20;

namespace {
constexpr std::size_t kLineBytes = 64;
constexpr std::size_t kLineDoubles = kLineBytes / sizeof(value_t);

/// Aligns an allocation's interior pointer up to a cache-line boundary.
value_t* align_to_line(value_t* p) {
  const std::size_t misalign =
      reinterpret_cast<std::uintptr_t>(p) % kLineBytes;
  return p + (misalign == 0 ? 0 : (kLineBytes - misalign) / sizeof(value_t));
}
}  // namespace

SolveWorkspace::SolveWorkspace(int parties, SharedWorkerPool* shared,
                               PoolOptions options)
    : parties_(parties), shared_(shared), options_(options),
      barrier_(parties) {
  MSPTRSV_REQUIRE(parties >= 1, "workspaces need at least one thread");
  if (shared_ != nullptr) {
    // A gang is the caller plus claimed shared workers: the cap cannot
    // usefully exceed the whole shared pool plus the caller.
    parties_ = std::min(parties_, shared_->threads() + 1);
  }
}

void SolveWorkspace::first_touch(value_t* p, std::size_t elems) {
  if (options_.numa_policy == support::NumaPolicy::kNone) return;
  // Page-interleaved zeroing by the gang itself: under first-touch
  // allocation each page homes on the node of the party that writes it
  // first, so the panel's pages end up spread across the workers' nodes
  // (matching how the dynamic claim loops read them) instead of all
  // landing on the caller's node. Single-node machines pay one extra
  // parallel sweep over fresh memory only when a policy was set anyway.
  constexpr std::size_t kPageDoubles = 4096 / sizeof(value_t);
  run_parallel([&](int tid, int parties) {
    const std::size_t pages = (elems + kPageDoubles - 1) / kPageDoubles;
    for (std::size_t page = static_cast<std::size_t>(tid); page < pages;
         page += static_cast<std::size_t>(parties)) {
      const std::size_t begin = page * kPageDoubles;
      const std::size_t end = std::min(elems, begin + kPageDoubles);
      for (std::size_t i = begin; i < end; ++i) p[i] = 0.0;
    }
  });
}

value_t* SolveWorkspace::grow_panel(std::unique_ptr<value_t[]>& store,
                                    value_t*& base, std::size_t& capacity,
                                    std::size_t elems) {
  if (elems > capacity) {
    // Default-initialized (new[], not make_unique): a value-initializing
    // allocation would zero -- and therefore first-touch -- every page on
    // the calling thread, defeating the gang pass below.
    store.reset(new value_t[elems + kLineDoubles]);
    base = align_to_line(store.get());
    capacity = elems;
    first_touch(base, elems);
  }
  return base;
}

std::atomic<std::uint64_t>* SolveWorkspace::delivered(index_t n) {
  const std::size_t need = static_cast<std::size_t>(n);
  if (need > delivered_capacity_) {
    MSPTRSV_REQUIRE(delivered_capacity_ == 0,
                    "a workspace serves one plan: n cannot grow");
    delivered_ = std::make_unique<std::atomic<std::uint64_t>[]>(need);
    for (std::size_t i = 0; i < need; ++i) {
      delivered_[i].store(0, std::memory_order_relaxed);
    }
    delivered_capacity_ = need;
  }
  return delivered_.get();
}

value_t* SolveWorkspace::gather_scratch(index_t num_rhs) {
  // Pad each thread's slice to a cache line of doubles, and align the
  // base to a cache line too -- otherwise slice boundaries land mid-line
  // and adjacent threads' hot accumulators still false-share.
  const std::size_t stride =
      (static_cast<std::size_t>(num_rhs) + kLineDoubles - 1) / kLineDoubles *
      kLineDoubles;
  if (stride > gather_stride_) {
    const std::size_t elems =
        stride * static_cast<std::size_t>(threads());
    gather_ = std::make_unique<value_t[]>(elems + kLineDoubles);
    gather_stride_ = stride;
    gather_base_ = align_to_line(gather_.get());
    first_touch(gather_base_, elems);
  }
  // The cache-line-disjointness contract, asserted rather than assumed:
  // every slice boundary is a line boundary, so no two threads'
  // accumulators can ever share a line.
  MSPTRSV_REQUIRE(
      (gather_stride_ * sizeof(value_t)) % kLineBytes == 0 &&
          reinterpret_cast<std::uintptr_t>(gather_base_) % kLineBytes == 0,
      "gather slices must be cache-line disjoint");
  return gather_base_;
}

WorkspacePool::WorkspacePool(int parties_per_workspace,
                             SharedWorkerPool* shared, PoolOptions options)
    : parties_(parties_per_workspace), shared_(shared), options_(options) {
  MSPTRSV_REQUIRE(parties_ >= 1, "workspaces need at least one thread");
}

WorkspacePool::Lease WorkspacePool::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.empty()) {
    all_.push_back(
        std::make_unique<SolveWorkspace>(parties_, shared_, options_));
    idle_.push_back(all_.back().get());
  }
  SolveWorkspace* ws = idle_.back();
  idle_.pop_back();
  return Lease(this, ws);
}

std::size_t WorkspacePool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return all_.size();
}

std::size_t WorkspacePool::owned_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& ws : all_) {
    if (ws->owns_threads()) {
      count += static_cast<std::size_t>(ws->threads() - 1);
    }
  }
  return count;
}

void WorkspacePool::release(SolveWorkspace* ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(ws);
}

}  // namespace msptrsv::core
