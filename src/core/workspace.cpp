#include "core/workspace.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace msptrsv::core {

/// No cap by default: a value above any plausible parties_ behaves as
/// "unlimited" without a branch on a sentinel.
thread_local int ScopedGangCap::cap_ = 1 << 20;

SolveWorkspace::SolveWorkspace(int parties, SharedWorkerPool* shared)
    : parties_(parties), shared_(shared), barrier_(parties) {
  MSPTRSV_REQUIRE(parties >= 1, "workspaces need at least one thread");
  if (shared_ != nullptr) {
    // A gang is the caller plus claimed shared workers: the cap cannot
    // usefully exceed the whole shared pool plus the caller.
    parties_ = std::min(parties_, shared_->threads() + 1);
  }
}

std::atomic<std::uint64_t>* SolveWorkspace::delivered(index_t n) {
  const std::size_t need = static_cast<std::size_t>(n);
  if (need > delivered_capacity_) {
    MSPTRSV_REQUIRE(delivered_capacity_ == 0,
                    "a workspace serves one plan: n cannot grow");
    delivered_ = std::make_unique<std::atomic<std::uint64_t>[]>(need);
    for (std::size_t i = 0; i < need; ++i) {
      delivered_[i].store(0, std::memory_order_relaxed);
    }
    delivered_capacity_ = need;
  }
  return delivered_.get();
}

value_t* SolveWorkspace::gather_scratch(index_t num_rhs) {
  // Pad each thread's slice to a cache line of doubles, and align the
  // base to a cache line too -- otherwise slice boundaries land mid-line
  // and adjacent threads' hot accumulators still false-share.
  constexpr std::size_t kLineDoubles = 8;
  const std::size_t stride =
      (static_cast<std::size_t>(num_rhs) + kLineDoubles - 1) / kLineDoubles *
      kLineDoubles;
  if (stride > gather_stride_) {
    gather_ = std::make_unique<value_t[]>(
        stride * static_cast<std::size_t>(threads()) + kLineDoubles);
    gather_stride_ = stride;
    const std::size_t misalign =
        reinterpret_cast<std::uintptr_t>(gather_.get()) % (kLineDoubles * 8);
    gather_base_ =
        gather_.get() +
        (misalign == 0 ? 0 : (kLineDoubles * 8 - misalign) / sizeof(value_t));
  }
  return gather_base_;
}

WorkspacePool::WorkspacePool(int parties_per_workspace,
                             SharedWorkerPool* shared)
    : parties_(parties_per_workspace), shared_(shared) {
  MSPTRSV_REQUIRE(parties_ >= 1, "workspaces need at least one thread");
}

WorkspacePool::Lease WorkspacePool::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.empty()) {
    all_.push_back(std::make_unique<SolveWorkspace>(parties_, shared_));
    idle_.push_back(all_.back().get());
  }
  SolveWorkspace* ws = idle_.back();
  idle_.pop_back();
  return Lease(this, ws);
}

std::size_t WorkspacePool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return all_.size();
}

std::size_t WorkspacePool::owned_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& ws : all_) {
    if (ws->owns_threads()) {
      count += static_cast<std::size_t>(ws->threads() - 1);
    }
  }
  return count;
}

void WorkspacePool::release(SolveWorkspace* ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(ws);
}

}  // namespace msptrsv::core
