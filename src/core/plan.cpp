#include "core/plan.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "core/comm_nvshmem.hpp"
#include "core/comm_unified.hpp"
#include "core/cpu_parallel.hpp"
#include "core/levelset.hpp"
#include "core/mg_engine.hpp"
#include "core/reference.hpp"
#include "core/workspace.hpp"
#include "sparse/csr.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {

namespace {

using steady_clock = std::chrono::steady_clock;

double seconds_since(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count();
}

/// Structural reversal U(i,j) -> L(n-1-i, n-1-j) without the throwing
/// validation of reverse_upper_to_lower: the plan diagnoses the result
/// through the status channel instead.
sparse::CscMatrix reverse_upper_unchecked(const sparse::CscMatrix& upper) {
  const index_t n = upper.rows;
  sparse::CooMatrix coo;
  coo.rows = coo.cols = n;
  for (index_t j = 0; j < upper.cols; ++j) {
    for (offset_t k = upper.col_ptr[j]; k < upper.col_ptr[j + 1]; ++k) {
      coo.add(n - 1 - upper.row_idx[k], n - 1 - j, upper.val[k]);
    }
  }
  return sparse::csc_from_coo(std::move(coo));
}

bool backend_is_multi_gpu(Backend b) {
  switch (b) {
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy:
      return true;
    default:
      return false;
  }
}

}  // namespace

struct SolverPlan::State {
  /// Owned factor storage. Borrowed plans (analyze_borrowed) leave it
  /// empty and point `lower` at the caller's matrix instead.
  sparse::CscMatrix storage;
  /// The lower-triangular factor solves execute against; always non-null
  /// on a constructed plan.
  const sparse::CscMatrix* lower = nullptr;
  SolveOptions options;
  bool upper = false;
  std::optional<sparse::Partition> partition;
  std::vector<index_t> in_degrees;
  std::optional<sparse::LevelAnalysis> levels;
  /// CSR view of the factor for the host-parallel backends' pull-based
  /// gather (built once at analysis; empty otherwise). Holds VALUES too,
  /// so update_values() refreshes it alongside storage.
  std::optional<sparse::CsrMatrix> row_form;
  sim_time_t analysis_us = 0.0;
  double analysis_seconds = 0.0;
  /// Persistent execution state of the host-parallel backends: leased
  /// workspaces carrying parked worker threads and generation-tagged
  /// scratch. Internally synchronized; null for other backends.
  std::unique_ptr<WorkspacePool> workspaces;
};

SolverPlan::SolverPlan(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

/// The shared symbolic phase: `st` arrives with `options` and `lower` set;
/// everything else is derived here. Returns the same (now fully built)
/// state, or the SolveStatus describing the rejected input.
Expected<std::shared_ptr<SolverPlan::State>> SolverPlan::analyze_state(
    std::shared_ptr<State> st) {
  using Result = Expected<std::shared_ptr<State>>;
  const auto t0 = steady_clock::now();
  const sparse::CscMatrix& lower = *st->lower;
  const SolveOptions& options = st->options;

  if (options.tasks_per_gpu < 1) {
    return Result(SolveStatus::kInvalidOptions,
                  "tasks_per_gpu must be >= 1 (got " +
                      std::to_string(options.tasks_per_gpu) + ")");
  }
  if (options.machine.num_gpus() < 1) {
    return Result(SolveStatus::kInvalidOptions,
                  "machine must have at least one GPU");
  }
  if (backend_is_multi_gpu(options.backend) &&
      options.machine.num_gpus() > 32) {
    return Result(SolveStatus::kInvalidOptions,
                  "multi-GPU engine supports at most 32 GPUs (got " +
                      std::to_string(options.machine.num_gpus()) + ")");
  }
  if (lower.rows != lower.cols) {
    return Result(SolveStatus::kNotTriangular,
                  "triangular solve requires a square matrix (" +
                      std::to_string(lower.rows) + "x" +
                      std::to_string(lower.cols) + ")");
  }
  if (lower.rows == 0) {
    // A 0x0 system is vacuously solvable by every backend: the plan
    // short-circuits (no partition, no analysis state) and run_lower
    // returns the empty solution.
    st->analysis_seconds = seconds_since(t0);
    return Result(std::move(st));
  }
  {
    const sparse::SolvableDiagnosis diag =
        sparse::diagnose_solvable_lower(lower);
    if (!diag.solvable) {
      return Result(diag.singular ? SolveStatus::kSingularDiagonal
                                  : SolveStatus::kNotTriangular,
                    diag.detail);
    }
  }

  // Only the multi-GPU engines consume a partition; host/single-GPU plans
  // compute one on demand in partition()/footprint() instead of paying an
  // O(n) build per plan (and per legacy one-shot solve).
  if (backend_is_multi_gpu(options.backend)) {
    st->partition = partition_for(options, lower.rows);
  }

  // The diagnosis above already established the solvable-lower invariants,
  // so the derived analyses skip their own validation pass.
  switch (options.backend) {
    case Backend::kSerial:
      break;
    case Backend::kCpuLevelSet:
      st->levels = sparse::analyze_levels(lower, /*validate=*/false);
      break;
    case Backend::kCpuSyncFree:
      st->in_degrees = sparse::compute_in_degrees(lower, /*validate=*/false);
      break;
    case Backend::kGpuLevelSet:
      st->levels = sparse::analyze_levels(lower, /*validate=*/false);
      st->analysis_us = levelset_analysis_us(lower, options.machine.cost);
      break;
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy:
      st->in_degrees = sparse::compute_in_degrees(lower, /*validate=*/false);
      st->analysis_us =
          engine_analysis_us(lower, *st->partition, options.machine.cost);
      break;
    default:
      return Result(SolveStatus::kUnknownBackend,
                    "unrecognized backend enumerator");
  }

  // Host-parallel backends solve on plan-owned persistent workspaces
  // (parked threads, reusable scratch) and gather through a row-form view
  // of the factor, both built here once. The pool is lazy: workspaces
  // (and their threads) materialize on first solve, one per concurrent
  // caller.
  if (options.backend == Backend::kCpuLevelSet ||
      options.backend == Backend::kCpuSyncFree) {
    st->row_form = sparse::csr_from_csc(lower);
    st->workspaces = std::make_unique<WorkspacePool>(
        resolve_cpu_threads(options.cpu_threads));
  }

  st->analysis_seconds = seconds_since(t0);
  return Result(std::move(st));
}

Expected<SolverPlan> SolverPlan::analyze(sparse::CscMatrix lower,
                                         SolveOptions options) {
  auto st = std::make_shared<State>();
  st->options = std::move(options);
  st->storage = std::move(lower);
  st->lower = &st->storage;
  Expected<std::shared_ptr<State>> built = analyze_state(std::move(st));
  if (!built.ok()) return Expected<SolverPlan>(built.error());
  return SolverPlan(std::move(built.value()));
}

Expected<SolverPlan> SolverPlan::analyze_borrowed(
    const sparse::CscMatrix& lower, SolveOptions options) {
  auto st = std::make_shared<State>();
  st->options = std::move(options);
  st->lower = &lower;
  Expected<std::shared_ptr<State>> built = analyze_state(std::move(st));
  if (!built.ok()) return Expected<SolverPlan>(built.error());
  return SolverPlan(std::move(built.value()));
}

Expected<SolverPlan> SolverPlan::analyze_upper(sparse::CscMatrix upper,
                                               SolveOptions options) {
  if (!upper.is_square()) {
    return Expected<SolverPlan>(
        SolveStatus::kNotTriangular,
        "triangular solve requires a square matrix (" +
            std::to_string(upper.rows) + "x" + std::to_string(upper.cols) +
            ")");
  }
  try {
    upper.validate();
  } catch (const std::exception& e) {
    return Expected<SolverPlan>(
        SolveStatus::kNotTriangular,
        std::string("malformed CSC structure: ") + e.what());
  }
  if (!sparse::is_upper_triangular(upper)) {
    return Expected<SolverPlan>(SolveStatus::kNotTriangular,
                                "matrix has entries below the diagonal (not "
                                "upper triangular)");
  }
  // Diagnose the diagonal on the caller's matrix so error messages name
  // the caller's column indices, not their mirrored images in the
  // reversed factor (rows are sorted, so the diagonal terminates each
  // column of a solvable upper factor).
  for (index_t j = 0; j < upper.cols; ++j) {
    const offset_t last = upper.col_ptr[j + 1] - 1;
    if (upper.col_ptr[j] > last || upper.row_idx[last] != j) {
      return Expected<SolverPlan>(
          SolveStatus::kSingularDiagonal,
          "column " + std::to_string(j) +
              " is missing its diagonal entry (singular)");
    }
    if (upper.val[last] == 0.0) {
      return Expected<SolverPlan>(SolveStatus::kSingularDiagonal,
                                  "zero diagonal at column " +
                                      std::to_string(j) + " (singular)");
    }
  }

  const auto t0 = steady_clock::now();
  auto st = std::make_shared<State>();
  st->options = std::move(options);
  st->storage = reverse_upper_unchecked(upper);
  st->lower = &st->storage;
  Expected<std::shared_ptr<State>> built = analyze_state(std::move(st));
  if (!built.ok()) return Expected<SolverPlan>(built.error());
  // The reversal is analysis-phase work: fold its wall time into the
  // plan's one-time charge and mark the plan as an upper solve.
  built.value()->upper = true;
  built.value()->analysis_seconds = seconds_since(t0);
  return SolverPlan(std::move(built.value()));
}

SolveResult SolverPlan::run_batch_lower(std::span<const value_t> b,
                                        index_t num_rhs) const {
  const State& st = *state_;
  const sparse::CscMatrix& lower = *st.lower;
  SolveResult out;
  if (lower.rows == 0) {
    // Vacuous system: every backend returns the empty solution for free.
    out.report.solver_name = backend_name(st.options.backend);
    out.report.machine_name =
        is_simulated(st.options.backend) ? st.options.machine.name : "host";
    out.report.num_rhs = num_rhs;
    return out;
  }
  switch (st.options.backend) {
    case Backend::kSerial: {
      const auto t0 = steady_clock::now();
      out.x = solve_lower_serial_fused(lower, b, num_rhs);
      out.wall_seconds = seconds_since(t0);
      out.report.solver_name = backend_name(st.options.backend);
      out.report.machine_name = "host";
      break;
    }
    case Backend::kCpuLevelSet: {
      WorkspacePool::Lease lease = st.workspaces->acquire();
      out.x.resize(static_cast<std::size_t>(lower.rows) *
                   static_cast<std::size_t>(num_rhs));
      const auto t0 = steady_clock::now();
      solve_lower_levelset_fused(*st.row_form, b, num_rhs, *st.levels,
                                 lease.ws(), out.x);
      out.wall_seconds = seconds_since(t0);
      out.report.solver_name = backend_name(st.options.backend);
      out.report.machine_name = "host";
      break;
    }
    case Backend::kCpuSyncFree: {
      WorkspacePool::Lease lease = st.workspaces->acquire();
      out.x.resize(static_cast<std::size_t>(lower.rows) *
                   static_cast<std::size_t>(num_rhs));
      const auto t0 = steady_clock::now();
      solve_lower_syncfree_fused(lower, *st.row_form, b, num_rhs,
                                 st.in_degrees, lease.ws(), out.x);
      out.wall_seconds = seconds_since(t0);
      out.report.solver_name = backend_name(st.options.backend);
      out.report.machine_name = "host";
      break;
    }
    case Backend::kGpuLevelSet: {
      LevelSetResult r = solve_levelset_simulated_batch(
          lower, b, num_rhs, st.options.machine, *st.levels);
      out.x = std::move(r.x);
      out.report = std::move(r.report);
      break;
    }
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy: {
      const bool unified = st.options.backend == Backend::kMgUnified ||
                           st.options.backend == Backend::kMgUnifiedTask;
      auto run_engine = [&](const EngineOptions& eng,
                            std::span<const value_t> rhs) {
        // The policies are stateful per run: fresh interconnect + comm
        // models every pass (also what makes concurrent solves safe).
        sim::Interconnect net(st.options.machine.topology,
                              st.options.machine.cost);
        if (unified) {
          UnifiedComm comm(net, st.options.machine.cost,
                           st.partition->num_gpus(), lower.rows);
          return run_mg_engine(lower, rhs, *st.partition, st.options.machine,
                               net, comm, eng);
        }
        NvshmemComm comm(net, st.options.machine.cost, st.partition->num_gpus(),
                         lower.rows, st.options.nvshmem);
        return run_mg_engine(lower, rhs, *st.partition, st.options.machine,
                             net, comm, eng);
      };
      EngineOptions eng;
      eng.include_analysis = false;  // charged once by the plan
      eng.in_degrees = &st.in_degrees;
      // Numeric pass: the schedule (and so the per-rhs operation order) is
      // the single-solve one -- cost_rhs stays 1 -- which is what makes
      // fused x bit-for-bit equal to looped x.
      eng.num_rhs = num_rhs;
      EngineResult numeric = run_engine(eng, b);
      out.x = std::move(numeric.x);
      if (num_rhs == 1) {
        out.report = std::move(numeric.report);
      } else {
        // Timing pass: ONE event simulation of the whole batch under the
        // fused cost model (per-component work scales with the batch;
        // launches, lock-waits, gathers and update messages amortized).
        EngineOptions timing = eng;
        timing.num_rhs = 1;
        timing.cost_rhs = num_rhs;
        EngineResult timed = run_engine(
            timing, b.first(static_cast<std::size_t>(lower.rows)));
        out.report = std::move(timed.report);
      }
      out.report.solver_name = backend_name(st.options.backend);
      break;
    }
  }
  out.report.num_rhs = num_rhs;
  // A fused batch is one solve: its makespan is both the total and the
  // slowest-single-solve figure.
  out.report.max_solve_us = out.report.solve_us;
  return out;
}

SolveResult SolverPlan::run_one(std::span<const value_t> b) const {
  if (!state_->upper) return run_batch_lower(b, 1);
  // Backward substitution executes on the reversed factor; the O(n) vector
  // transforms stay outside the timed regions (run_batch_lower times only
  // the backend execution).
  const std::vector<value_t> rb = reversed(b);
  SolveResult r = run_batch_lower(rb, 1);
  r.x = reversed(r.x);
  return r;
}

Expected<SolveResult> SolverPlan::solve(std::span<const value_t> b) const {
  if (b.size() != static_cast<std::size_t>(rows())) {
    return Expected<SolveResult>(
        SolveStatus::kShapeMismatch,
        "rhs length " + std::to_string(b.size()) +
            " does not match the matrix dimension " + std::to_string(rows()));
  }
  return run_one(b);
}

Expected<SolveResult> SolverPlan::solve_batch(std::span<const value_t> rhs,
                                              index_t num_rhs) const {
  if (num_rhs < 1) {
    return Expected<SolveResult>(
        SolveStatus::kShapeMismatch,
        "num_rhs must be >= 1 (got " + std::to_string(num_rhs) + ")");
  }
  const std::size_t n = static_cast<std::size_t>(rows());
  const std::size_t expected = n * static_cast<std::size_t>(num_rhs);
  if (rhs.size() != expected) {
    return Expected<SolveResult>(
        SolveStatus::kShapeMismatch,
        "batch of " + std::to_string(num_rhs) + " rhs requires " +
            std::to_string(expected) + " values (column-major), got " +
            std::to_string(rhs.size()));
  }

  if (!state_->options.fuse_batch) {
    // Looped mode (the PR 1 semantics): independent solves, reports
    // accumulate. Kept for apples-to-apples amortization measurements.
    SolveResult out;
    out.x.reserve(expected);
    for (index_t j = 0; j < num_rhs; ++j) {
      SolveResult r = run_one(rhs.subspan(static_cast<std::size_t>(j) * n, n));
      out.x.insert(out.x.end(), r.x.begin(), r.x.end());
      out.wall_seconds += r.wall_seconds;
      if (j == 0) {
        out.report = std::move(r.report);
      } else {
        out.report.accumulate(r.report);
      }
    }
    return out;
  }

  if (!state_->upper) return run_batch_lower(rhs, num_rhs);

  // Upper plans: per-column vector reversal in, solve the reversed-lower
  // batch fused, reverse each solution column back. The O(n*k) transforms
  // stay outside the timed region, like the single-solve path.
  std::vector<value_t> rb(expected);
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::size_t base = static_cast<std::size_t>(j) * n;
    for (std::size_t i = 0; i < n; ++i) {
      rb[base + i] = rhs[base + (n - 1 - i)];
    }
  }
  SolveResult out = run_batch_lower(rb, num_rhs);
  for (index_t j = 0; j < num_rhs; ++j) {
    const auto begin =
        out.x.begin() + static_cast<std::ptrdiff_t>(j) *
                            static_cast<std::ptrdiff_t>(n);
    std::reverse(begin, begin + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

Expected<bool> SolverPlan::update_values(std::span<const value_t> values) {
  State& st = *state_;
  if (st.lower != &st.storage) {
    return Expected<bool>(
        SolveStatus::kInvalidOptions,
        "update_values requires an owning plan; a borrowed plan reads the "
        "caller's matrix -- update its values in place instead (host-parallel "
        "backends snapshot values into the row form at analysis, re-analyze "
        "there)");
  }
  const offset_t nnz = st.storage.nnz();
  if (values.size() != static_cast<std::size_t>(nnz)) {
    return Expected<bool>(
        SolveStatus::kShapeMismatch,
        "value refresh needs one value per stored nonzero (" +
            std::to_string(nnz) + "), got " + std::to_string(values.size()));
  }
  const index_t n = st.storage.rows;
  if (!st.upper) {
    // The diagonal leads each column of the analyzed lower factor; check
    // every new diagonal before mutating anything.
    for (index_t j = 0; j < n; ++j) {
      if (values[static_cast<std::size_t>(st.storage.col_ptr[j])] == 0.0) {
        return Expected<bool>(SolveStatus::kSingularDiagonal,
                              "zero diagonal at column " + std::to_string(j) +
                                  " (singular); plan values unchanged");
      }
    }
    std::copy(values.begin(), values.end(), st.storage.val.begin());
    if (st.row_form) st.row_form = sparse::csr_from_csc(st.storage);
    return true;
  }
  // Upper plan: `values` follows the ORIGINAL upper factor's CSC order,
  // but storage holds the reversed lower form. Column j of the upper maps
  // to lower column n-1-j with its entries in reverse order, so the upper
  // column lengths (and the whole permutation) are recoverable from the
  // stored structure alone.
  offset_t base = 0;
  for (index_t j = 0; j < n; ++j) {
    const index_t rj = n - 1 - j;  // the mirrored lower column
    const offset_t count = st.storage.col_ptr[rj + 1] - st.storage.col_ptr[rj];
    // The diagonal terminates each upper column.
    if (values[static_cast<std::size_t>(base + count - 1)] == 0.0) {
      return Expected<bool>(SolveStatus::kSingularDiagonal,
                            "zero diagonal at column " + std::to_string(j) +
                                " (singular); plan values unchanged");
    }
    base += count;
  }
  base = 0;
  for (index_t j = 0; j < n; ++j) {
    const index_t rj = n - 1 - j;
    const offset_t begin = st.storage.col_ptr[rj];
    const offset_t count = st.storage.col_ptr[rj + 1] - begin;
    for (offset_t t = 0; t < count; ++t) {
      st.storage.val[static_cast<std::size_t>(begin + (count - 1 - t))] =
          values[static_cast<std::size_t>(base + t)];
    }
    base += count;
  }
  if (st.row_form) st.row_form = sparse::csr_from_csc(st.storage);
  return true;
}

index_t SolverPlan::rows() const { return state_->lower->rows; }

bool SolverPlan::is_upper() const { return state_->upper; }

const SolveOptions& SolverPlan::options() const { return state_->options; }

const sparse::CscMatrix& SolverPlan::factor() const { return *state_->lower; }

sparse::Partition SolverPlan::partition() const {
  MSPTRSV_REQUIRE(rows() > 0, "an empty (0x0) plan has no partition");
  if (state_->partition.has_value()) return *state_->partition;
  return partition_for(state_->options, rows());
}

std::span<const index_t> SolverPlan::in_degrees() const {
  return state_->in_degrees;
}

const sparse::LevelAnalysis* SolverPlan::level_analysis() const {
  return state_->levels ? &*state_->levels : nullptr;
}

std::size_t SolverPlan::workspace_count() const {
  return state_->workspaces ? state_->workspaces->size() : 0;
}

sim_time_t SolverPlan::analysis_us() const { return state_->analysis_us; }

double SolverPlan::analysis_seconds() const {
  return state_->analysis_seconds;
}

sparse::FootprintEstimate SolverPlan::footprint() const {
  if (rows() == 0) return {};  // empty plan
  const Backend b = state_->options.backend;
  const sparse::StateLayout layout =
      (b == Backend::kMgShmem || b == Backend::kMgZeroCopy)
          ? sparse::StateLayout::kSymmetricHeap
          : sparse::StateLayout::kUnifiedManaged;
  return sparse::estimate_footprint(*state_->lower, partition(), layout);
}

}  // namespace msptrsv::core
