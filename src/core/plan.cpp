#include "core/plan.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "core/comm_nvshmem.hpp"
#include "core/comm_unified.hpp"
#include "core/cpu_parallel.hpp"
#include "core/levelset.hpp"
#include "core/mg_engine.hpp"
#include "core/plan_snapshot.hpp"
#include "core/reference.hpp"
#include "core/workspace.hpp"
#include "sparse/csr.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/serialize.hpp"
#include "sparse/triangular.hpp"
#include "support/blob.hpp"
#include "support/contracts.hpp"
#include "support/failpoint.hpp"
#include "support/trace.hpp"

namespace msptrsv::core {

namespace {

using steady_clock = std::chrono::steady_clock;

double seconds_since(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count();
}

double us_since(steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(steady_clock::now() - t0)
      .count();
}

/// Structural reversal U(i,j) -> L(n-1-i, n-1-j) without the throwing
/// validation of reverse_upper_to_lower: the plan diagnoses the result
/// through the status channel instead.
sparse::CscMatrix reverse_upper_unchecked(const sparse::CscMatrix& upper) {
  const index_t n = upper.rows;
  sparse::CooMatrix coo;
  coo.rows = coo.cols = n;
  for (index_t j = 0; j < upper.cols; ++j) {
    for (offset_t k = upper.col_ptr[j]; k < upper.col_ptr[j + 1]; ++k) {
      coo.add(n - 1 - upper.row_idx[k], n - 1 - j, upper.val[k]);
    }
  }
  return sparse::csc_from_coo(std::move(coo));
}

/// What a fired token means for the caller: a passed deadline is the
/// time_budget contract (kDeadlineExceeded); a raised flag with no passed
/// deadline is an administrative abandon (service shutdown), which reports
/// kOverloaded like every other shutting-down refusal.
Expected<SolveResult> cancel_error(const CancelToken& cancel) {
  if (cancel.deadline_expired()) {
    return Expected<SolveResult>(
        SolveStatus::kDeadlineExceeded,
        "execution time budget exhausted mid-solve (the partial solution "
        "was discarded; the plan remains usable)");
  }
  return Expected<SolveResult>(
      SolveStatus::kOverloaded,
      "solve abandoned: cancellation requested (service shutting down)");
}

/// Best-effort page-placement hint for the host-parallel gather view: the
/// row form's value/index arrays are the big shared READ-ONLY streams of
/// every solve, and with no hint they home entirely on the node of the
/// thread that built them. MPOL_INTERLEAVE spreads their pages so each
/// socket's memory controllers serve an equal share of the gather
/// traffic. No-op without a policy, on single-node machines, and on
/// non-Linux builds (see support/numa.hpp).
void apply_numa_hints(const SolveOptions& options, PlanSnapshot& snap) {
  if (options.numa_policy == support::NumaPolicy::kNone) return;
  if (!snap.row_form.has_value()) return;
  sparse::CsrMatrix& rf = *snap.row_form;
  support::interleave_pages(rf.val.data(), rf.val.size() * sizeof(value_t));
  support::interleave_pages(rf.col_idx.data(),
                            rf.col_idx.size() * sizeof(index_t));
}

bool backend_is_multi_gpu(Backend b) {
  switch (b) {
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy:
      return true;
    default:
      return false;
  }
}

bool backend_is_host_parallel(Backend b) {
  return b == Backend::kCpuLevelSet || b == Backend::kCpuSyncFree ||
         b == Backend::kCpuTaskGraph;
}

/// The analyze-time schedule autotuner. Inputs are purely structural
/// (level-width histogram, chain-run lengths, nnz/row), so the decision
/// is deterministic for a matrix + thread budget and can be persisted.
/// The rules follow the cost model the coarsener itself uses:
///  * no level ever exceeds the narrow threshold -> there is nothing for
///    a gang to win anywhere; solve serially (gang width 1);
///  * mostly narrow levels with real depth -> the flat schedule pays a
///    gang synchronization per (nearly empty) level; run the coarsened
///    task graph, whose chain fusion collapses those syncs;
///  * otherwise -> wide levels amortize their barrier; flat level sets.
/// Every candidate is bit-for-bit identical, so the tuner can only cost
/// or save time, never change results.
TunedDecision autotune_decision(const sparse::CscMatrix& lower,
                                const sparse::LevelAnalysis& levels,
                                int requested_threads) {
  TunedDecision d;
  d.autotuned = true;
  d.coarsen = sparse::resolve_coarsen_options({}, levels);
  d.features =
      sparse::schedule_features(levels, lower.nnz(), d.coarsen.narrow_width);
  const sparse::ScheduleFeatures& f = d.features;
  const int hw = resolve_cpu_threads(requested_threads);
  if (lower.rows <= 256 ||
      (f.max_level_width <= d.coarsen.narrow_width &&
       f.avg_level_width < 2.0)) {
    // Tiny system, or a pure chain with no exploitable width anywhere:
    // every parallel schedule only adds claim/barrier overhead.
    d.backend = Backend::kSerial;
    d.gang_width = 1;
  } else if (f.narrow_level_fraction >= 0.5 && f.num_levels >= 64) {
    d.backend = Backend::kCpuTaskGraph;
    // Ready tasks at any instant are bounded by the widest level's block
    // count (chains serialize); one spare party overlaps claim latency.
    const double blocks = static_cast<double>(f.max_level_width) /
                          static_cast<double>(d.coarsen.block_rows);
    d.gang_width = std::clamp(static_cast<int>(blocks) + 2, 2, hw);
  } else {
    d.backend = Backend::kCpuLevelSet;
    // A gang wider than the average level leaves parties idle at every
    // barrier; clamp to the structural parallelism.
    d.gang_width =
        std::clamp(static_cast<int>(f.avg_level_width + 0.5), 2, hw);
  }
  d.schedule = d.backend == Backend::kCpuTaskGraph ? 1 : 0;
  return d;
}

}  // namespace

struct SolverPlan::State {
  /// Owned factor storage. Borrowed plans (analyze_borrowed /
  /// load_borrowed) leave it empty and point `lower` at the caller's
  /// matrix instead.
  sparse::CscMatrix storage;
  /// The lower-triangular factor solves execute against; always non-null
  /// on a constructed plan.
  const sparse::CscMatrix* lower = nullptr;
  SolveOptions options;
  /// The whole symbolic result in its explicit, serializable form:
  /// orientation flag, partition, in-degrees, level analysis, row-form
  /// gather view, and the one-time simulated analysis charge. save()/
  /// load() round-trip exactly this plus the factor.
  PlanSnapshot snapshot;
  double analysis_seconds = 0.0;
  /// Wall seconds spent restoring the plan from a blob (load paths only).
  double load_seconds = 0.0;
  /// Persistent execution state of the host-parallel backends: leased
  /// workspaces carrying parked worker threads and generation-tagged
  /// scratch. Internally synchronized; null for other backends.
  std::unique_ptr<WorkspacePool> workspaces;
};

SolverPlan::SolverPlan(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

/// The shared symbolic phase: `st` arrives with `options` and `lower` set;
/// everything else is derived here. Returns the same (now fully built)
/// state, or the SolveStatus describing the rejected input.
Expected<std::shared_ptr<SolverPlan::State>> SolverPlan::analyze_state(
    std::shared_ptr<State> st) {
  using Result = Expected<std::shared_ptr<State>>;
  const auto t0 = steady_clock::now();
  const sparse::CscMatrix& lower = *st->lower;
  const SolveOptions& options = st->options;

  if (options.tasks_per_gpu < 1) {
    return Result(SolveStatus::kInvalidOptions,
                  "tasks_per_gpu must be >= 1 (got " +
                      std::to_string(options.tasks_per_gpu) + ")");
  }
  if (options.machine.num_gpus() < 1) {
    return Result(SolveStatus::kInvalidOptions,
                  "machine must have at least one GPU");
  }
  if (backend_is_multi_gpu(options.backend) &&
      options.machine.num_gpus() > 32) {
    return Result(SolveStatus::kInvalidOptions,
                  "multi-GPU engine supports at most 32 GPUs (got " +
                      std::to_string(options.machine.num_gpus()) + ")");
  }
  if (lower.rows != lower.cols) {
    return Result(SolveStatus::kNotTriangular,
                  "triangular solve requires a square matrix (" +
                      std::to_string(lower.rows) + "x" +
                      std::to_string(lower.cols) + ")");
  }
  // Identity of the symbolic result (checked again at snapshot-load time).
  st->snapshot.backend = options.backend;
  st->snapshot.tasks_per_gpu = options.tasks_per_gpu;
  st->snapshot.num_gpus = options.machine.num_gpus();
  // The RHS layout is resolved (never kAuto past this point) and recorded
  // as part of the symbolic result: a saved plan replays the same layout.
  st->snapshot.rhs_layout =
      resolve_rhs_layout(options.rhs_layout, options.backend);

  if (lower.rows == 0) {
    // A 0x0 system is vacuously solvable by every backend: the plan
    // short-circuits (no partition, no analysis state) and run_lower
    // returns the empty solution.
    st->analysis_seconds = seconds_since(t0);
    return Result(std::move(st));
  }
  {
    const sparse::SolvableDiagnosis diag =
        sparse::diagnose_solvable_lower(lower);
    if (!diag.solvable) {
      return Result(diag.singular ? SolveStatus::kSingularDiagonal
                                  : SolveStatus::kNotTriangular,
                    diag.detail);
    }
  }

  // Analyze-time autotune: replace the (placeholder) host backend with the
  // structurally chosen one before any backend-keyed state is built. Only
  // host schedules participate -- an explicit simulated/multi-GPU request
  // is a statement about WHICH engine to model, not a tuning question.
  if (options.autotune && (options.backend == Backend::kSerial ||
                           backend_is_host_parallel(options.backend))) {
    sparse::LevelAnalysis levels =
        sparse::analyze_levels(lower, /*validate=*/false);
    TunedDecision tuned =
        autotune_decision(lower, levels, options.cpu_threads);
    st->options.backend = tuned.backend;
    st->options.cpu_threads = tuned.gang_width;
    st->snapshot.tuned = tuned;
    // Re-stamp the identity the tuner just changed: the snapshot must
    // describe the CHOSEN configuration, layout resolution included.
    st->snapshot.backend = tuned.backend;
    st->snapshot.rhs_layout =
        resolve_rhs_layout(options.rhs_layout, tuned.backend);
    // Hand the analysis forward instead of recomputing it in the switch.
    if (tuned.backend == Backend::kCpuLevelSet ||
        tuned.backend == Backend::kCpuTaskGraph) {
      st->snapshot.levels = std::move(levels);
    }
  }

  // Only the multi-GPU engines consume a partition; host/single-GPU plans
  // compute one on demand in partition()/footprint() instead of paying an
  // O(n) build per plan (and per legacy one-shot solve).
  if (backend_is_multi_gpu(options.backend)) {
    st->snapshot.partition = partition_for(options, lower.rows);
  }

  // The diagnosis above already established the solvable-lower invariants,
  // so the derived analyses skip their own validation pass.
  switch (options.backend) {
    case Backend::kSerial:
      break;
    case Backend::kCpuLevelSet:
    case Backend::kCpuTaskGraph:
      // The autotune path above may have handed its analysis forward.
      if (!st->snapshot.levels.has_value()) {
        st->snapshot.levels = sparse::analyze_levels(lower, /*validate=*/false);
      }
      break;
    case Backend::kCpuSyncFree:
      st->snapshot.in_degrees = sparse::compute_in_degrees(lower, /*validate=*/false);
      break;
    case Backend::kGpuLevelSet:
      st->snapshot.levels = sparse::analyze_levels(lower, /*validate=*/false);
      st->snapshot.analysis_us = levelset_analysis_us(lower, options.machine.cost);
      break;
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy:
      st->snapshot.in_degrees = sparse::compute_in_degrees(lower, /*validate=*/false);
      st->snapshot.analysis_us =
          engine_analysis_us(lower, *st->snapshot.partition, options.machine.cost);
      break;
    default:
      return Result(SolveStatus::kUnknownBackend,
                    "unrecognized backend enumerator");
  }

  // Host-parallel backends solve on plan-owned persistent workspaces
  // (parked threads, reusable scratch) and gather through a row-form view
  // of the factor, both built here once. The pool is lazy: workspaces
  // (and their threads) materialize on first solve, one per concurrent
  // caller.
  if (backend_is_host_parallel(options.backend)) {
    st->snapshot.row_form = sparse::csr_from_csc(lower);
    apply_numa_hints(options, st->snapshot);
    if (options.backend == Backend::kCpuTaskGraph) {
      // Every cpu-taskgraph plan carries a tuned record, autotuned or not:
      // the coarsening thresholds in it are what the load path rebuilds
      // the graph from (the sync-cost measurement behind the defaults is
      // per-process and must not be re-derived on another machine).
      if (!st->snapshot.tuned.has_value()) {
        TunedDecision tuned;
        tuned.backend = Backend::kCpuTaskGraph;
        tuned.schedule = 1;
        tuned.gang_width = options.cpu_threads;
        tuned.coarsen =
            sparse::resolve_coarsen_options({}, *st->snapshot.levels);
        tuned.features = sparse::schedule_features(
            *st->snapshot.levels, lower.nnz(), tuned.coarsen.narrow_width);
        st->snapshot.tuned = tuned;
      }
      st->snapshot.tasks = sparse::coarsen_levels(
          lower, *st->snapshot.levels, st->snapshot.tuned->coarsen);
    }
    PoolOptions pool_opts;
    pool_opts.numa_policy = options.numa_policy;
    st->workspaces = std::make_unique<WorkspacePool>(
        resolve_cpu_threads(options.cpu_threads),
        options.use_shared_pool ? &SharedWorkerPool::instance() : nullptr,
        pool_opts);
  }

  st->analysis_seconds = seconds_since(t0);
  return Result(std::move(st));
}

Expected<SolverPlan> SolverPlan::analyze(sparse::CscMatrix lower,
                                         SolveOptions options) {
  auto st = std::make_shared<State>();
  st->options = std::move(options);
  st->storage = std::move(lower);
  st->lower = &st->storage;
  Expected<std::shared_ptr<State>> built = analyze_state(std::move(st));
  if (!built.ok()) return Expected<SolverPlan>(built.error());
  return SolverPlan(std::move(built.value()));
}

Expected<SolverPlan> SolverPlan::analyze_borrowed(
    const sparse::CscMatrix& lower, SolveOptions options) {
  auto st = std::make_shared<State>();
  st->options = std::move(options);
  st->lower = &lower;
  Expected<std::shared_ptr<State>> built = analyze_state(std::move(st));
  if (!built.ok()) return Expected<SolverPlan>(built.error());
  return SolverPlan(std::move(built.value()));
}

Expected<SolverPlan> SolverPlan::analyze_upper(sparse::CscMatrix upper,
                                               SolveOptions options) {
  if (!upper.is_square()) {
    return Expected<SolverPlan>(
        SolveStatus::kNotTriangular,
        "triangular solve requires a square matrix (" +
            std::to_string(upper.rows) + "x" + std::to_string(upper.cols) +
            ")");
  }
  try {
    upper.validate();
  } catch (const std::exception& e) {
    return Expected<SolverPlan>(
        SolveStatus::kNotTriangular,
        std::string("malformed CSC structure: ") + e.what());
  }
  if (!sparse::is_upper_triangular(upper)) {
    return Expected<SolverPlan>(SolveStatus::kNotTriangular,
                                "matrix has entries below the diagonal (not "
                                "upper triangular)");
  }
  // Diagnose the diagonal on the caller's matrix so error messages name
  // the caller's column indices, not their mirrored images in the
  // reversed factor (rows are sorted, so the diagonal terminates each
  // column of a solvable upper factor).
  for (index_t j = 0; j < upper.cols; ++j) {
    const offset_t last = upper.col_ptr[j + 1] - 1;
    if (upper.col_ptr[j] > last || upper.row_idx[last] != j) {
      return Expected<SolverPlan>(
          SolveStatus::kSingularDiagonal,
          "column " + std::to_string(j) +
              " is missing its diagonal entry (singular)");
    }
    if (upper.val[last] == 0.0) {
      return Expected<SolverPlan>(SolveStatus::kSingularDiagonal,
                                  "zero diagonal at column " +
                                      std::to_string(j) + " (singular)");
    }
  }

  const auto t0 = steady_clock::now();
  auto st = std::make_shared<State>();
  st->options = std::move(options);
  st->storage = reverse_upper_unchecked(upper);
  st->lower = &st->storage;
  Expected<std::shared_ptr<State>> built = analyze_state(std::move(st));
  if (!built.ok()) return Expected<SolverPlan>(built.error());
  // The reversal is analysis-phase work: fold its wall time into the
  // plan's one-time charge and mark the plan as an upper solve.
  built.value()->snapshot.upper = true;
  built.value()->analysis_seconds = seconds_since(t0);
  return SolverPlan(std::move(built.value()));
}

Expected<SolveResult> SolverPlan::run_batch_lower(
    std::span<const value_t> b, index_t num_rhs,
    const CancelToken* cancel) const {
  const State& st = *state_;
  const sparse::CscMatrix& lower = *st.lower;
  // Chaos seam: `delay` stretches a solve (the "hung shard" script);
  // `error(N)` injects the SolveStatus with that code, generalizing the
  // old server-side inject_status knob down to the core.
  if (const auto fp = MSPTRSV_FAILPOINT("core.solve");
      fp.kind == support::FailpointHit::Kind::kError) {
    const auto status = static_cast<SolveStatus>(fp.arg);
    return Expected<SolveResult>(status, "injected by failpoint core.solve");
  }
  // Entry check covers every backend (the simulated ones never look
  // again: their "execution" is an event simulation, not wall time).
  if (cancel != nullptr && cancel->cancelled()) return cancel_error(*cancel);
  // Phase attribution: the deep layers (gang claim, packs, kernels) run on
  // THIS thread and deposit their durations into its scratch; the service
  // reads the totals after solve_batch returns. Reset per batch so stale
  // figures from an earlier solve on this thread never leak in.
  support::trace::PhaseScratch& scratch = support::trace::phase_scratch();
  scratch.reset();
  MSPTRSV_TRACE_SPAN("core.solve_batch", "num_rhs", num_rhs);
  SolveResult out;
  if (lower.rows == 0) {
    // Vacuous system: every backend returns the empty solution for free.
    out.report.solver_name = backend_name(st.options.backend);
    out.report.machine_name =
        is_simulated(st.options.backend) ? st.options.machine.name : "host";
    out.report.num_rhs = num_rhs;
    out.completed_ns = support::trace::trace_now_ns();
    return out;
  }
  // The interleaved layout engages only for a real batch: at num_rhs == 1
  // the two layouts are the same bytes and the transposes would be pure
  // overhead. The public API stays column-major either way -- the panel
  // transposes below are the workspace-boundary cost the layout pays, so
  // they sit INSIDE the timed region (wall_seconds reports what a caller
  // actually waits).
  const bool interleave =
      st.snapshot.rhs_layout == RhsLayout::kInterleaved && num_rhs > 1;
  const std::size_t total =
      static_cast<std::size_t>(lower.rows) * static_cast<std::size_t>(num_rhs);
  switch (st.options.backend) {
    case Backend::kSerial: {
      const auto t0 = steady_clock::now();
      out.x.resize(total);
      if (interleave) {
        // The serial backend has no workspace; per-batch vectors stand in
        // for the panels (steady-state serial batches are rare enough
        // that an owned panel cache is not worth a workspace pool).
        std::vector<value_t> panel_b(total);
        std::vector<value_t> panel_x(total);
        pack_interleaved(b, lower.rows, num_rhs, panel_b.data());
        scratch.pack_us += us_since(t0);
        const auto tk = steady_clock::now();
        if (!solve_lower_serial_fused_interleaved(lower, panel_b.data(),
                                                  num_rhs, cancel,
                                                  panel_x.data())) {
          return cancel_error(*cancel);
        }
        scratch.kernel_us += us_since(tk);
        const auto tu = steady_clock::now();
        unpack_interleaved(panel_x.data(), lower.rows, num_rhs, out.x);
        scratch.unpack_us += us_since(tu);
      } else if (!solve_lower_serial_fused(lower, b, num_rhs, cancel,
                                           out.x)) {
        return cancel_error(*cancel);
      } else {
        scratch.kernel_us += us_since(t0);
      }
      out.wall_seconds = seconds_since(t0);
      out.report.solver_name = backend_name(st.options.backend);
      out.report.machine_name = "host";
      break;
    }
    case Backend::kCpuLevelSet: {
      WorkspacePool::Lease lease = st.workspaces->acquire();
      out.x.resize(total);
      const auto t0 = steady_clock::now();
      bool done;
      if (interleave) {
        value_t* pb = lease.ws().panel_b(total);
        value_t* px = lease.ws().panel_x(total);
        pack_interleaved(b, lower.rows, num_rhs, pb);
        scratch.pack_us += us_since(t0);
        const auto tk = steady_clock::now();
        done = solve_lower_levelset_fused_interleaved(
            *st.snapshot.row_form, pb, num_rhs, *st.snapshot.levels,
            lease.ws(), px, cancel);
        scratch.kernel_us += us_since(tk);
        if (done) {
          const auto tu = steady_clock::now();
          unpack_interleaved(px, lower.rows, num_rhs, out.x);
          scratch.unpack_us += us_since(tu);
        }
      } else {
        done = solve_lower_levelset_fused(*st.snapshot.row_form, b, num_rhs,
                                          *st.snapshot.levels, lease.ws(),
                                          out.x, cancel);
        scratch.kernel_us += us_since(t0);
      }
      if (!done) return cancel_error(*cancel);
      out.wall_seconds = seconds_since(t0);
      out.report.solver_name = backend_name(st.options.backend);
      out.report.machine_name = "host";
      break;
    }
    case Backend::kCpuSyncFree: {
      WorkspacePool::Lease lease = st.workspaces->acquire();
      out.x.resize(total);
      const auto t0 = steady_clock::now();
      bool done;
      if (interleave) {
        value_t* pb = lease.ws().panel_b(total);
        value_t* px = lease.ws().panel_x(total);
        pack_interleaved(b, lower.rows, num_rhs, pb);
        scratch.pack_us += us_since(t0);
        const auto tk = steady_clock::now();
        done = solve_lower_syncfree_fused_interleaved(
            lower, *st.snapshot.row_form, pb, num_rhs, st.snapshot.in_degrees,
            lease.ws(), px, cancel);
        scratch.kernel_us += us_since(tk);
        if (done) {
          const auto tu = steady_clock::now();
          unpack_interleaved(px, lower.rows, num_rhs, out.x);
          scratch.unpack_us += us_since(tu);
        }
      } else {
        done = solve_lower_syncfree_fused(lower, *st.snapshot.row_form, b,
                                          num_rhs, st.snapshot.in_degrees,
                                          lease.ws(), out.x, cancel);
        scratch.kernel_us += us_since(t0);
      }
      if (!done) return cancel_error(*cancel);
      out.wall_seconds = seconds_since(t0);
      out.report.solver_name = backend_name(st.options.backend);
      out.report.machine_name = "host";
      break;
    }
    case Backend::kCpuTaskGraph: {
      WorkspacePool::Lease lease = st.workspaces->acquire();
      out.x.resize(total);
      const auto t0 = steady_clock::now();
      bool done;
      if (interleave) {
        value_t* pb = lease.ws().panel_b(total);
        value_t* px = lease.ws().panel_x(total);
        pack_interleaved(b, lower.rows, num_rhs, pb);
        scratch.pack_us += us_since(t0);
        const auto tk = steady_clock::now();
        done = solve_lower_taskgraph_fused_interleaved(
            *st.snapshot.tasks, *st.snapshot.row_form, pb, num_rhs,
            lease.ws(), px, cancel);
        scratch.kernel_us += us_since(tk);
        if (done) {
          const auto tu = steady_clock::now();
          unpack_interleaved(px, lower.rows, num_rhs, out.x);
          scratch.unpack_us += us_since(tu);
        }
      } else {
        done = solve_lower_taskgraph_fused(*st.snapshot.tasks,
                                           *st.snapshot.row_form, b, num_rhs,
                                           lease.ws(), out.x, cancel);
        scratch.kernel_us += us_since(t0);
      }
      if (!done) return cancel_error(*cancel);
      out.wall_seconds = seconds_since(t0);
      out.report.solver_name = backend_name(st.options.backend);
      out.report.machine_name = "host";
      break;
    }
    case Backend::kGpuLevelSet: {
      LevelSetResult r = solve_levelset_simulated_batch(
          lower, b, num_rhs, st.options.machine, *st.snapshot.levels);
      out.x = std::move(r.x);
      out.report = std::move(r.report);
      break;
    }
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy: {
      const bool unified = st.options.backend == Backend::kMgUnified ||
                           st.options.backend == Backend::kMgUnifiedTask;
      auto run_engine = [&](const EngineOptions& eng,
                            std::span<const value_t> rhs) {
        // The policies are stateful per run: fresh interconnect + comm
        // models every pass (also what makes concurrent solves safe).
        sim::Interconnect net(st.options.machine.topology,
                              st.options.machine.cost);
        // The comm policy carries the fused-batch width so every
        // value-carrying payload (managed left_sum pages, one-sided
        // left_sum gathers/puts) is priced k values wide while message
        // counts stay per-edge.
        if (unified) {
          UnifiedComm comm(net, st.options.machine.cost,
                           st.snapshot.partition->num_gpus(), lower.rows,
                           eng.cost_rhs);
          return run_mg_engine(lower, rhs, *st.snapshot.partition, st.options.machine,
                               net, comm, eng);
        }
        NvshmemComm comm(net, st.options.machine.cost, st.snapshot.partition->num_gpus(),
                         lower.rows, st.options.nvshmem, eng.cost_rhs);
        return run_mg_engine(lower, rhs, *st.snapshot.partition, st.options.machine,
                             net, comm, eng);
      };
      EngineOptions eng;
      eng.include_analysis = false;  // charged once by the plan
      eng.in_degrees = &st.snapshot.in_degrees;
      // Numeric pass: the schedule (and so the per-rhs operation order) is
      // the single-solve one -- cost_rhs stays 1 -- which is what makes
      // fused x bit-for-bit equal to looped x.
      eng.num_rhs = num_rhs;
      EngineResult numeric = run_engine(eng, b);
      out.x = std::move(numeric.x);
      if (num_rhs == 1) {
        out.report = std::move(numeric.report);
      } else {
        // Timing pass: ONE event simulation of the whole batch under the
        // fused cost model (per-component work scales with the batch;
        // launches, lock-waits, gathers and update messages amortized).
        EngineOptions timing = eng;
        timing.num_rhs = 1;
        timing.cost_rhs = num_rhs;
        EngineResult timed = run_engine(
            timing, b.first(static_cast<std::size_t>(lower.rows)));
        out.report = std::move(timed.report);
      }
      out.report.solver_name = backend_name(st.options.backend);
      break;
    }
  }
  out.report.num_rhs = num_rhs;
  // A fused batch is one solve: its makespan is both the total and the
  // slowest-single-solve figure.
  out.report.max_solve_us = out.report.solve_us;
  // The gang claim ran INSIDE the timed kernel region (workspace
  // run_parallel claims before the sweep); report it separately and
  // subtract it so the phases partition the observable latency.
  out.phases.claim_us = scratch.claim_us;
  out.phases.pack_us = scratch.pack_us;
  out.phases.kernel_us = std::max(0.0, scratch.kernel_us - scratch.claim_us);
  out.phases.unpack_us = scratch.unpack_us;
  out.completed_ns = support::trace::trace_now_ns();
  return out;
}

Expected<SolveResult> SolverPlan::run_one(std::span<const value_t> b,
                                          const CancelToken* cancel) const {
  if (!state_->snapshot.upper) return run_batch_lower(b, 1, cancel);
  // Backward substitution executes on the reversed factor; the O(n) vector
  // transforms stay outside the timed regions (run_batch_lower times only
  // the backend execution).
  const std::vector<value_t> rb = reversed(b);
  Expected<SolveResult> r = run_batch_lower(rb, 1, cancel);
  if (!r.ok()) return r;
  r.value().x = reversed(r.value().x);
  return r;
}

CancelToken SolverPlan::effective_token(const CancelToken& cancel) const {
  if (state_->options.time_budget > 0.0) {
    return cancel.capped(state_->options.time_budget);
  }
  return cancel;
}

Expected<SolveResult> SolverPlan::solve(std::span<const value_t> b) const {
  return solve(b, CancelToken());
}

Expected<SolveResult> SolverPlan::solve(std::span<const value_t> b,
                                        const CancelToken& cancel) const {
  if (b.size() != static_cast<std::size_t>(rows())) {
    return Expected<SolveResult>(
        SolveStatus::kShapeMismatch,
        "rhs length " + std::to_string(b.size()) +
            " does not match the matrix dimension " + std::to_string(rows()));
  }
  const CancelToken tok = effective_token(cancel);
  return run_one(b, tok.active() ? &tok : nullptr);
}

Expected<SolveResult> SolverPlan::solve_batch(std::span<const value_t> rhs,
                                              index_t num_rhs) const {
  return solve_batch(rhs, num_rhs, CancelToken());
}

Expected<SolveResult> SolverPlan::solve_batch(std::span<const value_t> rhs,
                                              index_t num_rhs,
                                              const CancelToken& cancel) const {
  if (num_rhs < 1) {
    return Expected<SolveResult>(
        SolveStatus::kShapeMismatch,
        "num_rhs must be >= 1 (got " + std::to_string(num_rhs) + ")");
  }
  const std::size_t n = static_cast<std::size_t>(rows());
  const std::size_t expected = n * static_cast<std::size_t>(num_rhs);
  if (rhs.size() != expected) {
    return Expected<SolveResult>(
        SolveStatus::kShapeMismatch,
        "batch of " + std::to_string(num_rhs) + " rhs requires " +
            std::to_string(expected) + " values (column-major), got " +
            std::to_string(rhs.size()));
  }

  const CancelToken tok = effective_token(cancel);
  const CancelToken* cancel_ptr = tok.active() ? &tok : nullptr;

  if (!state_->options.fuse_batch) {
    // Looped mode (the PR 1 semantics): independent solves, reports
    // accumulate. The budget covers the WHOLE batch (the token is shared
    // across the loop), so a slow batch aborts partway with nothing kept.
    SolveResult out;
    out.x.reserve(expected);
    for (index_t j = 0; j < num_rhs; ++j) {
      Expected<SolveResult> r =
          run_one(rhs.subspan(static_cast<std::size_t>(j) * n, n), cancel_ptr);
      if (!r.ok()) return r;
      out.x.insert(out.x.end(), r.value().x.begin(), r.value().x.end());
      out.wall_seconds += r.value().wall_seconds;
      out.phases.claim_us += r.value().phases.claim_us;
      out.phases.pack_us += r.value().phases.pack_us;
      out.phases.kernel_us += r.value().phases.kernel_us;
      out.phases.unpack_us += r.value().phases.unpack_us;
      out.completed_ns = r.value().completed_ns;
      if (j == 0) {
        out.report = std::move(r.value().report);
      } else {
        out.report.accumulate(r.value().report);
      }
    }
    return out;
  }

  if (!state_->snapshot.upper) return run_batch_lower(rhs, num_rhs, cancel_ptr);

  // Upper plans: per-column vector reversal in, solve the reversed-lower
  // batch fused, reverse each solution column back. The O(n*k) transforms
  // stay outside the timed region, like the single-solve path.
  std::vector<value_t> rb(expected);
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::size_t base = static_cast<std::size_t>(j) * n;
    for (std::size_t i = 0; i < n; ++i) {
      rb[base + i] = rhs[base + (n - 1 - i)];
    }
  }
  Expected<SolveResult> solved = run_batch_lower(rb, num_rhs, cancel_ptr);
  if (!solved.ok()) return solved;
  SolveResult out = std::move(solved.value());
  for (index_t j = 0; j < num_rhs; ++j) {
    const auto begin =
        out.x.begin() + static_cast<std::ptrdiff_t>(j) *
                            static_cast<std::ptrdiff_t>(n);
    std::reverse(begin, begin + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

Expected<bool> SolverPlan::update_values(std::span<const value_t> values) {
  State& st = *state_;
  if (st.lower != &st.storage) {
    return Expected<bool>(
        SolveStatus::kInvalidOptions,
        "update_values requires an owning plan; a borrowed plan reads the "
        "caller's matrix -- update its values in place instead (host-parallel "
        "backends snapshot values into the row form at analysis, re-analyze "
        "there)");
  }
  const offset_t nnz = st.storage.nnz();
  if (values.size() != static_cast<std::size_t>(nnz)) {
    return Expected<bool>(
        SolveStatus::kShapeMismatch,
        "value refresh needs one value per stored nonzero (" +
            std::to_string(nnz) + "), got " + std::to_string(values.size()));
  }
  const index_t n = st.storage.rows;
  if (!st.snapshot.upper) {
    // The diagonal leads each column of the analyzed lower factor; check
    // every new diagonal before mutating anything.
    for (index_t j = 0; j < n; ++j) {
      if (values[static_cast<std::size_t>(st.storage.col_ptr[j])] == 0.0) {
        return Expected<bool>(SolveStatus::kSingularDiagonal,
                              "zero diagonal at column " + std::to_string(j) +
                                  " (singular); plan values unchanged");
      }
    }
    std::copy(values.begin(), values.end(), st.storage.val.begin());
    if (st.snapshot.row_form) st.snapshot.row_form = sparse::csr_from_csc(st.storage);
    return true;
  }
  // Upper plan: `values` follows the ORIGINAL upper factor's CSC order,
  // but storage holds the reversed lower form. Column j of the upper maps
  // to lower column n-1-j with its entries in reverse order, so the upper
  // column lengths (and the whole permutation) are recoverable from the
  // stored structure alone.
  offset_t base = 0;
  for (index_t j = 0; j < n; ++j) {
    const index_t rj = n - 1 - j;  // the mirrored lower column
    const offset_t count = st.storage.col_ptr[rj + 1] - st.storage.col_ptr[rj];
    // The diagonal terminates each upper column.
    if (values[static_cast<std::size_t>(base + count - 1)] == 0.0) {
      return Expected<bool>(SolveStatus::kSingularDiagonal,
                            "zero diagonal at column " + std::to_string(j) +
                                " (singular); plan values unchanged");
    }
    base += count;
  }
  base = 0;
  for (index_t j = 0; j < n; ++j) {
    const index_t rj = n - 1 - j;
    const offset_t begin = st.storage.col_ptr[rj];
    const offset_t count = st.storage.col_ptr[rj + 1] - begin;
    for (offset_t t = 0; t < count; ++t) {
      st.storage.val[static_cast<std::size_t>(begin + (count - 1 - t))] =
          values[static_cast<std::size_t>(base + t)];
    }
    base += count;
  }
  if (st.snapshot.row_form) st.snapshot.row_form = sparse::csr_from_csc(st.storage);
  return true;
}

Expected<bool> SolverPlan::update_values(const sparse::CscMatrix& m) {
  const State& st = *state_;
  if (st.lower != &st.storage) {
    // The span overload would reject borrowed plans anyway; do it before
    // the O(nnz) pattern comparison, with the same diagnostic.
    return update_values(m.val);
  }
  const sparse::CscMatrix& cur = *st.lower;
  const index_t n = cur.rows;
  if (m.rows != n || m.cols != cur.cols) {
    return Expected<bool>(
        SolveStatus::kShapeMismatch,
        "value refresh matrix is " + std::to_string(m.rows) + "x" +
            std::to_string(m.cols) + ", plan factor is " + std::to_string(n) +
            "x" + std::to_string(cur.cols));
  }
  if (m.nnz() != cur.nnz()) {
    return Expected<bool>(
        SolveStatus::kShapeMismatch,
        "value refresh matrix has " + std::to_string(m.nnz()) +
            " nonzeros, plan factor has " + std::to_string(cur.nnz()));
  }
  if (!st.snapshot.upper) {
    // Exact pattern equality against the analyzed lower factor.
    if (m.col_ptr != cur.col_ptr || m.row_idx != cur.row_idx) {
      for (index_t j = 0; j < n; ++j) {
        if (m.col_ptr[j + 1] != cur.col_ptr[j + 1] ||
            !std::equal(m.row_idx.begin() + m.col_ptr[j],
                        m.row_idx.begin() + m.col_ptr[j + 1],
                        cur.row_idx.begin() + cur.col_ptr[j])) {
          return Expected<bool>(
              SolveStatus::kShapeMismatch,
              "sparsity pattern differs from the analyzed factor at column " +
                  std::to_string(j) + "; re-analyze instead of update_values");
        }
      }
    }
    return update_values(m.val);
  }
  // Upper plan: `m` is the caller's upper factor; the cached pattern is the
  // reversed lower form. Column j of the upper mirrors lower column n-1-j
  // with its entries in reverse order.
  for (index_t j = 0; j < n; ++j) {
    const index_t rj = n - 1 - j;
    const offset_t begin = cur.col_ptr[rj];
    const offset_t count = cur.col_ptr[rj + 1] - begin;
    if (m.col_ptr[j + 1] - m.col_ptr[j] != count) {
      return Expected<bool>(
          SolveStatus::kShapeMismatch,
          "sparsity pattern differs from the analyzed factor at column " +
              std::to_string(j) + "; re-analyze instead of update_values");
    }
    for (offset_t t = 0; t < count; ++t) {
      if (m.row_idx[static_cast<std::size_t>(m.col_ptr[j] + t)] !=
          n - 1 - cur.row_idx[static_cast<std::size_t>(begin + (count - 1 - t))]) {
        return Expected<bool>(
            SolveStatus::kShapeMismatch,
            "sparsity pattern differs from the analyzed factor at column " +
                std::to_string(j) + "; re-analyze instead of update_values");
      }
    }
  }
  return update_values(m.val);
}

// ---- persistence -----------------------------------------------------------

Expected<std::vector<std::uint8_t>> SolverPlan::serialize() const {
  return serialize_snapshot(state_->snapshot, *state_->lower);
}

Expected<std::vector<std::uint8_t>> SolverPlan::serialize(
    SnapshotWriteOptions write_options) const {
  return serialize_snapshot(state_->snapshot, *state_->lower, write_options);
}

Expected<bool> SolverPlan::save(const std::string& path) const {
  const std::vector<std::uint8_t> blob =
      serialize_snapshot(state_->snapshot, *state_->lower);
  if (!support::write_file(path, blob)) {
    return Expected<bool>(SolveStatus::kBadSnapshot,
                          "cannot write plan blob to '" + path + "'");
  }
  return true;
}

Expected<SolverPlan> SolverPlan::deserialize(
    std::span<const std::uint8_t> bytes, SolveOptions options) {
  const auto t0 = steady_clock::now();
  SnapshotBlob parsed;
  const std::string err = deserialize_snapshot(bytes, parsed);
  if (!err.empty()) return Expected<SolverPlan>(SolveStatus::kBadSnapshot, err);
  return restore(std::move(parsed), std::move(options), nullptr, t0);
}

Expected<SolverPlan> SolverPlan::load(const std::string& path,
                                      SolveOptions options) {
  const auto t0 = steady_clock::now();
  std::vector<std::uint8_t> bytes;
  if (!support::read_file(path, bytes)) {
    return Expected<SolverPlan>(SolveStatus::kBadSnapshot,
                                "cannot read plan blob '" + path + "'");
  }
  SnapshotBlob parsed;
  const std::string err = deserialize_snapshot(bytes, parsed);
  if (!err.empty()) {
    return Expected<SolverPlan>(SolveStatus::kBadSnapshot,
                                "'" + path + "': " + err);
  }
  return restore(std::move(parsed), std::move(options), nullptr, t0);
}

Expected<SolverPlan> SolverPlan::load_borrowed(const std::string& path,
                                               const sparse::CscMatrix& lower,
                                               SolveOptions options) {
  const auto t0 = steady_clock::now();
  std::vector<std::uint8_t> bytes;
  if (!support::read_file(path, bytes)) {
    return Expected<SolverPlan>(SolveStatus::kBadSnapshot,
                                "cannot read plan blob '" + path + "'");
  }
  SnapshotBlob parsed;
  // The caller supplies the matrix: skip materializing the embedded one
  // (about half of a host-backend blob's bytes).
  const std::string err =
      deserialize_snapshot(bytes, parsed, SnapshotRead::kSkipFactor);
  if (!err.empty()) {
    return Expected<SolverPlan>(SolveStatus::kBadSnapshot,
                                "'" + path + "': " + err);
  }
  return restore(std::move(parsed), std::move(options), &lower, t0);
}

double SolverPlan::load_us() const { return state_->load_seconds * 1e6; }

Expected<SolverPlan> SolverPlan::restore(
    SnapshotBlob parsed, SolveOptions options,
    const sparse::CscMatrix* borrow,
    std::chrono::steady_clock::time_point t0) {
  using Result = Expected<SolverPlan>;
  PlanSnapshot& snap = parsed.snapshot;

  // An autotune load ADOPTS the stored decision instead of demanding the
  // caller guess which backend the tuner picked at analyze time: the plan
  // replays the persisted choice (backend and gang width) verbatim.
  if (options.autotune) {
    options.backend = snap.backend;
    if (snap.tuned.has_value()) options.cpu_threads = snap.tuned->gang_width;
  }

  // The snapshot is only valid for the configuration that produced it:
  // pairing it with different symbolic-phase inputs would execute a
  // schedule computed for another machine shape.
  if (options.backend != snap.backend) {
    return Result(SolveStatus::kBadSnapshot,
                  "snapshot was analyzed for backend " +
                      backend_name(snap.backend) + ", options request " +
                      backend_name(options.backend));
  }
  // Only the multi-GPU engines bake the machine width into their symbolic
  // state (the partition); host and single-GPU plans accept any machine.
  if (backend_is_multi_gpu(options.backend) &&
      options.machine.num_gpus() != snap.num_gpus) {
    return Result(SolveStatus::kBadSnapshot,
                  "snapshot was analyzed for " + std::to_string(snap.num_gpus) +
                      " GPUs, options machine has " +
                      std::to_string(options.machine.num_gpus()));
  }
  const bool task_pool = options.backend == Backend::kMgUnifiedTask ||
                         options.backend == Backend::kMgZeroCopy;
  if (task_pool && options.tasks_per_gpu != snap.tasks_per_gpu) {
    return Result(SolveStatus::kBadSnapshot,
                  "snapshot was analyzed with tasks_per_gpu = " +
                      std::to_string(snap.tasks_per_gpu) +
                      ", options request " +
                      std::to_string(options.tasks_per_gpu));
  }
  if (options.tasks_per_gpu < 1 || options.machine.num_gpus() < 1) {
    return Result(SolveStatus::kInvalidOptions,
                  "options are inconsistent (tasks_per_gpu and the machine "
                  "GPU count must be >= 1)");
  }

  // Backend-required sections must have survived the trip (a hand-crafted
  // blob could claim a backend but omit its state).
  const index_t n = parsed.factor.rows;
  if (n > 0) {
    const bool needs_levels = options.backend == Backend::kCpuLevelSet ||
                              options.backend == Backend::kCpuTaskGraph ||
                              options.backend == Backend::kGpuLevelSet;
    const bool needs_in_degrees =
        options.backend == Backend::kCpuSyncFree ||
        backend_is_multi_gpu(options.backend);
    if (needs_levels && !snap.levels.has_value()) {
      return Result(SolveStatus::kBadSnapshot,
                    "snapshot lacks the level analysis its backend needs");
    }
    if (needs_in_degrees && snap.in_degrees.empty()) {
      return Result(SolveStatus::kBadSnapshot,
                    "snapshot lacks the in-degree state its backend needs");
    }
    // The row form is NOT required of the blob: the lean v2 format omits
    // it by design and it is rebuilt below from whichever factor the plan
    // ends up solving against.
  }

  auto st = std::make_shared<State>();
  if (borrow != nullptr) {
    // Borrowed-load: solve against the CALLER's matrix. Upper plans have
    // no caller-visible lower form to borrow.
    if (snap.upper) {
      return Result(SolveStatus::kBadSnapshot,
                    "borrowed load of an upper-triangular plan is not "
                    "supported (its internal factor is the reversed form); "
                    "use the owning load instead");
    }
    const sparse::StructuralHash caller_hash = sparse::hash_csc(*borrow);
    if (caller_hash.pattern != parsed.factor_hash.pattern) {
      return Result(SolveStatus::kBadSnapshot,
                    "structural hash mismatch: the supplied matrix does not "
                    "have the sparsity pattern this plan was analyzed for");
    }
    st->lower = borrow;
    if (caller_hash.values != parsed.factor_hash.values) {
      // Refreshed values: the saved plan's diagonal guarantee no longer
      // covers them. The pattern matches the analyzed factor, so the
      // diagonal still leads every column -- an O(n) re-check.
      for (index_t j = 0; j < borrow->cols; ++j) {
        if (borrow->val[static_cast<std::size_t>(borrow->col_ptr[j])] == 0.0) {
          return Result(SolveStatus::kSingularDiagonal,
                        "zero diagonal at column " + std::to_string(j) +
                            " in the supplied matrix (singular)");
        }
      }
      // The cached row form snapshots VALUES; re-sync it from the
      // caller's matrix (structure reuse, no re-analysis).
      if (snap.row_form.has_value()) {
        snap.row_form = sparse::csr_from_csc(*borrow);
      }
    }
  } else {
    st->storage = std::move(parsed.factor);
    st->lower = &st->storage;
  }

  // Partition is a deterministic O(n) function of the validated identity;
  // rebuild instead of trusting (or paying for) a serialized copy.
  if (n > 0 && backend_is_multi_gpu(options.backend)) {
    snap.partition = partition_for(options, n);
  }

  // Row-form view for the host-parallel gather: lean (v2) blobs do not
  // carry it, so rebuild it from the resolved factor -- one O(nnz)
  // transpose, the same memory-speed pass analyze pays. Fat blobs (v1,
  // or v2 written with include_row_form) keep their stored copy; the
  // borrowed value-refresh above already re-synced it when needed.
  if (n > 0 && backend_is_host_parallel(options.backend) &&
      !snap.row_form.has_value()) {
    snap.row_form = sparse::csr_from_csc(*st->lower);
  }

  // The task DAG is never serialized (like the lean row form): rebuild it
  // from the stored levels under the PERSISTED coarsening thresholds --
  // the defaults embed a per-process sync-cost measurement, and the graph
  // the plan runs must be the graph the analysis chose.
  if (n > 0 && options.backend == Backend::kCpuTaskGraph) {
    const sparse::CoarsenOptions coarsen =
        snap.tuned.has_value() ? snap.tuned->coarsen : sparse::CoarsenOptions{};
    snap.tasks = sparse::coarsen_levels(*st->lower, *snap.levels, coarsen);
  }

  // RHS layout: explicit options win; otherwise trust the stored resolved
  // value; v1 blobs (which deserialize as kAuto) re-resolve by backend,
  // which reproduces exactly what v1-era plans did implicitly.
  if (options.rhs_layout != RhsLayout::kAuto) {
    snap.rhs_layout = resolve_rhs_layout(options.rhs_layout, options.backend);
  } else if (snap.rhs_layout == RhsLayout::kAuto) {
    snap.rhs_layout = resolve_rhs_layout(RhsLayout::kAuto, options.backend);
  }

  apply_numa_hints(options, snap);

  // The sync-free host kernel SPINS on its delivery counters: in-degrees
  // that disagree with the factor would hang the worker threads, not just
  // mis-answer, so re-derive them and compare (one streaming pass over
  // the structure; the level/mg schedules degrade to wrong answers at
  // worst and are left to the CRC).
  if (n > 0 && options.backend == Backend::kCpuSyncFree &&
      sparse::compute_in_degrees(*st->lower, /*validate=*/false) !=
          snap.in_degrees) {
    return Result(SolveStatus::kBadSnapshot,
                  "snapshot in-degrees do not match the factor structure");
  }

  st->options = std::move(options);
  st->snapshot = std::move(snap);
  // Re-stamp the identity from the validated options so a re-save of this
  // plan records the configuration it actually runs with (they can differ
  // only where the symbolic state does not depend on them).
  st->snapshot.tasks_per_gpu = st->options.tasks_per_gpu;
  st->snapshot.num_gpus = st->options.machine.num_gpus();
  // A loaded plan never paid the analysis: the whole point. The read cost
  // is reported separately via load_us().
  st->snapshot.analysis_us = 0.0;
  st->analysis_seconds = 0.0;
  if (n > 0 && backend_is_host_parallel(st->options.backend)) {
    PoolOptions pool_opts;
    pool_opts.numa_policy = st->options.numa_policy;
    st->workspaces = std::make_unique<WorkspacePool>(
        resolve_cpu_threads(st->options.cpu_threads),
        st->options.use_shared_pool ? &SharedWorkerPool::instance() : nullptr,
        pool_opts);
  }
  st->load_seconds = seconds_since(t0);
  return SolverPlan(std::move(st));
}

index_t SolverPlan::rows() const { return state_->lower->rows; }

bool SolverPlan::is_upper() const { return state_->snapshot.upper; }

RhsLayout SolverPlan::rhs_layout() const { return state_->snapshot.rhs_layout; }

const SolveOptions& SolverPlan::options() const { return state_->options; }

const sparse::CscMatrix& SolverPlan::factor() const { return *state_->lower; }

sparse::Partition SolverPlan::partition() const {
  MSPTRSV_REQUIRE(rows() > 0, "an empty (0x0) plan has no partition");
  if (state_->snapshot.partition.has_value()) return *state_->snapshot.partition;
  return partition_for(state_->options, rows());
}

std::span<const index_t> SolverPlan::in_degrees() const {
  return state_->snapshot.in_degrees;
}

const sparse::LevelAnalysis* SolverPlan::level_analysis() const {
  return state_->snapshot.levels ? &*state_->snapshot.levels : nullptr;
}

const TunedDecision* SolverPlan::tuned() const {
  return state_->snapshot.tuned ? &*state_->snapshot.tuned : nullptr;
}

const sparse::TaskGraph* SolverPlan::task_graph() const {
  return state_->snapshot.tasks ? &*state_->snapshot.tasks : nullptr;
}

std::size_t SolverPlan::workspace_count() const {
  return state_->workspaces ? state_->workspaces->size() : 0;
}

std::size_t SolverPlan::owned_thread_count() const {
  return state_->workspaces ? state_->workspaces->owned_threads() : 0;
}

const void* SolverPlan::state_id() const { return state_.get(); }

namespace {

template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

std::size_t csc_bytes(const sparse::CscMatrix& m) {
  return vector_bytes(m.col_ptr) + vector_bytes(m.row_idx) +
         vector_bytes(m.val);
}

}  // namespace

std::size_t SolverPlan::resident_bytes() const {
  const State& st = *state_;
  std::size_t bytes = sizeof(State);
  bytes += csc_bytes(st.storage);  // empty (0) for borrowed plans
  const PlanSnapshot& snap = st.snapshot;
  bytes += vector_bytes(snap.in_degrees);
  if (snap.levels.has_value()) {
    bytes += vector_bytes(snap.levels->level_of) +
             vector_bytes(snap.levels->level_ptr) +
             vector_bytes(snap.levels->order);
  }
  if (snap.row_form.has_value()) {
    bytes += vector_bytes(snap.row_form->row_ptr) +
             vector_bytes(snap.row_form->col_idx) +
             vector_bytes(snap.row_form->val);
  }
  if (snap.tasks.has_value()) {
    bytes += vector_bytes(snap.tasks->task_ptr) +
             vector_bytes(snap.tasks->task_rows) +
             vector_bytes(snap.tasks->kind) +
             vector_bytes(snap.tasks->task_of) +
             vector_bytes(snap.tasks->in_degree) +
             vector_bytes(snap.tasks->succ_ptr) +
             vector_bytes(snap.tasks->succ);
  }
  if (snap.partition.has_value()) {
    // Partition internals: per-component owner map dominates.
    bytes += static_cast<std::size_t>(rows()) * sizeof(int) +
             static_cast<std::size_t>(rows()) * sizeof(index_t);
  }
  return bytes;
}

sim_time_t SolverPlan::analysis_us() const { return state_->snapshot.analysis_us; }

double SolverPlan::analysis_seconds() const {
  return state_->analysis_seconds;
}

sparse::FootprintEstimate SolverPlan::footprint() const {
  if (rows() == 0) return {};  // empty plan
  const Backend b = state_->options.backend;
  const sparse::StateLayout layout =
      (b == Backend::kMgShmem || b == Backend::kMgZeroCopy)
          ? sparse::StateLayout::kSymmetricHeap
          : sparse::StateLayout::kUnifiedManaged;
  return sparse::estimate_footprint(*state_->lower, partition(), layout);
}

}  // namespace msptrsv::core
