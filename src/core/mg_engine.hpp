// The multi-GPU synchronization-free execution engine.
//
// Both multi-GPU designs of the paper (Unified Memory, Algorithm 2, and
// NVSHMEM zero-copy, Algorithm 3) share the same skeleton: every component
// is activated up front (inside its task's kernel), spins in a lock-wait
// phase until its in-degree is satisfied, then solves and pushes updates to
// its dependents. They differ ONLY in how a dependency update crosses the
// GPU boundary and what the solver pays to read the gathered state. The
// engine factors that difference into a CommPolicy.
//
// The engine is a deterministic discrete-event list scheduler that
// *executes the numerics for real* (it returns the solution vector) while
// accounting simulated time:
//  - each GPU is a multi-server resource of `warp_slots_per_gpu` slots;
//  - each task (Section V) is a kernel whose launch is serialized on its
//    GPU's stream, delaying its components by the launch overhead;
//  - a component becomes ready at the latest *visibility* time of its
//    dependency updates, as decided by the CommPolicy;
//  - solving costs solve_base + solve_per_nnz * nnz(column).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/interconnect.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sparse/csc.hpp"
#include "sparse/partition.hpp"

namespace msptrsv::core {

/// Outcome of pushing one dependency update.
struct UpdateTiming {
  /// When the producing warp is free to issue its next update (updates of
  /// one component are issued by one warp, hence serialized; a stalled
  /// system-scope atomic or a fenced RMW chain blocks the producer).
  sim_time_t producer_done = 0.0;
  /// When the dependent's lock-wait loop can observe the update.
  sim_time_t visible = 0.0;
};

/// How dependency information crosses GPUs. Implementations are stateful
/// per run (they own the memory-system models and their counters).
class CommPolicy {
 public:
  virtual ~CommPolicy() = default;

  virtual std::string name() const = 0;

  /// An update for dependent `dep` (owned by `dst_gpu`) is issued on
  /// `src_gpu` at time `issue`. `is_final` marks the update that satisfies
  /// the dependent's last outstanding dependency (its poll loop will exit
  /// on observing it). Implementations book any traffic the update
  /// generates.
  virtual UpdateTiming push_update(int src_gpu, int dst_gpu, index_t dep,
                                   sim_time_t issue, bool is_final) = 0;

  /// Component `comp` on `gpu` leaves its lock-wait loop at `start`;
  /// `remote_gpus` lists the GPUs that contributed remote updates to it.
  /// Returns the time at which its intermediate state (final in-degree
  /// confirmation + left_sum partials) is assembled and solving can begin.
  virtual sim_time_t gather_before_solve(int gpu, index_t comp,
                                         std::span<const int> remote_gpus,
                                         sim_time_t start) = 0;

  /// Copies the policy's counters into the run report.
  virtual void fill_report(sim::RunReport& report) const = 0;
};

struct EngineOptions {
  /// Include the in-degree preprocessing phase in the report (the paper
  /// sums analysis + solve for its designs).
  bool include_analysis = true;
  /// Precomputed per-component in-degrees (the output of the analysis
  /// phase, sparse::compute_in_degrees). When set the engine copies them
  /// instead of recomputing, and skips input revalidation: the analysis
  /// that produced them already established the solvable-lower invariants.
  /// This is the reuse path of SolverPlan (analyze once, solve many).
  const std::vector<index_t>* in_degrees = nullptr;
  /// Numeric batch width: `b` is column-major n x num_rhs and the result
  /// has the same layout. The event schedule (and therefore the per-rhs
  /// floating-point operation order) depends only on the matrix structure
  /// and the cost model, never on num_rhs -- the fused batch solves every
  /// rhs of a component inside the single lock-wait that schedule implies.
  index_t num_rhs = 1;
  /// Fused-batch COST width: how many rhs each component's kernel carries
  /// in the cost model. Scales the per-component floating-point work
  /// (solve_per_nnz) while kernel launches, lock-waits, gathers and
  /// dependency-update messages stay per-component/per-edge -- the
  /// amortization the fused kernel exists for. Kept separate from num_rhs
  /// so SolverPlan can obtain the looped-identical numerics (cost_rhs=1)
  /// and the amortized timing (cost_rhs=k) without the cost scaling
  /// perturbing the numeric event order.
  index_t cost_rhs = 1;
};

struct EngineResult {
  /// Column-major n x num_rhs.
  std::vector<value_t> x;
  sim::RunReport report;
};

/// Runs the engine. `net` must be freshly constructed (or reset) for the
/// machine's topology; the CommPolicy must wrap the same `net`.
EngineResult run_mg_engine(const sparse::CscMatrix& lower,
                           std::span<const value_t> b,
                           const sparse::Partition& partition,
                           const sim::Machine& machine, sim::Interconnect& net,
                           CommPolicy& comm, const EngineOptions& opts = {});

/// Simulated cost of the in-degree preprocessing pass under `partition`:
/// every GPU streams its own columns in parallel, so the slowest GPU bounds
/// the phase. Exposed so SolverPlan can charge the analysis phase once and
/// reuse its output across solves.
sim_time_t engine_analysis_us(const sparse::CscMatrix& lower,
                              const sparse::Partition& partition,
                              const sim::CostModel& cost);

}  // namespace msptrsv::core
