#include "core/solver.hpp"

#include "core/plan.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kSerial: return "serial";
    case Backend::kCpuLevelSet: return "cpu-levelset";
    case Backend::kCpuSyncFree: return "cpu-syncfree";
    case Backend::kCpuTaskGraph: return "cpu-taskgraph";
    case Backend::kGpuLevelSet: return "gpu-levelset(csrsv2)";
    case Backend::kMgUnified: return "mg-unified";
    case Backend::kMgUnifiedTask: return "mg-unified+task";
    case Backend::kMgShmem: return "mg-shmem";
    case Backend::kMgZeroCopy: return "mg-zerocopy";
  }
  return "unknown";
}

std::string rhs_layout_name(RhsLayout layout) {
  switch (layout) {
    case RhsLayout::kAuto: return "auto";
    case RhsLayout::kColumnMajor: return "column-major";
    case RhsLayout::kInterleaved: return "interleaved";
  }
  return "unknown";
}

RhsLayout resolve_rhs_layout(RhsLayout requested, Backend backend) {
  // The simulated backends have no panel path: their numeric pass is the
  // serial reference and their cost is an event simulation, so an
  // interleaved request is clamped rather than rejected.
  if (is_simulated(backend)) return RhsLayout::kColumnMajor;
  if (requested != RhsLayout::kAuto) return requested;
  // Auto: interleave only where the panel pays for its transposes -- the
  // PULL-based parallel host kernels, whose per-dependency gather reads a
  // k-vector per nonzero (strided by n in column-major, one contiguous
  // axpy interleaved). The serial sweep is PUSH-based with component-major
  // accumulators already, so its hot fan-out loop is unit-stride in either
  // layout and the pack/unpack would be pure overhead (measured ~2x at 16
  // RHS); it stays column-major unless explicitly asked.
  return backend == Backend::kSerial ? RhsLayout::kColumnMajor
                                     : RhsLayout::kInterleaved;
}

bool is_simulated(Backend b) {
  switch (b) {
    case Backend::kGpuLevelSet:
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy:
      return true;
    default:
      return false;
  }
}

sparse::Partition partition_for(const SolveOptions& options, index_t n) {
  const int gpus = options.machine.num_gpus();
  switch (options.backend) {
    case Backend::kMgUnified:
    case Backend::kMgShmem:
      return sparse::Partition::block(n, gpus);
    case Backend::kMgUnifiedTask:
    case Backend::kMgZeroCopy:
      return sparse::Partition::round_robin_tasks(n, gpus,
                                                  options.tasks_per_gpu);
    default:
      return sparse::Partition::block(n, 1);
  }
}

namespace {

// The one-shot wrappers run a throwaway plan. They keep the historical
// throwing contract (PreconditionError on bad input) so existing call
// sites migrate to the status channel at their own pace, and they fold the
// plan's one-time analysis charge back into the single report.
SolveResult solve_via_plan(Expected<SolverPlan> plan,
                           std::span<const value_t> b,
                           const SolveOptions& options) {
  SolveResult out = plan.value().solve(b).value();
  if (options.include_analysis) {
    out.report.analysis_us = plan.value().analysis_us();
  }
  return out;
}

}  // namespace

SolveResult solve(const sparse::CscMatrix& lower, std::span<const value_t> b,
                  const SolveOptions& options) {
  // Borrowed: the throwaway plan never outlives this call, so the matrix
  // is not copied (the pre-plan one-shot path made no copy either).
  return solve_via_plan(SolverPlan::analyze_borrowed(lower, options), b,
                        options);
}

SolveResult solve_upper(const sparse::CscMatrix& upper,
                        std::span<const value_t> b,
                        const SolveOptions& options) {
  return solve_via_plan(SolverPlan::analyze_upper(upper, options), b, options);
}

}  // namespace msptrsv::core
