#include "core/solver.hpp"

#include <chrono>

#include "core/comm_unified.hpp"
#include "core/cpu_parallel.hpp"
#include "core/levelset.hpp"
#include "core/mg_engine.hpp"
#include "core/reference.hpp"
#include "sparse/level_analysis.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kSerial: return "serial";
    case Backend::kCpuLevelSet: return "cpu-levelset";
    case Backend::kCpuSyncFree: return "cpu-syncfree";
    case Backend::kGpuLevelSet: return "gpu-levelset(csrsv2)";
    case Backend::kMgUnified: return "mg-unified";
    case Backend::kMgUnifiedTask: return "mg-unified+task";
    case Backend::kMgShmem: return "mg-shmem";
    case Backend::kMgZeroCopy: return "mg-zerocopy";
  }
  return "unknown";
}

bool is_simulated(Backend b) {
  switch (b) {
    case Backend::kGpuLevelSet:
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy:
      return true;
    default:
      return false;
  }
}

sparse::Partition partition_for(const SolveOptions& options, index_t n) {
  const int gpus = options.machine.num_gpus();
  switch (options.backend) {
    case Backend::kMgUnified:
    case Backend::kMgShmem:
      return sparse::Partition::block(n, gpus);
    case Backend::kMgUnifiedTask:
    case Backend::kMgZeroCopy:
      return sparse::Partition::round_robin_tasks(n, gpus,
                                                  options.tasks_per_gpu);
    default:
      return sparse::Partition::block(n, 1);
  }
}

namespace {

SolveResult run_engine(const sparse::CscMatrix& lower,
                       std::span<const value_t> b,
                       const SolveOptions& options, bool unified) {
  const sparse::Partition partition = partition_for(options, lower.rows);
  sim::Interconnect net(options.machine.topology, options.machine.cost);
  EngineOptions eng;
  eng.include_analysis = options.include_analysis;

  SolveResult out;
  if (unified) {
    UnifiedComm comm(net, options.machine.cost, partition.num_gpus(),
                     lower.rows);
    EngineResult r =
        run_mg_engine(lower, b, partition, options.machine, net, comm, eng);
    out.x = std::move(r.x);
    out.report = std::move(r.report);
  } else {
    NvshmemComm comm(net, options.machine.cost, partition.num_gpus(),
                     lower.rows, options.nvshmem);
    EngineResult r =
        run_mg_engine(lower, b, partition, options.machine, net, comm, eng);
    out.x = std::move(r.x);
    out.report = std::move(r.report);
  }
  out.report.solver_name = backend_name(options.backend);
  return out;
}

}  // namespace

SolveResult solve(const sparse::CscMatrix& lower, std::span<const value_t> b,
                  const SolveOptions& options) {
  switch (options.backend) {
    case Backend::kSerial: {
      SolveResult out;
      const auto t0 = std::chrono::steady_clock::now();
      out.x = solve_lower_serial(lower, b);
      out.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      out.report.solver_name = backend_name(options.backend);
      out.report.machine_name = "host";
      return out;
    }
    case Backend::kCpuLevelSet: {
      SolveResult out;
      const sparse::LevelAnalysis analysis = sparse::analyze_levels(lower);
      const auto t0 = std::chrono::steady_clock::now();
      out.x = solve_lower_levelset_threads(lower, b, analysis,
                                           options.cpu_threads);
      out.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      out.report.solver_name = backend_name(options.backend);
      out.report.machine_name = "host";
      return out;
    }
    case Backend::kCpuSyncFree: {
      SolveResult out;
      const auto t0 = std::chrono::steady_clock::now();
      out.x = solve_lower_syncfree_threads(lower, b, options.cpu_threads);
      out.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      out.report.solver_name = backend_name(options.backend);
      out.report.machine_name = "host";
      return out;
    }
    case Backend::kGpuLevelSet: {
      LevelSetResult r = solve_levelset_simulated(lower, b, options.machine);
      SolveResult out;
      out.x = std::move(r.x);
      out.report = std::move(r.report);
      return out;
    }
    case Backend::kMgUnified:
    case Backend::kMgUnifiedTask:
      return run_engine(lower, b, options, /*unified=*/true);
    case Backend::kMgShmem:
    case Backend::kMgZeroCopy:
      return run_engine(lower, b, options, /*unified=*/false);
  }
  MSPTRSV_REQUIRE(false, "unhandled backend");
  return {};
}

SolveResult solve_upper(const sparse::CscMatrix& upper,
                        std::span<const value_t> b,
                        const SolveOptions& options) {
  const sparse::CscMatrix lower = reverse_upper_to_lower(upper);
  const std::vector<value_t> rb = reversed(b);
  SolveResult r = solve(lower, rb, options);
  r.x = reversed(r.x);
  return r;
}

}  // namespace msptrsv::core
