#include "core/levelset.hpp"

#include <algorithm>

#include "core/reference.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {

sim_time_t levelset_analysis_us(const sparse::CscMatrix& lower,
                                const sim::CostModel& cost) {
  // Analysis phase: level construction makes several passes over the
  // structure (in-degree count + topological bucketing); 3x the streaming
  // in-degree kernel is a conservative model of csrsv2_analysis.
  return 3.0 * cost.indegree_per_nnz_us * static_cast<double>(lower.nnz());
}

LevelSetResult solve_levelset_simulated(const sparse::CscMatrix& lower,
                                        std::span<const value_t> b,
                                        const sim::Machine& machine) {
  const sparse::LevelAnalysis analysis = sparse::analyze_levels(lower);
  return solve_levelset_simulated(lower, b, machine, analysis,
                                  /*charge_analysis=*/true);
}

LevelSetResult solve_levelset_simulated(const sparse::CscMatrix& lower,
                                        std::span<const value_t> b,
                                        const sim::Machine& machine,
                                        const sparse::LevelAnalysis& analysis,
                                        bool charge_analysis) {
  LevelSetResult out =
      solve_levelset_simulated_batch(lower, b, 1, machine, analysis);
  if (charge_analysis) {
    out.report.analysis_us = levelset_analysis_us(lower, machine.cost);
  }
  return out;
}

LevelSetResult solve_levelset_simulated_batch(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    index_t num_rhs, const sim::Machine& machine,
    const sparse::LevelAnalysis& analysis) {
  MSPTRSV_REQUIRE(analysis.n == lower.rows,
                  "level analysis belongs to a different matrix");
  MSPTRSV_REQUIRE(num_rhs >= 1 &&
                      b.size() == static_cast<std::size_t>(lower.rows) *
                                      static_cast<std::size_t>(num_rhs),
                  "batch must be column-major n x num_rhs");
  const sim::CostModel& cost = machine.cost;
  const double k = static_cast<double>(num_rhs);

  LevelSetResult out;
  // Numerics: the level order is a topological order, so the plain column
  // sweep produces the identical values the scheduled kernel would (per
  // rhs, in the same operation order as a single-rhs solve).
  out.x = solve_lower_serial_fused(lower, b, num_rhs);

  sim::RunReport& r = out.report;
  r.solver_name = "levelset(csrsv2)";
  r.machine_name = machine.name;
  r.num_gpus = 1;
  r.busy_us_per_gpu.assign(1, 0.0);

  const int slots = cost.warp_slots_per_gpu;
  for (index_t l = 0; l < analysis.num_levels; ++l) {
    const offset_t begin = analysis.level_ptr[static_cast<std::size_t>(l)];
    const offset_t end = analysis.level_ptr[static_cast<std::size_t>(l) + 1];
    double level_work = 0.0;   // total warp-time in the level
    double max_comp = 0.0;     // the unavoidable longest component
    for (offset_t p = begin; p < end; ++p) {
      const index_t i = analysis.order[static_cast<std::size_t>(p)];
      const double nnz_col =
          static_cast<double>(lower.col_ptr[i + 1] - lower.col_ptr[i] - 1);
      // Fused batch: the warp activation (solve_base) is paid once per
      // component per batch; only the floating-point work scales with k.
      const double c = cost.solve_base_us + cost.solve_per_nnz_us * nnz_col * k;
      level_work += c;
      max_comp = std::max(max_comp, c);
    }
    const double width = static_cast<double>(end - begin);
    const double parallel_time =
        std::max(max_comp, level_work / std::min(width, double(slots)));
    // ONE launch + synchronization per level per batch, not per rhs.
    r.solve_us += cost.level_sync_us + parallel_time;
    r.busy_us_per_gpu[0] += level_work;
    r.kernel_launches += 1;
  }
  // Update messages are per edge per batch (each carries the RHS sweep).
  r.local_updates = static_cast<std::uint64_t>(lower.nnz() - lower.rows);
  return out;
}

}  // namespace msptrsv::core
