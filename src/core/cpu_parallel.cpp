#include "core/cpu_parallel.hpp"

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "sparse/triangular.hpp"
#include "support/contracts.hpp"
#include "support/failpoint.hpp"
#include "support/trace.hpp"

namespace msptrsv::core {

namespace {

// ---- Inner RHS-sweep kernel, runtime-dispatched ----------------------------
//
// acc[r] += lv * xc[r] over the unit-stride interleaved panel slice of one
// dependency. Written as separate multiply and add EVERYWHERE (the build
// sets -ffp-contract=off as well): an FMA would round once where the
// scalar reference rounds twice, and the bit-for-bit contract across
// layouts, thread counts, and dispatch targets is the whole point.
// Per-lane arithmetic is identical in all three bodies -- lane r always
// computes round(acc[r] + round(lv * xc[r])) -- so which one runs is
// unobservable in the results.

using AxpyFn = void (*)(value_t* acc, const value_t* xc, value_t lv,
                        std::size_t k);

void axpy_scalar(value_t* acc, const value_t* xc, value_t lv, std::size_t k) {
#pragma omp simd
  for (std::size_t r = 0; r < k; ++r) acc[r] += lv * xc[r];
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void axpy_avx2(value_t* acc, const value_t* xc,
                                               value_t lv, std::size_t k) {
  const __m256d vlv = _mm256_set1_pd(lv);
  std::size_t r = 0;
  for (; r + 4 <= k; r += 4) {
    const __m256d a = _mm256_loadu_pd(acc + r);
    const __m256d xv = _mm256_loadu_pd(xc + r);
    // mul then add, never _mm256_fmadd_pd -- see the dispatch comment.
    _mm256_storeu_pd(acc + r, _mm256_add_pd(a, _mm256_mul_pd(vlv, xv)));
  }
  for (; r < k; ++r) acc[r] += lv * xc[r];
}
#endif

/// Dispatch target resolved once per process (same idiom as the crc32c
/// hardware probe in support/blob.cpp).
AxpyFn resolve_axpy() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return axpy_avx2;
#endif
  return axpy_scalar;
}

AxpyFn axpy_kernel() {
  static const AxpyFn fn = resolve_axpy();
  return fn;
}

// ---- Per-component gather-and-solve, one per layout ------------------------

/// Gathers component i's solution for every rhs by PULLING the final x
/// entries of its dependencies through the row form (ascending column
/// order: deterministic regardless of thread count or batch width). The
/// diagonal terminates row i of a solvable lower factor. Column-major
/// batch: the inner RHS loop strides by n.
inline void gather_and_solve(const sparse::CsrMatrix& rows, index_t i,
                             std::span<const value_t> b, std::size_t num_rhs,
                             std::size_t n, value_t* acc,
                             std::span<value_t> x) {
  const offset_t rb = rows.row_ptr[static_cast<std::size_t>(i)];
  const offset_t re = rows.row_ptr[static_cast<std::size_t>(i) + 1];
  const value_t diag = rows.val[static_cast<std::size_t>(re - 1)];
  for (std::size_t r = 0; r < num_rhs; ++r) acc[r] = 0.0;
  for (offset_t e = rb; e < re - 1; ++e) {
    const std::size_t c =
        static_cast<std::size_t>(rows.col_idx[static_cast<std::size_t>(e)]);
    const value_t lv = rows.val[static_cast<std::size_t>(e)];
    for (std::size_t r = 0; r < num_rhs; ++r) {
      acc[r] += lv * x[r * n + c];
    }
  }
  for (std::size_t r = 0; r < num_rhs; ++r) {
    x[r * n + static_cast<std::size_t>(i)] =
        (b[r * n + static_cast<std::size_t>(i)] - acc[r]) / diag;
  }
}

/// Interleaved-panel variant: b and x are component-major n x k panels
/// (entry i of rhs r at [i*k + r]), so the dependency read is ONE
/// contiguous k-vector and the whole gather is the dispatched axpy. Same
/// per-rhs operation order as the column-major form: ascending column
/// gather, then one divide -- bit-for-bit identical results.
inline void gather_and_solve_interleaved(const sparse::CsrMatrix& rows,
                                         index_t i, const value_t* b,
                                         std::size_t k, value_t* acc,
                                         value_t* x, AxpyFn axpy) {
  const offset_t rb = rows.row_ptr[static_cast<std::size_t>(i)];
  const offset_t re = rows.row_ptr[static_cast<std::size_t>(i) + 1];
  const value_t diag = rows.val[static_cast<std::size_t>(re - 1)];
  for (std::size_t r = 0; r < k; ++r) acc[r] = 0.0;
  for (offset_t e = rb; e < re - 1; ++e) {
    const std::size_t c =
        static_cast<std::size_t>(rows.col_idx[static_cast<std::size_t>(e)]);
    axpy(acc, x + c * k, rows.val[static_cast<std::size_t>(e)], k);
  }
  const value_t* bi = b + static_cast<std::size_t>(i) * k;
  value_t* xi = x + static_cast<std::size_t>(i) * k;
#pragma omp simd
  for (std::size_t r = 0; r < k; ++r) {
    xi[r] = (bi[r] - acc[r]) / diag;
  }
}

// ---- Scheduling drivers, shared by both layouts ----------------------------
//
// The barrier/claim protocols and the abort machinery are layout-blind;
// only the per-component body differs. solve_one(i, acc) must fully solve
// component i for the whole batch using the thread-private accumulator.

template <typename SolveOne>
bool drive_levelset(const sparse::LevelAnalysis& analysis, index_t num_rhs,
                    SolveWorkspace& ws, const CancelToken* cancel,
                    SolveOne&& solve_one) {
  SpinBarrier& sync = ws.level_barrier();
  // Workspace-owned per-thread accumulators: nothing allocates (or can
  // throw) inside the parallel region once the batch width has been seen.
  // Sized for the workspace's party CAP, so a shared-pool gang of any
  // width indexes in bounds.
  value_t* scratch = ws.gather_scratch(num_rhs);
  const std::size_t stride = ws.gather_stride();

  // `threads` is the ACTUAL party count of this run (a shared-pool gang
  // may be narrower than the cap); the level stride and the barrier --
  // resized by run_parallel -- both follow it.
  //
  // Abort protocol: tid 0 checks the token AFTER its level work and
  // stores the flag BEFORE arriving at the barrier; every party reads it
  // after leaving. All parties therefore pass the same number of barriers
  // and exit at the same level -- the barrier stays coherent and the
  // workspace needs no repair.
  std::atomic<bool> abort{false};
  ws.run_parallel([&](int tid, int threads) {
    value_t* acc = scratch + static_cast<std::size_t>(tid) * stride;
    // Tracing is leader-only: the gang leader is the dispatching thread,
    // so its thread-local context carries the request's trace id into the
    // kernel; one span per LEVEL (start -> barrier passed), never per row.
    const bool lead_trace = tid == 0 && MSPTRSV_TRACE_ARMED();
    for (index_t l = 0; l < analysis.num_levels; ++l) {
      const std::uint64_t lvl_t0 =
          lead_trace ? support::trace::trace_now_ns() : 0;
      const offset_t begin = analysis.level_ptr[static_cast<std::size_t>(l)];
      const offset_t end = analysis.level_ptr[static_cast<std::size_t>(l) + 1];
      for (offset_t p = begin + tid; p < end; p += threads) {
        // Every dependency sits in an earlier level, already final behind
        // the barrier; ONE barrier wave resolves the whole batch.
        solve_one(analysis.order[static_cast<std::size_t>(p)], acc);
      }
      if (tid == 0) {
        // Chaos seam: delay/pause here stretches the level without
        // touching the clock-driven budget logic under test.
        (void)MSPTRSV_FAILPOINT("kernel.level");
        if (cancel != nullptr && cancel->cancelled()) {
          abort.store(true, std::memory_order_relaxed);
        }
      }
      sync.arrive_and_wait();
      if (lead_trace) {
        support::trace::trace_emit_here(
            "kernel.level", lvl_t0, support::trace::trace_now_ns(), "level",
            static_cast<std::int64_t>(l), "rows",
            static_cast<std::int64_t>(end - begin));
      }
      if (abort.load(std::memory_order_relaxed)) return;
    }
  });
  return !abort.load(std::memory_order_relaxed);
}

template <typename SolveOne>
bool drive_syncfree(const sparse::CscMatrix& lower,
                    std::span<const index_t> in_degrees, index_t num_rhs,
                    SolveWorkspace& ws, const CancelToken* cancel,
                    SolveOne&& solve_one) {
  const index_t n = lower.rows;
  std::atomic<std::uint64_t>* delivered = ws.delivered(n);
  // Generation tagging replaces the per-solve countdown copy: each batch
  // delivers exactly in_degree(i) updates to component i (one per incoming
  // edge, regardless of num_rhs), so in generation g the ready target is
  // g * in_degree(i) and the counters are never reset.
  const std::uint64_t generation = ws.begin_generation();
  value_t* scratch = ws.gather_scratch(num_rhs);
  const std::size_t stride = ws.gather_stride();

  // Ascending work claiming: thread-safe and deadlock-free (see header) --
  // and indifferent to the party count, so a shrunk shared-pool gang just
  // claims more components per thread.
  //
  // Abort protocol: any thread that observes the token fired raises the
  // shared flag; claimants check it per claim and spinners on EVERY turn
  // (a component whose producer aborted would otherwise be waited on
  // forever). The clock itself is only read on a stride.
  std::atomic<bool> abort{false};
  std::atomic<index_t> next{0};
  ws.run_parallel([&](int tid, int /*threads*/) {
    value_t* acc = scratch + static_cast<std::size_t>(tid) * stride;
    std::uint64_t checks = 0;
    // Leader-only, one span for the leader's whole claim loop (the
    // sync-free sweep has no level structure to hang per-phase spans on;
    // per-component spans would be per-row noise). `claimed` counts the
    // components THIS thread solved.
    const bool lead_trace = tid == 0 && MSPTRSV_TRACE_ARMED();
    const std::uint64_t sweep_t0 =
        lead_trace ? support::trace::trace_now_ns() : 0;
    std::int64_t claimed = 0;
    const auto emit_sweep = [&] {
      if (lead_trace) {
        support::trace::trace_emit_here(
            "kernel.sweep", sweep_t0, support::trace::trace_now_ns(),
            "claimed", claimed, "rows", static_cast<std::int64_t>(n));
      }
    };
    for (;;) {
      const index_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        emit_sweep();
        return;
      }
      if (abort.load(std::memory_order_relaxed)) {
        emit_sweep();
        return;
      }
      // Chaos seam, evaluated on EVERY real claim (not just tid 0): on a
      // sequential chain one warm worker can drain the whole solve before
      // another party ever claims, so gating on a tid would let a `pause`
      // arming miss the solve entirely.
      (void)MSPTRSV_FAILPOINT("kernel.task");
      if (cancel != nullptr && (++checks & 255) == 0 && cancel->cancelled()) {
        abort.store(true, std::memory_order_relaxed);
        emit_sweep();
        return;
      }
      // Lock-wait phase: ONE spin per component per batch. The acquire
      // load pairs with the producers' delivery increments, making their
      // final x entries visible to the gather below.
      const std::uint64_t target =
          generation *
          static_cast<std::uint64_t>(in_degrees[static_cast<std::size_t>(i)]);
      std::uint64_t spins = 0;
      while (delivered[static_cast<std::size_t>(i)].load(
                 std::memory_order_acquire) < target) {
        if (abort.load(std::memory_order_relaxed)) {
          emit_sweep();
          return;
        }
        if (cancel != nullptr && (++spins & 1023) == 0 &&
            cancel->cancelled()) {
          abort.store(true, std::memory_order_relaxed);
          emit_sweep();
          return;
        }
        std::this_thread::yield();
      }
      solve_one(i, acc);
      ++claimed;
      // Delivery fan-out down column i: one increment per edge per batch
      // (the x stores above must be visible first, hence release).
      const offset_t d = lower.col_ptr[i];
      for (offset_t e = d + 1; e < lower.col_ptr[i + 1]; ++e) {
        delivered[static_cast<std::size_t>(lower.row_idx[e])].fetch_add(
            1, std::memory_order_acq_rel);
      }
    }
  });
  if (abort.load(std::memory_order_relaxed)) {
    // The generation's deliveries are torn; rewind the counters so the
    // next solve on this workspace computes targets from a clean slate.
    ws.reset_delivery();
    return false;
  }
  return true;
}

template <typename SolveOne>
bool drive_taskgraph(const sparse::TaskGraph& graph, index_t num_rhs,
                     SolveWorkspace& ws, const CancelToken* cancel,
                     SolveOne&& solve_one) {
  const index_t num_tasks = graph.num_tasks;
  value_t* scratch = ws.gather_scratch(num_rhs);
  const std::size_t stride = ws.gather_stride();
  // The sync-free delivery machinery, lifted from rows to tasks: the
  // counters are indexed by TASK id and the per-batch target of task t is
  // generation * in_degree[t] (one delivery per distinct incoming
  // cross-task edge).
  std::atomic<std::uint64_t>* delivered = ws.delivered(num_tasks);
  const std::uint64_t generation = ws.begin_generation();

  // Ascending task claiming is deadlock-free for the same reason the
  // sync-free row claim is: every edge goes from a lower task id to a
  // strictly higher one (tasks are numbered in level order), so the
  // smallest unsolved task is always claimed and its predecessors done.
  //
  // Cancellation is checked at TASK boundaries -- every claim, and on a
  // stride inside the delivery spin (a cancelled gang must not wait on
  // deliveries that will never arrive). Tasks are coarse by construction,
  // so a per-claim clock read is already amortized.
  std::atomic<bool> abort{false};
  std::atomic<index_t> next{0};
  ws.run_parallel([&](int tid, int /*threads*/) {
    value_t* acc = scratch + static_cast<std::size_t>(tid) * stride;
    // Leader-only, one span for the whole claim loop (mirrors the
    // sync-free sweep; per-task spans would be noise on fine DAGs).
    const bool lead_trace = tid == 0 && MSPTRSV_TRACE_ARMED();
    const std::uint64_t sweep_t0 =
        lead_trace ? support::trace::trace_now_ns() : 0;
    std::int64_t claimed = 0;
    const auto emit_sweep = [&] {
      if (lead_trace) {
        support::trace::trace_emit_here(
            "kernel.tasks", sweep_t0, support::trace::trace_now_ns(),
            "claimed", claimed, "tasks",
            static_cast<std::int64_t>(num_tasks));
      }
    };
    for (;;) {
      const index_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= num_tasks || abort.load(std::memory_order_relaxed)) {
        emit_sweep();
        return;
      }
      // Chaos seam shared with the sync-free kernel: a `pause` armed on
      // kernel.task stalls a task hand-off mid-solve.
      (void)MSPTRSV_FAILPOINT("kernel.task");
      if (cancel != nullptr && cancel->cancelled()) {
        abort.store(true, std::memory_order_relaxed);
        emit_sweep();
        return;
      }
      const std::uint64_t target =
          generation * static_cast<std::uint64_t>(
                           graph.in_degree[static_cast<std::size_t>(t)]);
      std::uint64_t spins = 0;
      while (delivered[static_cast<std::size_t>(t)].load(
                 std::memory_order_acquire) < target) {
        if (abort.load(std::memory_order_relaxed)) {
          emit_sweep();
          return;
        }
        if (cancel != nullptr && (++spins & 1023) == 0 &&
            cancel->cancelled()) {
          abort.store(true, std::memory_order_relaxed);
          emit_sweep();
          return;
        }
        std::this_thread::yield();
      }
      // The task body: rows in stored order (level order for chains --
      // which is exactly what satisfies intra-task dependencies -- and a
      // single level's independent rows for blocks).
      for (offset_t p = graph.task_ptr[static_cast<std::size_t>(t)];
           p < graph.task_ptr[static_cast<std::size_t>(t) + 1]; ++p) {
        solve_one(graph.task_rows[static_cast<std::size_t>(p)], acc);
      }
      ++claimed;
      // Delivery fan-out to successor tasks: one increment per distinct
      // cross-task edge per batch (the x stores above must be visible
      // first, hence release semantics).
      for (offset_t e = graph.succ_ptr[static_cast<std::size_t>(t)];
           e < graph.succ_ptr[static_cast<std::size_t>(t) + 1]; ++e) {
        delivered[static_cast<std::size_t>(
                      graph.succ[static_cast<std::size_t>(e)])]
            .fetch_add(1, std::memory_order_acq_rel);
      }
    }
  });
  if (abort.load(std::memory_order_relaxed)) {
    ws.reset_delivery();
    return false;
  }
  return true;
}

}  // namespace

bool solve_lower_taskgraph_fused(const sparse::TaskGraph& graph,
                                 const sparse::CsrMatrix& row_form,
                                 std::span<const value_t> b, index_t num_rhs,
                                 SolveWorkspace& ws, std::span<value_t> x,
                                 const CancelToken* cancel) {
  const index_t n = row_form.rows;
  const std::size_t un = static_cast<std::size_t>(n);
  MSPTRSV_REQUIRE(num_rhs >= 1, "num_rhs must be >= 1");
  MSPTRSV_REQUIRE(b.size() == un * static_cast<std::size_t>(num_rhs) &&
                      x.size() == b.size(),
                  "batch must be column-major n x num_rhs");
  MSPTRSV_REQUIRE(graph.n == n, "task graph belongs to a different matrix");
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  return drive_taskgraph(graph, num_rhs, ws, cancel,
                         [&](index_t i, value_t* acc) {
                           gather_and_solve(row_form, i, b, k, un, acc, x);
                         });
}

bool solve_lower_taskgraph_fused_interleaved(
    const sparse::TaskGraph& graph, const sparse::CsrMatrix& row_form,
    const value_t* b, index_t num_rhs, SolveWorkspace& ws, value_t* x,
    const CancelToken* cancel) {
  MSPTRSV_REQUIRE(num_rhs >= 1, "num_rhs must be >= 1");
  MSPTRSV_REQUIRE(graph.n == row_form.rows,
                  "task graph belongs to a different matrix");
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  const AxpyFn axpy = axpy_kernel();
  return drive_taskgraph(
      graph, num_rhs, ws, cancel, [&](index_t i, value_t* acc) {
        gather_and_solve_interleaved(row_form, i, b, k, acc, x, axpy);
      });
}

bool solve_lower_levelset_fused(const sparse::CsrMatrix& row_form,
                                std::span<const value_t> b, index_t num_rhs,
                                const sparse::LevelAnalysis& analysis,
                                SolveWorkspace& ws, std::span<value_t> x,
                                const CancelToken* cancel) {
  const index_t n = row_form.rows;
  const std::size_t un = static_cast<std::size_t>(n);
  MSPTRSV_REQUIRE(num_rhs >= 1, "num_rhs must be >= 1");
  MSPTRSV_REQUIRE(b.size() == un * static_cast<std::size_t>(num_rhs) &&
                      x.size() == b.size(),
                  "batch must be column-major n x num_rhs");
  MSPTRSV_REQUIRE(analysis.n == n, "analysis belongs to a different matrix");
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  return drive_levelset(analysis, num_rhs, ws, cancel,
                        [&](index_t i, value_t* acc) {
                          gather_and_solve(row_form, i, b, k, un, acc, x);
                        });
}

bool solve_lower_levelset_fused_interleaved(
    const sparse::CsrMatrix& row_form, const value_t* b, index_t num_rhs,
    const sparse::LevelAnalysis& analysis, SolveWorkspace& ws, value_t* x,
    const CancelToken* cancel) {
  MSPTRSV_REQUIRE(num_rhs >= 1, "num_rhs must be >= 1");
  MSPTRSV_REQUIRE(analysis.n == row_form.rows,
                  "analysis belongs to a different matrix");
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  const AxpyFn axpy = axpy_kernel();
  return drive_levelset(
      analysis, num_rhs, ws, cancel, [&](index_t i, value_t* acc) {
        gather_and_solve_interleaved(row_form, i, b, k, acc, x, axpy);
      });
}

bool solve_lower_syncfree_fused(const sparse::CscMatrix& lower,
                                const sparse::CsrMatrix& row_form,
                                std::span<const value_t> b, index_t num_rhs,
                                std::span<const index_t> in_degrees,
                                SolveWorkspace& ws, std::span<value_t> x,
                                const CancelToken* cancel) {
  const index_t n = lower.rows;
  const std::size_t un = static_cast<std::size_t>(n);
  MSPTRSV_REQUIRE(num_rhs >= 1, "num_rhs must be >= 1");
  MSPTRSV_REQUIRE(b.size() == un * static_cast<std::size_t>(num_rhs) &&
                      x.size() == b.size(),
                  "batch must be column-major n x num_rhs");
  MSPTRSV_REQUIRE(row_form.rows == n && in_degrees.size() == un,
                  "row form / in-degrees sized for a different matrix");
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  return drive_syncfree(lower, in_degrees, num_rhs, ws, cancel,
                        [&](index_t i, value_t* acc) {
                          gather_and_solve(row_form, i, b, k, un, acc, x);
                        });
}

bool solve_lower_syncfree_fused_interleaved(
    const sparse::CscMatrix& lower, const sparse::CsrMatrix& row_form,
    const value_t* b, index_t num_rhs, std::span<const index_t> in_degrees,
    SolveWorkspace& ws, value_t* x, const CancelToken* cancel) {
  const index_t n = lower.rows;
  MSPTRSV_REQUIRE(num_rhs >= 1, "num_rhs must be >= 1");
  MSPTRSV_REQUIRE(row_form.rows == n &&
                      in_degrees.size() == static_cast<std::size_t>(n),
                  "row form / in-degrees sized for a different matrix");
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  const AxpyFn axpy = axpy_kernel();
  return drive_syncfree(
      lower, in_degrees, num_rhs, ws, cancel, [&](index_t i, value_t* acc) {
        gather_and_solve_interleaved(row_form, i, b, k, acc, x, axpy);
      });
}

std::vector<value_t> solve_lower_levelset_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    const sparse::LevelAnalysis& analysis, int num_threads,
    bool prevalidated) {
  if (!prevalidated) sparse::require_solvable_lower(lower);
  MSPTRSV_REQUIRE(b.size() == static_cast<std::size_t>(lower.rows),
                  "rhs length must match the matrix dimension");
  const sparse::CsrMatrix rows = sparse::csr_from_csc(lower);
  SolveWorkspace ws(resolve_cpu_threads(num_threads));
  std::vector<value_t> x(static_cast<std::size_t>(lower.rows));
  solve_lower_levelset_fused(rows, b, 1, analysis, ws, x);
  return x;
}

std::vector<value_t> solve_lower_syncfree_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    int num_threads) {
  // Pre-processing of the sync-free scheme: per-component in-degrees
  // (compute_in_degrees also validates the input).
  return solve_lower_syncfree_threads(lower, b,
                                      sparse::compute_in_degrees(lower),
                                      num_threads);
}

std::vector<value_t> solve_lower_syncfree_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    std::span<const index_t> in_degrees, int num_threads) {
  MSPTRSV_REQUIRE(b.size() == static_cast<std::size_t>(lower.rows),
                  "rhs length must match the matrix dimension");
  const sparse::CsrMatrix rows = sparse::csr_from_csc(lower);
  SolveWorkspace ws(resolve_cpu_threads(num_threads));
  std::vector<value_t> x(static_cast<std::size_t>(lower.rows));
  solve_lower_syncfree_fused(lower, rows, b, 1, in_degrees, ws, x);
  return x;
}

}  // namespace msptrsv::core
