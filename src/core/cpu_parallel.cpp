#include "core/cpu_parallel.hpp"

#include <atomic>
#include <barrier>
#include <thread>

#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {

namespace {

int resolve_threads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<int>(hw);
}

/// Lock-free add on a double via compare-exchange (the host-side analogue
/// of atomicAdd(double*) on the GPU).
void atomic_add(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<value_t> solve_lower_levelset_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    const sparse::LevelAnalysis& analysis, int num_threads,
    bool prevalidated) {
  if (!prevalidated) sparse::require_solvable_lower(lower);
  MSPTRSV_REQUIRE(b.size() == static_cast<std::size_t>(lower.rows),
                  "rhs length must match the matrix dimension");
  MSPTRSV_REQUIRE(analysis.n == lower.rows,
                  "analysis belongs to a different matrix");
  const index_t n = lower.rows;
  const int threads = resolve_threads(num_threads);

  std::vector<value_t> x(static_cast<std::size_t>(n));
  // Per-entry updates within one level can race on left_sum (two solved
  // columns updating the same later row), hence atomics.
  std::vector<std::atomic<double>> left_sum(static_cast<std::size_t>(n));
  for (auto& v : left_sum) v.store(0.0, std::memory_order_relaxed);

  std::barrier sync(threads);
  auto worker = [&](int tid) {
    for (index_t l = 0; l < analysis.num_levels; ++l) {
      const offset_t begin = analysis.level_ptr[static_cast<std::size_t>(l)];
      const offset_t end = analysis.level_ptr[static_cast<std::size_t>(l) + 1];
      for (offset_t p = begin + tid; p < end; p += threads) {
        const index_t i = analysis.order[static_cast<std::size_t>(p)];
        const offset_t d = lower.col_ptr[i];
        const value_t xi =
            (b[static_cast<std::size_t>(i)] -
             left_sum[static_cast<std::size_t>(i)].load(
                 std::memory_order_acquire)) /
            lower.val[d];
        x[static_cast<std::size_t>(i)] = xi;
        for (offset_t k = d + 1; k < lower.col_ptr[i + 1]; ++k) {
          atomic_add(left_sum[static_cast<std::size_t>(lower.row_idx[k])],
                     lower.val[k] * xi);
        }
      }
      sync.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();
  return x;
}

std::vector<value_t> solve_lower_syncfree_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    int num_threads) {
  // Pre-processing of the sync-free scheme: per-component in-degrees
  // (compute_in_degrees also validates the input).
  return solve_lower_syncfree_threads(lower, b,
                                      sparse::compute_in_degrees(lower),
                                      num_threads);
}

std::vector<value_t> solve_lower_syncfree_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    std::span<const index_t> in_degrees, int num_threads) {
  MSPTRSV_REQUIRE(b.size() == static_cast<std::size_t>(lower.rows),
                  "rhs length must match the matrix dimension");
  MSPTRSV_REQUIRE(in_degrees.size() == static_cast<std::size_t>(lower.rows),
                  "in-degrees sized for a different matrix");
  const index_t n = lower.rows;
  const int threads = resolve_threads(num_threads);

  // The countdown is consumed by the solve, so it is per-solve state either
  // way; the reuse path only skips the analysis passes over the structure.
  std::vector<std::atomic<index_t>> pending(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    pending[static_cast<std::size_t>(i)].store(
        in_degrees[static_cast<std::size_t>(i)], std::memory_order_relaxed);
  }

  std::vector<value_t> x(static_cast<std::size_t>(n));
  std::vector<std::atomic<double>> left_sum(static_cast<std::size_t>(n));
  for (auto& v : left_sum) v.store(0.0, std::memory_order_relaxed);

  // Ascending work claiming: thread-safe and deadlock-free (see header).
  std::atomic<index_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const index_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      // Lock-wait phase.
      while (pending[static_cast<std::size_t>(i)].load(
                 std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
      // Solve-update phase.
      const offset_t d = lower.col_ptr[i];
      const value_t xi =
          (b[static_cast<std::size_t>(i)] -
           left_sum[static_cast<std::size_t>(i)].load(
               std::memory_order_acquire)) /
          lower.val[d];
      x[static_cast<std::size_t>(i)] = xi;
      for (offset_t k = d + 1; k < lower.col_ptr[i + 1]; ++k) {
        const index_t rid = lower.row_idx[k];
        atomic_add(left_sum[static_cast<std::size_t>(rid)], lower.val[k] * xi);
        pending[static_cast<std::size_t>(rid)].fetch_sub(
            1, std::memory_order_acq_rel);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return x;
}

}  // namespace msptrsv::core
