#include "core/mg_engine.hpp"

#include <algorithm>
#include <queue>

#include "sparse/level_analysis.hpp"
#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {

namespace {

// The engine mirrors the execution semantics of the sync-free kernels:
// every GPU dispatches its components to warp slots IN ORDER (task launch
// order, ascending component id within a task) and a component OCCUPIES its
// slot for its entire lifetime -- lock-wait spin included -- until it
// retires. This dispatch-order admission is what makes the baseline block
// distribution suffer unidirectional waiting (a large-id GPU's resident
// warps all spin on small-id components owned by other GPUs), and what the
// round-robin task pool fixes.
//
// Progress/deadlock note (mirrors the real algorithm's argument): within a
// GPU, dispatch order is ascending in component id, so the globally
// smallest unsolved component is always already admitted, and its
// dependencies are solved; hence it can always retire. Cross-GPU waits
// cannot cycle for the same reason.

struct Event {
  sim_time_t t = 0.0;
  enum class Kind : int { kSlotFree = 0, kReady = 1 } kind = Kind::kSlotFree;
  index_t id = 0;  ///< gpu for kSlotFree, component for kReady

  bool operator>(const Event& o) const {
    if (t != o.t) return t > o.t;
    if (kind != o.kind) return static_cast<int>(kind) > static_cast<int>(o.kind);
    return id > o.id;
  }
};

}  // namespace

sim_time_t engine_analysis_us(const sparse::CscMatrix& lower,
                              const sparse::Partition& partition,
                              const sim::CostModel& cost) {
  std::vector<double> nnz_per_gpu(
      static_cast<std::size_t>(partition.num_gpus()), 0.0);
  for (index_t j = 0; j < lower.rows; ++j) {
    nnz_per_gpu[static_cast<std::size_t>(partition.owner_of(j))] +=
        static_cast<double>(lower.col_ptr[j + 1] - lower.col_ptr[j]);
  }
  double worst = 0.0;
  for (double w : nnz_per_gpu) {
    worst = std::max(worst, w * cost.indegree_per_nnz_us);
  }
  return worst;
}

EngineResult run_mg_engine(const sparse::CscMatrix& lower,
                           std::span<const value_t> b,
                           const sparse::Partition& partition,
                           const sim::Machine& machine, sim::Interconnect& net,
                           CommPolicy& comm, const EngineOptions& opts) {
  if (opts.in_degrees == nullptr) sparse::require_solvable_lower(lower);
  MSPTRSV_REQUIRE(opts.num_rhs >= 1 && opts.cost_rhs >= 1,
                  "batch widths must be >= 1");
  MSPTRSV_REQUIRE(b.size() == static_cast<std::size_t>(lower.rows) *
                                  static_cast<std::size_t>(opts.num_rhs),
                  "batch must be column-major n x num_rhs");
  MSPTRSV_REQUIRE(partition.n() == lower.rows,
                  "partition built for a different matrix size");
  MSPTRSV_REQUIRE(partition.num_gpus() <= machine.num_gpus(),
                  "partition uses more GPUs than the machine has");
  MSPTRSV_REQUIRE(partition.num_gpus() <= 32,
                  "contributor tracking supports at most 32 GPUs");

  const index_t n = lower.rows;
  const int num_gpus = partition.num_gpus();
  const sim::CostModel& cost = machine.cost;

  EngineResult out;
  sim::RunReport& rep = out.report;
  rep.machine_name = machine.name;
  rep.num_gpus = num_gpus;
  rep.busy_us_per_gpu.assign(static_cast<std::size_t>(num_gpus), 0.0);

  // ---- analysis phase (in-degree count, local per GPU, no inter-GPU
  // traffic in the NVSHMEM design; the unified design has the same
  // streaming cost shape). A plan-provided in-degree vector replaces the
  // recomputation; the countdown copy is per-solve state either way. -------
  MSPTRSV_REQUIRE(opts.in_degrees == nullptr ||
                      opts.in_degrees->size() == static_cast<std::size_t>(n),
                  "precomputed in-degrees sized for a different matrix");
  std::vector<index_t> remaining = opts.in_degrees
                                       ? *opts.in_degrees
                                       : sparse::compute_in_degrees(lower);
  if (opts.include_analysis) {
    rep.analysis_us = engine_analysis_us(lower, partition, cost);
  }

  // ---- dispatch lists and kernel launches ---------------------------------
  // Each task is one kernel; launches serialize on the owning GPU's stream.
  // The dispatch list of a GPU enumerates its components in task launch
  // order (ranges ascend with seq_on_gpu, so the list ascends in id).
  std::vector<sim_time_t> launch_floor(static_cast<std::size_t>(n), 0.0);
  std::vector<std::vector<index_t>> dispatch(
      static_cast<std::size_t>(num_gpus));
  {
    std::vector<const sparse::TaskRange*> ordered;
    for (const sparse::TaskRange& task : partition.tasks()) {
      ordered.push_back(&task);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const sparse::TaskRange* a, const sparse::TaskRange* b) {
                if (a->gpu != b->gpu) return a->gpu < b->gpu;
                return a->seq_on_gpu < b->seq_on_gpu;
              });
    for (const sparse::TaskRange* task : ordered) {
      const sim_time_t launch =
          static_cast<double>(task->seq_on_gpu + 1) * cost.kernel_launch_us;
      for (index_t i = task->begin; i < task->end; ++i) {
        launch_floor[static_cast<std::size_t>(i)] = launch;
        dispatch[static_cast<std::size_t>(task->gpu)].push_back(i);
      }
      rep.kernel_launches += 1;
    }
  }

  // ---- event-driven solve --------------------------------------------------
  // Component-major accumulators (cell(i, r) at i*k + r) keep the fused
  // per-component RHS sweep contiguous; x is column-major per the API.
  const std::size_t k = static_cast<std::size_t>(opts.num_rhs);
  const std::size_t un = static_cast<std::size_t>(n);
  std::vector<value_t> left_sum(un * k, 0.0);
  out.x.assign(un * k, 0.0);
  std::vector<std::uint32_t> contributors(static_cast<std::size_t>(n), 0);
  /// Latest dependency-visibility time per component.
  std::vector<sim_time_t> ready_floor(static_cast<std::size_t>(n), 0.0);
  /// Slot-admission time; NaN-free sentinel -1 = not yet admitted.
  std::vector<sim_time_t> admit_time(static_cast<std::size_t>(n), -1.0);

  std::vector<std::size_t> cursor(static_cast<std::size_t>(num_gpus), 0);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  sim_time_t makespan = 0.0;
  index_t solved = 0;
  std::vector<int> remote_gpus;  // scratch, decoded from the bitmask
  std::vector<value_t> xi(k);    // the solved component's rhs sweep

  // Solves component i; both its slot admission and its dependencies are
  // satisfied at `t`. Returns the slot-release time.
  auto solve_component = [&](index_t i, sim_time_t t) {
    const int gpu = partition.owner_of(i);

    remote_gpus.clear();
    const std::uint32_t mask = contributors[static_cast<std::size_t>(i)];
    for (int g = 0; g < num_gpus; ++g) {
      if (mask & (1u << g)) remote_gpus.push_back(g);
    }
    const sim_time_t gathered = comm.gather_before_solve(gpu, i, remote_gpus, t);

    const offset_t d = lower.col_ptr[i];
    const double fanout = static_cast<double>(lower.col_ptr[i + 1] - d - 1);
    // Fused batch: the warp activation + gather are per component, only
    // the floating-point work scales with the cost width.
    const sim_time_t solve_done =
        gathered + cost.solve_base_us +
        cost.solve_per_nnz_us * fanout * static_cast<double>(opts.cost_rhs);

    // Numeric solve (identical arithmetic to Algorithm 1's step, per rhs).
    // The sweep lands in a contiguous buffer so the fan-out below reads
    // it unit-stride instead of re-reading column-major x.
    const value_t diag = lower.val[d];
    for (std::size_t r = 0; r < k; ++r) {
      xi[r] = (b[r * un + static_cast<std::size_t>(i)] -
               left_sum[static_cast<std::size_t>(i) * k + r]) /
              diag;
      out.x[r * un + static_cast<std::size_t>(i)] = xi[r];
    }

    // Push updates to dependents. One warp issues them in sequence, so a
    // stalling update (fenced RMW chain) delays the rest -- `cursor_t`
    // threads the producer-side time through the fan-out. One update per
    // edge per batch: a fused update carries the whole RHS sweep.
    sim_time_t cursor_t = solve_done;
    for (offset_t e = d + 1; e < lower.col_ptr[i + 1]; ++e) {
      const index_t dep = lower.row_idx[e];
      value_t* dep_sum = left_sum.data() + static_cast<std::size_t>(dep) * k;
      for (std::size_t r = 0; r < k; ++r) {
        dep_sum[r] += lower.val[e] * xi[r];
      }
      const int dst = partition.owner_of(dep);
      const bool is_final = remaining[static_cast<std::size_t>(dep)] == 1;
      const UpdateTiming timing =
          comm.push_update(gpu, dst, dep, cursor_t, is_final);
      cursor_t = timing.producer_done;
      if (dst == gpu) {
        rep.local_updates += 1;
      } else {
        rep.remote_updates += 1;
        contributors[static_cast<std::size_t>(dep)] |=
            (1u << static_cast<unsigned>(gpu));
      }
      sim_time_t& floor = ready_floor[static_cast<std::size_t>(dep)];
      floor = std::max(floor, timing.visible);
      if (--remaining[static_cast<std::size_t>(dep)] == 0 &&
          admit_time[static_cast<std::size_t>(dep)] >= 0.0) {
        // The dependent is parked in a slot spinning; it proceeds once the
        // final update is visible (it is already admitted).
        events.push({std::max(floor, admit_time[static_cast<std::size_t>(dep)]),
                     Event::Kind::kReady, dep});
      }
    }

    const sim_time_t finish = cursor_t;  // the warp retires after its updates
    rep.busy_us_per_gpu[static_cast<std::size_t>(gpu)] += finish - t;
    makespan = std::max(makespan, finish);
    ++solved;
    return finish;
  };

  // Admission: a freed slot on `gpu` takes the next component in dispatch
  // order. If that component's dependencies are already satisfied it solves
  // right away; otherwise it parks (admitted, spinning) until its final
  // dependency's kReady fires.
  auto admit_next = [&](int gpu, sim_time_t t) {
    std::size_t& cur = cursor[static_cast<std::size_t>(gpu)];
    const std::vector<index_t>& list = dispatch[static_cast<std::size_t>(gpu)];
    if (cur >= list.size()) return;  // GPU fully dispatched; slot retires
    const index_t c = list[cur++];
    const sim_time_t admitted =
        std::max(t, launch_floor[static_cast<std::size_t>(c)]);
    admit_time[static_cast<std::size_t>(c)] = admitted;
    if (remaining[static_cast<std::size_t>(c)] == 0) {
      const sim_time_t start =
          std::max(admitted, ready_floor[static_cast<std::size_t>(c)]);
      const sim_time_t finish = solve_component(c, start);
      events.push({finish, Event::Kind::kSlotFree, static_cast<index_t>(gpu)});
    }
    // else: parked; its kReady event will retire it and free the slot.
  };

  for (int g = 0; g < num_gpus; ++g) {
    const std::size_t initial =
        std::min<std::size_t>(static_cast<std::size_t>(cost.warp_slots_per_gpu),
                              dispatch[static_cast<std::size_t>(g)].size());
    for (std::size_t s = 0; s < initial; ++s) {
      events.push({0.0, Event::Kind::kSlotFree, static_cast<index_t>(g)});
    }
  }

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    if (ev.kind == Event::Kind::kSlotFree) {
      admit_next(static_cast<int>(ev.id), ev.t);
    } else {
      const sim_time_t finish = solve_component(ev.id, ev.t);
      events.push({finish, Event::Kind::kSlotFree,
                   static_cast<index_t>(partition.owner_of(ev.id))});
    }
  }
  MSPTRSV_ENSURE(solved == n,
                 "engine deadlock: solved " + std::to_string(solved) + " of " +
                     std::to_string(n) + " components");

  rep.solve_us = makespan;
  comm.fill_report(rep);
  rep.link_bytes = net.total_bytes();
  rep.link_messages = net.total_messages();
  return out;
}

}  // namespace msptrsv::core
