// Umbrella header of the msptrsv library: multi-GPU zero-copy sparse
// triangular solver (reproduction of Xie et al., ICPP 2021) plus the
// sparse-matrix and multi-GPU-machine substrates it is built on.
//
// Typical use:
//
//   #include "core/msptrsv.hpp"
//   using namespace msptrsv;
//
//   sparse::CscMatrix L = sparse::gen_layered_dag(1 << 16, 64, 1 << 18,
//                                                 0.5, /*seed=*/42);
//   std::vector<value_t> x_ref = sparse::gen_solution(L.rows, 1);
//   std::vector<value_t> b = sparse::gen_rhs_for_solution(L, x_ref);
//
//   core::SolveOptions opt =
//       core::registry::default_options(core::Backend::kMgZeroCopy);
//   auto plan = core::SolverPlan::analyze(L, opt);   // analysis paid once
//   auto r = plan->solve(b);                          // reusable solves
//   // r->x ~= x_ref; r->report has simulated time, traffic, faults, ...
//   // one-shot: core::SolveResult r1 = core::solve(L, b, opt);
#pragma once

#include "core/cpu_parallel.hpp"
#include "core/levelset.hpp"
#include "core/mg_engine.hpp"
#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_snapshot.hpp"
#include "core/reference.hpp"
#include "core/registry.hpp"
#include "core/residual.hpp"
#include "core/solver.hpp"
#include "core/status.hpp"
#include "core/worker_pool.hpp"
#include "core/workspace.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"
#include "sim/report.hpp"
#include "sparse/factorization.hpp"
#include "sparse/generators.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/mmio.hpp"
#include "sparse/partition.hpp"
#include "sparse/serialize.hpp"
#include "sparse/suite.hpp"
#include "sparse/triangular.hpp"
#include "support/blob.hpp"

// The one upward edge from this umbrella: the multi-tenant solve service
// layered on top of core (service/ includes core/, never the reverse
// outside this convenience header). Include service/solve_service.hpp
// directly to avoid its <future>/<thread> weight.
#include "service/solve_service.hpp"

namespace msptrsv {

/// Library version, matching the CMake project version.
inline constexpr const char* kVersion = "1.0.0";

}  // namespace msptrsv
