// Serial reference solvers (the paper's Algorithm 1 and its backward
// counterpart). Every parallel backend is validated against these.
#pragma once

#include <span>
#include <vector>

#include "core/cancel.hpp"
#include "sparse/csc.hpp"

namespace msptrsv::core {

/// Forward substitution for Lx = b on a solvable lower-triangular CSC
/// matrix (Algorithm 1: column sweep with a left-sum accumulator).
std::vector<value_t> solve_lower_serial(const sparse::CscMatrix& lower,
                                        std::span<const value_t> b);

/// As solve_lower_serial but with no input validation: the caller has
/// already established the solvable-lower invariants and the rhs length
/// (e.g. SolverPlan::analyze). This is the reusable-execution form.
std::vector<value_t> solve_lower_serial_prevalidated(
    const sparse::CscMatrix& lower, std::span<const value_t> b);

/// Fused multi-RHS column sweep: one pass over the matrix structure solves
/// all `num_rhs` right-hand sides (`b` column-major n x num_rhs, result in
/// the same layout). For each rhs the floating-point operation order is
/// identical to solve_lower_serial_prevalidated, so fused and looped
/// execution agree bit-for-bit. No input validation (plan path).
std::vector<value_t> solve_lower_serial_fused(const sparse::CscMatrix& lower,
                                              std::span<const value_t> b,
                                              index_t num_rhs);

/// Cancellable form of the fused serial sweep: writes into `x` (sized
/// n*num_rhs by the caller) and checks `cancel` every few thousand
/// components. Returns false -- with `x` partially written, contents
/// unspecified -- when the token fires mid-solve. `cancel` may be null.
bool solve_lower_serial_fused(const sparse::CscMatrix& lower,
                              std::span<const value_t> b, index_t num_rhs,
                              const CancelToken* cancel,
                              std::span<value_t> x);

/// Interleaved-panel form of the fused serial sweep: `b` and `x` are
/// component-major n x num_rhs panels (entry i of rhs r at [i*num_rhs + r],
/// see RhsLayout::kInterleaved in solver.hpp), so every inner loop --
/// accumulator read, solve, fan-out update -- is unit-stride over the RHS
/// dimension. The per-rhs floating-point operation ORDER is identical to
/// the column-major sweep above, so the two layouts (and looped single
/// solves) agree bit-for-bit; only the addresses differ. Same cancel
/// contract as the column-major form.
bool solve_lower_serial_fused_interleaved(const sparse::CscMatrix& lower,
                                          const value_t* b, index_t num_rhs,
                                          const CancelToken* cancel,
                                          value_t* x);

/// Transposes a column-major n x num_rhs batch (entry i of rhs r at
/// [r*n + i]) into a component-major panel ([i*num_rhs + r]). The one
/// place the interleaved layout pays its transposition cost: once per
/// batch at the workspace boundary, O(n*k) sequential writes.
void pack_interleaved(std::span<const value_t> column_major, index_t n,
                      index_t num_rhs, value_t* panel);

/// Inverse of pack_interleaved: panel back to column-major.
void unpack_interleaved(const value_t* panel, index_t n, index_t num_rhs,
                        std::span<value_t> column_major);

/// Backward substitution for Ux = b on an upper-triangular CSC matrix with
/// a nonzero diagonal terminating each column.
std::vector<value_t> solve_upper_serial(const sparse::CscMatrix& upper,
                                        std::span<const value_t> b);

/// Reduction of Ux = b to the lower-triangular form every parallel backend
/// consumes: reverse-order both dimensions (L'(i,j) = U(n-1-i, n-1-j)),
/// solve L'x' = b', undo the reversal. Exposed so callers can run backward
/// substitution through any multi-GPU backend.
sparse::CscMatrix reverse_upper_to_lower(const sparse::CscMatrix& upper);

/// Reverses a vector (the rhs/solution transform that pairs with
/// reverse_upper_to_lower).
std::vector<value_t> reversed(std::span<const value_t> v);

}  // namespace msptrsv::core
