#include "core/reference.hpp"

#include <algorithm>

#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {

std::vector<value_t> solve_lower_serial(const sparse::CscMatrix& lower,
                                        std::span<const value_t> b) {
  sparse::require_solvable_lower(lower);
  MSPTRSV_REQUIRE(b.size() == static_cast<std::size_t>(lower.rows),
                  "rhs length must match the matrix dimension");
  return solve_lower_serial_prevalidated(lower, b);
}

std::vector<value_t> solve_lower_serial_prevalidated(
    const sparse::CscMatrix& lower, std::span<const value_t> b) {
  const index_t n = lower.rows;
  std::vector<value_t> x(static_cast<std::size_t>(n));
  std::vector<value_t> left_sum(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    // Diagonal leads the column by the solvable-lower invariant.
    const offset_t d = lower.col_ptr[i];
    const value_t xi =
        (b[static_cast<std::size_t>(i)] - left_sum[static_cast<std::size_t>(i)]) /
        lower.val[d];
    x[static_cast<std::size_t>(i)] = xi;
    for (offset_t k = d + 1; k < lower.col_ptr[i + 1]; ++k) {
      left_sum[static_cast<std::size_t>(lower.row_idx[k])] +=
          lower.val[k] * xi;
    }
  }
  return x;
}

std::vector<value_t> solve_lower_serial_fused(const sparse::CscMatrix& lower,
                                              std::span<const value_t> b,
                                              index_t num_rhs) {
  std::vector<value_t> x(static_cast<std::size_t>(lower.rows) *
                         static_cast<std::size_t>(num_rhs));
  solve_lower_serial_fused(lower, b, num_rhs, nullptr, x);
  return x;
}

bool solve_lower_serial_fused(const sparse::CscMatrix& lower,
                              std::span<const value_t> b, index_t num_rhs,
                              const CancelToken* cancel,
                              std::span<value_t> x) {
  const index_t n = lower.rows;
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  MSPTRSV_REQUIRE(num_rhs >= 1 && b.size() == un * k && x.size() == b.size(),
                  "batch must be column-major n x num_rhs");
  // Check stride: one clock read per ~4096 components keeps the budget
  // check invisible next to the gather work.
  constexpr index_t kCancelStride = 4096;
  // Component-major accumulators keep the per-component RHS sweep
  // contiguous (and vectorizable: no atomics on the serial path).
  std::vector<value_t> left_sum(un * k, 0.0);
  for (index_t i = 0; i < n; ++i) {
    if (cancel != nullptr && (i % kCancelStride) == 0 && cancel->cancelled()) {
      return false;
    }
    const offset_t d = lower.col_ptr[i];
    const value_t diag = lower.val[d];
    value_t* acc = left_sum.data() + static_cast<std::size_t>(i) * k;
    for (std::size_t r = 0; r < k; ++r) {
      x[r * un + static_cast<std::size_t>(i)] =
          (b[r * un + static_cast<std::size_t>(i)] - acc[r]) / diag;
    }
    for (offset_t e = d + 1; e < lower.col_ptr[i + 1]; ++e) {
      const value_t lv = lower.val[e];
      value_t* dep =
          left_sum.data() + static_cast<std::size_t>(lower.row_idx[e]) * k;
      for (std::size_t r = 0; r < k; ++r) {
        dep[r] += lv * x[r * un + static_cast<std::size_t>(i)];
      }
    }
  }
  return true;
}

bool solve_lower_serial_fused_interleaved(const sparse::CscMatrix& lower,
                                          const value_t* b, index_t num_rhs,
                                          const CancelToken* cancel,
                                          value_t* x) {
  const index_t n = lower.rows;
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  MSPTRSV_REQUIRE(num_rhs >= 1, "num_rhs must be >= 1");
  constexpr index_t kCancelStride = 4096;
  // The accumulators were already component-major in the column-major
  // sweep; with the panels interleaved too, EVERY loop below is
  // unit-stride and the compiler's vectorizer (plus omp simd) gets
  // straight-line contiguous arithmetic.
  std::vector<value_t> left_sum(static_cast<std::size_t>(n) * k, 0.0);
  for (index_t i = 0; i < n; ++i) {
    if (cancel != nullptr && (i % kCancelStride) == 0 && cancel->cancelled()) {
      return false;
    }
    const offset_t d = lower.col_ptr[i];
    const value_t diag = lower.val[d];
    const value_t* acc = left_sum.data() + static_cast<std::size_t>(i) * k;
    const value_t* bi = b + static_cast<std::size_t>(i) * k;
    value_t* xi = x + static_cast<std::size_t>(i) * k;
#pragma omp simd
    for (std::size_t r = 0; r < k; ++r) {
      xi[r] = (bi[r] - acc[r]) / diag;
    }
    for (offset_t e = d + 1; e < lower.col_ptr[i + 1]; ++e) {
      const value_t lv = lower.val[e];
      value_t* dep =
          left_sum.data() + static_cast<std::size_t>(lower.row_idx[e]) * k;
#pragma omp simd
      for (std::size_t r = 0; r < k; ++r) {
        dep[r] += lv * xi[r];
      }
    }
  }
  return true;
}

void pack_interleaved(std::span<const value_t> column_major, index_t n,
                      index_t num_rhs, value_t* panel) {
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  // Output-sequential: the writes stream; the k read streams (one per
  // rhs, stride n apart) each advance a cache line at a time.
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t r = 0; r < k; ++r) {
      panel[i * k + r] = column_major[r * un + i];
    }
  }
}

void unpack_interleaved(const value_t* panel, index_t n, index_t num_rhs,
                        std::span<value_t> column_major) {
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  // Output-sequential the other way round.
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t i = 0; i < un; ++i) {
      column_major[r * un + i] = panel[i * k + r];
    }
  }
}

std::vector<value_t> solve_upper_serial(const sparse::CscMatrix& upper,
                                        std::span<const value_t> b) {
  MSPTRSV_REQUIRE(upper.is_square(), "triangular solve requires a square matrix");
  MSPTRSV_REQUIRE(sparse::is_upper_triangular(upper),
                  "solve_upper_serial expects an upper-triangular matrix");
  MSPTRSV_REQUIRE(b.size() == static_cast<std::size_t>(upper.rows),
                  "rhs length must match the matrix dimension");
  const index_t n = upper.rows;
  std::vector<value_t> x(static_cast<std::size_t>(n));
  std::vector<value_t> right_sum(static_cast<std::size_t>(n), 0.0);
  for (index_t i = n - 1; i >= 0; --i) {
    // Diagonal terminates the column (rows sorted ascending).
    const offset_t last = upper.col_ptr[i + 1] - 1;
    MSPTRSV_REQUIRE(upper.col_ptr[i] <= last && upper.row_idx[last] == i &&
                        upper.val[last] != 0.0,
                    "upper factor is singular at column " + std::to_string(i));
    const value_t xi = (b[static_cast<std::size_t>(i)] -
                        right_sum[static_cast<std::size_t>(i)]) /
                       upper.val[last];
    x[static_cast<std::size_t>(i)] = xi;
    for (offset_t k = upper.col_ptr[i]; k < last; ++k) {
      right_sum[static_cast<std::size_t>(upper.row_idx[k])] +=
          upper.val[k] * xi;
    }
  }
  return x;
}

sparse::CscMatrix reverse_upper_to_lower(const sparse::CscMatrix& upper) {
  MSPTRSV_REQUIRE(sparse::is_upper_triangular(upper),
                  "reverse_upper_to_lower expects an upper-triangular matrix");
  const index_t n = upper.rows;
  sparse::CooMatrix coo;
  coo.rows = coo.cols = n;
  for (index_t j = 0; j < upper.cols; ++j) {
    for (offset_t k = upper.col_ptr[j]; k < upper.col_ptr[j + 1]; ++k) {
      coo.add(n - 1 - upper.row_idx[k], n - 1 - j, upper.val[k]);
    }
  }
  sparse::CscMatrix lower = sparse::csc_from_coo(std::move(coo));
  sparse::require_solvable_lower(lower);
  return lower;
}

std::vector<value_t> reversed(std::span<const value_t> v) {
  std::vector<value_t> out(v.rbegin(), v.rend());
  return out;
}

}  // namespace msptrsv::core
