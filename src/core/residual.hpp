// Solution-quality checks shared by tests, examples and benches.
#pragma once

#include <span>

#include "sparse/csc.hpp"

namespace msptrsv::core {

/// max_i |(Ax - b)_i|.
value_t residual_inf_norm(const sparse::CscMatrix& a,
                          std::span<const value_t> x,
                          std::span<const value_t> b);

/// ||Ax - b||_inf / ||b||_inf (0/0 treated as 0).
value_t relative_residual(const sparse::CscMatrix& a,
                          std::span<const value_t> x,
                          std::span<const value_t> b);

/// max_i |x_i - y_i| / max(1, |y_i|): component-wise relative difference
/// between a computed and a reference solution.
value_t max_relative_difference(std::span<const value_t> x,
                                std::span<const value_t> y);

}  // namespace msptrsv::core
