// Communication policy of Algorithm 2: shared intermediate arrays
// (s.in_degree, s.left_sum) in CUDA Unified Memory, system-wide atomics
// for remote updates, device-local d-arrays for local ones.
//
// Under system-scope atomics a managed page is exclusively owned; every
// remote update migrates the dependent's s-array pages to the writer, and
// the dependent's busy-wait loop immediately pulls the in-degree page back.
// That ping-pong -- two to three migrations per remote update -- is the
// thrashing behaviour the paper characterizes in Section III/Fig. 3.
#pragma once

#include "core/mg_engine.hpp"
#include "sim/unified_memory.hpp"

namespace msptrsv::core {

class UnifiedComm final : public CommPolicy {
 public:
  /// `n` is the component count (sizes both managed arrays).
  /// `batch_width` is the fused-batch RHS width k: a fused solve keeps k
  /// left-sum partials per component, so the managed s.left_sum array --
  /// and every page migration it suffers -- is k values wide. Message
  /// COUNTS stay per-edge (one update per dependency per batch); only the
  /// payload bytes scale.
  UnifiedComm(sim::Interconnect& net, const sim::CostModel& cost, int num_gpus,
              index_t n, index_t batch_width = 1);

  std::string name() const override { return "unified-memory"; }

  UpdateTiming push_update(int src_gpu, int dst_gpu, index_t dep,
                           sim_time_t issue, bool is_final) override;

  sim_time_t gather_before_solve(int gpu, index_t comp,
                                 std::span<const int> remote_gpus,
                                 sim_time_t start) override;

  void fill_report(sim::RunReport& report) const override;

  const sim::UnifiedMemoryStats& memory_stats() const { return um_.stats(); }

 private:
  const sim::CostModel& cost_;
  sim::UnifiedMemoryModel um_;
  int in_degree_region_;
  int left_sum_region_;
};

}  // namespace msptrsv::core
