#include "core/comm_unified.hpp"
#include <cstdio>
#include <cstdlib>

namespace msptrsv::core {

UnifiedComm::UnifiedComm(sim::Interconnect& net, const sim::CostModel& cost,
                         int num_gpus, index_t n, index_t batch_width)
    : cost_(cost), um_(net, cost, num_gpus) {
  in_degree_region_ = um_.create_region(n, sizeof(index_t));
  // One left-sum partial per RHS of the fused batch: pages (and the bytes
  // their migrations move) are batch_width values wide.
  left_sum_region_ =
      um_.create_region(n, static_cast<double>(batch_width) * sizeof(value_t));
}

UpdateTiming UnifiedComm::push_update(int src_gpu, int dst_gpu, index_t dep,
                                      sim_time_t issue, bool is_final) {
  if (src_gpu == dst_gpu) {
    // Device-local d-arrays: device-scope atomic pair; the local waiter
    // observes it after L2 propagation + half a poll iteration.
    const sim_time_t done = issue + cost_.atomic_local_us;
    return {done, done + cost_.local_visibility_us};
  }
  // System-wide atomics to s.left_sum[dep] / s.in_degree[dep]: the writing
  // warp proceeds once the requests are queued to the fabric; the page
  // migrations they trigger land on the page timelines.
  const sim_time_t producer_done = issue + cost_.atomic_system_us;
  sim_time_t t = um_.access(left_sum_region_, dep, src_gpu, issue);
  t = um_.access(in_degree_region_, dep, src_gpu, t);
  // The dependent's busy-wait loop polls s.in_degree[dep] and pulls the
  // page back to its own GPU (the return half of the thrashing ping-pong),
  // rate-limited by the fault service time. The final update books that
  // pull; earlier updates become visible with whichever pull follows them.
  sim_time_t visible;
  if (is_final) {
    visible = um_.poll_read(in_degree_region_, dep, dst_gpu, t) +
              0.5 * cost_.poll_quantum_us;
  } else {
    visible = um_.poll_visibility(in_degree_region_, dep, dst_gpu, t) +
              0.5 * cost_.poll_quantum_us;
  }
  return {producer_done, visible};
}

sim_time_t UnifiedComm::gather_before_solve(int gpu, index_t comp,
                                            std::span<const int> remote_gpus,
                                            sim_time_t start) {
  // The lock-wait exit re-reads s.in_degree[comp] (always, per Algorithm 2
  // line 17) ...
  sim_time_t t1 = um_.poll_read(in_degree_region_, comp, gpu, start);
  // ... and the solve reads s.left_sum[comp], which the last remote writer
  // may still own.
  sim_time_t t = t1;
  if (!remote_gpus.empty()) {
    t = um_.poll_read(left_sum_region_, comp, gpu, t1);
  }
  {
    static bool dbg = std::getenv("MSPTRSV_ENGINE_DEBUG") != nullptr;
    static int budget = 5;
    if (dbg && budget > 0 && t - start > 500.0) {
      --budget;
      std::fprintf(stderr,
                   "[gather] comp=%d gpu=%d start=%.1f indeg_done=%.1f "
                   "leftsum_done=%.1f indeg_owner=%d leftsum_owner=%d\n",
                   comp, gpu, start, t1, t,
                   um_.owner_of(in_degree_region_, comp),
                   um_.owner_of(left_sum_region_, comp));
    }
  }
  return t + cost_.atomic_local_us;
}

void UnifiedComm::fill_report(sim::RunReport& report) const {
  const sim::UnifiedMemoryStats& s = um_.stats();
  report.solver_name = "sptrsv-unified";
  report.page_faults = s.faults;
  report.page_migrations = s.migrations;
  report.page_migrated_bytes = s.migrated_bytes;
  report.page_faults_per_gpu = s.faults_per_gpu;
  report.page_pins = s.pins;
  report.direct_remote_accesses = s.direct_remote_accesses;
}

}  // namespace msptrsv::core
