#include "core/residual.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace msptrsv::core {

value_t residual_inf_norm(const sparse::CscMatrix& a,
                          std::span<const value_t> x,
                          std::span<const value_t> b) {
  MSPTRSV_REQUIRE(b.size() == static_cast<std::size_t>(a.rows),
                  "rhs length must match matrix rows");
  const std::vector<value_t> ax = sparse::multiply(a, x);
  value_t worst = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    worst = std::max(worst, std::abs(ax[i] - b[i]));
  }
  return worst;
}

value_t relative_residual(const sparse::CscMatrix& a,
                          std::span<const value_t> x,
                          std::span<const value_t> b) {
  value_t bnorm = 0.0;
  for (value_t v : b) bnorm = std::max(bnorm, std::abs(v));
  const value_t r = residual_inf_norm(a, x, b);
  if (bnorm == 0.0) return r == 0.0 ? 0.0 : r;
  return r / bnorm;
}

value_t max_relative_difference(std::span<const value_t> x,
                                std::span<const value_t> y) {
  MSPTRSV_REQUIRE(x.size() == y.size(), "vectors must have equal length");
  value_t worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const value_t denom = std::max<value_t>(1.0, std::abs(y[i]));
    worst = std::max(worst, std::abs(x[i] - y[i]) / denom);
  }
  return worst;
}

}  // namespace msptrsv::core
