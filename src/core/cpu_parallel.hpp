// Real multi-threaded host backends.
//
// These are genuinely parallel implementations (std::thread + atomics), not
// simulations: they validate the two parallelization strategies of
// Section II under true races and feed the micro-benchmarks.
//
//  * level-set: one barrier per level, components of a level split across
//    threads (Naumov's strategy);
//  * sync-free: all components active from the start; a component spins on
//    its delivery counter until its dependencies resolve (Liu's strategy).
//    Threads claim components in ascending id order from a shared counter,
//    which guarantees deadlock freedom: the smallest unsolved component is
//    always already claimed and its dependencies are all solved.
//
// Execution is PULL-based (the host analogue of the paper's read-only
// NVSHMEM gather, Algorithm 3): when a component's dependencies are known
// resolved -- by the level barrier or by its delivery counter -- it gathers
// its left-sum directly from the already-final x entries of its
// dependencies through a row-form (CSR) view of the factor cached at
// analysis time. Producers never push partial sums into shared
// accumulators, so the value path has no atomics at all; the only atomic
// traffic is the sync-free per-edge delivery increment, and that is paid
// once per edge per BATCH. A pleasant corollary: the per-rhs summation
// order is the ascending-column row order, independent of thread count and
// of the batch width, so fused and looped results agree bit-for-bit.
//
// The fused kernels solve all `num_rhs` right-hand sides of a batch in one
// dependency resolution and one sweep over the structure, with the
// per-component inner loop running over the RHS dimension. They run on a
// leased SolveWorkspace: persistent threads (no spawn/join per solve) and
// generation-tagged delivery counters (no O(n) scratch zeroing per solve)
// -- see workspace.hpp. The party count is PER RUN (ws.run_parallel
// reports it to the kernel lambda): a shared-pool gang may be narrower
// than the workspace cap when the machine is busy, and because the gather
// order is a property of the structure, not the schedule, the result bits
// do not depend on it. The legacy *_threads entry points below wrap the
// kernels with a throwaway workspace + row form for callers outside the
// plan API.
#pragma once

#include <span>
#include <vector>

#include "core/cancel.hpp"
#include "core/workspace.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/task_graph.hpp"

namespace msptrsv::core {

/// Fused level-set forward substitution for `num_rhs` right-hand sides.
/// `row_form` is the CSR view of the lower factor
/// (sparse::csr_from_csc(lower)); `b` and `x` are column-major
/// n x num_rhs (entry i of rhs r at [r*n + i]); `x` must be sized
/// n*num_rhs. No input validation: the caller (SolverPlan) established
/// the solvable-lower invariants at analysis time.
///
/// Cancellation: `cancel` (may be null) is checked by tid 0 once per level
/// BEFORE the level barrier; the abort flag is read by every party after
/// leaving it, so the whole gang exits at the same level with the barrier
/// coherent and the workspace immediately reusable. Returns false -- `x`
/// partially written, contents unspecified -- on abort, true on completion.
bool solve_lower_levelset_fused(const sparse::CsrMatrix& row_form,
                                std::span<const value_t> b, index_t num_rhs,
                                const sparse::LevelAnalysis& analysis,
                                SolveWorkspace& ws, std::span<value_t> x,
                                const CancelToken* cancel = nullptr);

/// Interleaved-panel form of the fused level-set kernel: `b` and `x` are
/// component-major n x num_rhs panels (entry i of rhs r at [i*num_rhs + r],
/// typically the workspace's panel_b/panel_x; pack_interleaved /
/// unpack_interleaved in reference.hpp do the boundary transposes). The
/// per-dependency gather becomes ONE contiguous axpy over the rhs
/// dimension, runtime-dispatched to AVX2 where available; per-rhs
/// operation order is unchanged, so results are bit-for-bit identical to
/// the column-major kernel at any thread count. Same workspace, barrier,
/// and cancel contracts as the column-major form.
bool solve_lower_levelset_fused_interleaved(
    const sparse::CsrMatrix& row_form, const value_t* b, index_t num_rhs,
    const sparse::LevelAnalysis& analysis, SolveWorkspace& ws, value_t* x,
    const CancelToken* cancel = nullptr);

/// Fused synchronization-free forward substitution; same batch layout and
/// workspace contract as solve_lower_levelset_fused. `lower` supplies the
/// column structure for the delivery fan-out, `row_form` the gather view.
///
/// Cancellation: checked on a stride inside the claim loop and on every
/// turn of the delivery spin (a cancelled gang must not spin on deliveries
/// that will never arrive). On abort the workspace's delivery counters are
/// mid-generation; the kernel resets them (reset_delivery) before
/// returning false, so the next solve on this workspace starts clean.
bool solve_lower_syncfree_fused(const sparse::CscMatrix& lower,
                                const sparse::CsrMatrix& row_form,
                                std::span<const value_t> b, index_t num_rhs,
                                std::span<const index_t> in_degrees,
                                SolveWorkspace& ws, std::span<value_t> x,
                                const CancelToken* cancel = nullptr);

/// Interleaved-panel form of the fused sync-free kernel (see the
/// level-set variant above for the panel contract). Same delivery
/// protocol, generation tagging, and abort/reset behavior as the
/// column-major form; bit-for-bit identical results.
bool solve_lower_syncfree_fused_interleaved(
    const sparse::CscMatrix& lower, const sparse::CsrMatrix& row_form,
    const value_t* b, index_t num_rhs, std::span<const index_t> in_degrees,
    SolveWorkspace& ws, value_t* x, const CancelToken* cancel = nullptr);

/// Fused task-graph forward substitution: executes a coarsened task DAG
/// (sparse::coarsen_levels) with the sync-free claim/delivery protocol
/// lifted from rows to TASKS. Threads claim tasks in ascending id order
/// and spin on per-task delivery counters (one per distinct cross-task
/// edge per batch); a task's rows then solve sequentially with the same
/// pull-based gather as the level-set kernel, so a fused chain of 1000
/// narrow levels costs one claim instead of 1000 barriers. The per-row
/// gather order is a property of the structure, not the schedule --
/// results are bit-for-bit identical to the level-set and sync-free
/// kernels at any thread count.
///
/// Cancellation: checked at TASK boundaries (every claim, and on a stride
/// inside the delivery spin). Same abort/reset_delivery contract as the
/// sync-free kernel; same batch layout and workspace contract as
/// solve_lower_levelset_fused.
bool solve_lower_taskgraph_fused(const sparse::TaskGraph& graph,
                                 const sparse::CsrMatrix& row_form,
                                 std::span<const value_t> b, index_t num_rhs,
                                 SolveWorkspace& ws, std::span<value_t> x,
                                 const CancelToken* cancel = nullptr);

/// Interleaved-panel form of the fused task-graph kernel (see the
/// level-set variant above for the panel contract). Bit-for-bit identical
/// results to every other host kernel.
bool solve_lower_taskgraph_fused_interleaved(
    const sparse::TaskGraph& graph, const sparse::CsrMatrix& row_form,
    const value_t* b, index_t num_rhs, SolveWorkspace& ws, value_t* x,
    const CancelToken* cancel = nullptr);

/// Level-set parallel forward substitution. `num_threads <= 0` uses
/// std::thread::hardware_concurrency(). The analysis is taken as input so
/// callers amortize it over repeated solves (the preconditioner use case).
/// `prevalidated` skips the per-solve input revalidation when the caller
/// already established the solvable-lower invariants at analysis time.
/// One-shot form: builds (and discards) a workspace and a row-form view
/// per call -- plans reuse both.
std::vector<value_t> solve_lower_levelset_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    const sparse::LevelAnalysis& analysis, int num_threads = 0,
    bool prevalidated = false);

/// Synchronization-free parallel forward substitution. Validates the input
/// and recomputes the in-degree preprocessing on every call.
std::vector<value_t> solve_lower_syncfree_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    int num_threads = 0);

/// Reuse form of the sync-free solver: consumes precomputed in-degrees
/// (sparse::compute_in_degrees) and skips revalidation. Still builds a
/// throwaway workspace + row form per call; SolverPlan reuses both.
std::vector<value_t> solve_lower_syncfree_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    std::span<const index_t> in_degrees, int num_threads = 0);

}  // namespace msptrsv::core
