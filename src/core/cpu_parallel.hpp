// Real multi-threaded host backends.
//
// These are genuinely parallel implementations (std::thread + atomics), not
// simulations: they validate the two parallelization strategies of
// Section II under true races and feed the micro-benchmarks.
//
//  * level-set: one barrier per level, components of a level split across
//    threads (Naumov's strategy);
//  * sync-free: all components active from the start; a component spins on
//    an atomic in-degree until its dependencies resolve (Liu's strategy).
//    Threads claim components in ascending id order from a shared counter,
//    which guarantees deadlock freedom: the smallest unsolved component is
//    always already claimed and its dependencies are all solved.
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/level_analysis.hpp"

namespace msptrsv::core {

/// Level-set parallel forward substitution. `num_threads <= 0` uses
/// std::thread::hardware_concurrency(). The analysis is taken as input so
/// callers amortize it over repeated solves (the preconditioner use case).
/// `prevalidated` skips the per-solve input revalidation when the caller
/// already established the solvable-lower invariants at analysis time.
std::vector<value_t> solve_lower_levelset_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    const sparse::LevelAnalysis& analysis, int num_threads = 0,
    bool prevalidated = false);

/// Synchronization-free parallel forward substitution. Validates the input
/// and recomputes the in-degree preprocessing on every call.
std::vector<value_t> solve_lower_syncfree_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    int num_threads = 0);

/// Reuse form of the sync-free solver: consumes precomputed in-degrees
/// (sparse::compute_in_degrees) and skips revalidation -- the amortized
/// path SolverPlan executes on every solve after one analyze().
std::vector<value_t> solve_lower_syncfree_threads(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    std::span<const index_t> in_degrees, int num_threads = 0);

}  // namespace msptrsv::core
