#include "core/worker_pool.hpp"

#include "support/contracts.hpp"

namespace msptrsv::core {

int resolve_cpu_threads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<int>(hw);
}

WorkerPool::WorkerPool(int parties) {
  MSPTRSV_REQUIRE(parties >= 1, "WorkerPool needs at least one party");
  workers_.reserve(static_cast<std::size_t>(parties - 1));
  for (int t = 1; t < parties; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& th : workers_) th.join();
}

void WorkerPool::run_job(Job job) {
  if (workers_.empty()) {
    job.invoke(job.ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    done_ = 0;
    failure_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();
  // The caller party runs tid 0. Whatever happens, every worker must
  // finish before run_job returns: the job (and the caller's stack it
  // points into) is borrowed, not owned.
  std::exception_ptr caller_failure;
  try {
    job.invoke(job.ctx, 0);
  } catch (...) {
    caller_failure = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return done_ == workers_.size(); });
  job_ = {nullptr, nullptr};
  if (caller_failure) std::rethrow_exception(caller_failure);
  if (failure_) std::rethrow_exception(failure_);
}

void WorkerPool::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    Job job{nullptr, nullptr};
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
      seen = epoch_;
      job = job_;
    }
    std::exception_ptr thrown;
    try {
      job.invoke(job.ctx, tid);
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (thrown && !failure_) failure_ = std::move(thrown);
      if (++done_ == workers_.size()) done_cv_.notify_one();
    }
  }
}

}  // namespace msptrsv::core
