#include "core/worker_pool.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "support/trace.hpp"

namespace msptrsv::core {

int resolve_cpu_threads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<int>(hw);
}

WorkerPool::WorkerPool(int parties, PoolOptions options) : options_(options) {
  MSPTRSV_REQUIRE(parties >= 1, "WorkerPool needs at least one party");
  workers_.reserve(static_cast<std::size_t>(parties - 1));
  for (int t = 1; t < parties; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& th : workers_) th.join();
}

void WorkerPool::run_job(Job job) {
  if (workers_.empty()) {
    job.invoke(job.ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    done_ = 0;
    failure_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();
  // The caller party runs tid 0. Whatever happens, every worker must
  // finish before run_job returns: the job (and the caller's stack it
  // points into) is borrowed, not owned.
  std::exception_ptr caller_failure;
  try {
    job.invoke(job.ctx, 0);
  } catch (...) {
    caller_failure = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return done_ == workers_.size(); });
  job_ = {nullptr, nullptr};
  if (caller_failure) std::rethrow_exception(caller_failure);
  if (failure_) std::rethrow_exception(failure_);
}

void WorkerPool::worker_loop(int tid) {
  // Pin once at spawn: the gang's tid doubles as the placement index (the
  // caller runs tid 0 unpinned, so workers start at index 1 -- compact
  // placement leaves CPU 0's slot for it). Best-effort; a refused
  // affinity call leaves the worker where the OS put it.
  support::pin_current_thread(
      support::numa_cpu_for_worker(options_.numa_policy, tid));
  std::uint64_t seen = 0;
  for (;;) {
    Job job{nullptr, nullptr};
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
      seen = epoch_;
      job = job_;
    }
    std::exception_ptr thrown;
    try {
      job.invoke(job.ctx, tid);
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (thrown && !failure_) failure_ = std::move(thrown);
      if (++done_ == workers_.size()) done_cv_.notify_one();
    }
  }
}

// ---- SharedWorkerPool ------------------------------------------------------

SharedWorkerPool::SharedWorkerPool(int threads, PoolOptions options)
    : options_(options) {
  MSPTRSV_REQUIRE(threads >= 1, "SharedWorkerPool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start only after every Worker slot exists: a fast first thread must
  // not steal-scan into unconstructed siblings.
  for (int t = 0; t < threads; ++t) {
    workers_[static_cast<std::size_t>(t)]->thread =
        std::thread([this, t] { worker_loop(t); });
  }
}

SharedWorkerPool::~SharedWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

namespace {
/// Pre-first-use size request for the process-wide pool (0 = hardware).
std::atomic<int> g_instance_threads{0};
/// Pre-first-use NUMA policy for the process-wide pool.
std::atomic<unsigned char> g_instance_numa{
    static_cast<unsigned char>(support::NumaPolicy::kNone)};
std::atomic<bool> g_instance_built{false};
}  // namespace

SharedWorkerPool& SharedWorkerPool::instance() {
  // Deliberately leaked: plans cached in other process-wide statics
  // (PlanCache) hold workspaces that point here, and static destruction
  // order between translation units is unspecified. A never-destroyed
  // pool outlives every client by construction.
  static SharedWorkerPool* pool = [] {
    g_instance_built.store(true, std::memory_order_release);
    PoolOptions opts;
    opts.numa_policy = static_cast<support::NumaPolicy>(
        g_instance_numa.load(std::memory_order_acquire));
    return new SharedWorkerPool(
        resolve_cpu_threads(
            g_instance_threads.load(std::memory_order_acquire)),
        opts);
  }();
  return *pool;
}

bool SharedWorkerPool::configure_instance_threads(int threads) {
  if (g_instance_built.load(std::memory_order_acquire)) return false;
  g_instance_threads.store(threads, std::memory_order_release);
  // The instance may have been built between the check and the store; the
  // flag is re-checked so callers get an honest answer either way.
  return !g_instance_built.load(std::memory_order_acquire);
}

bool SharedWorkerPool::configure_instance_numa(support::NumaPolicy policy) {
  if (g_instance_built.load(std::memory_order_acquire)) return false;
  g_instance_numa.store(static_cast<unsigned char>(policy),
                        std::memory_order_release);
  return !g_instance_built.load(std::memory_order_acquire);
}

void SharedWorkerPool::submit(std::function<void()> task, bool urgent) {
  const std::size_t victim =
      static_cast<std::size_t>(next_victim_.fetch_add(
          1, std::memory_order_relaxed)) %
      workers_.size();
  // Count BEFORE the task becomes visible: a worker that can see the
  // task in a deque must also see a non-zero urgent count.
  if (urgent) urgent_pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(workers_[victim]->deque_mutex);
    // Urgent tasks overtake every queued (untaken) normal one but stay
    // FIFO among themselves: a separate queue, drained first.
    if (urgent) {
      workers_[victim]->urgent_deque.push_back(std::move(task));
    } else {
      workers_[victim]->deque.push_back(std::move(task));
    }
  }
  {
    // Ticket AFTER the push: a worker that wins the ticket is guaranteed
    // to find a task in some deque (tickets and queued tasks are 1:1).
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  cv_.notify_one();
}

bool SharedWorkerPool::take_task(int self, std::function<void()>& out) {
  {
    Worker& me = *workers_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(me.deque_mutex);
    if (!me.urgent_deque.empty()) {
      out = std::move(me.urgent_deque.front());
      me.urgent_deque.pop_front();
      urgent_pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    if (!me.deque.empty()) {
      out = std::move(me.deque.front());
      me.deque.pop_front();
      return true;
    }
  }
  // Two steal sweeps, starting at a rotating victim so thieves spread
  // out: every sibling's urgent queue is drained before ANY normal task
  // is taken (a queued urgent dispatch must not wait behind a thief's
  // normal pick). Urgent steals take the front (oldest = most overdue);
  // normal steals take the classic back. The urgent sweep -- an extra
  // lock pass over every sibling -- is skipped entirely while the
  // urgent-pending hint reads zero (the common case); a stale zero only
  // costs one scan, which the ticket retry loop repeats.
  const std::size_t n = workers_.size();
  const std::size_t start = static_cast<std::size_t>(
      next_victim_.fetch_add(1, std::memory_order_relaxed));
  if (urgent_pending_.load(std::memory_order_acquire) > 0) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t v = (start + k) % n;
      if (v == static_cast<std::size_t>(self)) continue;
      Worker& victim = *workers_[v];
      std::lock_guard<std::mutex> lock(victim.deque_mutex);
      if (!victim.urgent_deque.empty()) {
        out = std::move(victim.urgent_deque.front());
        victim.urgent_deque.pop_front();
        urgent_pending_.fetch_sub(1, std::memory_order_relaxed);
        tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (v == static_cast<std::size_t>(self)) continue;
    Worker& victim = *workers_[v];
    std::lock_guard<std::mutex> lock(victim.deque_mutex);
    if (!victim.deque.empty()) {
      out = std::move(victim.deque.back());
      victim.deque.pop_back();
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void SharedWorkerPool::worker_loop(int self) {
  // Pin once at spawn by worker index (stable for the pool's lifetime, so
  // a worker's stolen tasks and gang slots always run near the pages it
  // first-touched). Best-effort.
  support::pin_current_thread(
      support::numa_cpu_for_worker(options_.numa_policy, self));
  Worker& me = *workers_[static_cast<std::size_t>(self)];
  for (;;) {
    GangRun* gang = nullptr;
    int gang_tid = 0;
    bool have_ticket = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (me.gang != nullptr && me.gang->ready) {
          gang = me.gang;
          gang_tid = me.gang_tid;
          me.gang = nullptr;
          // This wake-up may have consumed a task notify: pass it on so
          // the ticket is not stranded until the next unrelated wake.
          if (pending_ > 0) cv_.notify_one();
          break;
        }
        if (me.gang == nullptr) {
          if (stopping_) return;
          if (pending_ > 0) {
            --pending_;
            have_ticket = true;
            break;
          }
          me.parked = true;
          idle_.push_back(self);
        }
        cv_.wait(lock);
        if (me.parked) {
          // Woken for a reason other than a gang claim (a claim removes
          // us from the idle list itself): withdraw and re-evaluate.
          me.parked = false;
          idle_.erase(std::find(idle_.begin(), idle_.end(), self));
        }
      }
    }
    if (gang != nullptr) {
      std::exception_ptr thrown;
      try {
        gang->job.invoke(gang->job.ctx, gang_tid, gang->parties);
      } catch (...) {
        thrown = std::current_exception();
      }
      finish_member(*gang, std::move(thrown));
      continue;
    }
    if (have_ticket) {
      // A ticket guarantees a task exists somewhere; a transiently losing
      // scan (another holder grabbed "ours" first while theirs is still
      // in a deque) just rescans.
      std::function<void()> task;
      while (!take_task(self, task)) std::this_thread::yield();
      task();  // tasks are noexcept by contract (see submit)
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SharedWorkerPool::claim_members(int max_extra, GangRun& gang) {
  if (max_extra < 0) max_extra = 0;
  // Attribution: the claim is the contended part of a shared-pool solve
  // (mutex + idle-list scan), so it gets its own phase figure and -- when
  // tracing is armed -- its own span under the caller's context.
  const std::uint64_t claim_t0 = support::trace::trace_now_ns();
  // Reservation hint: cap this gang at its equal share of the pool,
  // counting the gangs already running PLUS this one. Purely a cap on the
  // ask -- the claim below still takes only workers idle right now, so
  // nothing ever blocks and the shrink-to-caller guarantee is intact. A
  // gang that would have taken more records the capping for observability.
  const int active = active_gangs_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (reserve_gangs_.load(std::memory_order_relaxed) && active > 1) {
    const int fair_parties = std::max(1, threads() / active);
    if (max_extra > fair_parties - 1) {
      max_extra = fair_parties - 1;
      gang_capped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const int take =
      std::min<int>(max_extra, static_cast<int>(idle_.size()));
  for (int i = 0; i < take; ++i) {
    const int w = idle_.back();
    idle_.pop_back();
    Worker& member = *workers_[static_cast<std::size_t>(w)];
    member.parked = false;
    member.gang = &gang;
    member.gang_tid = i + 1;
    gang.members.push_back(w);
  }
  gangs_.fetch_add(1, std::memory_order_relaxed);
  gang_members_.fetch_add(static_cast<std::uint64_t>(take),
                          std::memory_order_relaxed);
  if (take < max_extra) gang_shrinks_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t claim_t1 = support::trace::trace_now_ns();
  support::trace::phase_scratch().claim_us +=
      static_cast<double>(claim_t1 - claim_t0) * 1e-3;
  if (MSPTRSV_TRACE_ARMED()) {
    support::trace::trace_emit_here("pool.claim", claim_t0, claim_t1,
                                    "members", take, "active_gangs", active);
  }
}

int SharedWorkerPool::run_claimed(GangRun& gang, int parties) {
  gang.parties = parties;
  if (!gang.members.empty()) {
    gang.remaining.store(static_cast<int>(gang.members.size()),
                         std::memory_order_relaxed);
    {
      // Publish the job only now: claimed members wait for `ready` so a
      // spurious wake cannot run a half-built gang.
      std::lock_guard<std::mutex> lock(mutex_);
      gang.ready = true;
    }
    cv_.notify_all();
  }
  std::exception_ptr caller_failure;
  try {
    gang.job.invoke(gang.job.ctx, 0, parties);
  } catch (...) {
    caller_failure = std::current_exception();
  }
  if (!gang.members.empty()) {
    std::unique_lock<std::mutex> lock(mutex_);
    gang_cv_.wait(lock, [&] {
      return gang.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  // Every claim_members is paired with exactly one run_claimed (the
  // configure-throw path releases through a no-op job), so the active-gang
  // count is balanced here, after the last member finished.
  active_gangs_.fetch_sub(1, std::memory_order_acq_rel);
  if (caller_failure) std::rethrow_exception(caller_failure);
  if (gang.failure) std::rethrow_exception(gang.failure);
  return parties;
}

void SharedWorkerPool::finish_member(GangRun& gang,
                                     std::exception_ptr thrown) {
  if (thrown) {
    std::lock_guard<std::mutex> lock(gang.failure_mutex);
    if (!gang.failure) gang.failure = std::move(thrown);
  }
  if (gang.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last member out wakes the caller. The caller re-checks the count
    // under the mutex, so decrement-then-notify cannot lose the wakeup.
    std::lock_guard<std::mutex> lock(mutex_);
    gang_cv_.notify_all();
  }
}

SharedWorkerPool::Stats SharedWorkerPool::stats() const {
  Stats s;
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.gangs = gangs_.load(std::memory_order_relaxed);
  s.gang_members = gang_members_.load(std::memory_order_relaxed);
  s.gang_shrinks = gang_shrinks_.load(std::memory_order_relaxed);
  s.gang_capped = gang_capped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace msptrsv::core
