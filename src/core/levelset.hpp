// Simulated single-GPU level-set solver -- the cuSPARSE csrsv2() stand-in
// the paper's Fig. 10 normalizes against (Naumov's level-scheduling: one
// kernel + device synchronization per level).
#pragma once

#include <span>
#include <vector>

#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sparse/csc.hpp"
#include "sparse/level_analysis.hpp"

namespace msptrsv::core {

struct LevelSetResult {
  std::vector<value_t> x;
  sim::RunReport report;
};

/// Executes the level-set schedule numerically (producing x) while costing
/// it on one simulated GPU of `machine`:
///   solve time = sum over levels of
///     [per-level kernel-launch+sync overhead +
///      level work spread over the GPU's warp slots]
/// and analysis time = the level-set dependency-graph construction
/// (substantially more expensive than the sync-free in-degree count, one of
/// the paper's motivations for sync-free execution).
LevelSetResult solve_levelset_simulated(const sparse::CscMatrix& lower,
                                        std::span<const value_t> b,
                                        const sim::Machine& machine);

}  // namespace msptrsv::core
