// Simulated single-GPU level-set solver -- the cuSPARSE csrsv2() stand-in
// the paper's Fig. 10 normalizes against (Naumov's level-scheduling: one
// kernel + device synchronization per level).
#pragma once

#include <span>
#include <vector>

#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sparse/csc.hpp"
#include "sparse/level_analysis.hpp"

namespace msptrsv::core {

struct LevelSetResult {
  std::vector<value_t> x;
  sim::RunReport report;
};

/// Executes the level-set schedule numerically (producing x) while costing
/// it on one simulated GPU of `machine`:
///   solve time = sum over levels of
///     [per-level kernel-launch+sync overhead +
///      level work spread over the GPU's warp slots]
/// and analysis time = the level-set dependency-graph construction
/// (substantially more expensive than the sync-free in-degree count, one of
/// the paper's motivations for sync-free execution).
LevelSetResult solve_levelset_simulated(const sparse::CscMatrix& lower,
                                        std::span<const value_t> b,
                                        const sim::Machine& machine);

/// Reuse form: executes against a precomputed level analysis (the csrsv2
/// analyze/solve split). No revalidation; the analysis phase is charged to
/// the report only when `charge_analysis` is set -- SolverPlan charges it
/// once at analyze() time instead.
LevelSetResult solve_levelset_simulated(const sparse::CscMatrix& lower,
                                        std::span<const value_t> b,
                                        const sim::Machine& machine,
                                        const sparse::LevelAnalysis& analysis,
                                        bool charge_analysis);

/// Fused multi-RHS form: all `num_rhs` right-hand sides (`b` column-major
/// n x num_rhs) ride in ONE kernel per level, so the per-level
/// launch+synchronization overhead is paid once per level per batch -- not
/// once per level per rhs -- and only the floating-point work scales with
/// the batch. Dependency-update counts are likewise per-edge, not
/// per-edge-per-rhs (one update message carries the whole RHS sweep).
/// Numerics execute per rhs in the serial topological order, so the fused
/// result is bit-for-bit the looped result. No revalidation; analysis is
/// never charged here (the plan owns the one-time charge).
LevelSetResult solve_levelset_simulated_batch(
    const sparse::CscMatrix& lower, std::span<const value_t> b,
    index_t num_rhs, const sim::Machine& machine,
    const sparse::LevelAnalysis& analysis);

/// Simulated cost of the csrsv2_analysis-style level construction (several
/// passes over the structure; see the implementation note).
sim_time_t levelset_analysis_us(const sparse::CscMatrix& lower,
                                const sim::CostModel& cost);

}  // namespace msptrsv::core
