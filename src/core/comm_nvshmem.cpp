#include "core/comm_nvshmem.hpp"

#include <algorithm>
#include <cmath>

namespace msptrsv::core {

NvshmemComm::NvshmemComm(sim::Interconnect& net, const sim::CostModel& cost,
                         int num_pes, index_t n, NvshmemCommOptions options,
                         index_t batch_width)
    : cost_(cost), nv_(net, cost, num_pes), options_(options),
      num_pes_(num_pes),
      value_payload_bytes_(static_cast<double>(batch_width) * sizeof(value_t)) {
  // Collective symmetric allocation: s.left_sum and s.in_degree, full size
  // on every PE (the read-only model's memory cost; ~10% of total in the
  // paper's runs). A fused batch keeps batch_width left-sum partials per
  // component.
  nv_.symmetric_alloc(static_cast<double>(n) * value_payload_bytes_);
  nv_.symmetric_alloc(static_cast<double>(n) * sizeof(index_t));
  if (options_.naive_get_update_put) {
    entry_available_.assign(static_cast<std::size_t>(n), 0.0);
  }
}

UpdateTiming NvshmemComm::push_update(int src_gpu, int dst_gpu, index_t dep,
                                      sim_time_t issue, bool /*is_final*/) {
  if (src_gpu == dst_gpu) {
    // d-array update: device-scope atomic pair observed by the local
    // waiter after L2 propagation + half a poll iteration.
    const sim_time_t done = issue + cost_.atomic_local_us;
    return {done, done + cost_.local_visibility_us};
  }
  if (options_.naive_get_update_put) {
    // Remote read-modify-write of the owner's heap entry: the writer's warp
    // blocks through get + fence + put + fence, and the chain serializes
    // against every other writer of the same entry (Fig. 4's restriction).
    sim_time_t t =
        std::max(issue, entry_available_[static_cast<std::size_t>(dep)]);
    t = nv_.get(src_gpu, dst_gpu, value_payload_bytes_ + sizeof(index_t), t);
    t = nv_.fence(t);
    t = nv_.put(src_gpu, dst_gpu, value_payload_bytes_ + sizeof(index_t), t);
    t = nv_.fence(t);
    entry_available_[static_cast<std::size_t>(dep)] = t;
    // The owner sees it on its next poll of its own memory (local read).
    return {t, t + cost_.atomic_local_us};
  }
  // Read-only model: the writer updates its OWN s.left_sum[dep] and
  // s.in_degree[dep] with device-scope atomics -- no remote traffic, no
  // stall beyond the atomics themselves.
  const sim_time_t written = issue + 2.0 * cost_.atomic_local_us;
  // The dependent observes it on its next poll round: one uncontended
  // fine-grained get from the writer PE.
  return {written, written + nv_.poll_visibility_delay(dst_gpu, src_gpu)};
}

sim_time_t NvshmemComm::gather_before_solve(int gpu, index_t /*comp*/,
                                            std::span<const int> remote_gpus,
                                            sim_time_t start) {
  if (options_.naive_get_update_put) {
    // All state already lives at the owner: plain local reads.
    return start + cost_.atomic_local_us;
  }
  std::vector<int> pes(remote_gpus.begin(), remote_gpus.end());
  if (options_.gather_from_all_pes) {
    pes.clear();
    for (int pe = 0; pe < num_pes_; ++pe) {
      if (pe != gpu) pes.push_back(pe);
    }
  }
  if (pes.empty()) {
    // No remote contributions: the r.in_degree cache skipped every PE and
    // d-arrays hold everything.
    return start + cost_.atomic_local_us;
  }
  // Final poll round confirming the in-degree, then the left_sum gather;
  // both are warp-parallel gets combined by shuffle reduction.
  sim_time_t t = nv_.gather_reduce(gpu, pes, sizeof(index_t), start);
  t = nv_.gather_reduce(gpu, pes, value_payload_bytes_, t);
  if (options_.linear_reduction) {
    // Replace the two log2 reductions by O(P) loop summation: charge the
    // extra (P - log2(P)) shuffle-equivalent steps twice.
    const double lanes = static_cast<double>(pes.size() + 1);
    const double log_steps = std::ceil(std::log2(lanes));
    t += 2.0 * std::max(0.0, lanes - log_steps) * cost_.shuffle_us;
  }
  return t;
}

void NvshmemComm::fill_report(sim::RunReport& report) const {
  const sim::NvshmemStats& s = nv_.stats();
  report.solver_name = options_.naive_get_update_put
                           ? "sptrsv-nvshmem-naive"
                           : "sptrsv-nvshmem";
  report.nvshmem_gets = s.gets;
  report.nvshmem_puts = s.puts;
  report.nvshmem_fences = s.fences;
  report.gather_reductions = s.gather_reductions;
  report.nvshmem_bytes = s.bytes;
}

}  // namespace msptrsv::core
