// Process-wide, content-addressed cache of analyzed SolverPlans.
//
// A solve service that boots against many factors pays the symbolic phase
// once per DISTINCT (structure, configuration) pair, not once per request:
// plans are keyed by the matrix's structural hash (pattern + values)
// combined with the configuration fingerprint that shaped the analysis
// (backend, machine, task granularity). Hits return a shallow copy of the
// cached plan -- SolverPlan copies share their immutable symbolic state,
// so a hit costs one streaming content hash of the matrix (word-wise
// FNV, memory-bandwidth cheap) plus an O(1) map lookup, and concurrent
// solves on the returned plan are safe.
//
// Optionally the cache is backed by an on-disk directory of plan blobs
// (SolverPlan::save format): a memory miss probes `<dir>/<key>.plan`
// before re-analyzing, and freshly analyzed plans are written back
// best-effort. That is the cross-process half of the amortization story --
// a restarted service warm-starts from the blob directory at O(read).
// The directory is operable: fsck() sweeps it, validating every blob's
// CRC and checking its content hash and configuration against the
// filename key, pruning anything stale or corrupt.
//
// Bounded two ways (CacheOptions): at most `capacity` plans stay resident
// (count LRU), and -- when max_bytes is set -- their summed resident
// footprints (factor + snapshot arrays, SolverPlan::resident_bytes) stay
// under the byte budget. Either bound evicts from the LRU tail; evicted
// blobs, if any, stay on disk.
//
// Thread-safe: the index is mutex-guarded; the analysis itself runs
// OUTSIDE the lock, so two racing misses may both analyze (last insert
// wins) but never block each other or the hit path for long.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "sparse/serialize.hpp"

namespace msptrsv::core {

struct CacheOptions {
  /// Count bound: at most this many plans stay resident.
  std::size_t capacity = 32;
  /// Byte budget over the summed resident footprints; 0 = unbounded.
  /// An entry larger than the whole budget is returned to the caller but
  /// does not stay resident (the budget is honest, not advisory).
  std::size_t max_bytes = 0;
};

class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 32;

  explicit PlanCache(CacheOptions options);
  explicit PlanCache(std::size_t capacity = kDefaultCapacity)
      : PlanCache(CacheOptions{capacity, 0}) {}

  /// The process-wide instance the registry consults.
  static PlanCache& instance();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// The subset of `evictions` forced by the byte budget while the
    /// count capacity still had room.
    std::uint64_t byte_evictions = 0;
    /// Memory misses served by the on-disk blob directory.
    std::uint64_t disk_hits = 0;
    /// Freshly analyzed plans persisted to the blob directory.
    std::uint64_t disk_stores = 0;
  };

  /// Returns the cached plan for (lower's content, options' analysis
  /// fingerprint), analyzing -- and caching -- on miss. The cached plan
  /// OWNS a copy of the matrix, so the caller's `lower` need not outlive
  /// the cache. Analysis errors are returned verbatim and never cached.
  ///
  /// Note: the key covers the VALUES hash, so a matrix refresh is a new
  /// entry -- but calling update_values() on a returned plan mutates the
  /// shared cached state and desynchronizes it from its key. Prefer
  /// re-fetching through the cache over in-place refreshes of cached
  /// plans.
  Expected<SolverPlan> get_or_analyze(const sparse::CscMatrix& lower,
                                      const SolveOptions& options);

  /// Enables ("" disables) the on-disk blob directory. The directory must
  /// exist; blobs are named `<key>.plan`.
  void set_disk_directory(std::string dir);
  std::string disk_directory() const;

  /// Shrinking the capacity evicts LRU entries immediately.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;
  /// Shrinking the byte budget evicts LRU entries immediately (0 lifts
  /// the bound).
  void set_max_bytes(std::size_t max_bytes);
  std::size_t max_bytes() const;
  /// Summed resident footprint of the cached plans right now.
  std::size_t resident_bytes() const;
  std::size_t size() const;
  Stats stats() const;
  /// Drops every resident plan and zeroes the stats (disk blobs remain).
  void clear();

  // ---- disk-directory maintenance ------------------------------------------

  struct FsckReport {
    /// `*.plan` files examined.
    int scanned = 0;
    int valid = 0;
    /// Unreadable, truncated, CRC-corrupt, or wrong-format blobs.
    int corrupt = 0;
    /// Blobs that parse but whose content hash or analysis configuration
    /// disagrees with their filename key: stale leftovers of a renamed /
    /// refreshed matrix or an options change. A lookup would reject them
    /// at load anyway; fsck reclaims the bytes.
    int mismatched = 0;
    /// Bad files actually deleted (repair mode only).
    int pruned = 0;
    std::uint64_t bytes_freed = 0;
    /// One diagnostic line per bad file.
    std::vector<std::string> problems;
  };

  /// Sweeps the on-disk blob directory: reads every `*.plan` file,
  /// verifies the blob format and CRC, and checks the stored factor hash
  /// and (backend, num_gpus, tasks_per_gpu) identity against the filename
  /// key. With `repair` (the default) corrupt and mismatched blobs are
  /// deleted; otherwise the report only diagnoses. Other files in the
  /// directory are ignored. A cache without a disk directory reports
  /// zeroes. Safe to run concurrently with lookups: loads validate blobs
  /// independently and treat a vanished file as a plain miss.
  FsckReport fsck(bool repair = true);

  /// The cache key for (lower, options): hex content hash + configuration
  /// fingerprint, filename-safe. Exposed so tests and operators can
  /// correlate cache entries with blob files.
  static std::string key_of(const sparse::CscMatrix& lower,
                            const SolveOptions& options);

  /// As above, from an already-computed content hash -- for callers that
  /// hold the hash but not the matrix (a network server resolving a
  /// hash-reference plan open against the shared blob directory). Equal to
  /// key_of(m, options) whenever hash == sparse::hash_csc(m).
  static std::string key_of(const sparse::StructuralHash& hash,
                            const SolveOptions& options);

 private:
  struct Entry {
    std::string key;
    SolverPlan plan;
    std::size_t bytes = 0;
  };

  /// Looks up `key`, refreshing LRU order. Caller holds the lock.
  const SolverPlan* find_locked(const std::string& key);
  void insert_locked(const std::string& key, const SolverPlan& plan);
  void evict_to_budget_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t max_bytes_;
  std::size_t resident_bytes_ = 0;
  std::string disk_dir_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace msptrsv::core
