// Process-wide, content-addressed cache of analyzed SolverPlans.
//
// A solve service that boots against many factors pays the symbolic phase
// once per DISTINCT (structure, configuration) pair, not once per request:
// plans are keyed by the matrix's structural hash (pattern + values)
// combined with the configuration fingerprint that shaped the analysis
// (backend, machine, task granularity). Hits return a shallow copy of the
// cached plan -- SolverPlan copies share their immutable symbolic state,
// so a hit costs one streaming content hash of the matrix (word-wise
// FNV, memory-bandwidth cheap) plus an O(1) map lookup, and concurrent
// solves on the returned plan are safe.
//
// Optionally the cache is backed by an on-disk directory of plan blobs
// (SolverPlan::save format): a memory miss probes `<dir>/<key>.plan`
// before re-analyzing, and freshly analyzed plans are written back
// best-effort. That is the cross-process half of the amortization story --
// a restarted service warm-starts from the blob directory at O(read).
//
// Bounded LRU: at most `capacity` plans stay resident; the least recently
// used plan is evicted on overflow (its blob, if any, stays on disk).
// Thread-safe: the index is mutex-guarded; the analysis itself runs
// OUTSIDE the lock, so two racing misses may both analyze (last insert
// wins) but never block each other or the hit path for long.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/plan.hpp"

namespace msptrsv::core {

class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 32;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// The process-wide instance the registry consults.
  static PlanCache& instance();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Memory misses served by the on-disk blob directory.
    std::uint64_t disk_hits = 0;
    /// Freshly analyzed plans persisted to the blob directory.
    std::uint64_t disk_stores = 0;
  };

  /// Returns the cached plan for (lower's content, options' analysis
  /// fingerprint), analyzing -- and caching -- on miss. The cached plan
  /// OWNS a copy of the matrix, so the caller's `lower` need not outlive
  /// the cache. Analysis errors are returned verbatim and never cached.
  ///
  /// Note: the key covers the VALUES hash, so a matrix refresh is a new
  /// entry -- but calling update_values() on a returned plan mutates the
  /// shared cached state and desynchronizes it from its key. Prefer
  /// re-fetching through the cache over in-place refreshes of cached
  /// plans.
  Expected<SolverPlan> get_or_analyze(const sparse::CscMatrix& lower,
                                      const SolveOptions& options);

  /// Enables ("" disables) the on-disk blob directory. The directory must
  /// exist; blobs are named `<key>.plan`.
  void set_disk_directory(std::string dir);
  std::string disk_directory() const;

  /// Shrinking the capacity evicts LRU entries immediately.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;
  std::size_t size() const;
  Stats stats() const;
  /// Drops every resident plan and zeroes the stats (disk blobs remain).
  void clear();

  /// The cache key for (lower, options): hex content hash + configuration
  /// fingerprint, filename-safe. Exposed so tests and operators can
  /// correlate cache entries with blob files.
  static std::string key_of(const sparse::CscMatrix& lower,
                            const SolveOptions& options);

 private:
  struct Entry {
    std::string key;
    SolverPlan plan;
  };

  /// Looks up `key`, refreshing LRU order. Caller holds the lock.
  const SolverPlan* find_locked(const std::string& key);
  void insert_locked(const std::string& key, const SolverPlan& plan);
  void evict_to_capacity_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::string disk_dir_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace msptrsv::core
