// The solve wire protocol: length-prefixed binary frames riding the
// support/blob format.
//
// A frame on the wire is
//
//   [u32 little-endian byte length] [blob image of exactly that length]
//
// where the blob image is a standard support::BlobWriter product -- magic,
// format version (the PROTOCOL version: negotiated in the hello exchange),
// endian tag, payload, CRC-32C trailer. Reusing the blob substrate means
// the frame decoder IS the plan-blob decoder: the same fail-stop
// BlobReader that makes a corrupt plan file safe to load makes a hostile
// socket frame safe to parse -- every read is bounds-checked, a bad CRC or
// truncation latches an error instead of crashing, and array lengths are
// validated against the remaining payload before any allocation. There is
// no second hand-rolled parser to fuzz.
//
// Frame payload grammar (all frames):
//
//   u8  type          -- FrameType
//   u64 request_id    -- client-chosen; replies echo it (0 in hello/unso-
//                        licited errors). Requests may be PIPELINED: a
//                        client can have many ids in flight; replies are
//                        matched by id, and their order is unspecified.
//   ... type-specific fields (see each struct below)
//
// Error mapping: every request can be answered by an Error frame carrying
// a core::SolveStatus -- the service's typed statuses travel the wire
// unchanged (kOverloaded backpressure, kDeadlineExceeded shedding,
// kShapeMismatch validation), plus the two wire-specific ones:
// kProtocolError (the frame itself was bad; the server fail-stops the
// CONNECTION, never the process) and kNetworkError (socket-level failure,
// attached client-side). docs/PROTOCOL.md is the normative description.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "service/latency_histogram.hpp"
#include "service/priority.hpp"
#include "sparse/csc.hpp"
#include "sparse/serialize.hpp"
#include "support/blob.hpp"
#include "support/trace.hpp"
#include "support/types.hpp"

namespace msptrsv::net {

/// Protocol version stamped into every frame's blob header. The hello
/// exchange negotiates: the client offers [min, max], the server picks
/// its own version if in range and rejects otherwise.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Frames larger than this are a protocol violation in either direction
/// (guards the u32 length prefix against allocating attacker-chosen
/// sizes). Large enough for a ~100M-nonzero factor upload.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 256u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kOpenPlan = 3,
  kOpenOk = 4,
  kSolve = 5,
  kSolveOk = 6,
  kError = 7,
  kStats = 8,
  kStatsOk = 9,
  kDrain = 10,
  kDrainOk = 11,
  kPing = 12,
  kPong = 13,
  kFailpoint = 14,
  kFailpointOk = 15,
  kTraceDump = 16,
  kTraceDumpOk = 17,
};

struct HelloFrame {
  std::uint64_t request_id = 0;
  std::uint16_t min_version = kProtocolVersion;
  std::uint16_t max_version = kProtocolVersion;
  std::string client_name;
};

struct HelloOkFrame {
  std::uint64_t request_id = 0;
  std::uint16_t version = kProtocolVersion;
  std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::string server_name;
};

/// How an OpenPlan frame identifies the plan.
enum class OpenMode : std::uint8_t {
  /// The CSC factor travels in the frame; the server analyzes (or hits its
  /// plan cache / shared blob directory) under the backend's service
  /// options -- analyze-on-first-use over the wire.
  kMatrix = 0,
  /// A SolverPlan::serialize() blob travels in the frame; the server
  /// deserializes it (no analysis at all).
  kPlanBlob = 1,
  /// Only the structural hash travels; the server resolves it against
  /// plans already open in this process, then against the shared on-disk
  /// blob directory (the fleet-wide warm tier). kBadSnapshot when neither
  /// knows the hash.
  kHashRef = 2,
};

struct OpenPlanFrame {
  std::uint64_t request_id = 0;
  OpenMode mode = OpenMode::kMatrix;
  std::string backend_key;
  /// kMatrix: the factor. Other modes: empty.
  sparse::CscMatrix matrix;
  /// kPlanBlob: the serialized plan. Other modes: empty.
  std::vector<std::uint8_t> plan_blob;
  /// kHashRef: the content hash. Other modes: ignored.
  sparse::StructuralHash hash;
};

struct OpenOkFrame {
  std::uint64_t request_id = 0;
  /// Server-assigned handle, valid for the server process's lifetime and
  /// shared across connections (a reconnect to the SAME process may reuse
  /// it; the client library re-opens after reconnect anyway, which also
  /// covers a restarted server).
  std::uint64_t plan_id = 0;
  index_t rows = 0;
  sparse::StructuralHash hash;
  /// Where the plan came from: "cache" (service plan cache, memory or
  /// disk), "deserialized" (uploaded blob), "open" (already open in this
  /// server), "disk" (hash-ref resolved against the blob directory).
  std::string source;
};

struct SolveFrame {
  std::uint64_t request_id = 0;
  std::uint64_t plan_id = 0;
  index_t num_rhs = 1;
  service::Priority priority = service::Priority::kNormal;
  /// Start-by deadline relative to server receipt, microseconds; 0 = none.
  std::uint64_t deadline_us = 0;
  /// num_rhs columns, column-major, length = rows * num_rhs.
  std::vector<value_t> rhs;
  /// OPTIONAL TAIL FIELD (since the tracing layer): a 16-byte trace id
  /// propagated end to end. All-zero = absent; on the wire the 16 bytes
  /// are simply appended when set and omitted when not, so frames from
  /// pre-trace peers decode unchanged (docs/PROTOCOL.md, "Trace
  /// propagation").
  support::trace::TraceId trace_id{};
};

struct SolveOkFrame {
  std::uint64_t request_id = 0;
  /// Server-side submit-to-completion microseconds (the service latency,
  /// coalesce wait included; the wire adds more on top).
  double server_us = 0.0;
  std::vector<value_t> x;
  /// OPTIONAL TAIL FIELD: per-reply phase attribution (7 f64
  /// microsecond fields in declaration order), appended when
  /// `has_phases`; absent frames from pre-trace servers decode with
  /// has_phases == false.
  bool has_phases = false;
  support::trace::PhaseBreakdown phases;
};

struct ErrorFrame {
  std::uint64_t request_id = 0;
  core::SolveStatus status = core::SolveStatus::kInternalError;
  std::string message;
};

enum class StatsFormat : std::uint8_t {
  /// Prometheus text exposition (the /metrics answer).
  kPrometheus = 0,
  /// Binary WireStats (mergeable across shards; the router tier's path).
  kBinary = 1,
};

struct StatsFrame {
  std::uint64_t request_id = 0;
  StatsFormat format = StatsFormat::kPrometheus;
};

/// Mergeable server statistics: the counters a fleet aggregates by plain
/// addition plus the HDR-style latency histograms (overall + per priority
/// class). This is both the kBinary stats payload and the router's
/// aggregation state.
struct WireStats {
  // Service counters (right-hand sides).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_rhs = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t peak_queue_depth = 0;
  // Server counters.
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t plans_open = 0;

  // Plan-cache counters (core::PlanCache::Stats, lifted to the wire so
  // the fleet's warm-tier effectiveness is scrapeable: msptrsv_plan_cache_*
  // in render_prometheus).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_byte_evictions = 0;
  std::uint64_t cache_disk_hits = 0;
  std::uint64_t cache_disk_stores = 0;

  service::LatencyHistogramSnapshot latency;
  struct PerClass {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    service::LatencyHistogramSnapshot latency;
  };
  std::array<PerClass, service::kNumPriorities> per_class{};

  /// Per-phase latency histograms (support::trace::kPhaseNames order):
  /// where a reply's microseconds went, mergeable like the others.
  std::array<service::LatencyHistogramSnapshot, support::trace::kNumPhases>
      phases{};

  /// Fleet aggregation: counters add, histograms merge. queue_depth and
  /// connections_active sum (they are gauges of disjoint shards);
  /// peak_queue_depth takes the max (peaks do not add across shards).
  void merge(const WireStats& other);
};

struct StatsOkFrame {
  std::uint64_t request_id = 0;
  StatsFormat format = StatsFormat::kPrometheus;
  /// kPrometheus payload.
  std::string text;
  /// kBinary payload.
  WireStats stats;
};

struct DrainFrame {
  std::uint64_t request_id = 0;
};

struct DrainOkFrame {
  std::uint64_t request_id = 0;
  /// Right-hand sides the server has completed over its lifetime, read
  /// after the drain -- a barrier token the caller can log.
  std::uint64_t completed = 0;
};

/// Liveness probe: the server answers Pong from the connection thread
/// without touching the solve path, so a Pong proves "process up, accept
/// loop alive, this connection's reader/writer intact" -- exactly what the
/// router's health prober needs -- while saying nothing about solve
/// latency (that is what the stats frame is for).
struct PingFrame {
  std::uint64_t request_id = 0;
};

struct PongFrame {
  std::uint64_t request_id = 0;
};

/// Remote failpoint control (TEST BUILDS ONLY: the server refuses this
/// frame with kInvalidOptions unless it was started with failpoint control
/// explicitly enabled -- see ServerOptions::allow_failpoint_control).
/// Empty `name` clears every armed failpoint; otherwise `spec` follows the
/// support/failpoint.hpp grammar ("error(8)*2", "delay(5000)", "off", ...).
struct FailpointFrame {
  std::uint64_t request_id = 0;
  std::string name;
  std::string spec;
};

struct FailpointOkFrame {
  std::uint64_t request_id = 0;
  /// Number of failpoints armed in the server process after applying.
  std::uint32_t armed = 0;
};

/// Trace-dump request: asks the server for its buffered spans as Chrome
/// trace-event JSON. Read-only (safe to leave enabled in production --
/// dumping reveals only timings the stats frame already aggregates).
struct TraceDumpFrame {
  std::uint64_t request_id = 0;
  /// 32-hex-char trace id filter; empty = every buffered event.
  std::string filter;
  /// Also include the slow-request sampler's retained trees.
  bool include_slow = true;
};

struct TraceDumpOkFrame {
  std::uint64_t request_id = 0;
  /// {"traceEvents":[...]} document (empty array when tracing is
  /// disarmed or compiled out).
  std::string json;
  /// The slow sampler's document ("" unless include_slow was set).
  std::string slow_json;
};

// ---- encoding --------------------------------------------------------------
// Each encode_* returns the complete WIRE bytes: length prefix + blob
// image. Writers never fail.

std::vector<std::uint8_t> encode_hello(const HelloFrame& f);
std::vector<std::uint8_t> encode_hello_ok(const HelloOkFrame& f);
std::vector<std::uint8_t> encode_open_plan(const OpenPlanFrame& f);
std::vector<std::uint8_t> encode_open_ok(const OpenOkFrame& f);
std::vector<std::uint8_t> encode_solve(const SolveFrame& f);
std::vector<std::uint8_t> encode_solve_ok(const SolveOkFrame& f);
std::vector<std::uint8_t> encode_error(const ErrorFrame& f);
std::vector<std::uint8_t> encode_stats(const StatsFrame& f);
std::vector<std::uint8_t> encode_stats_ok(const StatsOkFrame& f);
std::vector<std::uint8_t> encode_drain(const DrainFrame& f);
std::vector<std::uint8_t> encode_drain_ok(const DrainOkFrame& f);
std::vector<std::uint8_t> encode_ping(const PingFrame& f);
std::vector<std::uint8_t> encode_pong(const PongFrame& f);
std::vector<std::uint8_t> encode_failpoint(const FailpointFrame& f);
std::vector<std::uint8_t> encode_failpoint_ok(const FailpointOkFrame& f);
std::vector<std::uint8_t> encode_trace_dump(const TraceDumpFrame& f);
std::vector<std::uint8_t> encode_trace_dump_ok(const TraceDumpOkFrame& f);

// ---- decoding --------------------------------------------------------------

/// A decoded frame header: the type plus a ready-positioned BlobReader for
/// the type-specific fields. peek_frame validates the blob (magic,
/// version, CRC) and reads type + request_id; on any violation it returns
/// kProtocolError and the connection should fail-stop. The reader BORROWS
/// `blob`: the bytes must outlive the FrameHead (read_frame's vector does).
struct FrameHead {
  FrameType type;
  std::uint64_t request_id = 0;
  support::BlobReader reader;
};

core::Expected<FrameHead> peek_frame(std::span<const std::uint8_t> blob);

/// Type-specific decoders: consume the remaining payload of `head.reader`
/// (as positioned by peek_frame) and bounds-check every field; the frame
/// must also be fully consumed (trailing garbage is a protocol error).
core::Expected<HelloFrame> decode_hello(FrameHead& head);
core::Expected<HelloOkFrame> decode_hello_ok(FrameHead& head);
core::Expected<OpenPlanFrame> decode_open_plan(FrameHead& head);
core::Expected<OpenOkFrame> decode_open_ok(FrameHead& head);
core::Expected<SolveFrame> decode_solve(FrameHead& head);
core::Expected<SolveOkFrame> decode_solve_ok(FrameHead& head);
core::Expected<ErrorFrame> decode_error(FrameHead& head);
core::Expected<StatsFrame> decode_stats(FrameHead& head);
core::Expected<StatsOkFrame> decode_stats_ok(FrameHead& head);
core::Expected<DrainFrame> decode_drain(FrameHead& head);
core::Expected<DrainOkFrame> decode_drain_ok(FrameHead& head);
core::Expected<PingFrame> decode_ping(FrameHead& head);
core::Expected<PongFrame> decode_pong(FrameHead& head);
core::Expected<FailpointFrame> decode_failpoint(FrameHead& head);
core::Expected<FailpointOkFrame> decode_failpoint_ok(FrameHead& head);
core::Expected<TraceDumpFrame> decode_trace_dump(FrameHead& head);
core::Expected<TraceDumpOkFrame> decode_trace_dump_ok(FrameHead& head);

// ---- socket framing --------------------------------------------------------

class Socket;  // net/socket.hpp

/// Writes one already-encoded frame (the encode_* output) to the socket.
core::Expected<bool> write_frame(Socket& sock,
                                 std::span<const std::uint8_t> wire);

/// Reads one frame: the u32 length prefix (validated against
/// `max_frame_bytes` BEFORE allocating), then exactly that many blob
/// bytes. Returns the blob image (length prefix stripped); an empty
/// optional means the peer closed cleanly between frames. kProtocolError
/// for an oversized or undersized length, kNetworkError for socket
/// failures.
core::Expected<std::optional<std::vector<std::uint8_t>>> read_frame(
    Socket& sock, std::uint32_t max_frame_bytes);

}  // namespace msptrsv::net
