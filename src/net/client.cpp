#include "net/client.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "support/trace.hpp"

namespace msptrsv::net {

namespace {

using core::Expected;
using core::SolveStatus;

}  // namespace

/// Decodes a raw reply blob expected to be SolveOk into the solution
/// vector; an Error frame comes back as its typed status.
Expected<std::vector<value_t>> decode_solve_reply(
    std::vector<std::uint8_t> blob) {
  Expected<FrameHead> head = peek_frame(blob);
  if (!head.ok()) return Expected<std::vector<value_t>>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<std::vector<value_t>>(err.error());
    return Expected<std::vector<value_t>>(err.value().status,
                                          err.value().message);
  }
  if (head.value().type != FrameType::kSolveOk) {
    return Expected<std::vector<value_t>>(
        SolveStatus::kProtocolError,
        "expected solve-ok, got frame type " +
            std::to_string(static_cast<int>(head.value().type)));
  }
  Expected<SolveOkFrame> ok = decode_solve_ok(head.value());
  if (!ok.ok()) return Expected<std::vector<value_t>>(ok.error());
  return std::move(ok.value().x);
}

SolveClient::SolveClient(ClientOptions options)
    : options_(std::move(options)),
      frame_bytes_(options_.max_frame_bytes),
      rng_(options_.retry.seed) {}

SolveClient::~SolveClient() { close(); }

bool SolveClient::connected() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return connected_;
}

void SolveClient::close() {
  std::thread stale;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (connected_) {
      connected_ = false;
      sock_.shutdown_read();
      fail_pending_locked("client closed");
    }
    stale = std::move(reader_);
  }
  if (stale.joinable()) stale.join();
  std::lock_guard<std::mutex> lock(state_mutex_);
  sock_.close();
}

Expected<bool> SolveClient::connect() {
  // Join a stale reader first (it exits as soon as its socket dies); the
  // join must not hold state_mutex_ -- the reader takes it to finish.
  std::thread stale;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (connected_) return true;
    stale = std::move(reader_);
  }
  if (stale.joinable()) stale.join();

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (connected_) return true;  // raced with another caller's connect
    Expected<bool> handshake = connect_locked();
    if (!handshake.ok()) return handshake;
  }

  // Replay plan opens (reader is live; these ride the pending map like
  // any request). A replay failure poisons the fresh connection -- the
  // handle the caller holds MUST be valid once connect() returns ok.
  std::size_t nspecs;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    nspecs = specs_.size();
  }
  for (std::size_t i = 0; i < nspecs; ++i) {
    OpenSpec spec;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      spec = specs_[i];  // copy: the open runs unlocked
    }
    Expected<OpenOkFrame> ok = open_on_wire(spec);
    if (!ok.ok()) {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (connected_) {
        connected_ = false;
        sock_.shutdown_read();
        fail_pending_locked("open replay failed: " + ok.message());
      }
      return Expected<bool>(ok.error());
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    specs_[i].plan_id = ok.value().plan_id;
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    stats_.reconnects += 1;
  }
  return true;
}

Expected<bool> SolveClient::connect_locked() {
  Expected<Socket> sock = tcp_connect(options_.host, options_.port);
  if (!sock.ok()) return Expected<bool>(sock.error());
  sock_ = std::move(sock.value());

  // Synchronous hello exchange BEFORE the reader exists: nobody else
  // touches the socket yet, so direct I/O is race-free.
  HelloFrame hello;
  hello.request_id = next_request_id_++;
  hello.client_name = options_.client_name;
  Expected<bool> sent = sock_.send_all(encode_hello(hello));
  if (!sent.ok()) return sent;
  Expected<std::optional<std::vector<std::uint8_t>>> frame =
      read_frame(sock_, options_.max_frame_bytes);
  if (!frame.ok()) return Expected<bool>(frame.error());
  if (!frame.value().has_value()) {
    return Expected<bool>(SolveStatus::kNetworkError,
                          "server closed during the hello exchange");
  }
  Expected<FrameHead> head = peek_frame(*frame.value());
  if (!head.ok()) return Expected<bool>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<bool>(err.error());
    return Expected<bool>(err.value().status, err.value().message);
  }
  Expected<HelloOkFrame> ok = decode_hello_ok(head.value());
  if (!ok.ok()) return Expected<bool>(ok.error());
  frame_bytes_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(options_.max_frame_bytes,
                              std::max<std::uint64_t>(
                                  ok.value().max_frame_bytes,
                                  support::kBlobMinBytes + 9)));

  connected_ = true;
  const std::uint64_t epoch = ++epoch_;
  reader_ = std::thread([this, epoch] { reader_loop(epoch); });
  return true;
}

void SolveClient::reader_loop(std::uint64_t epoch) {
  for (;;) {
    // Unlocked read: this thread is the socket's only reader, and the
    // socket object stays alive until this thread is joined.
    Expected<std::optional<std::vector<std::uint8_t>>> frame =
        read_frame(sock_, frame_bytes_);
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (epoch_ != epoch || !connected_) return;  // superseded
    if (!frame.ok() || !frame.value().has_value()) {
      connected_ = false;
      sock_.shutdown_read();
      fail_pending_locked(frame.ok() ? "server closed the connection"
                                     : frame.message());
      return;
    }
    std::vector<std::uint8_t> blob = std::move(*frame.value());
    Expected<FrameHead> head = peek_frame(blob);
    if (!head.ok()) {
      // The server is speaking garbage: fail-stop our side too.
      connected_ = false;
      sock_.shutdown_read();
      fail_pending_locked(head.message());
      return;
    }
    auto it = pending_.find(head.value().request_id);
    if (it == pending_.end()) continue;  // unsolicited; ignore
    std::promise<RawReply> promise = std::move(it->second);
    pending_.erase(it);
    promise.set_value(std::move(blob));
  }
}

void SolveClient::fail_pending_locked(const std::string& why) {
  for (auto& [id, promise] : pending_) {
    promise.set_value(RawReply(SolveStatus::kNetworkError, why));
  }
  pending_.clear();
}

std::future<SolveClient::RawReply> SolveClient::request_locked(
    std::uint64_t request_id, const std::vector<std::uint8_t>& wire) {
  std::promise<RawReply> promise;
  std::future<RawReply> future = promise.get_future();
  if (!connected_) {
    promise.set_value(RawReply(SolveStatus::kNetworkError, "not connected"));
    return future;
  }
  pending_.emplace(request_id, std::move(promise));
  Expected<bool> sent = sock_.send_all(wire);
  if (!sent.ok()) {
    auto it = pending_.find(request_id);
    if (it != pending_.end()) {
      it->second.set_value(RawReply(sent.error()));
      pending_.erase(it);
    }
    connected_ = false;
    sock_.shutdown_read();  // kick the reader
    fail_pending_locked("send failed: " + sent.message());
  }
  return future;
}

Expected<OpenOkFrame> SolveClient::open_on_wire(OpenSpec& spec) {
  std::future<RawReply> future;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const std::uint64_t id = next_request_id_++;
    OpenPlanFrame frame;
    frame.request_id = id;
    frame.mode = spec.mode;
    frame.backend_key = spec.backend_key;
    frame.matrix = spec.matrix;
    frame.plan_blob = spec.plan_blob;
    frame.hash = spec.hash;
    future = request_locked(id, encode_open_plan(frame));
  }
  RawReply raw = future.get();
  if (!raw.ok()) return Expected<OpenOkFrame>(raw.error());
  Expected<FrameHead> head = peek_frame(raw.value());
  if (!head.ok()) return Expected<OpenOkFrame>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<OpenOkFrame>(err.error());
    return Expected<OpenOkFrame>(err.value().status, err.value().message);
  }
  return decode_open_ok(head.value());
}

Expected<PlanHandle> SolveClient::open(const sparse::CscMatrix& lower,
                                       const std::string& backend_key) {
  OpenSpec spec;
  spec.mode = OpenMode::kMatrix;
  spec.backend_key = backend_key;
  spec.matrix = lower;

  Expected<bool> up = connect();
  if (!up.ok()) return Expected<PlanHandle>(up.error());
  Expected<OpenOkFrame> ok = open_on_wire(spec);
  if (!ok.ok()) return Expected<PlanHandle>(ok.error());

  std::lock_guard<std::mutex> lock(state_mutex_);
  spec.plan_id = ok.value().plan_id;
  PlanHandle handle;
  handle.spec = specs_.size();
  handle.rows = ok.value().rows;
  handle.hash = ok.value().hash;
  handle.source = ok.value().source;
  specs_.push_back(std::move(spec));
  return handle;
}

Expected<PlanHandle> SolveClient::open_plan_blob(
    std::vector<std::uint8_t> blob, const std::string& backend_key) {
  OpenSpec spec;
  spec.mode = OpenMode::kPlanBlob;
  spec.backend_key = backend_key;
  spec.plan_blob = std::move(blob);

  Expected<bool> up = connect();
  if (!up.ok()) return Expected<PlanHandle>(up.error());
  Expected<OpenOkFrame> ok = open_on_wire(spec);
  if (!ok.ok()) return Expected<PlanHandle>(ok.error());

  std::lock_guard<std::mutex> lock(state_mutex_);
  spec.plan_id = ok.value().plan_id;
  PlanHandle handle;
  handle.spec = specs_.size();
  handle.rows = ok.value().rows;
  handle.hash = ok.value().hash;
  handle.source = ok.value().source;
  specs_.push_back(std::move(spec));
  return handle;
}

Expected<PlanHandle> SolveClient::open_by_hash(
    const sparse::StructuralHash& hash, const std::string& backend_key) {
  OpenSpec spec;
  spec.mode = OpenMode::kHashRef;
  spec.backend_key = backend_key;
  spec.hash = hash;

  Expected<bool> up = connect();
  if (!up.ok()) return Expected<PlanHandle>(up.error());
  Expected<OpenOkFrame> ok = open_on_wire(spec);
  if (!ok.ok()) return Expected<PlanHandle>(ok.error());

  std::lock_guard<std::mutex> lock(state_mutex_);
  spec.plan_id = ok.value().plan_id;
  PlanHandle handle;
  handle.spec = specs_.size();
  handle.rows = ok.value().rows;
  handle.hash = ok.value().hash;
  handle.source = ok.value().source;
  specs_.push_back(std::move(spec));
  return handle;
}

std::chrono::microseconds SolveClient::backoff_for(int retry_index) {
  double us = static_cast<double>(options_.retry.initial_backoff.count());
  for (int i = 0; i < retry_index; ++i) us *= options_.retry.multiplier;
  us = std::min(us,
                static_cast<double>(options_.retry.max_backoff.count()));
  // Deterministic jitter: uniform in [1-jitter, 1+jitter].
  std::uint64_t draw;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    draw = rng_.next();
  }
  const double unit =
      static_cast<double>(draw >> 11) / static_cast<double>(1ULL << 53);
  us *= 1.0 + options_.retry.jitter * (2.0 * unit - 1.0);
  return std::chrono::microseconds(
      static_cast<std::int64_t>(std::max(0.0, us)));
}

Expected<std::vector<value_t>> SolveClient::solve_with_retry(
    std::size_t spec, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    stats_.solves += 1;
  }
  // One trace identity per LOGICAL solve: every retry attempt -- and any
  // open replay a reconnect performs underneath -- carries the SAME id,
  // so a stitched trace shows the attempts side by side. The caller's
  // thread context wins when set; otherwise a fresh id is minted, but
  // only while tracing is armed (untraced deployments send byte-identical
  // legacy solve frames).
  support::trace::TraceId trace_id = support::trace::current_trace_id();
  std::optional<support::trace::ScopedTraceContext> trace_ctx;
  if (!support::trace::trace_id_set(trace_id) && MSPTRSV_TRACE_ARMED()) {
    trace_id = support::trace::make_trace_id();
    trace_ctx.emplace(trace_id);
  }
  std::optional<support::trace::TraceSpan> solve_span;
  if (support::trace::trace_id_set(trace_id) && MSPTRSV_TRACE_ARMED()) {
    solve_span.emplace("client.solve", "num_rhs",
                       static_cast<std::int64_t>(num_rhs));
  }
  core::SolveError last{SolveStatus::kNetworkError, "no attempt made"};
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      stats_.attempts += 1;
      if (attempt > 1) stats_.retries += 1;
    }
    Expected<bool> up = connect();
    if (!up.ok()) {
      last = up.error();
    } else {
      std::future<RawReply> future;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const std::uint64_t id = next_request_id_++;
        SolveFrame frame;
        frame.request_id = id;
        frame.plan_id = specs_[spec].plan_id;
        frame.num_rhs = num_rhs;
        frame.priority = priority;
        frame.deadline_us = static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, deadline.count()));
        frame.trace_id = trace_id;
        frame.rhs.assign(rhs.begin(), rhs.end());
        future = request_locked(id, encode_solve(frame));
      }
      if (solve_span) solve_span->set_arg("attempts", attempt);
      Expected<std::vector<value_t>> result =
          [&]() -> Expected<std::vector<value_t>> {
        RawReply raw = future.get();
        if (!raw.ok()) {
          return Expected<std::vector<value_t>>(raw.error());
        }
        return decode_solve_reply(std::move(raw.value()));
      }();
      if (result.ok()) return result;
      last = result.error();
      // Typed retry policy: overload and transport failures are the ONLY
      // retryable statuses. Everything else -- shed deadlines, shape
      // mismatches, unknown plans -- would fail identically again.
      if (last.status != SolveStatus::kOverloaded &&
          last.status != SolveStatus::kNetworkError) {
        return Expected<std::vector<value_t>>(last);
      }
    }
    if (attempt < max_attempts) {
      const std::chrono::microseconds pause = backoff_for(attempt - 1);
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        stats_.backoff_us += static_cast<std::uint64_t>(pause.count());
      }
      std::this_thread::sleep_for(pause);
    }
  }
  return Expected<std::vector<value_t>>(last);
}

Expected<std::vector<value_t>> SolveClient::solve(
    const PlanHandle& plan, std::span<const value_t> b,
    service::Priority priority, std::chrono::microseconds deadline) {
  return solve_with_retry(plan.spec, b, 1, priority, deadline);
}

Expected<std::vector<value_t>> SolveClient::solve_batch(
    const PlanHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  return solve_with_retry(plan.spec, rhs, num_rhs, priority, deadline);
}

std::future<SolveClient::RawReply> SolveClient::submit_batch_raw(
    const PlanHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const std::uint64_t id = next_request_id_++;
  SolveFrame frame;
  frame.request_id = id;
  frame.plan_id = plan.spec < specs_.size() ? specs_[plan.spec].plan_id : 0;
  frame.num_rhs = num_rhs;
  frame.priority = priority;
  frame.deadline_us = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, deadline.count()));
  // Pipelined path: no auto-minting -- callers owning their own policy
  // also own their trace identity (the thread context, when set, rides).
  frame.trace_id = support::trace::current_trace_id();
  frame.rhs.assign(rhs.begin(), rhs.end());
  return request_locked(id, encode_solve(frame));
}

std::future<Expected<std::vector<value_t>>> SolveClient::submit_batch(
    const PlanHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  std::future<RawReply> raw;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const std::uint64_t id = next_request_id_++;
    SolveFrame frame;
    frame.request_id = id;
    frame.plan_id = plan.spec < specs_.size() ? specs_[plan.spec].plan_id : 0;
    frame.num_rhs = num_rhs;
    frame.priority = priority;
    frame.deadline_us = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, deadline.count()));
    frame.trace_id = support::trace::current_trace_id();
    frame.rhs.assign(rhs.begin(), rhs.end());
    raw = request_locked(id, encode_solve(frame));
  }
  // Deferred adapter: resolves when the caller get()s (the reply future
  // underneath completes asynchronously regardless).
  return std::async(std::launch::deferred,
                    [](std::future<RawReply> f)
                        -> Expected<std::vector<value_t>> {
                      RawReply raw = f.get();
                      if (!raw.ok()) {
                        return Expected<std::vector<value_t>>(raw.error());
                      }
                      return decode_solve_reply(std::move(raw.value()));
                    },
                    std::move(raw));
}

Expected<std::string> SolveClient::metrics() {
  Expected<bool> up = connect();
  if (!up.ok()) return Expected<std::string>(up.error());
  std::future<RawReply> future;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const std::uint64_t id = next_request_id_++;
    future = request_locked(
        id, encode_stats({id, StatsFormat::kPrometheus}));
  }
  RawReply raw = future.get();
  if (!raw.ok()) return Expected<std::string>(raw.error());
  Expected<FrameHead> head = peek_frame(raw.value());
  if (!head.ok()) return Expected<std::string>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<std::string>(err.error());
    return Expected<std::string>(err.value().status, err.value().message);
  }
  Expected<StatsOkFrame> ok = decode_stats_ok(head.value());
  if (!ok.ok()) return Expected<std::string>(ok.error());
  return std::move(ok.value().text);
}

Expected<WireStats> SolveClient::stats() {
  Expected<bool> up = connect();
  if (!up.ok()) return Expected<WireStats>(up.error());
  std::future<RawReply> future;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const std::uint64_t id = next_request_id_++;
    future = request_locked(id, encode_stats({id, StatsFormat::kBinary}));
  }
  RawReply raw = future.get();
  if (!raw.ok()) return Expected<WireStats>(raw.error());
  Expected<FrameHead> head = peek_frame(raw.value());
  if (!head.ok()) return Expected<WireStats>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<WireStats>(err.error());
    return Expected<WireStats>(err.value().status, err.value().message);
  }
  Expected<StatsOkFrame> ok = decode_stats_ok(head.value());
  if (!ok.ok()) return Expected<WireStats>(ok.error());
  return std::move(ok.value().stats);
}

Expected<std::uint64_t> SolveClient::drain() {
  Expected<bool> up = connect();
  if (!up.ok()) return Expected<std::uint64_t>(up.error());
  std::future<RawReply> future;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const std::uint64_t id = next_request_id_++;
    future = request_locked(id, encode_drain({id}));
  }
  RawReply raw = future.get();
  if (!raw.ok()) return Expected<std::uint64_t>(raw.error());
  Expected<FrameHead> head = peek_frame(raw.value());
  if (!head.ok()) return Expected<std::uint64_t>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<std::uint64_t>(err.error());
    return Expected<std::uint64_t>(err.value().status, err.value().message);
  }
  Expected<DrainOkFrame> ok = decode_drain_ok(head.value());
  if (!ok.ok()) return Expected<std::uint64_t>(ok.error());
  return ok.value().completed;
}

Expected<bool> SolveClient::ping(std::chrono::milliseconds timeout) {
  Expected<bool> up = connect();
  if (!up.ok()) return up;
  std::future<RawReply> future;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const std::uint64_t id = next_request_id_++;
    future = request_locked(id, encode_ping({id}));
  }
  if (future.wait_for(timeout) != std::future_status::ready) {
    // A peer that cannot echo a ping inside the bound is not a peer we
    // can trust with queued solves: tear the connection down (failing
    // every pending future, this ping's included) so the next call
    // reconnects instead of queueing behind a hung server.
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (connected_) {
      connected_ = false;
      sock_.shutdown_read();
      fail_pending_locked("ping timed out after " +
                          std::to_string(timeout.count()) + "ms");
    }
    return Expected<bool>(SolveStatus::kNetworkError,
                          "ping timed out after " +
                              std::to_string(timeout.count()) + "ms");
  }
  RawReply raw = future.get();
  if (!raw.ok()) return Expected<bool>(raw.error());
  Expected<FrameHead> head = peek_frame(raw.value());
  if (!head.ok()) return Expected<bool>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<bool>(err.error());
    return Expected<bool>(err.value().status, err.value().message);
  }
  Expected<PongFrame> pong = decode_pong(head.value());
  if (!pong.ok()) return Expected<bool>(pong.error());
  return true;
}

Expected<std::uint32_t> SolveClient::set_failpoint(const std::string& name,
                                                   const std::string& spec) {
  Expected<bool> up = connect();
  if (!up.ok()) return Expected<std::uint32_t>(up.error());
  std::future<RawReply> future;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const std::uint64_t id = next_request_id_++;
    future = request_locked(id, encode_failpoint({id, name, spec}));
  }
  RawReply raw = future.get();
  if (!raw.ok()) return Expected<std::uint32_t>(raw.error());
  Expected<FrameHead> head = peek_frame(raw.value());
  if (!head.ok()) return Expected<std::uint32_t>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<std::uint32_t>(err.error());
    return Expected<std::uint32_t>(err.value().status, err.value().message);
  }
  Expected<FailpointOkFrame> ok = decode_failpoint_ok(head.value());
  if (!ok.ok()) return Expected<std::uint32_t>(ok.error());
  return ok.value().armed;
}

Expected<TraceDumpOkFrame> SolveClient::trace_dump(const std::string& filter,
                                                   bool include_slow) {
  Expected<bool> up = connect();
  if (!up.ok()) return Expected<TraceDumpOkFrame>(up.error());
  std::future<RawReply> future;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const std::uint64_t id = next_request_id_++;
    TraceDumpFrame frame;
    frame.request_id = id;
    frame.filter = filter;
    frame.include_slow = include_slow;
    future = request_locked(id, encode_trace_dump(frame));
  }
  RawReply raw = future.get();
  if (!raw.ok()) return Expected<TraceDumpOkFrame>(raw.error());
  Expected<FrameHead> head = peek_frame(raw.value());
  if (!head.ok()) return Expected<TraceDumpOkFrame>(head.error());
  if (head.value().type == FrameType::kError) {
    Expected<ErrorFrame> err = decode_error(head.value());
    if (!err.ok()) return Expected<TraceDumpOkFrame>(err.error());
    return Expected<TraceDumpOkFrame>(err.value().status,
                                      err.value().message);
  }
  return decode_trace_dump_ok(head.value());
}

ClientMetrics SolveClient::metrics_local() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  return stats_;
}

void SolveClient::note_hedge() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  stats_.hedges += 1;
}

void SolveClient::note_failover() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  stats_.failovers += 1;
}

}  // namespace msptrsv::net
