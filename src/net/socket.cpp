#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "support/failpoint.hpp"

namespace msptrsv::net {

namespace {

using core::Expected;
using core::SolveStatus;

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Expected<bool> Socket::send_all(std::span<const std::uint8_t> bytes) {
  // Chaos seam: error() kills the write before any byte moves; partial(N)
  // is a TORN write -- the first N bytes reach the wire and then the call
  // reports the connection dead, so the peer sees a truncated frame (the
  // corrupt-stream case the frame decoder must fail-stop on).
  std::size_t limit = bytes.size();
  bool torn = false;
  if (const support::FailpointHit fp = MSPTRSV_FAILPOINT("net.sock.send")) {
    if (fp.kind == support::FailpointHit::Kind::kError) {
      return Expected<bool>(SolveStatus::kNetworkError,
                            "injected by failpoint net.sock.send");
    }
    if (fp.kind == support::FailpointHit::Kind::kPartial) {
      limit = std::min(
          limit, static_cast<std::size_t>(fp.arg > 0 ? fp.arg : 0));
      torn = true;
    }
  }
  std::size_t sent = 0;
  while (sent < limit) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, limit - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Expected<bool>(SolveStatus::kNetworkError,
                            errno_text("send failed at byte " +
                                       std::to_string(sent) + " of " +
                                       std::to_string(bytes.size())));
    }
    sent += static_cast<std::size_t>(n);
  }
  if (torn) {
    return Expected<bool>(
        SolveStatus::kNetworkError,
        "injected torn write: " + std::to_string(limit) + " of " +
            std::to_string(bytes.size()) +
            " bytes sent (failpoint net.sock.send)");
  }
  return true;
}

Expected<bool> Socket::recv_exact(std::span<std::uint8_t> bytes, bool* eof) {
  if (eof != nullptr) *eof = false;
  if (const support::FailpointHit fp = MSPTRSV_FAILPOINT("net.sock.recv");
      fp.kind == support::FailpointHit::Kind::kError) {
    return Expected<bool>(SolveStatus::kNetworkError,
                          "injected by failpoint net.sock.recv");
  }
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::recv(fd_, bytes.data() + got, bytes.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Expected<bool>(SolveStatus::kNetworkError,
                            errno_text("recv failed"));
    }
    if (n == 0) {
      if (got == 0 && eof != nullptr) {
        *eof = true;
        return true;  // clean close between frames
      }
      return Expected<bool>(
          SolveStatus::kNetworkError,
          "peer closed mid-frame (" + std::to_string(got) + " of " +
              std::to_string(bytes.size()) + " bytes received)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Expected<ListenSocket> ListenSocket::open(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Expected<ListenSocket>(SolveStatus::kNetworkError,
                                  errno_text("socket"));
  }
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Expected<ListenSocket>(
        SolveStatus::kNetworkError,
        errno_text("bind to port " + std::to_string(port)));
  }
  if (::listen(fd, backlog) != 0) {
    return Expected<ListenSocket>(SolveStatus::kNetworkError,
                                  errno_text("listen"));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Expected<ListenSocket>(SolveStatus::kNetworkError,
                                  errno_text("getsockname"));
  }
  ListenSocket out;
  out.sock_ = std::move(sock);
  out.port_ = ntohs(bound.sin_port);
  return out;
}

Expected<Socket> ListenSocket::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Expected<Socket>(SolveStatus::kNetworkError,
                            errno_text("accept"));
  }
}

Expected<Socket> tcp_connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &found);
  if (rc != 0 || found == nullptr) {
    return Expected<Socket>(SolveStatus::kNetworkError,
                            "cannot resolve " + host + ": " +
                                ::gai_strerror(rc));
  }
  Expected<Socket> result(SolveStatus::kNetworkError, "no address tried");
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      result = Expected<Socket>(SolveStatus::kNetworkError,
                                errno_text("socket"));
      continue;
    }
    Socket sock(fd);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      result = std::move(sock);
      break;
    }
    result = Expected<Socket>(
        SolveStatus::kNetworkError,
        errno_text("connect to " + host + ":" + std::to_string(port)));
  }
  ::freeaddrinfo(found);
  return result;
}

}  // namespace msptrsv::net
