// Minimal RAII TCP sockets for the solve wire protocol.
//
// Deliberately tiny: blocking POSIX sockets, loopback/IPv4, EINTR-safe
// full-buffer send/recv, and clean half-close semantics -- everything the
// frame layer (net/protocol.hpp) needs and nothing more. Errors come back
// through the library's Expected/SolveStatus channel as kNetworkError with
// the errno text attached, so server and client code branch on typed
// statuses instead of parsing strerror output.
//
// Two deliberate properties the higher layers depend on:
//  * writes use MSG_NOSIGNAL: a peer that vanished mid-reply produces a
//    recoverable kNetworkError on this connection, never a process-wide
//    SIGPIPE;
//  * shutdown_read()/shutdown_write() are exposed separately -- graceful
//    drain works by closing the READ side (no new requests) while the
//    write side stays open until every in-flight reply has been flushed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "core/status.hpp"

namespace msptrsv::net {

/// Move-only owner of a connected (or listening) socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the whole span (EINTR-safe, MSG_NOSIGNAL). kNetworkError names
  /// the failing byte offset.
  core::Expected<bool> send_all(std::span<const std::uint8_t> bytes);

  /// Receives exactly bytes.size() bytes. A clean EOF before the first
  /// byte returns ok() == true with *eof set (the idle-connection close);
  /// EOF mid-buffer or any error is kNetworkError.
  core::Expected<bool> recv_exact(std::span<std::uint8_t> bytes, bool* eof);

  /// Half-closes: no more reads will see data / no more writes allowed.
  void shutdown_read();
  void shutdown_write();
  void close();

 private:
  int fd_ = -1;
};

/// A bound, listening TCP socket on 127.0.0.1.
class ListenSocket {
 public:
  /// Binds and listens on loopback:`port` (0 = ephemeral; read the chosen
  /// one back with port()).
  static core::Expected<ListenSocket> open(std::uint16_t port, int backlog);

  ListenSocket() = default;
  ListenSocket(ListenSocket&&) noexcept = default;
  ListenSocket& operator=(ListenSocket&&) noexcept = default;

  bool valid() const { return sock_.valid(); }
  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. kNetworkError after close() -- the
  /// acceptor loop's exit signal.
  core::Expected<Socket> accept();

  /// Unblocks any accept() in flight (they return kNetworkError). The
  /// shutdown before the close is load-bearing: on Linux, close() alone
  /// does NOT wake a thread already blocked in accept() -- shutdown()
  /// does, making it fail with EINVAL.
  void close() {
    sock_.shutdown_read();
    sock_.shutdown_write();
    sock_.close();
  }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to `host`:`port` (numeric IPv4 or a resolvable name;
/// TCP_NODELAY set -- solve frames are latency-sensitive and small).
core::Expected<Socket> tcp_connect(const std::string& host,
                                   std::uint16_t port);

}  // namespace msptrsv::net
