// Plan-hash routing across a fleet of solve-server processes.
//
// Scale-out story: one server process holds one SharedWorkerPool and one
// plan table; N processes behind this router hold N of each. The router
// assigns every PLAN (not every request) to a shard by RENDEZVOUS HASHING
// of its structural pattern hash:
//
//   shard(plan) = argmax_s  mix(pattern_hash, identity(s))
//
// which buys three properties at once:
//  * AFFINITY -- all traffic for one factor lands on one process, so its
//    symbolic analysis is paid once, its warm plan and workspaces live in
//    exactly one pool, and request coalescing still sees every rhs for
//    that plan (routing per-request would split coalescable traffic);
//  * BALANCE -- distinct factors spread uniformly across shards;
//  * MINIMAL DISRUPTION -- adding or removing a shard remaps only the
//    plans whose argmax changes (~1/N of them), with no ring to maintain.
//
// SELF-HEALING: each shard carries a circuit breaker fed by its transport
// outcomes (and, optionally, by an active ping prober):
//
//   closed --[threshold consecutive network failures]--> open
//   open   --[cooldown elapsed]--> half-open (trial traffic allowed)
//   half-open --success--> closed          --failure--> open again
//
// While a plan's home shard is open, solves FAIL OVER down the plan's
// rendezvous ranking: the next-highest shard re-opens the plan by hash-ref
// against the shared blob directory (the fleet-wide warm tier) and serves
// it -- the same ranking every router instance computes, so failover needs
// no coordination. High-priority solves can additionally be HEDGED: sent
// to the home shard and the best healthy backup at once, first answer
// wins (the kernels are bit-deterministic, so either answer is THE
// answer). All of it is observable: per-shard breaker state in
// fleet_status(), `msptrsv_shard_up` / breaker gauges in fleet_metrics(),
// hedge/failover counts in the clients' ClientMetrics.
//
// The router is a CLIENT-SIDE library tier: it owns one SolveClient per
// endpoint and delegates; each client keeps its own retry/backoff policy
// and reconnect replay. Shards share nothing but the optional on-disk
// plan-blob directory (ServiceOptions::cache_dir pointed at common
// storage), which turns N cold caches into one fleet-wide warm tier:
// any shard can hash-ref-open a plan that any other shard analyzed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.hpp"

namespace msptrsv::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Per-shard circuit-breaker state (see file comment for the transitions).
enum class BreakerState : std::uint8_t {
  kClosed = 0,   ///< healthy: traffic flows
  kOpen = 1,     ///< unhealthy: traffic skips this shard until cooldown
  kHalfOpen = 2  ///< cooling done: trial traffic decides open vs closed
};

constexpr const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

struct RouterOptions {
  std::vector<Endpoint> endpoints;
  /// Per-shard client configuration (host/port are overridden per
  /// endpoint).
  ClientOptions client;

  // ---- health + failover ---------------------------------------------------
  /// Consecutive transport failures (network errors / failed probes) that
  /// open a shard's breaker.
  int breaker_failure_threshold = 3;
  /// How long an open breaker blocks traffic before allowing a half-open
  /// trial. 0 = the very next request is the trial (what the chaos tests
  /// use: recovery timing stays failpoint-driven, not wall-clock-raced).
  std::chrono::milliseconds breaker_cooldown{500};
  /// Ping deadline for probe_now() / the background prober.
  std::chrono::milliseconds probe_timeout{250};
  /// Background prober period; 0 (default) disables the thread and health
  /// is driven passively plus by explicit probe_now() calls.
  std::chrono::milliseconds probe_interval{0};
  /// Re-home solves whose home shard is broken onto the next-ranked
  /// healthy shard (needs the fleet-shared blob directory for the
  /// hash-ref re-open; without one the failover open fails typed and the
  /// next shard is tried).
  bool allow_failover = true;
  /// Send high-priority solves to the home shard AND the best healthy
  /// backup simultaneously, first answer wins. Costs a duplicate solve;
  /// buys tail latency immunity to one slow/dying shard.
  bool hedge_high_priority = false;
};

/// A plan opened through the router: the home shard plus the underlying
/// client handle (and the backend key, kept so failover can re-open the
/// plan elsewhere by hash-ref).
struct RoutedHandle {
  std::size_t shard = 0;
  PlanHandle handle;
  std::string backend_key;
};

/// Point-in-time health of one shard, reported explicitly (a fleet view
/// that silently skipped dead shards would read as a healthy fleet).
struct ShardStatus {
  Endpoint endpoint;
  BreakerState breaker = BreakerState::kClosed;
  /// False when the last contact (stats pull or probe) failed.
  bool reachable = true;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t failures_total = 0;
  std::uint64_t probes_sent = 0;
  /// Times the breaker transitioned closed/half-open -> open.
  std::uint64_t breaker_opens = 0;
  /// Round-trip time of the last SUCCESSFUL ping probe, in microseconds;
  /// negative until a probe has succeeded. Surfaces per shard as the
  /// msptrsv_shard_probe_rtt_us gauge in fleet_metrics().
  double probe_rtt_us = -1.0;
  /// Last transport failure observed ("" when none yet).
  std::string last_error;
};

class Router {
 public:
  explicit Router(RouterOptions options);
  /// Stops the background prober (if any).
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard a pattern hash routes to (exposed for tests and for
  /// operators answering "which process serves this factor?").
  std::size_t shard_of(std::uint64_t pattern_hash) const;

  /// The full rendezvous ranking for a pattern hash, best first --
  /// element 0 is shard_of(), element 1 is where failover re-homes.
  std::vector<std::size_t> shard_order(std::uint64_t pattern_hash) const;

  /// Opens `lower` on its home shard (the factor is hashed locally, the
  /// upload goes to exactly one process).
  core::Expected<RoutedHandle> open(const sparse::CscMatrix& lower,
                                    const std::string& backend_key);

  core::Expected<std::vector<value_t>> solve(
      const RoutedHandle& plan, std::span<const value_t> b,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  core::Expected<std::vector<value_t>> solve_batch(
      const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// One pipelined attempt on the plan's home shard (no retries, no
  /// breaker/failover involvement).
  std::future<core::Expected<std::vector<value_t>>> submit_batch(
      const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// Pings every shard once (bounded by probe_timeout) and feeds the
  /// breakers: a live shard's failures reset (half-open -> closed), a
  /// dead one's count climbs toward open. Returns how many answered.
  /// This is the deterministic hook the chaos tests drive recovery with;
  /// the background prober (probe_interval > 0) just calls it on a timer.
  std::size_t probe_now();

  /// Per-shard health, reported explicitly -- breaker state, failure
  /// counters, last error. Never blocks on the network.
  std::vector<ShardStatus> fleet_status() const;

  /// Direct access to a shard's client (bench/ops plumbing).
  SolveClient& shard_client(std::size_t shard) {
    return *shards_[shard]->client;
  }

  /// Merged WireStats across every reachable shard: counters add,
  /// histograms merge -- the fleet view. Unreachable shards are NOT
  /// silently dropped: `statuses` (when non-null) reports each shard's
  /// reachability and last error explicitly, and `reachable` counts the
  /// shards that answered. Errors only when NO shard answered.
  core::Expected<WireStats> fleet_stats(
      std::size_t* reachable = nullptr,
      std::vector<ShardStatus>* statuses = nullptr);

  /// The merged stats rendered as Prometheus text (one scrape for the
  /// whole fleet), with per-shard `msptrsv_shard_up` /
  /// `msptrsv_shard_breaker_state` / `msptrsv_shard_failures_total` /
  /// `msptrsv_shard_probe_rtt_us` series appended so a dead shard is
  /// visible IN the scrape.
  core::Expected<std::string> fleet_metrics();

  /// One stitched Chrome trace-event document across every reachable
  /// shard: each member's kTraceDump answer (buffered spans plus the slow
  /// sampler's retained trees) spliced into a single traceEvents array,
  /// with each shard given its own pid lane so Perfetto shows the fleet
  /// side by side. Spans of one request share its trace id (in the event
  /// args), so a cross-shard solve -- hedged, failed over, retried --
  /// reads as one story. `filter` is "" or one 32-hex trace id;
  /// `reachable` (when non-null) reports how many shards answered.
  /// Errors only when NO shard answered.
  core::Expected<std::string> fleet_trace(const std::string& filter = "",
                                          std::size_t* reachable = nullptr);

  /// Drains every shard (errors reported after all were attempted).
  core::Expected<std::uint64_t> drain_all();

 private:
  using Clock = std::chrono::steady_clock;

  /// One endpoint's client plus its breaker (mutex-guarded: solves,
  /// probes, and the stats pull all feed it).
  struct Shard {
    Endpoint endpoint;
    std::unique_ptr<SolveClient> client;
    std::uint64_t seed = 0;

    mutable std::mutex mutex;
    BreakerState state = BreakerState::kClosed;
    int consecutive = 0;
    std::uint64_t failures_total = 0;
    std::uint64_t probes = 0;
    std::uint64_t opens = 0;
    double last_rtt_us = -1.0;
    Clock::time_point opened_at{};
    std::string last_error;
    bool last_contact_ok = true;
  };

  /// May THIS request run on the shard right now? Open breakers say no
  /// until the cooldown elapses, then flip to half-open and admit the
  /// trial.
  bool breaker_allows(Shard& shard);
  void breaker_on_success(Shard& shard);
  void breaker_on_failure(Shard& shard, const std::string& error);
  ShardStatus status_of(const Shard& shard) const;

  /// The plan's handle on shard `s`: the caller's own handle on the home
  /// shard, a (cached) hash-ref re-open anywhere else.
  core::Expected<PlanHandle> handle_on(std::size_t s,
                                       const RoutedHandle& plan);

  core::Expected<std::vector<value_t>> solve_routed(
      const RoutedHandle& plan, std::span<const value_t> rhs,
      index_t num_rhs, service::Priority priority,
      std::chrono::microseconds deadline);
  core::Expected<std::vector<value_t>> solve_hedged(
      const RoutedHandle& plan, std::size_t backup,
      const PlanHandle& backup_handle, std::span<const value_t> rhs,
      index_t num_rhs, service::Priority priority,
      std::chrono::microseconds deadline);

  void prober_loop();

  RouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Hash-ref handles failover opened on non-home shards, keyed by
  /// (shard, backend, structural hash) -- re-homing a plan pays one
  /// open, not one per solve.
  std::mutex failover_mutex_;
  std::unordered_map<std::string, PlanHandle> failover_handles_;

  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;
};

}  // namespace msptrsv::net
