// Plan-hash routing across a fleet of solve-server processes.
//
// Scale-out story: one server process holds one SharedWorkerPool and one
// plan table; N processes behind this router hold N of each. The router
// assigns every PLAN (not every request) to a shard by RENDEZVOUS HASHING
// of its structural pattern hash:
//
//   shard(plan) = argmax_s  mix(pattern_hash, identity(s))
//
// which buys three properties at once:
//  * AFFINITY -- all traffic for one factor lands on one process, so its
//    symbolic analysis is paid once, its warm plan and workspaces live in
//    exactly one pool, and request coalescing still sees every rhs for
//    that plan (routing per-request would split coalescable traffic);
//  * BALANCE -- distinct factors spread uniformly across shards;
//  * MINIMAL DISRUPTION -- adding or removing a shard remaps only the
//    plans whose argmax changes (~1/N of them), with no ring to maintain.
//
// The router is a CLIENT-SIDE library tier: it owns one SolveClient per
// endpoint and delegates; each client keeps its own retry/backoff policy
// and reconnect replay. Shards share nothing but the optional on-disk
// plan-blob directory (ServiceOptions::cache_dir pointed at common
// storage), which turns N cold caches into one fleet-wide warm tier:
// any shard can hash-ref-open a plan that any other shard analyzed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/client.hpp"

namespace msptrsv::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterOptions {
  std::vector<Endpoint> endpoints;
  /// Per-shard client configuration (host/port are overridden per
  /// endpoint).
  ClientOptions client;
};

/// A plan opened through the router: the shard it lives on plus the
/// underlying client handle.
struct RoutedHandle {
  std::size_t shard = 0;
  PlanHandle handle;
};

class Router {
 public:
  explicit Router(RouterOptions options);

  std::size_t shard_count() const { return clients_.size(); }

  /// The shard a pattern hash routes to (exposed for tests and for
  /// operators answering "which process serves this factor?").
  std::size_t shard_of(std::uint64_t pattern_hash) const;

  /// Opens `lower` on its home shard (the factor is hashed locally, the
  /// upload goes to exactly one process).
  core::Expected<RoutedHandle> open(const sparse::CscMatrix& lower,
                                    const std::string& backend_key);

  core::Expected<std::vector<value_t>> solve(
      const RoutedHandle& plan, std::span<const value_t> b,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  core::Expected<std::vector<value_t>> solve_batch(
      const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// One pipelined attempt on the plan's home shard (no retries).
  std::future<core::Expected<std::vector<value_t>>> submit_batch(
      const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// Direct access to a shard's client (bench/ops plumbing).
  SolveClient& shard_client(std::size_t shard) { return *clients_[shard]; }

  /// Merged WireStats across every reachable shard: counters add,
  /// histograms merge -- the fleet view. Shards that cannot be reached
  /// are skipped (partial fleet beats no answer); `reachable` reports
  /// how many answered.
  core::Expected<WireStats> fleet_stats(std::size_t* reachable = nullptr);

  /// The merged stats rendered as Prometheus text (one scrape for the
  /// whole fleet).
  core::Expected<std::string> fleet_metrics();

  /// Drains every shard (errors reported after all were attempted).
  core::Expected<std::uint64_t> drain_all();

 private:
  RouterOptions options_;
  std::vector<std::unique_ptr<SolveClient>> clients_;
  /// Rendezvous identity per shard: a hash of "host:port", fixed at
  /// construction -- stable across router restarts and endpoint
  /// reordering.
  std::vector<std::uint64_t> shard_seeds_;
};

}  // namespace msptrsv::net
