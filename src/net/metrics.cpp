#include "net/metrics.hpp"

#include <cstdio>
#include <string>
#include <string_view>

#include "service/latency_histogram.hpp"
#include "service/priority.hpp"
#include "support/trace.hpp"

namespace msptrsv::net {

namespace {

using service::LatencyHistogram;
using service::LatencyHistogramSnapshot;

/// `{instance="..."}` or `{instance="...",extra}` or "" / `{extra}`.
std::string label_set(const std::string& instance, std::string_view extra) {
  if (instance.empty() && extra.empty()) return "";
  std::string out = "{";
  if (!instance.empty()) {
    out += "instance=\"" + instance + "\"";
    if (!extra.empty()) out += ",";
  }
  out += extra;
  out += "}";
  return out;
}

void counter(std::string& out, std::string_view name, std::string_view help,
             const std::string& labels, std::uint64_t value) {
  out += "# HELP ";
  out += name;
  out += " ";
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " counter\n";
  out += name;
  out += labels;
  out += " ";
  out += std::to_string(value);
  out += "\n";
}

void gauge(std::string& out, std::string_view name, std::string_view help,
           const std::string& labels, std::uint64_t value) {
  out += "# HELP ";
  out += name;
  out += " ";
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " gauge\n";
  out += name;
  out += labels;
  out += " ";
  out += std::to_string(value);
  out += "\n";
}

/// One classic cumulative histogram. Bucket edges come from the HDR
/// bucket ceilings (exact integers, rendered in seconds), emitted only
/// for buckets that hold samples -- the log-linear layout has 1248
/// buckets and a Prometheus page does not want the empty ones.
void histogram(std::string& out, std::string_view name,
               std::string_view help, const std::string& instance,
               std::string_view extra_labels,
               const LatencyHistogramSnapshot& h) {
  out += "# HELP ";
  out += name;
  out += " ";
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;
    cumulative += h.counts[i];
    // le edges are the bucket CEILINGS: every sample in bucket i is
    // <= ceil(i) by construction, so cumulative counts are exact.
    const double le_s =
        static_cast<double>(LatencyHistogram::bucket_ceil(i)) * 1e-6;
    char le[32];
    std::snprintf(le, sizeof(le), "%.9g", le_s);
    std::string labels = std::string(extra_labels);
    if (!labels.empty()) labels += ",";
    labels += "le=\"";
    labels += le;
    labels += "\"";
    out += name;
    out += "_bucket";
    out += label_set(instance, labels);
    out += " ";
    out += std::to_string(cumulative);
    out += "\n";
  }
  {
    std::string labels = std::string(extra_labels);
    if (!labels.empty()) labels += ",";
    labels += "le=\"+Inf\"";
    out += name;
    out += "_bucket";
    out += label_set(instance, labels);
    out += " ";
    out += std::to_string(h.count);
    out += "\n";
  }
  char sum[40];
  std::snprintf(sum, sizeof(sum), "%.9g",
                static_cast<double>(h.sum_us) * 1e-6);
  out += name;
  out += "_sum";
  out += label_set(instance, extra_labels);
  out += " ";
  out += sum;
  out += "\n";
  out += name;
  out += "_count";
  out += label_set(instance, extra_labels);
  out += " ";
  out += std::to_string(h.count);
  out += "\n";
}

}  // namespace

std::string render_prometheus(const WireStats& s,
                              const std::string& instance) {
  const std::string base = label_set(instance, "");
  std::string out;
  out.reserve(4096);

  counter(out, "msptrsv_rhs_submitted_total",
          "Right-hand sides admitted past backpressure.", base, s.submitted);
  counter(out, "msptrsv_rhs_completed_total",
          "Right-hand sides answered successfully.", base, s.completed);
  counter(out, "msptrsv_rhs_failed_total",
          "Right-hand sides answered with an error.", base, s.failed);
  counter(out, "msptrsv_rhs_rejected_total",
          "Right-hand sides refused with overloaded.", base, s.rejected);
  counter(out, "msptrsv_rhs_shed_total",
          "Right-hand sides shed past their deadline.", base, s.shed);
  counter(out, "msptrsv_batches_total", "Fused solve_batch dispatches.",
          base, s.batches);
  counter(out, "msptrsv_coalesced_rhs_total",
          "Right-hand sides that shared a fused dispatch.", base,
          s.coalesced_rhs);
  gauge(out, "msptrsv_queue_depth", "Pending right-hand sides.", base,
        s.queue_depth);
  gauge(out, "msptrsv_peak_queue_depth",
        "High-water mark of pending right-hand sides.", base,
        s.peak_queue_depth);
  counter(out, "msptrsv_connections_accepted_total",
          "Connections the server has accepted.", base,
          s.connections_accepted);
  gauge(out, "msptrsv_connections_active", "Connections open right now.",
        base, s.connections_active);
  counter(out, "msptrsv_frames_received_total",
          "Well-formed frames decoded off the wire.", base,
          s.frames_received);
  counter(out, "msptrsv_protocol_errors_total",
          "Connections fail-stopped on a malformed frame.", base,
          s.protocol_errors);
  gauge(out, "msptrsv_plans_open", "Plans open in the server's table.",
        base, s.plans_open);

  histogram(out, "msptrsv_solve_latency_seconds",
            "Submit-to-completion solve latency.", instance, "",
            s.latency);

  // Per-class series share a metric name, so HELP/TYPE is emitted once
  // and the three class series follow (Prometheus requires exactly this).
  const auto class_label = [&](std::size_t c) {
    return "class=\"" +
           std::string(service::to_string(static_cast<service::Priority>(c))) +
           "\"";
  };
  const auto class_counter = [&](std::string_view name,
                                 std::string_view help, auto field) {
    out += "# HELP ";
    out += name;
    out += " ";
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " counter\n";
    for (std::size_t c = 0; c < s.per_class.size(); ++c) {
      out += name;
      out += label_set(instance, class_label(c));
      out += " ";
      out += std::to_string(field(s.per_class[c]));
      out += "\n";
    }
  };
  class_counter("msptrsv_class_rhs_submitted_total",
                "Per-priority-class right-hand sides admitted.",
                [](const WireStats::PerClass& pc) { return pc.submitted; });
  class_counter("msptrsv_class_rhs_completed_total",
                "Per-priority-class right-hand sides completed.",
                [](const WireStats::PerClass& pc) { return pc.completed; });
  class_counter("msptrsv_class_rhs_shed_total",
                "Per-priority-class right-hand sides shed.",
                [](const WireStats::PerClass& pc) { return pc.shed; });
  out +=
      "# HELP msptrsv_class_solve_latency_seconds Per-priority-class solve "
      "latency.\n# TYPE msptrsv_class_solve_latency_seconds histogram\n";
  for (std::size_t c = 0; c < s.per_class.size(); ++c) {
    LatencyHistogramSnapshot h = s.per_class[c].latency;
    // Re-use histogram() body minus the header: inline the series here.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      cumulative += h.counts[i];
      const double le_s =
          static_cast<double>(LatencyHistogram::bucket_ceil(i)) * 1e-6;
      char le[32];
      std::snprintf(le, sizeof(le), "%.9g", le_s);
      out += "msptrsv_class_solve_latency_seconds_bucket";
      out += label_set(instance,
                       class_label(c) + ",le=\"" + le + "\"");
      out += " ";
      out += std::to_string(cumulative);
      out += "\n";
    }
    out += "msptrsv_class_solve_latency_seconds_bucket";
    out += label_set(instance, class_label(c) + ",le=\"+Inf\"");
    out += " ";
    out += std::to_string(h.count);
    out += "\n";
    char sum[40];
    std::snprintf(sum, sizeof(sum), "%.9g",
                  static_cast<double>(h.sum_us) * 1e-6);
    out += "msptrsv_class_solve_latency_seconds_sum";
    out += label_set(instance, class_label(c));
    out += " ";
    out += sum;
    out += "\n";
    out += "msptrsv_class_solve_latency_seconds_count";
    out += label_set(instance, class_label(c));
    out += " ";
    out += std::to_string(h.count);
    out += "\n";
  }

  // ---- plan cache ------------------------------------------------------------
  counter(out, "msptrsv_plan_cache_hits_total",
          "Plan-cache lookups answered from memory.", base, s.cache_hits);
  counter(out, "msptrsv_plan_cache_misses_total",
          "Plan-cache lookups that paid a symbolic analysis.", base,
          s.cache_misses);
  counter(out, "msptrsv_plan_cache_evictions_total",
          "Plans evicted by the count capacity.", base, s.cache_evictions);
  counter(out, "msptrsv_plan_cache_byte_evictions_total",
          "Plans evicted by the byte budget.", base, s.cache_byte_evictions);
  counter(out, "msptrsv_plan_cache_disk_hits_total",
          "Plan-cache misses warmed from the blob directory.", base,
          s.cache_disk_hits);
  counter(out, "msptrsv_plan_cache_disk_stores_total",
          "Analyzed plans persisted to the blob directory.", base,
          s.cache_disk_stores);

  // ---- per-phase latency attribution ----------------------------------------
  // The seven phases (support/trace.hpp) partition each reply's latency:
  // queue/coalesce/claim/pack/kernel/unpack measured by the service and
  // core layers, reply by the completion pump. One histogram family with
  // a phase label, plus a pre-digested summary family for dashboards
  // that want quantiles without a histogram_quantile() query.
  const auto phase_label = [](std::size_t p) {
    return "phase=\"" + std::string(support::trace::kPhaseNames[p]) + "\"";
  };
  out += "# HELP msptrsv_solve_phase_seconds Per-phase share of solve "
         "latency (phases partition the solve).\n"
         "# TYPE msptrsv_solve_phase_seconds histogram\n";
  for (std::size_t p = 0; p < s.phases.size(); ++p) {
    const LatencyHistogramSnapshot& h = s.phases[p];
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      cumulative += h.counts[i];
      const double le_s =
          static_cast<double>(LatencyHistogram::bucket_ceil(i)) * 1e-6;
      char le[32];
      std::snprintf(le, sizeof(le), "%.9g", le_s);
      out += "msptrsv_solve_phase_seconds_bucket";
      out += label_set(instance, phase_label(p) + ",le=\"" + le + "\"");
      out += " ";
      out += std::to_string(cumulative);
      out += "\n";
    }
    out += "msptrsv_solve_phase_seconds_bucket";
    out += label_set(instance, phase_label(p) + ",le=\"+Inf\"");
    out += " ";
    out += std::to_string(h.count);
    out += "\n";
    char sum[40];
    std::snprintf(sum, sizeof(sum), "%.9g",
                  static_cast<double>(h.sum_us) * 1e-6);
    out += "msptrsv_solve_phase_seconds_sum";
    out += label_set(instance, phase_label(p));
    out += " ";
    out += sum;
    out += "\n";
    out += "msptrsv_solve_phase_seconds_count";
    out += label_set(instance, phase_label(p));
    out += " ";
    out += std::to_string(h.count);
    out += "\n";
  }
  out += "# HELP msptrsv_solve_phase_summary_seconds Per-phase latency "
         "quantiles (p50/p90/p99 from the HDR buckets).\n"
         "# TYPE msptrsv_solve_phase_summary_seconds summary\n";
  for (std::size_t p = 0; p < s.phases.size(); ++p) {
    const LatencyHistogramSnapshot& h = s.phases[p];
    for (const double q : {0.5, 0.9, 0.99}) {
      char qs[16], vs[40];
      std::snprintf(qs, sizeof(qs), "%g", q);
      std::snprintf(vs, sizeof(vs), "%.9g", h.quantile(q) * 1e-6);
      out += "msptrsv_solve_phase_summary_seconds";
      out += label_set(instance,
                       phase_label(p) + ",quantile=\"" + qs + "\"");
      out += " ";
      out += vs;
      out += "\n";
    }
    char sum[40];
    std::snprintf(sum, sizeof(sum), "%.9g",
                  static_cast<double>(h.sum_us) * 1e-6);
    out += "msptrsv_solve_phase_summary_seconds_sum";
    out += label_set(instance, phase_label(p));
    out += " ";
    out += sum;
    out += "\n";
    out += "msptrsv_solve_phase_summary_seconds_count";
    out += label_set(instance, phase_label(p));
    out += " ";
    out += std::to_string(h.count);
    out += "\n";
  }
  return out;
}

}  // namespace msptrsv::net
