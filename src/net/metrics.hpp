// Prometheus text-format rendering of WireStats -- the /metrics answer.
//
// Renders counters plus the HDR latency histograms as classic Prometheus
// cumulative histograms (`_bucket{le="..."}` series from the non-empty
// log-linear buckets, `+Inf`, `_sum`, `_count`). One renderer serves both
// views: a shard renders its own WireStats, and the router renders the
// fleet-merged WireStats the same way -- merged bucket counts ARE the
// fleet histogram, which is the whole point of the representation.
#pragma once

#include <string>

#include "net/protocol.hpp"

namespace msptrsv::net {

/// Renders `stats` in Prometheus text exposition format. `instance` (may
/// be empty) becomes an `instance="..."` label on every series, so scraped
/// shards stay distinguishable behind one router endpoint.
std::string render_prometheus(const WireStats& stats,
                              const std::string& instance);

}  // namespace msptrsv::net
