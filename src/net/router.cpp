#include "net/router.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "net/metrics.hpp"
#include "sparse/serialize.hpp"

namespace msptrsv::net {

namespace {

using core::Expected;
using core::SolveStatus;

/// FNV-1a of a string: the shard identity seed. Not a great mixer on its
/// own, which is fine -- rendezvous scoring re-mixes it below.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64-style finalizer: the rendezvous score of (plan, shard).
/// Strong mixing is what delivers the uniform-balance property.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Only transport-level failures count against a shard's breaker: a typed
/// error (kShapeMismatch, kDeadlineExceeded, even kOverloaded) came from a
/// process healthy enough to produce it, and opening the breaker on those
/// would amplify load problems into fake outages.
bool counts_against_breaker(SolveStatus status) {
  return status == SolveStatus::kNetworkError;
}

}  // namespace

Router::Router(RouterOptions options) : options_(std::move(options)) {
  shards_.reserve(options_.endpoints.size());
  for (const Endpoint& ep : options_.endpoints) {
    ClientOptions c = options_.client;
    c.host = ep.host;
    c.port = ep.port;
    // Decorrelate the shards' backoff jitter streams.
    c.retry.seed = options_.client.retry.seed ^ fnv1a(ep.host) ^ ep.port;
    auto shard = std::make_unique<Shard>();
    shard->endpoint = ep;
    shard->client = std::make_unique<SolveClient>(std::move(c));
    shard->seed = fnv1a(ep.host + ":" + std::to_string(ep.port));
    shards_.push_back(std::move(shard));
  }
  if (options_.probe_interval.count() > 0 && !shards_.empty()) {
    prober_ = std::thread([this] { prober_loop(); });
  }
}

Router::~Router() {
  if (prober_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(prober_mutex_);
      prober_stop_ = true;
    }
    prober_cv_.notify_all();
    prober_.join();
  }
}

void Router::prober_loop() {
  std::unique_lock<std::mutex> lock(prober_mutex_);
  while (!prober_stop_) {
    if (prober_cv_.wait_for(lock, options_.probe_interval,
                            [this] { return prober_stop_; })) {
      return;
    }
    lock.unlock();
    probe_now();
    lock.lock();
  }
}

std::size_t Router::shard_of(std::uint64_t pattern_hash) const {
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t score = mix(pattern_hash ^ shards_[s]->seed);
    if (s == 0 || score > best_score) {
      best = s;
      best_score = score;
    }
  }
  return best;
}

std::vector<std::size_t> Router::shard_order(
    std::uint64_t pattern_hash) const {
  std::vector<std::size_t> order(shards_.size());
  std::vector<std::uint64_t> score(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    order[s] = s;
    score[s] = mix(pattern_hash ^ shards_[s]->seed);
  }
  std::sort(order.begin(), order.end(),
            [&score](std::size_t a, std::size_t b) {
              return score[a] != score[b] ? score[a] > score[b] : a < b;
            });
  return order;
}

// ---- breaker ---------------------------------------------------------------

bool Router::breaker_allows(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  switch (shard.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // A trial is (or was) already in flight; let more traffic through
      // too -- the first success closes, the first failure reopens.
      return true;
    case BreakerState::kOpen:
      if (Clock::now() - shard.opened_at >= options_.breaker_cooldown) {
        shard.state = BreakerState::kHalfOpen;
        return true;
      }
      return false;
  }
  return true;
}

void Router::breaker_on_success(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.state = BreakerState::kClosed;
  shard.consecutive = 0;
  shard.last_contact_ok = true;
}

void Router::breaker_on_failure(Shard& shard, const std::string& error) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.failures_total;
  shard.last_error = error;
  shard.last_contact_ok = false;
  if (shard.state == BreakerState::kHalfOpen) {
    // The trial failed: straight back to open, cooldown restarts.
    shard.state = BreakerState::kOpen;
    shard.opened_at = Clock::now();
    ++shard.opens;
    shard.consecutive = options_.breaker_failure_threshold;
    return;
  }
  if (++shard.consecutive >= options_.breaker_failure_threshold &&
      shard.state == BreakerState::kClosed) {
    shard.state = BreakerState::kOpen;
    shard.opened_at = Clock::now();
    ++shard.opens;
  }
}

ShardStatus Router::status_of(const Shard& shard) const {
  std::lock_guard<std::mutex> lock(shard.mutex);
  ShardStatus st;
  st.endpoint = shard.endpoint;
  st.breaker = shard.state;
  st.reachable = shard.last_contact_ok;
  st.consecutive_failures = static_cast<std::uint64_t>(
      shard.consecutive > 0 ? shard.consecutive : 0);
  st.failures_total = shard.failures_total;
  st.probes_sent = shard.probes;
  st.breaker_opens = shard.opens;
  st.probe_rtt_us = shard.last_rtt_us;
  st.last_error = shard.last_error;
  return st;
}

std::size_t Router::probe_now() {
  std::size_t healthy = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      ++shard->probes;
    }
    const Clock::time_point t0 = Clock::now();
    Expected<bool> pong = shard->client->ping(options_.probe_timeout);
    if (pong.ok()) {
      const double rtt_us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count();
      breaker_on_success(*shard);
      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->last_rtt_us = rtt_us;
      }
      ++healthy;
    } else {
      breaker_on_failure(*shard, pong.error().message);
    }
  }
  return healthy;
}

std::vector<ShardStatus> Router::fleet_status() const {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    out.push_back(status_of(*shard));
  }
  return out;
}

// ---- open + routed solving -------------------------------------------------

Expected<RoutedHandle> Router::open(const sparse::CscMatrix& lower,
                                    const std::string& backend_key) {
  if (shards_.empty()) {
    return Expected<RoutedHandle>(SolveStatus::kInvalidOptions,
                                  "router has no endpoints");
  }
  const sparse::StructuralHash hash = sparse::hash_csc(lower);
  const std::size_t shard = shard_of(hash.pattern);
  Expected<PlanHandle> handle = shards_[shard]->client->open(lower, backend_key);
  if (!handle.ok()) return Expected<RoutedHandle>(handle.error());
  return RoutedHandle{shard, std::move(handle.value()), backend_key};
}

Expected<PlanHandle> Router::handle_on(std::size_t s,
                                       const RoutedHandle& plan) {
  if (s == plan.shard) return plan.handle;
  // Non-home shards get the plan by HASH-REF: the open ships only the
  // content hash, which the shard resolves against its live plan table
  // and then the fleet-shared blob directory. Cache the result so a
  // re-homed plan pays one open, not one per solve.
  const std::string key = std::to_string(s) + "/" + plan.backend_key + "/" +
                          std::to_string(plan.handle.hash.pattern) + ":" +
                          std::to_string(plan.handle.hash.values);
  {
    std::lock_guard<std::mutex> lock(failover_mutex_);
    auto it = failover_handles_.find(key);
    if (it != failover_handles_.end()) return it->second;
  }
  Expected<PlanHandle> opened =
      shards_[s]->client->open_by_hash(plan.handle.hash, plan.backend_key);
  if (opened.ok()) {
    std::lock_guard<std::mutex> lock(failover_mutex_);
    failover_handles_.emplace(key, opened.value());
  }
  return opened;
}

Expected<std::vector<value_t>> Router::solve(
    const RoutedHandle& plan, std::span<const value_t> b,
    service::Priority priority, std::chrono::microseconds deadline) {
  return solve_batch(plan, b, 1, priority, deadline);
}

Expected<std::vector<value_t>> Router::solve_batch(
    const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  if (options_.hedge_high_priority &&
      priority == service::Priority::kHigh && shards_.size() >= 2) {
    // Pick the best healthy backup down the rendezvous ranking. If none
    // qualifies (all cooling, or the hash-ref open fails) fall through to
    // the sequential path -- hedging is an optimization, never a
    // requirement.
    const std::vector<std::size_t> order = shard_order(plan.handle.hash.pattern);
    for (const std::size_t s : order) {
      if (s == plan.shard || !breaker_allows(*shards_[s])) continue;
      Expected<PlanHandle> backup = handle_on(s, plan);
      if (!backup.ok()) continue;
      return solve_hedged(plan, s, backup.value(), rhs, num_rhs, priority,
                          deadline);
    }
  }
  return solve_routed(plan, rhs, num_rhs, priority, deadline);
}

Expected<std::vector<value_t>> Router::solve_routed(
    const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  if (shards_.empty()) {
    return Expected<std::vector<value_t>>(SolveStatus::kInvalidOptions,
                                          "router has no endpoints");
  }
  const std::vector<std::size_t> order =
      options_.allow_failover ? shard_order(plan.handle.hash.pattern)
                              : std::vector<std::size_t>{plan.shard};
  core::SolveError last{SolveStatus::kNetworkError, "no shard attempted"};
  bool attempted = false;
  for (const std::size_t s : order) {
    Shard& shard = *shards_[s];
    if (!breaker_allows(shard)) continue;
    Expected<PlanHandle> handle = handle_on(s, plan);
    if (!handle.ok()) {
      // A failed failover OPEN: network errors count against the shard;
      // typed refusals (no shared blob dir -> kBadSnapshot) just mean
      // this shard cannot serve the plan -- skip it, it is healthy.
      if (counts_against_breaker(handle.error().status)) {
        breaker_on_failure(shard, handle.error().message);
      }
      last = handle.error();
      continue;
    }
    attempted = true;
    Expected<std::vector<value_t>> result = shard.client->solve_batch(
        handle.value(), rhs, num_rhs, priority, deadline);
    if (result.ok()) {
      breaker_on_success(shard);
      if (s != plan.shard) shard.client->note_failover();
      return result;
    }
    if (!counts_against_breaker(result.error().status)) {
      // A typed answer IS an answer: the shard is alive and this request
      // cannot fare better elsewhere (same plan, same inputs).
      breaker_on_success(shard);
      return result;
    }
    breaker_on_failure(shard, result.error().message);
    last = result.error();
  }
  if (!attempted) {
    // Every breaker was cooling. Refusing outright would make a
    // transient blip self-sustaining (no traffic -> no trial -> never
    // closes), so force one home-shard attempt as the trial.
    Shard& home = *shards_[plan.shard];
    Expected<std::vector<value_t>> result = home.client->solve_batch(
        plan.handle, rhs, num_rhs, priority, deadline);
    if (result.ok() || !counts_against_breaker(result.error().status)) {
      breaker_on_success(home);
    } else {
      breaker_on_failure(home, result.error().message);
    }
    return result;
  }
  return Expected<std::vector<value_t>>(last);
}

Expected<std::vector<value_t>> Router::solve_hedged(
    const RoutedHandle& plan, std::size_t backup,
    const PlanHandle& backup_handle, std::span<const value_t> rhs,
    index_t num_rhs, service::Priority priority,
    std::chrono::microseconds deadline) {
  Shard& home = *shards_[plan.shard];
  Shard& back = *shards_[backup];
  home.client->note_hedge();
  std::future<SolveClient::RawReply> legs[2] = {
      home.client->submit_batch_raw(plan.handle, rhs, num_rhs, priority,
                                    deadline),
      back.client->submit_batch_raw(backup_handle, rhs, num_rhs, priority,
                                    deadline)};
  Shard* owner[2] = {&home, &back};
  bool dead[2] = {false, false};
  // Poll both legs; the kernels are bit-deterministic, so whichever
  // answers first IS the answer (success or typed error alike). A leg
  // that dies on the wire feeds its shard's breaker and drops out.
  while (!dead[0] || !dead[1]) {
    for (int i = 0; i < 2; ++i) {
      if (dead[i]) continue;
      if (legs[i].wait_for(std::chrono::microseconds(200)) !=
          std::future_status::ready) {
        continue;
      }
      SolveClient::RawReply raw = legs[i].get();
      dead[i] = true;
      if (!raw.ok()) {
        breaker_on_failure(*owner[i], raw.error().message);
        continue;
      }
      Expected<std::vector<value_t>> reply =
          decode_solve_reply(std::move(raw.value()));
      if (!reply.ok() && counts_against_breaker(reply.error().status)) {
        breaker_on_failure(*owner[i], reply.error().message);
        continue;
      }
      breaker_on_success(*owner[i]);
      if (owner[i] == &back) back.client->note_failover();
      // The loser's future is abandoned: its reply (if any) completes a
      // promise nobody reads, which is exactly as cheap as it sounds.
      return reply;
    }
  }
  // Both legs died on the wire -- fall back to the sequential path, which
  // carries the retry/reconnect policy hedging deliberately skips.
  return solve_routed(plan, rhs, num_rhs, priority, deadline);
}

std::future<Expected<std::vector<value_t>>> Router::submit_batch(
    const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  return shards_[plan.shard]->client->submit_batch(plan.handle, rhs, num_rhs,
                                                   priority, deadline);
}

// ---- fleet observability ---------------------------------------------------

Expected<WireStats> Router::fleet_stats(std::size_t* reachable,
                                        std::vector<ShardStatus>* statuses) {
  WireStats merged;
  std::size_t answered = 0;
  core::SolveError last{SolveStatus::kNetworkError, "router has no endpoints"};
  for (const std::unique_ptr<Shard>& shard : shards_) {
    Expected<WireStats> stats = shard->client->stats();
    if (!stats.ok()) {
      // An unanswered stats pull is a transport outcome like any other:
      // record it on the shard so the fleet view shows WHICH member is
      // dark instead of silently narrowing.
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->last_contact_ok = false;
      shard->last_error = stats.error().message;
      last = stats.error();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->last_contact_ok = true;
    }
    merged.merge(stats.value());
    ++answered;
  }
  if (statuses != nullptr) *statuses = fleet_status();
  if (reachable != nullptr) *reachable = answered;
  if (answered == 0) return Expected<WireStats>(last);
  return merged;
}

Expected<std::string> Router::fleet_metrics() {
  std::vector<ShardStatus> statuses;
  Expected<WireStats> merged = fleet_stats(nullptr, &statuses);
  if (!merged.ok()) return Expected<std::string>(merged.error());
  std::string text = render_prometheus(merged.value(), "fleet");
  // Per-shard health series, rendered here rather than in metrics.cpp:
  // shard identity belongs to the router, and a dead shard must be
  // visible IN the scrape, not inferred from a smaller sum.
  text += "# HELP msptrsv_shard_up 1 when the shard answered its last "
          "contact, 0 when it is dark.\n";
  text += "# TYPE msptrsv_shard_up gauge\n";
  for (const ShardStatus& st : statuses) {
    text += "msptrsv_shard_up{shard=\"" + st.endpoint.host + ":" +
            std::to_string(st.endpoint.port) + "\"} " +
            (st.reachable ? "1" : "0") + "\n";
  }
  text += "# HELP msptrsv_shard_breaker_state 0=closed 1=open 2=half-open.\n";
  text += "# TYPE msptrsv_shard_breaker_state gauge\n";
  for (const ShardStatus& st : statuses) {
    text += "msptrsv_shard_breaker_state{shard=\"" + st.endpoint.host + ":" +
            std::to_string(st.endpoint.port) + "\"} " +
            std::to_string(static_cast<int>(st.breaker)) + "\n";
  }
  text += "# HELP msptrsv_shard_failures_total Transport failures observed "
          "against this shard (solves, probes, stats pulls).\n";
  text += "# TYPE msptrsv_shard_failures_total counter\n";
  for (const ShardStatus& st : statuses) {
    text += "msptrsv_shard_failures_total{shard=\"" + st.endpoint.host + ":" +
            std::to_string(st.endpoint.port) + "\"} " +
            std::to_string(st.failures_total) + "\n";
  }
  text += "# HELP msptrsv_shard_probe_rtt_us Round-trip time of the last "
          "successful ping probe, microseconds.\n";
  text += "# TYPE msptrsv_shard_probe_rtt_us gauge\n";
  for (const ShardStatus& st : statuses) {
    if (st.probe_rtt_us < 0) continue;  // no successful probe yet
    char rtt[32];
    std::snprintf(rtt, sizeof(rtt), "%.1f", st.probe_rtt_us);
    text += "msptrsv_shard_probe_rtt_us{shard=\"" + st.endpoint.host + ":" +
            std::to_string(st.endpoint.port) + "\"} " + rtt + "\n";
  }
  return text;
}

Expected<std::string> Router::fleet_trace(const std::string& filter,
                                          std::size_t* reachable) {
  std::string body;
  std::size_t answered = 0;
  core::SolveError last{SolveStatus::kNetworkError, "router has no endpoints"};
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Expected<TraceDumpOkFrame> dump =
        shards_[s]->client->trace_dump(filter, /*include_slow=*/true);
    if (!dump.ok()) {
      std::lock_guard<std::mutex> lock(shards_[s]->mutex);
      shards_[s]->last_contact_ok = false;
      shards_[s]->last_error = dump.error().message;
      last = dump.error();
      continue;
    }
    ++answered;
    // Splice the shard's two documents (live rings + retained slow
    // traces) into the fleet body, re-homing their events onto this
    // shard's own pid lane so Perfetto draws the members side by side.
    // The documents are our own trace_collect_json output -- a flat
    // {"traceEvents":[...]} with "pid":1 on every event -- so the
    // string-level splice is against a known grammar, not arbitrary JSON.
    const std::string lane = "\"pid\":" + std::to_string(s + 1) + ",";
    for (std::string* doc : {&dump.value().json, &dump.value().slow_json}) {
      const std::size_t open = doc->find('[');
      const std::size_t close = doc->rfind(']');
      if (open == std::string::npos || close == std::string::npos ||
          close <= open + 1) {
        continue;  // empty or malformed document: nothing to splice
      }
      std::string events = doc->substr(open + 1, close - open - 1);
      std::size_t at = 0;
      while ((at = events.find("\"pid\":1,", at)) != std::string::npos) {
        events.replace(at, 8, lane);
        at += lane.size();
      }
      if (!body.empty()) body += ",";
      body += events;
    }
  }
  if (reachable != nullptr) *reachable = answered;
  if (answered == 0) return Expected<std::string>(last);
  return "{\"traceEvents\":[" + body + "]}";
}

Expected<std::uint64_t> Router::drain_all() {
  std::uint64_t completed = 0;
  core::SolveError first_error{SolveStatus::kOk, ""};
  for (const std::unique_ptr<Shard>& shard : shards_) {
    Expected<std::uint64_t> drained = shard->client->drain();
    if (drained.ok()) {
      completed += drained.value();
    } else if (first_error.status == SolveStatus::kOk) {
      first_error = drained.error();
    }
  }
  if (first_error.status != SolveStatus::kOk) {
    return Expected<std::uint64_t>(first_error);
  }
  return completed;
}

}  // namespace msptrsv::net
