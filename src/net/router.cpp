#include "net/router.hpp"

#include <utility>

#include "net/metrics.hpp"
#include "sparse/serialize.hpp"

namespace msptrsv::net {

namespace {

using core::Expected;
using core::SolveStatus;

/// FNV-1a of a string: the shard identity seed. Not a great mixer on its
/// own, which is fine -- rendezvous scoring re-mixes it below.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64-style finalizer: the rendezvous score of (plan, shard).
/// Strong mixing is what delivers the uniform-balance property.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Router::Router(RouterOptions options) : options_(std::move(options)) {
  clients_.reserve(options_.endpoints.size());
  shard_seeds_.reserve(options_.endpoints.size());
  for (const Endpoint& ep : options_.endpoints) {
    ClientOptions c = options_.client;
    c.host = ep.host;
    c.port = ep.port;
    // Decorrelate the shards' backoff jitter streams.
    c.retry.seed = options_.client.retry.seed ^ fnv1a(ep.host) ^ ep.port;
    clients_.push_back(std::make_unique<SolveClient>(std::move(c)));
    shard_seeds_.push_back(
        fnv1a(ep.host + ":" + std::to_string(ep.port)));
  }
}

std::size_t Router::shard_of(std::uint64_t pattern_hash) const {
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t s = 0; s < shard_seeds_.size(); ++s) {
    const std::uint64_t score = mix(pattern_hash ^ shard_seeds_[s]);
    if (s == 0 || score > best_score) {
      best = s;
      best_score = score;
    }
  }
  return best;
}

Expected<RoutedHandle> Router::open(const sparse::CscMatrix& lower,
                                    const std::string& backend_key) {
  if (clients_.empty()) {
    return Expected<RoutedHandle>(SolveStatus::kInvalidOptions,
                                  "router has no endpoints");
  }
  const sparse::StructuralHash hash = sparse::hash_csc(lower);
  const std::size_t shard = shard_of(hash.pattern);
  Expected<PlanHandle> handle = clients_[shard]->open(lower, backend_key);
  if (!handle.ok()) return Expected<RoutedHandle>(handle.error());
  return RoutedHandle{shard, std::move(handle.value())};
}

Expected<std::vector<value_t>> Router::solve(
    const RoutedHandle& plan, std::span<const value_t> b,
    service::Priority priority, std::chrono::microseconds deadline) {
  return clients_[plan.shard]->solve(plan.handle, b, priority, deadline);
}

Expected<std::vector<value_t>> Router::solve_batch(
    const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  return clients_[plan.shard]->solve_batch(plan.handle, rhs, num_rhs,
                                           priority, deadline);
}

std::future<Expected<std::vector<value_t>>> Router::submit_batch(
    const RoutedHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
    service::Priority priority, std::chrono::microseconds deadline) {
  return clients_[plan.shard]->submit_batch(plan.handle, rhs, num_rhs,
                                            priority, deadline);
}

Expected<WireStats> Router::fleet_stats(std::size_t* reachable) {
  WireStats merged;
  std::size_t answered = 0;
  core::SolveError last{SolveStatus::kNetworkError, "router has no endpoints"};
  for (const std::unique_ptr<SolveClient>& client : clients_) {
    Expected<WireStats> shard = client->stats();
    if (!shard.ok()) {
      last = shard.error();
      continue;
    }
    merged.merge(shard.value());
    ++answered;
  }
  if (reachable != nullptr) *reachable = answered;
  if (answered == 0) return Expected<WireStats>(last);
  return merged;
}

Expected<std::string> Router::fleet_metrics() {
  Expected<WireStats> merged = fleet_stats();
  if (!merged.ok()) return Expected<std::string>(merged.error());
  return render_prometheus(merged.value(), "fleet");
}

Expected<std::uint64_t> Router::drain_all() {
  std::uint64_t completed = 0;
  core::SolveError first_error{SolveStatus::kOk, ""};
  for (const std::unique_ptr<SolveClient>& client : clients_) {
    Expected<std::uint64_t> drained = client->drain();
    if (drained.ok()) {
      completed += drained.value();
    } else if (first_error.status == SolveStatus::kOk) {
      first_error = drained.error();
    }
  }
  if (first_error.status != SolveStatus::kOk) {
    return Expected<std::uint64_t>(first_error);
  }
  return completed;
}

}  // namespace msptrsv::net
