#include "net/protocol.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "net/socket.hpp"

namespace msptrsv::net {

namespace {

using core::Expected;
using core::SolveStatus;
using support::BlobReader;
using support::BlobWriter;

/// Starts a frame payload: type + request id.
BlobWriter begin_frame(FrameType type, std::uint64_t request_id) {
  BlobWriter w(kProtocolVersion);
  w.write_u8(static_cast<std::uint8_t>(type));
  w.write_u64(request_id);
  return w;
}

/// Seals the blob and prepends the u32 little-endian length prefix.
std::vector<std::uint8_t> seal(BlobWriter&& w) {
  std::vector<std::uint8_t> blob = std::move(w).finish();
  std::vector<std::uint8_t> wire(4 + blob.size());
  const std::uint32_t len = static_cast<std::uint32_t>(blob.size());
  std::memcpy(wire.data(), &len, 4);
  std::memcpy(wire.data() + 4, blob.data(), blob.size());
  return wire;
}

/// Shared tail of every decoder: the reader must be clean AND fully
/// consumed (a frame with trailing bytes is from a different grammar).
template <typename T>
Expected<T> finish_decode(FrameHead& head, T frame, const char* what) {
  if (!head.reader.ok()) {
    return Expected<T>(SolveStatus::kProtocolError,
                       std::string(what) + ": " + head.reader.error());
  }
  if (head.reader.remaining() != 0) {
    // Latch on the reader too: the server fail-stops connections on
    // reader state, and trailing bytes are as disqualifying as a bad CRC.
    head.reader.fail(std::string(what) + ": " +
                     std::to_string(head.reader.remaining()) +
                     " trailing payload bytes");
    return Expected<T>(SolveStatus::kProtocolError,
                       std::string(what) + ": trailing payload bytes");
  }
  return frame;
}

void write_hist(BlobWriter& w,
                const service::LatencyHistogramSnapshot& h) {
  w.write_u64(h.count);
  w.write_u64(h.sum_us);
  w.write_span<std::uint64_t>(h.counts);
}

service::LatencyHistogramSnapshot read_hist(BlobReader& r) {
  service::LatencyHistogramSnapshot h;
  h.count = r.read_u64();
  h.sum_us = r.read_u64();
  h.counts = r.read_vector<std::uint64_t>();
  if (h.counts.size() > service::LatencyHistogram::kBuckets) {
    r.fail("latency histogram with " + std::to_string(h.counts.size()) +
           " buckets exceeds the bucket-count bound");
    h = {};
  }
  return h;
}

/// The 16-byte trace id travels as two little-endian u64 halves.
void write_trace_id(BlobWriter& w, const support::trace::TraceId& id) {
  std::uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi |= static_cast<std::uint64_t>(id[i]) << (8 * i);
    lo |= static_cast<std::uint64_t>(id[8 + i]) << (8 * i);
  }
  w.write_u64(hi);
  w.write_u64(lo);
}

support::trace::TraceId read_trace_id(BlobReader& r) {
  const std::uint64_t hi = r.read_u64();
  const std::uint64_t lo = r.read_u64();
  support::trace::TraceId id{};
  for (int i = 0; i < 8; ++i) {
    id[i] = static_cast<std::uint8_t>(hi >> (8 * i));
    id[8 + i] = static_cast<std::uint8_t>(lo >> (8 * i));
  }
  return id;
}

}  // namespace

void WireStats::merge(const WireStats& other) {
  submitted += other.submitted;
  completed += other.completed;
  failed += other.failed;
  rejected += other.rejected;
  shed += other.shed;
  batches += other.batches;
  coalesced_rhs += other.coalesced_rhs;
  queue_depth += other.queue_depth;
  peak_queue_depth = std::max(peak_queue_depth, other.peak_queue_depth);
  connections_accepted += other.connections_accepted;
  connections_active += other.connections_active;
  frames_received += other.frames_received;
  protocol_errors += other.protocol_errors;
  plans_open += other.plans_open;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  cache_byte_evictions += other.cache_byte_evictions;
  cache_disk_hits += other.cache_disk_hits;
  cache_disk_stores += other.cache_disk_stores;
  latency.merge(other.latency);
  for (std::size_t c = 0; c < per_class.size(); ++c) {
    per_class[c].submitted += other.per_class[c].submitted;
    per_class[c].completed += other.per_class[c].completed;
    per_class[c].shed += other.per_class[c].shed;
    per_class[c].latency.merge(other.per_class[c].latency);
  }
  for (std::size_t p = 0; p < phases.size(); ++p) {
    phases[p].merge(other.phases[p]);
  }
}

// ---- encoders --------------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloFrame& f) {
  BlobWriter w = begin_frame(FrameType::kHello, f.request_id);
  w.write_u16(f.min_version);
  w.write_u16(f.max_version);
  w.write_string(f.client_name);
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_hello_ok(const HelloOkFrame& f) {
  BlobWriter w = begin_frame(FrameType::kHelloOk, f.request_id);
  w.write_u16(f.version);
  w.write_u64(f.max_frame_bytes);
  w.write_string(f.server_name);
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_open_plan(const OpenPlanFrame& f) {
  BlobWriter w = begin_frame(FrameType::kOpenPlan, f.request_id);
  w.write_u8(static_cast<std::uint8_t>(f.mode));
  w.write_string(f.backend_key);
  switch (f.mode) {
    case OpenMode::kMatrix:
      sparse::write_csc(w, f.matrix);
      break;
    case OpenMode::kPlanBlob:
      w.write_span<std::uint8_t>(f.plan_blob);
      break;
    case OpenMode::kHashRef:
      w.write_u64(f.hash.pattern);
      w.write_u64(f.hash.values);
      break;
  }
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_open_ok(const OpenOkFrame& f) {
  BlobWriter w = begin_frame(FrameType::kOpenOk, f.request_id);
  w.write_u64(f.plan_id);
  w.write_i32(f.rows);
  w.write_u64(f.hash.pattern);
  w.write_u64(f.hash.values);
  w.write_string(f.source);
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_solve(const SolveFrame& f) {
  BlobWriter w = begin_frame(FrameType::kSolve, f.request_id);
  w.write_u64(f.plan_id);
  w.write_i32(f.num_rhs);
  w.write_u8(static_cast<std::uint8_t>(f.priority));
  w.write_u64(f.deadline_us);
  w.write_span<value_t>(f.rhs);
  // Optional tail: the trace id rides only when set, so untraced frames
  // are byte-identical to the pre-trace grammar.
  if (support::trace::trace_id_set(f.trace_id)) {
    write_trace_id(w, f.trace_id);
  }
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_solve_ok(const SolveOkFrame& f) {
  BlobWriter w = begin_frame(FrameType::kSolveOk, f.request_id);
  w.write_f64(f.server_us);
  w.write_span<value_t>(f.x);
  // Optional tail: seven f64 microsecond fields in PhaseBreakdown order.
  if (f.has_phases) {
    w.write_f64(f.phases.queue_us);
    w.write_f64(f.phases.coalesce_us);
    w.write_f64(f.phases.claim_us);
    w.write_f64(f.phases.pack_us);
    w.write_f64(f.phases.kernel_us);
    w.write_f64(f.phases.unpack_us);
    w.write_f64(f.phases.reply_us);
  }
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_error(const ErrorFrame& f) {
  BlobWriter w = begin_frame(FrameType::kError, f.request_id);
  w.write_u8(static_cast<std::uint8_t>(f.status));
  w.write_string(f.message);
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_stats(const StatsFrame& f) {
  BlobWriter w = begin_frame(FrameType::kStats, f.request_id);
  w.write_u8(static_cast<std::uint8_t>(f.format));
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_stats_ok(const StatsOkFrame& f) {
  BlobWriter w = begin_frame(FrameType::kStatsOk, f.request_id);
  w.write_u8(static_cast<std::uint8_t>(f.format));
  if (f.format == StatsFormat::kPrometheus) {
    w.write_string(f.text);
  } else {
    const WireStats& s = f.stats;
    w.write_u64(s.submitted);
    w.write_u64(s.completed);
    w.write_u64(s.failed);
    w.write_u64(s.rejected);
    w.write_u64(s.shed);
    w.write_u64(s.batches);
    w.write_u64(s.coalesced_rhs);
    w.write_u64(s.queue_depth);
    w.write_u64(s.peak_queue_depth);
    w.write_u64(s.connections_accepted);
    w.write_u64(s.connections_active);
    w.write_u64(s.frames_received);
    w.write_u64(s.protocol_errors);
    w.write_u64(s.plans_open);
    write_hist(w, s.latency);
    for (const WireStats::PerClass& pc : s.per_class) {
      w.write_u64(pc.submitted);
      w.write_u64(pc.completed);
      w.write_u64(pc.shed);
      write_hist(w, pc.latency);
    }
    // Extension tail (decoded only when present, so pre-trace peers
    // still parse the prefix): plan-cache counters + per-phase hists.
    w.write_u64(s.cache_hits);
    w.write_u64(s.cache_misses);
    w.write_u64(s.cache_evictions);
    w.write_u64(s.cache_byte_evictions);
    w.write_u64(s.cache_disk_hits);
    w.write_u64(s.cache_disk_stores);
    for (const service::LatencyHistogramSnapshot& ph : s.phases) {
      write_hist(w, ph);
    }
  }
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_drain(const DrainFrame& f) {
  return seal(begin_frame(FrameType::kDrain, f.request_id));
}

std::vector<std::uint8_t> encode_drain_ok(const DrainOkFrame& f) {
  BlobWriter w = begin_frame(FrameType::kDrainOk, f.request_id);
  w.write_u64(f.completed);
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_ping(const PingFrame& f) {
  return seal(begin_frame(FrameType::kPing, f.request_id));
}

std::vector<std::uint8_t> encode_pong(const PongFrame& f) {
  return seal(begin_frame(FrameType::kPong, f.request_id));
}

std::vector<std::uint8_t> encode_failpoint(const FailpointFrame& f) {
  BlobWriter w = begin_frame(FrameType::kFailpoint, f.request_id);
  w.write_string(f.name);
  w.write_string(f.spec);
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_failpoint_ok(const FailpointOkFrame& f) {
  BlobWriter w = begin_frame(FrameType::kFailpointOk, f.request_id);
  w.write_u32(f.armed);
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_trace_dump(const TraceDumpFrame& f) {
  BlobWriter w = begin_frame(FrameType::kTraceDump, f.request_id);
  w.write_string(f.filter);
  w.write_u8(f.include_slow ? 1 : 0);
  return seal(std::move(w));
}

std::vector<std::uint8_t> encode_trace_dump_ok(const TraceDumpOkFrame& f) {
  BlobWriter w = begin_frame(FrameType::kTraceDumpOk, f.request_id);
  w.write_string(f.json);
  w.write_string(f.slow_json);
  return seal(std::move(w));
}

// ---- decoders --------------------------------------------------------------

Expected<FrameHead> peek_frame(std::span<const std::uint8_t> blob) {
  BlobReader r(blob, kProtocolVersion);
  const std::uint8_t type = r.read_u8();
  const std::uint64_t request_id = r.read_u64();
  if (!r.ok()) {
    return Expected<FrameHead>(SolveStatus::kProtocolError,
                               "bad frame: " + r.error());
  }
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kTraceDumpOk)) {
    return Expected<FrameHead>(SolveStatus::kProtocolError,
                               "unknown frame type " + std::to_string(type));
  }
  return FrameHead{static_cast<FrameType>(type), request_id, std::move(r)};
}

Expected<HelloFrame> decode_hello(FrameHead& head) {
  HelloFrame f;
  f.request_id = head.request_id;
  f.min_version = head.reader.read_u16();
  f.max_version = head.reader.read_u16();
  f.client_name = head.reader.read_string();
  if (f.min_version > f.max_version) {
    head.reader.fail("hello with min_version > max_version");
  }
  return finish_decode(head, std::move(f), "hello");
}

Expected<HelloOkFrame> decode_hello_ok(FrameHead& head) {
  HelloOkFrame f;
  f.request_id = head.request_id;
  f.version = head.reader.read_u16();
  f.max_frame_bytes = head.reader.read_u64();
  f.server_name = head.reader.read_string();
  return finish_decode(head, std::move(f), "hello-ok");
}

Expected<OpenPlanFrame> decode_open_plan(FrameHead& head) {
  OpenPlanFrame f;
  f.request_id = head.request_id;
  const std::uint8_t mode = head.reader.read_u8();
  f.backend_key = head.reader.read_string();
  if (mode > static_cast<std::uint8_t>(OpenMode::kHashRef)) {
    head.reader.fail("unknown open mode " + std::to_string(mode));
    return finish_decode(head, std::move(f), "open-plan");
  }
  f.mode = static_cast<OpenMode>(mode);
  switch (f.mode) {
    case OpenMode::kMatrix:
      // read_csc bounds-checks shape, pointer monotonicity, and index
      // ranges -- a hostile matrix fails the reader, not the solver.
      f.matrix = sparse::read_csc(head.reader);
      break;
    case OpenMode::kPlanBlob:
      f.plan_blob = head.reader.read_vector<std::uint8_t>();
      break;
    case OpenMode::kHashRef:
      f.hash.pattern = head.reader.read_u64();
      f.hash.values = head.reader.read_u64();
      break;
  }
  return finish_decode(head, std::move(f), "open-plan");
}

Expected<OpenOkFrame> decode_open_ok(FrameHead& head) {
  OpenOkFrame f;
  f.request_id = head.request_id;
  f.plan_id = head.reader.read_u64();
  f.rows = head.reader.read_i32();
  f.hash.pattern = head.reader.read_u64();
  f.hash.values = head.reader.read_u64();
  f.source = head.reader.read_string();
  if (f.rows < 0) head.reader.fail("negative row count");
  return finish_decode(head, std::move(f), "open-ok");
}

Expected<SolveFrame> decode_solve(FrameHead& head) {
  SolveFrame f;
  f.request_id = head.request_id;
  f.plan_id = head.reader.read_u64();
  f.num_rhs = head.reader.read_i32();
  const std::uint8_t priority = head.reader.read_u8();
  f.deadline_us = head.reader.read_u64();
  f.rhs = head.reader.read_vector<value_t>();
  if (f.num_rhs < 1) {
    head.reader.fail("num_rhs must be >= 1 (got " +
                     std::to_string(f.num_rhs) + ")");
  }
  if (priority >= service::kNumPriorities) {
    head.reader.fail("unknown priority class " + std::to_string(priority));
  } else {
    f.priority = static_cast<service::Priority>(priority);
  }
  // Optional trace-id tail: absent in frames from pre-trace clients.
  if (head.reader.ok() && head.reader.remaining() > 0) {
    f.trace_id = read_trace_id(head.reader);
  }
  return finish_decode(head, std::move(f), "solve");
}

Expected<SolveOkFrame> decode_solve_ok(FrameHead& head) {
  SolveOkFrame f;
  f.request_id = head.request_id;
  f.server_us = head.reader.read_f64();
  f.x = head.reader.read_vector<value_t>();
  // Optional phase-breakdown tail: absent in replies from pre-trace servers.
  if (head.reader.ok() && head.reader.remaining() > 0) {
    f.phases.queue_us = head.reader.read_f64();
    f.phases.coalesce_us = head.reader.read_f64();
    f.phases.claim_us = head.reader.read_f64();
    f.phases.pack_us = head.reader.read_f64();
    f.phases.kernel_us = head.reader.read_f64();
    f.phases.unpack_us = head.reader.read_f64();
    f.phases.reply_us = head.reader.read_f64();
    f.has_phases = head.reader.ok();
  }
  return finish_decode(head, std::move(f), "solve-ok");
}

Expected<ErrorFrame> decode_error(FrameHead& head) {
  ErrorFrame f;
  f.request_id = head.request_id;
  const std::uint8_t status = head.reader.read_u8();
  f.message = head.reader.read_string();
  if (status > static_cast<std::uint8_t>(SolveStatus::kInternalError)) {
    head.reader.fail("unknown status code " + std::to_string(status));
  } else {
    f.status = static_cast<SolveStatus>(status);
  }
  if (f.status == SolveStatus::kOk) {
    head.reader.fail("error frame carrying status ok");
  }
  return finish_decode(head, std::move(f), "error");
}

Expected<StatsFrame> decode_stats(FrameHead& head) {
  StatsFrame f;
  f.request_id = head.request_id;
  const std::uint8_t format = head.reader.read_u8();
  if (format > static_cast<std::uint8_t>(StatsFormat::kBinary)) {
    head.reader.fail("unknown stats format " + std::to_string(format));
  } else {
    f.format = static_cast<StatsFormat>(format);
  }
  return finish_decode(head, std::move(f), "stats");
}

Expected<StatsOkFrame> decode_stats_ok(FrameHead& head) {
  StatsOkFrame f;
  f.request_id = head.request_id;
  const std::uint8_t format = head.reader.read_u8();
  if (format > static_cast<std::uint8_t>(StatsFormat::kBinary)) {
    head.reader.fail("unknown stats format " + std::to_string(format));
    return finish_decode(head, std::move(f), "stats-ok");
  }
  f.format = static_cast<StatsFormat>(format);
  if (f.format == StatsFormat::kPrometheus) {
    f.text = head.reader.read_string();
  } else {
    WireStats& s = f.stats;
    s.submitted = head.reader.read_u64();
    s.completed = head.reader.read_u64();
    s.failed = head.reader.read_u64();
    s.rejected = head.reader.read_u64();
    s.shed = head.reader.read_u64();
    s.batches = head.reader.read_u64();
    s.coalesced_rhs = head.reader.read_u64();
    s.queue_depth = head.reader.read_u64();
    s.peak_queue_depth = head.reader.read_u64();
    s.connections_accepted = head.reader.read_u64();
    s.connections_active = head.reader.read_u64();
    s.frames_received = head.reader.read_u64();
    s.protocol_errors = head.reader.read_u64();
    s.plans_open = head.reader.read_u64();
    s.latency = read_hist(head.reader);
    for (WireStats::PerClass& pc : s.per_class) {
      pc.submitted = head.reader.read_u64();
      pc.completed = head.reader.read_u64();
      pc.shed = head.reader.read_u64();
      pc.latency = read_hist(head.reader);
    }
    if (head.reader.ok() && head.reader.remaining() > 0) {
      s.cache_hits = head.reader.read_u64();
      s.cache_misses = head.reader.read_u64();
      s.cache_evictions = head.reader.read_u64();
      s.cache_byte_evictions = head.reader.read_u64();
      s.cache_disk_hits = head.reader.read_u64();
      s.cache_disk_stores = head.reader.read_u64();
      for (service::LatencyHistogramSnapshot& ph : s.phases) {
        ph = read_hist(head.reader);
      }
    }
  }
  return finish_decode(head, std::move(f), "stats-ok");
}

Expected<DrainFrame> decode_drain(FrameHead& head) {
  DrainFrame f;
  f.request_id = head.request_id;
  return finish_decode(head, std::move(f), "drain");
}

Expected<DrainOkFrame> decode_drain_ok(FrameHead& head) {
  DrainOkFrame f;
  f.request_id = head.request_id;
  f.completed = head.reader.read_u64();
  return finish_decode(head, std::move(f), "drain-ok");
}

Expected<PingFrame> decode_ping(FrameHead& head) {
  PingFrame f;
  f.request_id = head.request_id;
  return finish_decode(head, std::move(f), "ping");
}

Expected<PongFrame> decode_pong(FrameHead& head) {
  PongFrame f;
  f.request_id = head.request_id;
  return finish_decode(head, std::move(f), "pong");
}

Expected<FailpointFrame> decode_failpoint(FrameHead& head) {
  FailpointFrame f;
  f.request_id = head.request_id;
  f.name = head.reader.read_string();
  f.spec = head.reader.read_string();
  return finish_decode(head, std::move(f), "failpoint");
}

Expected<FailpointOkFrame> decode_failpoint_ok(FrameHead& head) {
  FailpointOkFrame f;
  f.request_id = head.request_id;
  f.armed = head.reader.read_u32();
  return finish_decode(head, std::move(f), "failpoint-ok");
}

Expected<TraceDumpFrame> decode_trace_dump(FrameHead& head) {
  TraceDumpFrame f;
  f.request_id = head.request_id;
  f.filter = head.reader.read_string();
  if (!f.filter.empty()) {
    support::trace::TraceId parsed{};
    if (!support::trace::trace_id_parse(f.filter, &parsed)) {
      head.reader.fail("trace filter is not a 32-hex-char trace id");
    }
  }
  f.include_slow = head.reader.read_u8() != 0;
  return finish_decode(head, std::move(f), "trace-dump");
}

Expected<TraceDumpOkFrame> decode_trace_dump_ok(FrameHead& head) {
  TraceDumpOkFrame f;
  f.request_id = head.request_id;
  f.json = head.reader.read_string();
  f.slow_json = head.reader.read_string();
  return finish_decode(head, std::move(f), "trace-dump-ok");
}

// ---- socket framing --------------------------------------------------------

Expected<bool> write_frame(Socket& sock,
                           std::span<const std::uint8_t> wire) {
  return sock.send_all(wire);
}

Expected<std::optional<std::vector<std::uint8_t>>> read_frame(
    Socket& sock, std::uint32_t max_frame_bytes) {
  using Out = std::optional<std::vector<std::uint8_t>>;
  std::uint8_t prefix[4];
  bool eof = false;
  Expected<bool> got = sock.recv_exact(prefix, &eof);
  if (!got.ok()) return Expected<Out>(got.error());
  if (eof) return Expected<Out>(Out{});
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, 4);
  // Bounds on the ATTACKER-CHOSEN length, checked before any allocation:
  // too small to be a blob, or larger than the negotiated cap, is a
  // protocol violation -- never an allocation attempt.
  if (len < support::kBlobMinBytes + 9 || len > max_frame_bytes) {
    return Expected<Out>(
        SolveStatus::kProtocolError,
        "frame length " + std::to_string(len) + " outside [" +
            std::to_string(support::kBlobMinBytes + 9) + ", " +
            std::to_string(max_frame_bytes) + "]");
  }
  std::vector<std::uint8_t> blob(len);
  got = sock.recv_exact(blob, &eof);
  if (!got.ok()) return Expected<Out>(got.error());
  if (eof) {
    return Expected<Out>(SolveStatus::kNetworkError,
                         "peer closed between length prefix and frame body");
  }
  return Expected<Out>(Out{std::move(blob)});
}

}  // namespace msptrsv::net
