#include "net/server.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <optional>
#include <utility>

#include "core/registry.hpp"
#include "net/metrics.hpp"
#include "sparse/serialize.hpp"
#include "support/failpoint.hpp"

namespace msptrsv::net {

namespace {

using core::Expected;
using core::SolveStatus;

}  // namespace

/// Per-connection state. The reader and pump threads hold a shared_ptr,
/// so the struct outlives whichever side tears the connection down first.
struct SolveServer::Connection {
  Socket sock;
  std::mutex write_mutex;
  std::thread reader;
  std::thread pump;

  /// Solve replies in flight: the reader submits, the pump completes.
  struct Pending {
    std::uint64_t request_id = 0;
    std::future<service::SolveService::Reply> reply;
    /// Trace identity the reader decoded (all-zero = untraced) and the rx
    /// span the reply span parents under -- the pump thread has no
    /// thread-local context of its own.
    support::trace::TraceId trace_id{};
    std::uint64_t parent_span = 0;
  };
  std::mutex pump_mutex;
  std::condition_variable pump_cv;
  std::deque<Pending> pump_queue;
  bool pump_closed = false;  ///< no more pushes; pump drains and exits

  std::atomic<bool> finished{false};  ///< reader has exited (reapable)
};

SolveServer::SolveServer(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  injected_remaining_.store(
      options_.inject_status == SolveStatus::kOk ? 0 : options_.inject_count,
      std::memory_order_relaxed);
}

SolveServer::~SolveServer() { stop(); }

Expected<bool> SolveServer::start() {
  Expected<ListenSocket> listener =
      ListenSocket::open(options_.port, options_.backlog);
  if (!listener.ok()) return Expected<bool>(listener.error());
  listener_ = std::move(listener.value());
  port_ = listener_.port();
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void SolveServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // No new connections: closing the listener unblocks accept().
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  // No new requests: half-close every read side. Readers fall out of
  // read_frame with a clean EOF, close their pump (which flushes every
  // queued reply -- the service answers all admitted work), and exit.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::shared_ptr<Connection>& c : connections_) {
      c->sock.shutdown_read();
    }
  }
  reap_finished(/*join_all=*/true);
}

void SolveServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    Expected<Socket> accepted = listener_.accept();
    if (!accepted.ok()) continue;  // closed listener ends the loop
    reap_finished(/*join_all=*/false);
    if (connections_active_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Bounded acceptor: tell the client why before closing, so its
      // retry policy backs off instead of reconnect-hammering.
      Socket sock = std::move(accepted.value());
      const std::vector<std::uint8_t> wire = encode_error(
          {0, SolveStatus::kOverloaded,
           "server at its connection bound (" +
               std::to_string(options_.max_connections) + ")"});
      (void)sock.send_all(wire);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(accepted.value());
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(conn);
    }
    conn->pump = std::thread([this, conn] { pump_loop(conn); });
    conn->reader = std::thread([this, conn] { serve_connection(conn); });
  }
}

void SolveServer::reap_finished(bool join_all) {
  std::vector<std::shared_ptr<Connection>> reap;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto keep = connections_.begin();
    for (std::shared_ptr<Connection>& c : connections_) {
      if (join_all || c->finished.load(std::memory_order_acquire)) {
        reap.push_back(std::move(c));
      } else {
        *keep++ = std::move(c);
      }
    }
    connections_.erase(keep, connections_.end());
  }
  for (const std::shared_ptr<Connection>& c : reap) {
    if (c->reader.joinable()) c->reader.join();
    if (c->pump.joinable()) c->pump.join();
  }
}

void SolveServer::write_reply(Connection& conn,
                              const std::vector<std::uint8_t>& wire) {
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  Expected<bool> sent = conn.sock.send_all(wire);
  if (!sent.ok()) {
    // Peer is gone: kick the reader out of its blocking read so the
    // connection unwinds (the pump keeps draining futures -- the service
    // owes every admitted request an answer, delivered or not).
    conn.sock.shutdown_read();
  }
}

void SolveServer::serve_connection(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Expected<std::optional<std::vector<std::uint8_t>>> frame =
        read_frame(conn->sock, options_.max_frame_bytes);
    if (!frame.ok()) {
      if (frame.status() == SolveStatus::kProtocolError) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        write_reply(*conn, encode_error({0, SolveStatus::kProtocolError,
                                         frame.message()}));
      }
      break;
    }
    if (!frame.value().has_value()) break;  // clean close
    const std::vector<std::uint8_t>& blob = *frame.value();

    Expected<FrameHead> head = peek_frame(blob);
    if (!head.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      write_reply(*conn, encode_error({0, SolveStatus::kProtocolError,
                                       head.message()}));
      break;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);

    bool protocol_ok = true;
    switch (head.value().type) {
      case FrameType::kHello:
        handle_hello(*conn, head.value());
        break;
      case FrameType::kOpenPlan:
        handle_open(*conn, head.value());
        break;
      case FrameType::kSolve:
        handle_solve(*conn, head.value());
        break;
      case FrameType::kStats:
        handle_stats(*conn, head.value());
        break;
      case FrameType::kDrain:
        handle_drain(*conn, head.value());
        break;
      case FrameType::kPing:
        handle_ping(*conn, head.value());
        break;
      case FrameType::kFailpoint:
        handle_failpoint(*conn, head.value());
        break;
      case FrameType::kTraceDump:
        handle_trace_dump(*conn, head.value());
        break;
      default:
        // A reply type arriving at the server: the peer is not a client.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        write_reply(*conn,
                    encode_error({head.value().request_id,
                                  SolveStatus::kProtocolError,
                                  "reply-type frame sent to a server"}));
        protocol_ok = false;
        break;
    }
    // Handlers latch decode failures on the reader; fail-stop on them.
    if (!protocol_ok || !head.value().reader.ok()) break;
  }
  // Close the pump: it drains what is queued, then exits.
  {
    std::lock_guard<std::mutex> lock(conn->pump_mutex);
    conn->pump_closed = true;
  }
  conn->pump_cv.notify_all();
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  conn->finished.store(true, std::memory_order_release);
}

void SolveServer::pump_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Connection::Pending next;
    {
      std::unique_lock<std::mutex> lock(conn->pump_mutex);
      conn->pump_cv.wait(lock, [&] {
        return !conn->pump_queue.empty() || conn->pump_closed;
      });
      if (conn->pump_queue.empty()) {
        // Closed and drained: the reader is gone and every queued reply
        // is flushed. Send FIN so the peer sees EOF instead of a
        // connection that lingers half-dead until the next reap.
        conn->sock.shutdown_write();
        return;
      }
      next = std::move(conn->pump_queue.front());
      conn->pump_queue.pop_front();
    }
    service::SolveService::Reply reply = next.reply.get();
    if (reply.ok()) {
      SolveOkFrame ok;
      ok.request_id = next.request_id;
      ok.server_us = reply.value().wall_seconds * 1e6;
      ok.x = std::move(reply.value().x);
      // Reply-phase attribution: completion -> here covers the pump's
      // FIFO wait plus the result move; what rides IN the frame cannot
      // include its own socket flush, so the histogram figure recorded
      // after write_reply below is the fuller (and authoritative) one.
      const std::uint64_t done_ns = reply.value().completed_ns;
      ok.has_phases = true;
      ok.phases = reply.value().phases;
      if (done_ns != 0) {
        ok.phases.reply_us =
            static_cast<double>(support::trace::trace_now_ns() - done_ns) *
            1e-3;
      }
      write_reply(*conn, encode_solve_ok(ok));
      const std::uint64_t flushed_ns = support::trace::trace_now_ns();
      if (done_ns != 0) {
        service_.record_reply_us(static_cast<double>(flushed_ns - done_ns) *
                                 1e-3);
        support::trace::trace_emit("net.reply", done_ns, flushed_ns,
                                   next.trace_id, next.parent_span);
      }
    } else {
      write_reply(*conn, encode_error({next.request_id,
                                       reply.error().status,
                                       reply.error().message}));
    }
  }
}

void SolveServer::handle_hello(Connection& conn, FrameHead& head) {
  Expected<HelloFrame> hello = decode_hello(head);
  if (!hello.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kProtocolError,
                                    hello.message()}));
    return;
  }
  if (hello.value().min_version > kProtocolVersion ||
      hello.value().max_version < kProtocolVersion) {
    // Not a wire violation -- both sides spoke valid frames -- but no
    // common version: reply and let the client give up cleanly.
    write_reply(conn,
                encode_error({head.request_id, SolveStatus::kProtocolError,
                              "no common protocol version: server speaks " +
                                  std::to_string(kProtocolVersion)}));
    head.reader.fail("version negotiation failed");
    return;
  }
  HelloOkFrame ok;
  ok.request_id = head.request_id;
  ok.version = kProtocolVersion;
  ok.max_frame_bytes = options_.max_frame_bytes;
  ok.server_name = options_.server_name;
  write_reply(conn, encode_hello_ok(ok));
}

void SolveServer::handle_open(Connection& conn, FrameHead& head) {
  Expected<OpenPlanFrame> open = decode_open_plan(head);
  if (!open.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kProtocolError,
                                    open.message()}));
    return;
  }
  OpenPlanFrame& frame = open.value();

  Expected<core::SolveOptions> options =
      core::registry::service_options(frame.backend_key);
  if (!options.ok()) {
    write_reply(conn, encode_error({head.request_id, options.error().status,
                                    options.error().message}));
    return;
  }

  // Content identity first: a repeat open of a factor this server already
  // holds -- by ANY connection, in any mode -- returns the existing id.
  sparse::StructuralHash hash = frame.hash;
  if (frame.mode == OpenMode::kMatrix) hash = sparse::hash_csc(frame.matrix);
  if (frame.mode == OpenMode::kPlanBlob) {
    // The hash is computable only after deserializing; probe below.
    hash = {};
  }
  std::string key;
  if (frame.mode != OpenMode::kPlanBlob) {
    key = core::PlanCache::key_of(hash, options.value());
    std::lock_guard<std::mutex> lock(plans_mutex_);
    auto it = plans_by_key_.find(key);
    if (it != plans_by_key_.end()) {
      OpenOkFrame ok;
      ok.request_id = head.request_id;
      ok.plan_id = it->second;
      ok.rows = plans_.at(it->second).rows();
      ok.hash = hash;
      ok.source = "open";
      write_reply(conn, encode_open_ok(ok));
      return;
    }
  }

  Expected<core::SolverPlan> plan(SolveStatus::kInternalError, "unset");
  std::string source;
  switch (frame.mode) {
    case OpenMode::kMatrix:
      // Through the service's cache: analyze-on-first-use, disk-backed
      // when the service has a cache_dir.
      plan = service_.plan_for(frame.matrix, frame.backend_key);
      source = "cache";
      break;
    case OpenMode::kPlanBlob:
      plan = core::SolverPlan::deserialize(frame.plan_blob, options.value());
      source = "deserialized";
      break;
    case OpenMode::kHashRef: {
      // Not open here: the shared blob directory is the fleet's warm
      // tier -- any sibling shard (or a previous life of this one) that
      // analyzed this factor has left the plan there.
      const std::string& dir = service_.options().cache_dir;
      if (dir.empty()) {
        plan = Expected<core::SolverPlan>(
            SolveStatus::kBadSnapshot,
            "hash-ref open, but this server has no plan-blob directory");
      } else {
        plan = core::SolverPlan::load(dir + "/" + key + ".plan",
                                      options.value());
      }
      source = "disk";
      break;
    }
  }
  if (!plan.ok()) {
    write_reply(conn, encode_error({head.request_id, plan.error().status,
                                    plan.error().message}));
    return;
  }
  if (frame.mode != OpenMode::kMatrix) {
    hash = sparse::hash_csc(plan.value().factor());
    key = core::PlanCache::key_of(hash, options.value());
  }

  OpenOkFrame ok;
  ok.request_id = head.request_id;
  ok.rows = plan.value().rows();
  ok.hash = hash;
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    auto it = plans_by_key_.find(key);
    if (it != plans_by_key_.end()) {
      ok.plan_id = it->second;  // raced with another connection's open
      ok.source = "open";
    } else {
      ok.plan_id = next_plan_id_++;
      plans_.emplace(ok.plan_id, std::move(plan.value()));
      plans_by_key_.emplace(key, ok.plan_id);
      ok.source = source;
    }
  }
  write_reply(conn, encode_open_ok(ok));
}

void SolveServer::handle_solve(Connection& conn, FrameHead& head) {
  Expected<SolveFrame> solve = decode_solve(head);
  if (!solve.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kProtocolError,
                                    solve.message()}));
    return;
  }
  SolveFrame& frame = solve.value();

  // Deterministic fault injection for the client retry tests.
  std::uint64_t budget =
      injected_remaining_.load(std::memory_order_relaxed);
  while (budget > 0) {
    if (injected_remaining_.compare_exchange_weak(
            budget, budget - 1, std::memory_order_relaxed)) {
      write_reply(conn, encode_error({head.request_id,
                                      options_.inject_status,
                                      "injected fault (testing)"}));
      return;
    }
  }

  const core::SolverPlan* plan = nullptr;
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    auto it = plans_.find(frame.plan_id);
    if (it != plans_.end()) plan = &it->second;
  }
  if (plan == nullptr) {
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kBadSnapshot,
                                    "unknown plan id " +
                                        std::to_string(frame.plan_id)}));
    return;
  }
  const std::size_t expected =
      static_cast<std::size_t>(plan->rows()) *
      static_cast<std::size_t>(frame.num_rhs);
  if (frame.rhs.size() != expected) {
    write_reply(conn,
                encode_error({head.request_id, SolveStatus::kShapeMismatch,
                              "rhs has " + std::to_string(frame.rhs.size()) +
                                  " entries, want rows*num_rhs = " +
                                  std::to_string(expected)}));
    return;
  }

  // Traced request: the rx span is the server-side ROOT of this
  // request's tree (the client's matching span shares only the trace id
  // -- span ids are per-process). Everything downstream (queue wait,
  // gang claim, kernel levels, the reply) parents under it. A frame
  // WITHOUT a trace id on an armed server gets one minted here: tracing
  // and slow-sampling must work against legacy clients too, they just
  // cannot stitch the client half.
  std::optional<support::trace::ScopedTraceContext> trace_ctx;
  std::optional<support::trace::TraceSpan> rx_span;
  if (MSPTRSV_TRACE_ARMED()) {
    if (!support::trace::trace_id_set(frame.trace_id)) {
      frame.trace_id = support::trace::make_trace_id();
    }
    trace_ctx.emplace(frame.trace_id);
    rx_span.emplace("net.rx");
  }

  service::SubmitOptions submit;
  submit.priority = frame.priority;
  submit.deadline = std::chrono::microseconds(frame.deadline_us);
  submit.trace_id = frame.trace_id;
  submit.parent_span = rx_span ? rx_span->span_id() : 0;
  // Plans are never erased while the server lives, and SolverPlan copies
  // share state, so the pointer into plans_ stays valid across the
  // asynchronous solve.
  std::future<service::SolveService::Reply> reply = service_.submit_batch(
      *plan, std::move(frame.rhs), frame.num_rhs, submit);
  {
    std::lock_guard<std::mutex> lock(conn.pump_mutex);
    conn.pump_queue.push_back({head.request_id, std::move(reply),
                               frame.trace_id, submit.parent_span});
  }
  conn.pump_cv.notify_one();
}

void SolveServer::handle_trace_dump(Connection& conn, FrameHead& head) {
  Expected<TraceDumpFrame> frame = decode_trace_dump(head);
  if (!frame.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kProtocolError,
                                    frame.message()}));
    return;
  }
  // Served even when span recording is compiled out or disarmed: the
  // reply is then an empty trace document, which a stitching router
  // treats the same as "this shard saw nothing".
  TraceDumpOkFrame ok;
  ok.request_id = head.request_id;
  if (!frame.value().filter.empty()) {
    support::trace::TraceId id{};
    (void)support::trace::trace_id_parse(frame.value().filter, &id);
    ok.json = support::trace::trace_collect_json(id);
  } else {
    ok.json = support::trace::trace_collect_json();
  }
  if (frame.value().include_slow) {
    ok.slow_json = support::trace::trace_slow_json();
  } else {
    ok.slow_json = "{\"traceEvents\":[]}";
  }
  write_reply(conn, encode_trace_dump_ok(ok));
}

void SolveServer::handle_stats(Connection& conn, FrameHead& head) {
  Expected<StatsFrame> stats = decode_stats(head);
  if (!stats.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kProtocolError,
                                    stats.message()}));
    return;
  }
  StatsOkFrame ok;
  ok.request_id = head.request_id;
  ok.format = stats.value().format;
  if (ok.format == StatsFormat::kPrometheus) {
    ok.text = render_prometheus(wire_stats(), options_.server_name);
  } else {
    ok.stats = wire_stats();
  }
  write_reply(conn, encode_stats_ok(ok));
}

void SolveServer::handle_drain(Connection& conn, FrameHead& head) {
  Expected<DrainFrame> drain = decode_drain(head);
  if (!drain.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kProtocolError,
                                    drain.message()}));
    return;
  }
  // Blocks THIS connection's reader until every admitted request (from
  // any connection) is answered; other connections keep flowing.
  service_.drain();
  DrainOkFrame ok;
  ok.request_id = head.request_id;
  ok.completed = service_.stats().completed;
  write_reply(conn, encode_drain_ok(ok));
}

void SolveServer::handle_ping(Connection& conn, FrameHead& head) {
  Expected<PingFrame> ping = decode_ping(head);
  if (!ping.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kProtocolError,
                                    ping.message()}));
    return;
  }
  // Answered from the reader thread without touching the solve path: a
  // pong certifies the process, acceptor, and this connection are alive,
  // nothing more (health probers want exactly that and no queue coupling).
  write_reply(conn, encode_pong({head.request_id}));
}

void SolveServer::handle_failpoint(Connection& conn, FrameHead& head) {
  Expected<FailpointFrame> frame = decode_failpoint(head);
  if (!frame.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    write_reply(conn, encode_error({head.request_id,
                                    SolveStatus::kProtocolError,
                                    frame.message()}));
    return;
  }
  if (!options_.allow_failpoint_control) {
    write_reply(conn,
                encode_error({head.request_id, SolveStatus::kInvalidOptions,
                              "failpoint control is disabled on this server "
                              "(start it with --enable-failpoints)"}));
    return;
  }
  if (!support::failpoints_compiled()) {
    write_reply(conn,
                encode_error({head.request_id, SolveStatus::kInvalidOptions,
                              "this server was built without failpoints "
                              "(MSPTRSV_FAILPOINTS=OFF)"}));
    return;
  }
  if (frame.value().name.empty()) {
    support::failpoint_clear_all();
  } else if (!support::failpoint_set(frame.value().name,
                                     frame.value().spec)) {
    write_reply(conn,
                encode_error({head.request_id, SolveStatus::kInvalidOptions,
                              "failpoint spec did not parse: '" +
                                  frame.value().spec + "'"}));
    return;
  }
  FailpointOkFrame ok;
  ok.request_id = head.request_id;
  ok.armed = static_cast<std::uint32_t>(support::failpoint_armed_count());
  write_reply(conn, encode_failpoint_ok(ok));
}

WireStats SolveServer::wire_stats() const {
  const service::ServiceStatsSnapshot snap = service_.stats();
  WireStats out;
  out.submitted = snap.submitted;
  out.completed = snap.completed;
  out.failed = snap.failed;
  out.rejected = snap.rejected;
  out.shed = snap.shed;
  out.batches = snap.batches;
  out.coalesced_rhs = snap.coalesced_rhs;
  out.queue_depth = snap.queue_depth;
  out.peak_queue_depth = snap.peak_queue_depth;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  out.frames_received = frames_received_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(plans_mutex_);
    out.plans_open = plans_.size();
  }
  out.latency = snap.latency_hist;
  for (std::size_t c = 0; c < service::kNumPriorities; ++c) {
    out.per_class[c].submitted = snap.per_class[c].submitted;
    out.per_class[c].completed = snap.per_class[c].completed;
    out.per_class[c].shed = snap.per_class[c].shed;
    out.per_class[c].latency = snap.per_class[c].latency_hist;
  }
  const core::PlanCache::Stats cache = service_.plan_cache().stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.cache_byte_evictions = cache.byte_evictions;
  out.cache_disk_hits = cache.disk_hits;
  out.cache_disk_stores = cache.disk_stores;
  out.phases = snap.phase_hist;
  return out;
}

}  // namespace msptrsv::net
