// The network-facing solve server: a bounded TCP acceptor speaking the
// frame protocol (net/protocol.hpp) in front of a service::SolveService.
//
// Threading model, per connection:
//  * a READER thread decodes frames and dispatches them. Control frames
//    (hello, open, stats, drain) are answered inline; solve frames are
//    submitted to the service and their futures queued to...
//  * ...a COMPLETION-PUMP thread, which waits each future out in FIFO
//    order and writes the reply. Pipelined solves therefore never block
//    the reader: a client can keep dozens of request ids in flight and
//    the connection stays responsive to control traffic throughout.
//  * all writes to one socket are serialized by a per-connection mutex
//    (the pump and the reader both reply).
//
// Failure policy is FAIL-STOP PER CONNECTION: the first malformed frame
// (bad length prefix, CRC mismatch, unknown type, out-of-range field)
// gets a best-effort kProtocolError reply and the connection is closed.
// The process never dies on wire input -- hostile bytes are spent by the
// same bounds-checked BlobReader that validates plan files -- and other
// connections are unaffected.
//
// Graceful drain: stop() closes the acceptor, half-closes every
// connection's read side (no NEW requests), lets the service finish every
// admitted solve, flushes the pumps, and joins. A serving process wraps
// stop() in its SIGTERM handler (tools/solve_serverd.cpp) so a deploy
// never drops an in-flight solve.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/solve_service.hpp"

namespace msptrsv::net {

struct ServerOptions {
  /// 0 = ephemeral; read the chosen port back with port().
  std::uint16_t port = 0;
  int backlog = 64;
  /// Connections past this are answered kOverloaded and closed.
  std::size_t max_connections = 64;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Announced in hello-ok and stamped on Prometheus series.
  std::string server_name = "msptrsv";
  /// The wrapped service's configuration (its cache_dir doubles as the
  /// shared blob directory hash-ref opens resolve against).
  service::ServiceOptions service;

  // ---- fault injection (tests only) ----------------------------------------
  /// When != kOk, the first `inject_count` solve frames are answered with
  /// this status instead of being submitted -- the deterministic way to
  /// exercise client retry policy (injected kOverloaded never races real
  /// backpressure).
  core::SolveStatus inject_status = core::SolveStatus::kOk;
  std::uint64_t inject_count = 0;
  /// Accept kFailpoint frames (arm/clear support/failpoint.hpp sites in
  /// this process over the wire). OFF by default: a production server must
  /// never let a peer inject faults; the chaos tests start solve_serverd
  /// with --enable-failpoints.
  bool allow_failpoint_control = false;
};

class SolveServer {
 public:
  explicit SolveServer(ServerOptions options = {});
  /// stop()s if still running.
  ~SolveServer();

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Binds, listens, and starts the acceptor. kNetworkError if the port
  /// cannot be bound.
  core::Expected<bool> start();

  /// Graceful shutdown: no new connections, no new requests, every
  /// admitted solve answered and flushed, all threads joined. Idempotent.
  void stop();

  /// The bound port (after start()).
  std::uint16_t port() const { return port_; }

  service::SolveService& service() { return service_; }

  /// Point-in-time mergeable stats: the service snapshot plus the wire
  /// counters -- what the stats frame serves in both formats.
  WireStats wire_stats() const;

 private:
  struct Connection;

  void accept_loop();
  void reap_finished(bool join_all);
  void serve_connection(const std::shared_ptr<Connection>& conn);
  void pump_loop(const std::shared_ptr<Connection>& conn);

  /// Writes `wire` on the connection (serialized); on failure the
  /// connection is torn down (reader kicked via shutdown).
  void write_reply(Connection& conn, const std::vector<std::uint8_t>& wire);

  void handle_hello(Connection& conn, FrameHead& head);
  void handle_open(Connection& conn, FrameHead& head);
  void handle_solve(Connection& conn, FrameHead& head);
  void handle_stats(Connection& conn, FrameHead& head);
  void handle_drain(Connection& conn, FrameHead& head);
  void handle_ping(Connection& conn, FrameHead& head);
  void handle_failpoint(Connection& conn, FrameHead& head);
  void handle_trace_dump(Connection& conn, FrameHead& head);

  ServerOptions options_;
  service::SolveService service_;
  ListenSocket listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  /// Plans opened over the wire, shared by every connection: id -> plan
  /// (copies share symbolic state, so this is cheap), plus the
  /// content-key index that deduplicates repeat opens of the same factor.
  mutable std::mutex plans_mutex_;
  std::unordered_map<std::uint64_t, core::SolverPlan> plans_;
  std::unordered_map<std::string, std::uint64_t> plans_by_key_;
  std::uint64_t next_plan_id_ = 1;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> injected_remaining_{0};
};

}  // namespace msptrsv::net
