// The retrying solve client: the library applications link to talk to a
// net::SolveServer.
//
// One connection, many requests in flight: submits are PIPELINED (each
// carries a fresh request id; a reader thread matches replies by id and
// completes the caller's future), so N outstanding solves cost one
// round-trip of latency each, not N.
//
// The synchronous solve()/solve_batch() calls add the RETRY tier, driven
// by the server's TYPED statuses -- which is the whole reason the wire
// carries SolveStatus instead of strings:
//  * kOverloaded     -> exponential backoff with deterministic jitter,
//                       then retry (the server asked us to slow down);
//  * kNetworkError   -> reconnect (replaying plan opens) and retry -- a
//                       restarted or failed-over server heals invisibly;
//  * kDeadlineExceeded, kBadSnapshot, kShapeMismatch, ... -> returned to
//                       the caller immediately. Retrying a shed deadline
//                       with the same deadline or a mismatched rhs would
//                       burn server time on a request that cannot fare
//                       better.
// The async submit_batch() path performs NO retries (callers pipelining
// their own traffic own their policy).
//
// Plan opens are recorded as OPEN SPECS and replayed on reconnect: a
// PlanHandle survives server restarts -- after the replay it simply maps
// to the new process's plan id.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "support/rng.hpp"

namespace msptrsv::net {

struct RetryPolicy {
  /// Total tries of one solve (first attempt included). 1 = no retries.
  int max_attempts = 4;
  std::chrono::microseconds initial_backoff{2000};
  std::chrono::microseconds max_backoff{500000};
  double multiplier = 2.0;
  /// Backoff is scaled by a uniform factor in [1-jitter, 1+jitter] --
  /// deterministic per client (seeded), so tests can pin the schedule and
  /// a fleet of clients still decorrelates.
  double jitter = 0.25;
  std::uint64_t seed = 0x6d7370747273764eULL;  // "msptrsvN"
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string client_name = "msptrsv-client";
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  RetryPolicy retry;
};

/// A plan opened through a client. Stable across reconnects and server
/// restarts (the client replays the open); meaningless to other clients.
struct PlanHandle {
  std::size_t spec = 0;  ///< index into the client's open-spec table
  index_t rows = 0;
  sparse::StructuralHash hash;
  /// Where the LAST open resolved from: "cache", "deserialized", "open",
  /// "disk".
  std::string source;
};

/// Client-side observability -- what the retry tests assert on.
struct ClientMetrics {
  std::uint64_t solves = 0;        ///< sync solve/solve_batch calls
  std::uint64_t attempts = 0;      ///< wire attempts those calls made
  std::uint64_t retries = 0;       ///< attempts after the first
  std::uint64_t reconnects = 0;    ///< successful re-handshakes
  std::uint64_t backoff_us = 0;    ///< total time slept backing off
  std::uint64_t hedges = 0;        ///< solves duplicated to a backup shard
  std::uint64_t failovers = 0;     ///< solves answered by a non-home shard
};

/// Decodes a raw solve reply blob (SolveOk or Error frame) into the
/// solution vector / typed status. Exposed for callers of
/// submit_batch_raw (the router's hedged sends).
core::Expected<std::vector<value_t>> decode_solve_reply(
    std::vector<std::uint8_t> blob);

class SolveClient {
 public:
  /// A reply blob or the typed failure that prevented one.
  using RawReply = core::Expected<std::vector<std::uint8_t>>;

  explicit SolveClient(ClientOptions options);
  /// Closes the connection; outstanding futures complete kNetworkError.
  ~SolveClient();

  SolveClient(const SolveClient&) = delete;
  SolveClient& operator=(const SolveClient&) = delete;

  /// Connects and performs the hello handshake (version negotiation; the
  /// effective frame bound becomes min(ours, server's)). Idempotent when
  /// already connected.
  core::Expected<bool> connect();
  bool connected() const;
  void close();

  // ---- plan opens ----------------------------------------------------------
  // Each returns a PlanHandle whose open SPEC is retained for replay on
  // reconnect. kMatrix uploads the factor; plan_blob ships a serialized
  // plan (no server-side analysis); by_hash sends only the content hash
  // (resolved against plans the server already has, then its shared blob
  // directory -- kBadSnapshot when unknown).

  core::Expected<PlanHandle> open(const sparse::CscMatrix& lower,
                                  const std::string& backend_key);
  core::Expected<PlanHandle> open_plan_blob(std::vector<std::uint8_t> blob,
                                            const std::string& backend_key);
  core::Expected<PlanHandle> open_by_hash(const sparse::StructuralHash& hash,
                                          const std::string& backend_key);

  // ---- solving -------------------------------------------------------------

  /// Synchronous solve with the retry policy (see file comment).
  core::Expected<std::vector<value_t>> solve(
      const PlanHandle& plan, std::span<const value_t> b,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  core::Expected<std::vector<value_t>> solve_batch(
      const PlanHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// One pipelined attempt, NO retries: the future resolves to the
  /// solution or the server's typed error; kNetworkError on disconnect.
  std::future<core::Expected<std::vector<value_t>>> submit_batch(
      const PlanHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// Like submit_batch but returns the raw reply future straight off the
  /// pending map -- a promise-backed future, so wait_for() actually polls
  /// (submit_batch wraps it in a DEFERRED adapter, which wait_for cannot
  /// observe). The router's hedged sends race two of these; decode with
  /// decode_solve_reply.
  std::future<RawReply> submit_batch_raw(
      const PlanHandle& plan, std::span<const value_t> rhs, index_t num_rhs,
      service::Priority priority = service::Priority::kNormal,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  // ---- observability / control ---------------------------------------------

  /// The server's /metrics answer (Prometheus text).
  core::Expected<std::string> metrics();
  /// The server's mergeable binary stats.
  core::Expected<WireStats> stats();
  /// Blocks until the server has answered everything admitted so far.
  core::Expected<std::uint64_t> drain();

  /// Liveness probe with a HARD timeout: a pong within `timeout` returns
  /// true; anything else -- no connection, no reply in time -- is
  /// kNetworkError, and a timed-out ping tears the connection down (a
  /// peer that cannot echo a ping cannot be trusted with queued solves;
  /// the next call reconnects). The router's health prober calls this.
  core::Expected<bool> ping(std::chrono::milliseconds timeout);

  /// Arms (or clears: spec "off" / empty name = clear all) a failpoint in
  /// the SERVER process. Returns the server's armed-site count. The
  /// server refuses with kInvalidOptions unless started with
  /// --enable-failpoints.
  core::Expected<std::uint32_t> set_failpoint(const std::string& name,
                                              const std::string& spec);

  /// The SERVER's trace buffers as Chrome trace-event JSON (plus the
  /// slow-request sampler's retained traces when include_slow). `filter`
  /// is "" for everything or one 32-hex trace id. Always answered -- a
  /// disarmed or trace-compiled-out server serves empty documents.
  core::Expected<TraceDumpOkFrame> trace_dump(const std::string& filter = "",
                                              bool include_slow = true);

  ClientMetrics metrics_local() const;

  /// Router bookkeeping: robustness actions taken on this client's shard
  /// (counted here so they surface next to the retries they complement).
  void note_hedge();
  void note_failover();

 private:
  struct OpenSpec {
    OpenMode mode = OpenMode::kMatrix;
    std::string backend_key;
    sparse::CscMatrix matrix;
    std::vector<std::uint8_t> plan_blob;
    sparse::StructuralHash hash;
    /// Server-assigned id under the CURRENT connection epoch.
    std::uint64_t plan_id = 0;
  };

  core::Expected<bool> connect_locked();
  /// Sends `wire` and registers a pending reply future. state_mutex_ held.
  std::future<RawReply> request_locked(std::uint64_t request_id,
                                       const std::vector<std::uint8_t>& wire);
  /// Performs one open against the live connection (takes the lock itself).
  core::Expected<OpenOkFrame> open_on_wire(OpenSpec& spec);
  void reader_loop(std::uint64_t epoch);
  void fail_pending_locked(const std::string& why);
  std::chrono::microseconds backoff_for(int retry_index);

  core::Expected<std::vector<value_t>> solve_with_retry(
      std::size_t spec, std::span<const value_t> rhs, index_t num_rhs,
      service::Priority priority, std::chrono::microseconds deadline);

  ClientOptions options_;

  mutable std::mutex state_mutex_;
  Socket sock_;
  bool connected_ = false;
  /// Bumped on every (re)connect; a reader learns it is stale by epoch.
  std::uint64_t epoch_ = 0;
  std::thread reader_;
  std::uint64_t next_request_id_ = 1;
  std::unordered_map<std::uint64_t, std::promise<RawReply>> pending_;
  std::vector<OpenSpec> specs_;
  std::uint32_t frame_bytes_ = kDefaultMaxFrameBytes;
  support::Xoshiro256 rng_;

  mutable std::mutex metrics_mutex_;
  ClientMetrics stats_{};
};

}  // namespace msptrsv::net
