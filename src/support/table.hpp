// Minimal ASCII table renderer used by the benchmark harness to print the
// paper's tables/figures as aligned rows (the "same rows/series the paper
// reports").
#pragma once

#include <string>
#include <vector>

namespace msptrsv::support {

enum class Align { kLeft, kRight };

/// A column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendering pads every column to its widest cell.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Sets per-column alignment (default: first column left, rest right).
  void set_alignment(std::vector<Align> alignment);

  /// Starts a new row. Subsequent add_cell calls fill it left to right.
  void begin_row();

  void add_cell(std::string text);
  void add_cell(const char* text);
  /// Formats v with `precision` digits after the decimal point.
  void add_cell(double v, int precision = 2);
  void add_cell(std::int64_t v);
  void add_cell(std::uint64_t v);
  void add_cell(int v);

  /// Convenience: begin_row + cells from a pack.
  template <typename... Cells>
  void add_row(Cells&&... cells) {
    begin_row();
    (add_cell(std::forward<Cells>(cells)), ...);
  }

  /// Adds a horizontal separator line at the current position.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table, including a header separator.
  std::string to_string() const;

  /// Renders as comma-separated values (for scripts to consume).
  std::string to_csv() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

/// Formats a double with the given precision (shared by Table and ad-hoc
/// benchmark output).
std::string format_double(double v, int precision);

}  // namespace msptrsv::support
