// Contract-checking macros in the spirit of the C++ Core Guidelines (I.6/I.8).
//
// MSPTRSV_REQUIRE  -- precondition on the caller; violation is a usage bug.
// MSPTRSV_ENSURE   -- postcondition / internal invariant; violation is a
//                     library bug.
//
// Both throw (rather than abort) so that tests can assert on violations and
// long-running benchmark drivers can report the offending input.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace msptrsv::support {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant or postcondition fails.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void raise_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void raise_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace msptrsv::support

#define MSPTRSV_REQUIRE(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::msptrsv::support::detail::raise_precondition(#expr, __FILE__,    \
                                                     __LINE__, (msg));   \
    }                                                                    \
  } while (false)

#define MSPTRSV_ENSURE(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::msptrsv::support::detail::raise_invariant(#expr, __FILE__,       \
                                                  __LINE__, (msg));      \
    }                                                                    \
  } while (false)
