// Small summary-statistics helpers shared by benches and reports.
#pragma once

#include <cstddef>
#include <span>

namespace msptrsv::support {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; requires all values > 0. The paper reports "average
/// speedup" which, for ratios, we take as the geometric mean (and also
/// expose the arithmetic mean where the paper plainly averages).
double geomean(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

/// Load-imbalance factor of per-worker busy times: max/mean. 1.0 is a
/// perfectly balanced run; larger is worse.
double imbalance_factor(std::span<const double> busy);

/// Coefficient of variation (stddev/mean); 0 when mean is 0.
double coeff_of_variation(std::span<const double> xs);

/// The q-quantile (q in [0, 1]) by linear interpolation between order
/// statistics (the common "R-7" definition); 0 for an empty span. Sorts a
/// copy -- callers on a hot path should batch their quantile reads.
/// p50/p99 service latency comes from here.
double percentile(std::span<const double> xs, double q);

}  // namespace msptrsv::support
