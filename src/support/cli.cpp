#include "support/cli.hpp"

#include <cstdio>
#include <sstream>

#include "support/contracts.hpp"

namespace msptrsv::support {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  MSPTRSV_REQUIRE(!name.empty() && name[0] != '-',
                  "option names are registered without leading dashes");
  MSPTRSV_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{default_value, help, std::nullopt};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    MSPTRSV_REQUIRE(arg.rfind("--", 0) == 0,
                    "unexpected positional argument: " + arg + "\n" +
                        help_text());
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    MSPTRSV_REQUIRE(it != options_.end(),
                    "unknown flag --" + arg + "\n" + help_text());
    if (!has_value) {
      // `--flag value` if the next token is not itself a flag, else boolean.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name) const {
  auto it = options_.find(name);
  MSPTRSV_REQUIRE(it != options_.end(), "option was never registered: " + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Option& o = find(name);
  return o.value.value_or(o.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  MSPTRSV_REQUIRE(pos == v.size(), "--" + name + " expects an integer, got " + v);
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  MSPTRSV_REQUIRE(pos == v.size(), "--" + name + " expects a number, got " + v);
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  MSPTRSV_REQUIRE(false, "--" + name + " expects a boolean, got " + v);
  return false;  // unreachable
}

std::vector<std::string> CliParser::get_list(const std::string& name) const {
  const std::string v = get_string(name);
  std::vector<std::string> out;
  std::string cur;
  for (char ch : v) {
    if (ch == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << summary_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.default_value.empty()) os << " (default: " << opt.default_value << ")";
    os << "\n      " << opt.help << '\n';
  }
  return os.str();
}

}  // namespace msptrsv::support
