#include "support/failpoint.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace msptrsv::support {

namespace {

struct Entry {
  FailpointHit::Kind kind = FailpointHit::Kind::kOff;
  std::int64_t arg = 0;
  std::int64_t remaining = -1;  ///< fires left; -1 = unlimited
  std::int64_t skip = 0;        ///< evaluations to let through first
  std::uint64_t seq = 0;        ///< bumped on re-arm; pause waiters key on it
  bool crash = false;           ///< crash action (kind unused for it)
};

struct Registry {
  std::mutex mutex;
  std::condition_variable cv;  ///< wakes pause waiters and wait_hits pollers
  std::unordered_map<std::string, Entry> armed;
  std::unordered_map<std::string, std::uint64_t> hits;
  std::uint64_t next_seq = 1;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

/// Number of armed sites; <0 = environment not parsed yet. The macro's
/// fast path is one relaxed load of this.
std::atomic<int> g_armed{-1};

bool parse_i64(const std::string& s, std::size_t begin, std::size_t end,
               std::int64_t* out) {
  if (begin >= end) return false;
  std::int64_t v = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = v;
  return true;
}

/// Parses `action[(arg)][*N][@K]` into `out`. Returns false on malformed
/// specs so tests cannot silently arm the wrong thing.
bool parse_spec(const std::string& spec, Entry* out) {
  std::size_t i = 0;
  while (i < spec.size() && spec[i] != '(' && spec[i] != '*' && spec[i] != '@')
    ++i;
  const std::string action = spec.substr(0, i);
  Entry e;
  if (action == "error") {
    e.kind = FailpointHit::Kind::kError;
    e.arg = 1;
  } else if (action == "delay") {
    e.kind = FailpointHit::Kind::kDelay;
  } else if (action == "partial") {
    e.kind = FailpointHit::Kind::kPartial;
  } else if (action == "pause") {
    e.kind = FailpointHit::Kind::kPause;
  } else if (action == "crash") {
    e.crash = true;
  } else {
    return false;
  }
  if (i < spec.size() && spec[i] == '(') {
    const std::size_t close = spec.find(')', i + 1);
    if (close == std::string::npos) return false;
    if (!parse_i64(spec, i + 1, close, &e.arg)) return false;
    i = close + 1;
  }
  while (i < spec.size()) {
    const char mod = spec[i];
    std::size_t j = i + 1;
    while (j < spec.size() && spec[j] != '*' && spec[j] != '@') ++j;
    std::int64_t v = 0;
    if (!parse_i64(spec, i + 1, j, &v)) return false;
    if (mod == '*') {
      e.remaining = v;
    } else if (mod == '@') {
      e.skip = v;
    } else {
      return false;
    }
    i = j;
  }
  *out = e;
  return true;
}

/// Arms an entry under the lock (shared by the API and the env parser).
bool set_locked(Registry& r, const std::string& name, const std::string& spec) {
  Entry e;
  if (spec == "off") {
    const auto it = r.armed.find(name);
    if (it != r.armed.end()) {
      r.armed.erase(it);
      g_armed.store(static_cast<int>(r.armed.size()),
                    std::memory_order_relaxed);
      r.cv.notify_all();
    }
    return true;
  }
  if (!parse_spec(spec, &e)) return false;
  e.seq = r.next_seq++;
  r.armed[name] = e;
  g_armed.store(static_cast<int>(r.armed.size()), std::memory_order_relaxed);
  r.cv.notify_all();
  return true;
}

/// First-use environment parse: MSPTRSV_FAILPOINTS="name=spec;name=spec"
/// (';' or ',' separated). Malformed entries are skipped -- an env typo
/// must not take the process down.
void init_from_env() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (g_armed.load(std::memory_order_relaxed) >= 0) return;  // lost the race
  const char* env = std::getenv("MSPTRSV_FAILPOINTS");
  if (env != nullptr) {
    const std::string all(env);
    std::size_t begin = 0;
    while (begin <= all.size()) {
      std::size_t end = all.find_first_of(";,", begin);
      if (end == std::string::npos) end = all.size();
      const std::string item = all.substr(begin, end - begin);
      const std::size_t eq = item.find('=');
      if (eq != std::string::npos && eq > 0) {
        set_locked(r, item.substr(0, eq), item.substr(eq + 1));
      }
      begin = end + 1;
    }
  }
  g_armed.store(static_cast<int>(r.armed.size()), std::memory_order_relaxed);
}

}  // namespace

bool failpoints_compiled() {
#if defined(MSPTRSV_FAILPOINTS) && MSPTRSV_FAILPOINTS
  return true;
#else
  return false;
#endif
}

bool failpoint_set(const std::string& name, const std::string& spec) {
  if (!failpoints_compiled()) return false;
  if (g_armed.load(std::memory_order_relaxed) < 0) init_from_env();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return set_locked(r, name, spec);
}

void failpoint_clear(const std::string& name) {
  if (g_armed.load(std::memory_order_relaxed) < 0) init_from_env();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  set_locked(r, name, "off");
}

void failpoint_clear_all() {
  if (g_armed.load(std::memory_order_relaxed) < 0) init_from_env();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.armed.clear();
  g_armed.store(0, std::memory_order_relaxed);
  r.cv.notify_all();
}

std::size_t failpoint_armed_count() {
  if (g_armed.load(std::memory_order_relaxed) < 0) init_from_env();
  const int n = g_armed.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

std::uint64_t failpoint_hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.hits.find(name);
  return it == r.hits.end() ? 0 : it->second;
}

bool failpoint_wait_hits(const std::string& name, std::uint64_t min_hits,
                         int timeout_ms) {
  Registry& r = registry();
  std::unique_lock<std::mutex> lock(r.mutex);
  return r.cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    const auto it = r.hits.find(name);
    return it != r.hits.end() && it->second >= min_hits;
  });
}

FailpointHit failpoint_eval(const char* name) {
  if (g_armed.load(std::memory_order_relaxed) < 0) init_from_env();
  Registry& r = registry();
  std::unique_lock<std::mutex> lock(r.mutex);
  const auto it = r.armed.find(name);
  if (it == r.armed.end()) return {};
  Entry& e = it->second;
  if (e.skip > 0) {
    --e.skip;
    return {};
  }
  if (e.remaining == 0) return {};
  if (e.remaining > 0) --e.remaining;
  ++r.hits[name];
  r.cv.notify_all();  // wait_hits observers see the counter move

  if (e.crash) {
    // Immediate, drain-free death -- the "kill -9 from the inside" the
    // chaos kill scripts use. _Exit skips atexit and static destructors.
    std::_Exit(e.arg != 0 ? static_cast<int>(e.arg) : 137);
  }
  FailpointHit hit{e.kind, e.arg};
  if (e.kind == FailpointHit::Kind::kDelay) {
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(hit.arg));
    return hit;
  }
  if (e.kind == FailpointHit::Kind::kPause) {
    // Park until this arming is cleared or replaced. The key is the seq
    // stamped at arm time, so a re-arm (even with another pause) releases
    // the current waiters.
    const std::string key(name);
    const std::uint64_t seq = e.seq;
    r.cv.wait(lock, [&] {
      const auto cur = r.armed.find(key);
      return cur == r.armed.end() || cur->second.seq != seq;
    });
    return hit;
  }
  return hit;
}

namespace detail {

bool failpoints_armed() {
  const int n = g_armed.load(std::memory_order_relaxed);
  if (n > 0) return true;
  if (n == 0) return false;
  init_from_env();
  return g_armed.load(std::memory_order_relaxed) > 0;
}

}  // namespace detail

}  // namespace msptrsv::support
