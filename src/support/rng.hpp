// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (matrix generators, workload
// synthesis) draws from these engines so that builds are reproducible
// bit-for-bit across platforms; std::mt19937 distributions are not
// cross-platform stable, so we implement the distributions we need.
#pragma once

#include <cstdint>

#include "support/contracts.hpp"

namespace msptrsv::support {

/// splitmix64 -- used to expand a single seed into stream seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). Requires bound > 0. Uses rejection sampling so
  /// the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Geometric-ish "skip" used by sparse samplers: number of failures before
  /// the first success of probability p (p in (0, 1]).
  std::uint64_t geometric(double p);

  /// Fork an independent stream (seeded from this stream's output).
  Xoshiro256 fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace msptrsv::support
