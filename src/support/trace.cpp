#include "support/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace msptrsv::support::trace {

namespace {

/// One recorded span. `name` / arg names are string literals (stored by
/// pointer; they live for the process).
struct Event {
  TraceId trace{};
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint32_t tid = 0;
  const char* a0_name = nullptr;
  std::int64_t a0 = 0;
  const char* a1_name = nullptr;
  std::int64_t a1 = 0;
};

/// Per-thread ring. The owner is the only writer; the collector reads the
/// head with acquire and the newest <= kCapacity slots below it. A slot
/// being overwritten concurrently may tear under the reader -- tolerated:
/// collection is an observability snapshot, not a consensus protocol.
struct TraceRing {
  static constexpr std::size_t kCapacity = 8192;
  std::unique_ptr<Event[]> slots{new Event[kCapacity]};
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid = 0;
};

/// Leaked (outlives static destructors -- worker threads may record during
/// teardown, exactly the failpoint Registry argument).
struct Registry {
  std::mutex mutex;
  std::vector<TraceRing*> rings;  ///< leaked with the registry
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// >0 armed, 0 disarmed, <0 env not parsed yet (the macro fast path is
/// one relaxed load of this).
std::atomic<int> g_enabled{-1};

std::atomic<std::uint64_t> g_next_span{1};

void init_from_env() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (g_enabled.load(std::memory_order_relaxed) >= 0) return;  // lost race
  const char* env = std::getenv("MSPTRSV_TRACE");
  const bool on = env != nullptr && env[0] != '\0' && env[0] != '0';
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

TraceRing& local_ring() {
  thread_local TraceRing* ring = [] {
    auto* fresh = new TraceRing();  // leaked via the registry
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    fresh->tid = r.next_tid++;
    r.rings.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

void write_event(const Event& e) {
  TraceRing& r = local_ring();
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  Event& slot = r.slots[h % TraceRing::kCapacity];
  slot = e;
  slot.tid = r.tid;
  r.head.store(h + 1, std::memory_order_release);
}

struct ThreadContext {
  TraceId id{};
  std::uint64_t parent = 0;
};

ThreadContext& context() {
  thread_local ThreadContext ctx;
  return ctx;
}

bool hex_nibble(char c, std::uint8_t* out) {
  if (c >= '0' && c <= '9') {
    *out = static_cast<std::uint8_t>(c - '0');
  } else if (c >= 'a' && c <= 'f') {
    *out = static_cast<std::uint8_t>(c - 'a' + 10);
  } else if (c >= 'A' && c <= 'F') {
    *out = static_cast<std::uint8_t>(c - 'A' + 10);
  } else {
    return false;
  }
  return true;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Renders one event as a Chrome trace-event object. ts/dur are
/// microseconds (double); span ids render as decimal strings so a JSON
/// reader never rounds them through a double.
void append_event_json(std::string& out, const Event& e) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"msptrsv\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{",
                e.name != nullptr ? e.name : "?",
                static_cast<double>(e.t0_ns) / 1000.0,
                static_cast<double>(e.t1_ns - e.t0_ns) / 1000.0, e.tid);
  out += buf;
  out += "\"trace_id\":\"";
  out += trace_id_hex(e.trace);
  out += "\"";
  std::snprintf(buf, sizeof(buf), ",\"span\":\"%llu\",\"parent\":\"%llu\"",
                static_cast<unsigned long long>(e.span),
                static_cast<unsigned long long>(e.parent));
  out += buf;
  if (e.a0_name != nullptr) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", e.a0_name,
                  static_cast<long long>(e.a0));
    out += buf;
  }
  if (e.a1_name != nullptr) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", e.a1_name,
                  static_cast<long long>(e.a1));
    out += buf;
  }
  out += "}}";
}

/// Snapshots every ring's buffered events (optionally filtered by id).
std::vector<Event> snapshot_events(const TraceId* filter) {
  std::vector<Event> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (TraceRing* ring : r.rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n =
        head < TraceRing::kCapacity ? head : TraceRing::kCapacity;
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Event& e = ring->slots[i % TraceRing::kCapacity];
      if (e.name == nullptr) continue;  // torn or never-written slot
      if (filter != nullptr && e.trace != *filter) continue;
      out.push_back(e);
    }
  }
  return out;
}

std::string render_events(const std::vector<Event>& events) {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    append_event_json(out, events[i]);
  }
  out += "]}";
  return out;
}

// ---- slow sampler ----------------------------------------------------------

struct SlowTrace {
  TraceId id{};
  double latency_us = 0;
  std::vector<Event> events;
};

struct SlowSampler {
  std::mutex mutex;
  std::deque<SlowTrace> retained;
  std::uint64_t completions = 0;
  /// Rolling high-percentile latency estimate (asymmetric exponential
  /// update: chases exceedances fast, decays slowly -- an approximation
  /// of a high quantile, good enough to pick "the slow ones").
  double rolling_us = 0;
  static constexpr std::size_t kRetain = 8;
  /// Auto mode needs a few samples before "slower than rolling estimate"
  /// means anything.
  static constexpr std::uint64_t kWarmup = 32;
};

SlowSampler& sampler() {
  static SlowSampler* s = new SlowSampler();
  return *s;
}

/// Threshold in microseconds as a double bit-pattern (0 = auto).
std::atomic<std::uint64_t> g_slow_threshold_bits{0};

double slow_threshold_us() {
  const std::uint64_t bits =
      g_slow_threshold_bits.load(std::memory_order_relaxed);
  double v;
  static_assert(sizeof(v) == sizeof(bits));
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::string trace_id_hex(const TraceId& id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (std::size_t i = 0; i < id.size(); ++i) {
    out[2 * i] = kHex[id[i] >> 4];
    out[2 * i + 1] = kHex[id[i] & 0xf];
  }
  return out;
}

bool trace_id_parse(std::string_view hex, TraceId* out) {
  if (hex.size() != 32) return false;
  TraceId id{};
  for (std::size_t i = 0; i < id.size(); ++i) {
    std::uint8_t hi, lo;
    if (!hex_nibble(hex[2 * i], &hi) || !hex_nibble(hex[2 * i + 1], &lo)) {
      return false;
    }
    id[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  *out = id;
  return true;
}

TraceId make_trace_id() {
  // Process-unique: a per-process random-ish base (ASLR of a static +
  // first-call clock) scrambled with a counter. No global lock.
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t base = [] {
    static int anchor;
    return splitmix64(
        reinterpret_cast<std::uintptr_t>(&anchor) ^
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count()));
  }();
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t hi = splitmix64(base ^ n);
  const std::uint64_t lo = splitmix64(hi ^ ~n);
  TraceId id;
  for (int i = 0; i < 8; ++i) {
    id[i] = static_cast<std::uint8_t>(hi >> (8 * i));
    id[8 + i] = static_cast<std::uint8_t>(lo >> (8 * i));
  }
  if (!trace_id_set(id)) id[0] = 1;  // never hand out the "no trace" value
  return id;
}

bool trace_compiled() {
#if defined(MSPTRSV_TRACE) && MSPTRSV_TRACE
  return true;
#else
  return false;
#endif
}

bool trace_set_enabled(bool enabled) {
  if (!trace_compiled()) return false;
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
  return true;
}

bool trace_enabled() { return detail::trace_armed(); }

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceId current_trace_id() { return context().id; }

std::uint64_t current_parent_span() { return context().parent; }

ScopedTraceContext::ScopedTraceContext(const TraceId& id,
                                       std::uint64_t parent_span) {
  ThreadContext& ctx = context();
  previous_id_ = ctx.id;
  previous_parent_ = ctx.parent;
  ctx.id = id;
  ctx.parent = parent_span;
}

ScopedTraceContext::~ScopedTraceContext() {
  ThreadContext& ctx = context();
  ctx.id = previous_id_;
  ctx.parent = previous_parent_;
}

void trace_emit(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                const TraceId& id, std::uint64_t parent_span,
                const char* a0_name, std::int64_t a0, const char* a1_name,
                std::int64_t a1) {
  if (!detail::trace_armed()) return;
  Event e;
  e.trace = id;
  e.span = g_next_span.fetch_add(1, std::memory_order_relaxed);
  e.parent = parent_span;
  e.name = name;
  e.t0_ns = t0_ns;
  e.t1_ns = t1_ns >= t0_ns ? t1_ns : t0_ns;
  e.a0_name = a0_name;
  e.a0 = a0;
  e.a1_name = a1_name;
  e.a1 = a1;
  write_event(e);
}

void trace_emit_here(const char* name, std::uint64_t t0_ns,
                     std::uint64_t t1_ns, const char* a0_name,
                     std::int64_t a0, const char* a1_name, std::int64_t a1) {
  const ThreadContext& ctx = context();
  trace_emit(name, t0_ns, t1_ns, ctx.id, ctx.parent, a0_name, a0, a1_name,
             a1);
}

void TraceSpan::maybe_begin(const char* name) {
  if (!detail::trace_armed()) return;
  active_ = true;
  name_ = name;
  t0_ = trace_now_ns();
  span_ = g_next_span.fetch_add(1, std::memory_order_relaxed);
  ThreadContext& ctx = context();
  saved_parent_ = ctx.parent;
  ctx.parent = span_;  // children opened in this scope nest under us
}

void TraceSpan::end() {
  ThreadContext& ctx = context();
  ctx.parent = saved_parent_;
  Event e;
  e.trace = ctx.id;
  e.span = span_;
  e.parent = saved_parent_;
  e.name = name_;
  e.t0_ns = t0_;
  e.t1_ns = trace_now_ns();
  e.a0_name = a0_name_;
  e.a0 = a0_;
  e.a1_name = a1_name_;
  e.a1 = a1_;
  write_event(e);
}

std::string trace_collect_json() {
  return render_events(snapshot_events(nullptr));
}

std::string trace_collect_json(const TraceId& id) {
  return render_events(snapshot_events(&id));
}

void trace_clear() {
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (TraceRing* ring : r.rings) {
      const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < TraceRing::kCapacity; ++i) {
        ring->slots[i].name = nullptr;
      }
      ring->head.store(head, std::memory_order_release);
    }
  }
  SlowSampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.retained.clear();
  s.completions = 0;
  s.rolling_us = 0;
}

std::size_t trace_event_count() { return snapshot_events(nullptr).size(); }

void trace_set_slow_threshold_us(double us) {
  std::uint64_t bits;
  if (us < 0) us = 0;
  __builtin_memcpy(&bits, &us, sizeof(bits));
  g_slow_threshold_bits.store(bits, std::memory_order_relaxed);
}

void trace_note_completion(const TraceId& id, double latency_us) {
  if (!detail::trace_armed()) return;
  SlowSampler& s = sampler();
  bool sample = false;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.completions;
    const double threshold = slow_threshold_us();
    if (threshold > 0) {
      sample = latency_us >= threshold;
    } else {
      // Auto mode: chase exceedances fast, decay slowly -- the estimate
      // floats a little above typical latency, so only genuine outliers
      // sample once warmed up.
      sample = s.completions > SlowSampler::kWarmup &&
               latency_us > s.rolling_us;
      if (latency_us > s.rolling_us) {
        s.rolling_us += (latency_us - s.rolling_us) * 0.25;
      } else {
        s.rolling_us *= 0.999;
      }
    }
  }
  if (!sample || !trace_id_set(id)) return;
  // Copy the tree out of the rings BEFORE it wraps away. This path is
  // rare (slow solves only) so the snapshot cost is acceptable.
  std::vector<Event> events = snapshot_events(&id);
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.retained.size() >= SlowSampler::kRetain) s.retained.pop_front();
  SlowTrace slow;
  slow.id = id;
  slow.latency_us = latency_us;
  slow.events = std::move(events);
  s.retained.push_back(std::move(slow));
}

std::string trace_slow_json() {
  SlowSampler& s = sampler();
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const SlowTrace& t : s.retained) {
      events.insert(events.end(), t.events.begin(), t.events.end());
    }
  }
  return render_events(events);
}

std::size_t trace_slow_count() {
  SlowSampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.retained.size();
}

PhaseScratch& phase_scratch() {
  thread_local PhaseScratch scratch;
  return scratch;
}

namespace detail {

bool trace_armed() {
  if (!trace_compiled()) return false;
  const int n = g_enabled.load(std::memory_order_relaxed);
  if (n > 0) return true;
  if (n == 0) return false;
  init_from_env();
  return g_enabled.load(std::memory_order_relaxed) > 0;
}

}  // namespace detail

}  // namespace msptrsv::support::trace
