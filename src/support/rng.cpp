#include "support/rng.hpp"

#include <cmath>

namespace msptrsv::support {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // Expand the user seed; xoshiro must not be seeded with all zeros.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  MSPTRSV_REQUIRE(bound > 0, "next_below requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  MSPTRSV_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Xoshiro256::uniform01() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform_real(double lo, double hi) {
  MSPTRSV_REQUIRE(lo <= hi, "uniform_real requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

bool Xoshiro256::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Xoshiro256::geometric(double p) {
  MSPTRSV_REQUIRE(p > 0.0 && p <= 1.0, "geometric requires p in (0,1]");
  if (p >= 1.0) return 0;
  const double u = uniform01();
  // Inverse CDF; u == 0 maps to 0 skips.
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

Xoshiro256 Xoshiro256::fork() { return Xoshiro256(next()); }

}  // namespace msptrsv::support
