#include "support/numa.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace msptrsv::support {

namespace {

/// Parses a kernel cpulist string ("0-3,8,10-11") into CPU ids.
std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < list.size()) {
    char* end = nullptr;
    const long lo = std::strtol(list.c_str() + pos, &end, 10);
    if (end == list.c_str() + pos) break;
    pos = static_cast<std::size_t>(end - list.c_str());
    long hi = lo;
    if (pos < list.size() && list[pos] == '-') {
      ++pos;
      hi = std::strtol(list.c_str() + pos, &end, 10);
      pos = static_cast<std::size_t>(end - list.c_str());
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    if (pos < list.size() && list[pos] == ',') ++pos;
  }
  return cpus;
}

bool read_small_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[4096];
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[got] = '\0';
  out.assign(buf);
  return got > 0;
}

NumaTopology discover_topology() {
  NumaTopology topo;
#if defined(__linux__)
  // Node ids need not be dense; probe a generous range and keep the hits.
  for (int node = 0; node < 256; ++node) {
    std::string list;
    if (!read_small_file("/sys/devices/system/node/node" +
                             std::to_string(node) + "/cpulist",
                         list)) {
      continue;
    }
    std::vector<int> cpus = parse_cpulist(list);
    if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topo.node_cpus.empty()) {
    // No /sys view (non-Linux, masked container): one synthetic node
    // covering hardware concurrency, so the worker->CPU mapping still
    // exists and kCompact/kSpread degrade to plain sequential pinning.
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<int> cpus(hw == 0 ? 1 : hw);
    for (std::size_t i = 0; i < cpus.size(); ++i) cpus[i] = static_cast<int>(i);
    topo.node_cpus.push_back(std::move(cpus));
  }
  return topo;
}

}  // namespace

const NumaTopology& numa_topology() {
  static const NumaTopology topo = discover_topology();
  return topo;
}

int numa_cpu_for_worker(NumaPolicy policy, int worker_index) {
  if (policy == NumaPolicy::kNone || worker_index < 0) return -1;
  const NumaTopology& topo = numa_topology();
  std::size_t total = 0;
  for (const auto& cpus : topo.node_cpus) total += cpus.size();
  // Oversubscribed pool: pinning would stack several workers on one CPU
  // and serialize the gang; leave the excess to the OS scheduler.
  if (static_cast<std::size_t>(worker_index) >= total) return -1;
  const std::size_t w = static_cast<std::size_t>(worker_index);
  if (policy == NumaPolicy::kCompact) {
    std::size_t skip = w;
    for (const auto& cpus : topo.node_cpus) {
      if (skip < cpus.size()) return cpus[skip];
      skip -= cpus.size();
    }
    return -1;
  }
  // kSpread: worker i lands on node i % nodes, taking that node's next
  // unused CPU (i / nodes-th), wrapping only when every CPU is assigned.
  const std::size_t nodes = topo.node_cpus.size();
  std::size_t node = w % nodes;
  std::size_t slot = w / nodes;
  // Nodes can be uneven (offlined CPUs); walk forward until a node still
  // has a CPU at this slot. Bounded by `total`, checked above.
  for (std::size_t tries = 0; tries < total; ++tries) {
    if (slot < topo.node_cpus[node].size()) return topo.node_cpus[node][slot];
    node = (node + 1) % nodes;
    if (node == w % nodes) ++slot;
  }
  return -1;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool interleave_pages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(SYS_mbind)
  const int nodes = numa_topology().num_nodes();
  if (nodes < 2 || p == nullptr || bytes == 0) return false;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  // Align the range outward to page boundaries (mbind requires it).
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t begin = addr & ~static_cast<std::uintptr_t>(page - 1);
  const std::uintptr_t end =
      (addr + bytes + static_cast<std::uintptr_t>(page - 1)) &
      ~static_cast<std::uintptr_t>(page - 1);
  unsigned long nodemask = (nodes >= 64) ? ~0ul : ((1ul << nodes) - 1ul);
  constexpr int kMpolInterleave = 3;  // MPOL_INTERLEAVE
  constexpr unsigned kMpolMfMove = 1u << 1;  // MPOL_MF_MOVE
  return syscall(SYS_mbind, reinterpret_cast<void*>(begin), end - begin,
                 kMpolInterleave, &nodemask, sizeof(nodemask) * 8 + 1,
                 kMpolMfMove) == 0;
#else
  (void)p;
  (void)bytes;
  return false;
#endif
}

}  // namespace msptrsv::support
