// Minimal NUMA awareness for the host worker pools -- no libnuma.
//
// The host kernels are bandwidth-bound (the roofline study in bench_micro
// measures them against the machine's STREAM ceiling), and on a multi-socket
// box the achievable ceiling depends on WHERE the gang's threads run and
// where their pages landed: a worker chasing row-form values homed on the
// far socket pays the interconnect on every miss. Everything here is
// best-effort and degrades to a no-op -- single-node machines, containers
// with a masked /sys, or unsupported platforms behave exactly as before.
//
// Three primitives, composed by core::WorkerPool / core::SharedWorkerPool
// behind PoolOptions::numa_policy:
//
//  * topology discovery: /sys/devices/system/node parsed once per process
//    (one node with every CPU when the tree is absent);
//  * worker pinning: pthread affinity for worker index -> CPU under a
//    placement policy (compact fills a node before spilling to the next;
//    spread round-robins nodes so each socket's memory controllers see an
//    equal share of the gang);
//  * page placement: first-touch is the portable mechanism -- freshly
//    allocated scratch is touched by the thread that will use it (see
//    SolveWorkspace) -- plus an mbind(MPOL_INTERLEAVE) hint for large
//    shared read-only arrays (row-form factor values) issued via raw
//    syscall, ignored wholesale on single-node machines.
#pragma once

#include <cstddef>
#include <vector>

namespace msptrsv::support {

/// Placement policy for pool worker threads. kNone (the default
/// everywhere) pins nothing and hints nothing: single-node machines and
/// policy-free deployments run byte-for-byte the pre-NUMA code path.
enum class NumaPolicy : unsigned char {
  kNone = 0,
  /// Fill node 0's CPUs in order, then node 1, ... -- keeps a small gang
  /// on one socket (minimum cross-socket barrier latency).
  kCompact = 1,
  /// Round-robin workers across nodes -- spreads a wide gang so every
  /// socket's memory controllers carry an equal share (maximum aggregate
  /// bandwidth for the pull-based gather).
  kSpread = 2,
};

struct NumaTopology {
  /// One entry per online node: the CPU ids belonging to it, ascending.
  std::vector<std::vector<int>> node_cpus;
  int num_nodes() const { return static_cast<int>(node_cpus.size()); }
};

/// The machine's node/CPU map, parsed from /sys once per process. Always
/// at least one node with at least one CPU (synthesized from
/// hardware_concurrency when /sys is unreadable).
const NumaTopology& numa_topology();

/// The CPU a pool worker of the given index should pin to under `policy`,
/// or -1 for "do not pin" (kNone, or more workers than CPUs -- an
/// oversubscribed pool must stay schedulable everywhere).
int numa_cpu_for_worker(NumaPolicy policy, int worker_index);

/// Pins the CALLING thread to one CPU. Returns false (thread untouched)
/// when cpu < 0 or the affinity call is refused (cpuset-restricted
/// container); callers treat pinning as a hint, never a requirement.
bool pin_current_thread(int cpu);

/// Best-effort MPOL_INTERLEAVE hint over [p, p+bytes): asks the kernel to
/// move/allocate the range's pages round-robin across all nodes, so a
/// shared read-only array (row-form values) is not homed entirely on the
/// analyzing thread's node. Raw mbind syscall with MPOL_MF_MOVE; a no-op
/// (returns false) on single-node machines, non-Linux builds, or when the
/// kernel refuses. Never required for correctness.
bool interleave_pages(void* p, std::size_t bytes);

}  // namespace msptrsv::support
