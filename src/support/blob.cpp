#include "support/blob.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdio>

#include "support/failpoint.hpp"

namespace msptrsv::support {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic{'M', 'S', 'P', 'B'};

/// Slice-by-8 tables for the software CRC-32C path: table[0] is the
/// classic byte table; table[k] rolls the remainder k extra bytes
/// forward, letting the hot loop fold 8 input bytes per iteration.
std::array<std::array<std::uint32_t, 256>, 8> build_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;  // CRC-32C, reflected
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

std::uint32_t crc32c_sw(std::span<const std::uint8_t> bytes,
                        std::uint32_t c) {
  static const std::array<std::array<std::uint32_t, 256>, 8> t =
      build_crc_tables();
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][c >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__) || defined(__i386__)
#define MSPTRSV_HAS_HW_CRC 1
/// SSE4.2 crc32 instruction path: same CRC-32C function as the table
/// fallback, an order of magnitude faster. Guarded at runtime by cpuid so
/// one binary runs everywhere.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::span<const std::uint8_t> bytes, std::uint32_t c) {
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  std::uint64_t c64 = c;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c64 = __builtin_ia32_crc32di(c64, v);
    p += 8;
    n -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (n-- > 0) {
    c = __builtin_ia32_crc32qi(c, *p++);
  }
  return c;
}

bool have_hw_crc() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}
#endif

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
#ifdef MSPTRSV_HAS_HW_CRC
  if (have_hw_crc()) return crc32c_hw(bytes, c) ^ 0xFFFFFFFFu;
#endif
  return crc32c_sw(bytes, c) ^ 0xFFFFFFFFu;
}

std::uint8_t host_endian_tag() {
  return std::endian::native == std::endian::little ? 1 : 2;
}

// ---- BlobWriter ------------------------------------------------------------

BlobWriter::BlobWriter(std::uint16_t format_version) {
  buf_.reserve(256);
  buf_.insert(buf_.end(), kMagic.begin(), kMagic.end());
  buf_.push_back(static_cast<std::uint8_t>(format_version & 0xFFu));
  buf_.push_back(static_cast<std::uint8_t>(format_version >> 8));
  buf_.push_back(host_endian_tag());
  buf_.push_back(0);  // reserved
}

void BlobWriter::append(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + bytes);
}

void BlobWriter::write_u8(std::uint8_t v) { append(&v, sizeof(v)); }
void BlobWriter::write_u16(std::uint16_t v) { append(&v, sizeof(v)); }
void BlobWriter::write_u32(std::uint32_t v) { append(&v, sizeof(v)); }
void BlobWriter::write_u64(std::uint64_t v) { append(&v, sizeof(v)); }
void BlobWriter::write_i32(std::int32_t v) { append(&v, sizeof(v)); }
void BlobWriter::write_i64(std::int64_t v) { append(&v, sizeof(v)); }
void BlobWriter::write_f64(double v) { append(&v, sizeof(v)); }

void BlobWriter::write_string(std::string_view s) {
  write_u64(s.size());
  append(s.data(), s.size());
}

std::vector<std::uint8_t> BlobWriter::finish() && {
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(buf_).subspan(kHeaderSize));
  append(&crc, sizeof(crc));
  return std::move(buf_);
}

// ---- BlobReader ------------------------------------------------------------

BlobReader::BlobReader(std::span<const std::uint8_t> bytes,
                       std::uint16_t expected_version)
    : bytes_(bytes) {
  constexpr std::size_t kHeaderSize = 8;
  constexpr std::size_t kTrailerSize = 4;
  if (MSPTRSV_FAILPOINT("blob.decode").kind == FailpointHit::Kind::kError) {
    fail("injected by failpoint blob.decode");
    return;
  }
  if (bytes_.size() < kHeaderSize + kTrailerSize) {
    fail("blob truncated: " + std::to_string(bytes_.size()) +
         " bytes is smaller than header + CRC trailer");
    return;
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes_.begin())) {
    fail("bad magic: not an msptrsv blob");
    return;
  }
  version_ = static_cast<std::uint16_t>(bytes_[4]) |
             static_cast<std::uint16_t>(bytes_[5]) << 8;
  if (bytes_[6] != host_endian_tag()) {
    fail("endianness mismatch: blob written on a different byte order");
    return;
  }
  if (version_ != expected_version) {
    fail("format version " + std::to_string(version_) +
         " is not the supported version " + std::to_string(expected_version));
    return;
  }
  pos_ = kHeaderSize;
  end_ = bytes_.size() - kTrailerSize;
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes_.data() + end_, sizeof(stored));
  const std::uint32_t actual = crc32(bytes_.subspan(kHeaderSize, end_ - kHeaderSize));
  if (stored != actual) {
    fail("CRC mismatch: blob corrupted or truncated mid-record");
  }
}

void BlobReader::fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
  pos_ = end_ = 0;
}

void BlobReader::extract(void* out, std::size_t bytes) {
  if (!ok()) {
    std::memset(out, 0, bytes);
    return;
  }
  if (bytes > remaining()) {
    fail("read of " + std::to_string(bytes) + " bytes overruns the payload (" +
         std::to_string(remaining()) + " left)");
    std::memset(out, 0, bytes);
    return;
  }
  std::memcpy(out, bytes_.data() + pos_, bytes);
  pos_ += bytes;
}

std::uint8_t BlobReader::read_u8() {
  std::uint8_t v = 0;
  extract(&v, sizeof(v));
  return v;
}
std::uint16_t BlobReader::read_u16() {
  std::uint16_t v = 0;
  extract(&v, sizeof(v));
  return v;
}
std::uint32_t BlobReader::read_u32() {
  std::uint32_t v = 0;
  extract(&v, sizeof(v));
  return v;
}
std::uint64_t BlobReader::read_u64() {
  std::uint64_t v = 0;
  extract(&v, sizeof(v));
  return v;
}
std::int32_t BlobReader::read_i32() {
  std::int32_t v = 0;
  extract(&v, sizeof(v));
  return v;
}
std::int64_t BlobReader::read_i64() {
  std::int64_t v = 0;
  extract(&v, sizeof(v));
  return v;
}
double BlobReader::read_f64() {
  double v = 0;
  extract(&v, sizeof(v));
  return v;
}

std::string BlobReader::read_string() {
  const std::uint64_t len = read_u64();
  if (!ok()) return {};
  if (len > remaining()) {
    fail("string of " + std::to_string(len) + " bytes exceeds the " +
         std::to_string(remaining()) + " payload bytes left");
    return {};
  }
  std::string out(static_cast<std::size_t>(len), '\0');
  extract(out.data(), out.size());
  return out;
}

// ---- file I/O --------------------------------------------------------------

bool write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  // (The pause action parks the caller HERE, before anything touches the
  // filesystem -- what the fsck-vs-writer race test uses to freeze a
  // writer at the seam.)
  if (const FailpointHit fp = MSPTRSV_FAILPOINT("cache.disk.write");
      fp.kind == FailpointHit::Kind::kError) {
    return false;
  } else if (fp.kind == FailpointHit::Kind::kPartial) {
    // Torn-write simulation: publish only the first `arg` bytes AT THE
    // FINAL PATH, skipping the tmp+rename discipline below -- the blob a
    // crashed pre-atomic-rename writer (or a dying disk) leaves behind,
    // which fsck must flag as CRC-corrupt.
    const std::size_t n =
        std::min(bytes.size(),
                 static_cast<std::size_t>(fp.arg > 0 ? fp.arg : 0));
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(bytes.data(), 1, n, f);
      std::fclose(f);
    }
    return false;
  }
  // Write-to-temp + rename: concurrent writers of the same path each
  // publish a complete blob instead of interleaving into a CRC-invalid
  // file. The temp name must be unique across processes AND across
  // threads within one (two service threads missing on the same
  // PlanCache key save concurrently), hence pid + a process-wide counter.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(seq.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  out.clear();
  if (MSPTRSV_FAILPOINT("cache.disk.read").kind ==
      FailpointHit::Kind::kError) {
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  // Size the buffer up front and read in one call: plan blobs are tens of
  // megabytes and chunked append would re-touch every byte.
  bool ok = std::fseek(f, 0, SEEK_END) == 0;
  const long size = ok ? std::ftell(f) : -1;
  ok = ok && size >= 0 && std::fseek(f, 0, SEEK_SET) == 0;
  if (ok) {
    out.resize(static_cast<std::size_t>(size));
    ok = std::fread(out.data(), 1, out.size(), f) == out.size() &&
         std::ferror(f) == 0;
  }
  std::fclose(f);
  if (!ok) out.clear();
  return ok;
}

}  // namespace msptrsv::support
