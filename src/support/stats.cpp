#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/contracts.hpp"

namespace msptrsv::support {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    MSPTRSV_REQUIRE(x > 0.0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  MSPTRSV_REQUIRE(!xs.empty(), "min_of requires a non-empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  MSPTRSV_REQUIRE(!xs.empty(), "max_of requires a non-empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double imbalance_factor(std::span<const double> busy) {
  if (busy.empty()) return 1.0;
  const double m = mean(busy);
  if (m <= 0.0) return 1.0;
  return max_of(busy) / m;
}

double coeff_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  MSPTRSV_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace msptrsv::support
