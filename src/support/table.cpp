#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/contracts.hpp"

namespace msptrsv::support {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MSPTRSV_REQUIRE(!headers_.empty(), "a table needs at least one column");
  alignment_.assign(headers_.size(), Align::kRight);
  alignment_.front() = Align::kLeft;
}

void Table::set_alignment(std::vector<Align> alignment) {
  MSPTRSV_REQUIRE(alignment.size() == headers_.size(),
                  "alignment vector must match column count");
  alignment_ = std::move(alignment);
}

void Table::begin_row() { rows_.push_back(Row{}); }

void Table::add_cell(std::string text) {
  MSPTRSV_REQUIRE(!rows_.empty() && !rows_.back().separator,
                  "call begin_row before add_cell");
  MSPTRSV_REQUIRE(rows_.back().cells.size() < headers_.size(),
                  "row already has a cell for every column");
  rows_.back().cells.push_back(std::move(text));
}

void Table::add_cell(const char* text) { add_cell(std::string(text)); }
void Table::add_cell(double v, int precision) {
  add_cell(format_double(v, precision));
}
void Table::add_cell(std::int64_t v) { add_cell(std::to_string(v)); }
void Table::add_cell(std::uint64_t v) { add_cell(std::to_string(v)); }
void Table::add_cell(int v) { add_cell(std::to_string(v)); }

void Table::add_separator() {
  Row r;
  r.separator = true;
  rows_.push_back(std::move(r));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto emit_cell = [&](std::ostringstream& os, const std::string& text,
                       std::size_t c) {
    const std::size_t pad = width[c] - text.size();
    if (alignment_[c] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };

  auto emit_separator = [&](std::ostringstream& os) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "+" : "-+") << std::string(width[c] + 1, '-');
    }
    os << "-+\n";
  };

  std::ostringstream os;
  emit_separator(os);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    emit_cell(os, headers_[c], c);
    os << " |";
  }
  os << '\n';
  emit_separator(os);
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_separator(os);
      continue;
    }
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << ' ';
      emit_cell(os, c < row.cells.size() ? row.cells[c] : std::string(), c);
      os << " |";
    }
    os << '\n';
  }
  emit_separator(os);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << escape(headers_[c]);
  }
  os << '\n';
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c) os << ',';
      os << escape(row.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace msptrsv::support
