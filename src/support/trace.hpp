// Request-scoped tracing: spans from the wire down to the kernels.
//
// The service's histograms (PR 6) say THAT p99 moved; this layer says WHY:
// every solve can carry a 16-byte trace id from the client through the
// frame protocol, the request queue, the gang claim, the workspace packs,
// and each kernel level, and every layer it crosses records a SPAN
// {trace_id, span_id, parent, name, t0, t1, tid, args} into a lock-free
// per-thread ring buffer. A collector snapshots the rings into Chrome
// trace-event JSON (the format Perfetto and chrome://tracing load
// directly), so "why was THIS solve slow" is one dump away.
//
// The design copies the failpoint playbook (support/failpoint.hpp), which
// this repo already trusts on hot paths:
//
//  * compile-time gate: MSPTRSV_TRACE=OFF removes every macro site --
//    zero code, zero cost (trace_compiled() reports which build this is);
//  * runtime gate: one RELAXED atomic load when tracing is disarmed --
//    the production default. Arming is trace_set_enabled(true) or the
//    MSPTRSV_TRACE=1 environment variable (parsed lazily, like
//    MSPTRSV_FAILPOINTS);
//  * recording is wait-free: a span end is a handful of stores into the
//    calling thread's own ring plus one release store of the head index.
//    No locks, no allocation, no cross-thread traffic on the hot path.
//
// Rings are fixed-capacity and WRAP: tracing never blocks or grows, old
// events fall off. The collector may observe a torn slot on a ring whose
// owner is mid-write -- acceptable for observability (collection normally
// happens at dump time, quiesced or nearly so).
//
// Phase attribution (PhaseBreakdown / phase_scratch) is compiled
// UNCONDITIONALLY: the per-reply queue/coalesce/claim/pack/kernel/unpack/
// reply attribution feeds ServiceStats' per-phase histograms and the
// Prometheus summaries whether or not span recording is built in. Its
// cost is a few steady_clock reads per solve *batch*, not per row.
//
// Determinism: tracing only reads clocks and writes thread-local memory.
// It never touches operands, kernel scheduling, or reduction order, so
// solves are bit-for-bit identical with tracing armed, disarmed, or
// compiled out (pinned by tests/test_trace.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace msptrsv::support::trace {

/// 16-byte request-scoped identity, propagated over the wire as an
/// optional solve-frame field (docs/PROTOCOL.md). All-zero = "no trace".
using TraceId = std::array<std::uint8_t, 16>;

inline bool trace_id_set(const TraceId& id) {
  for (const std::uint8_t b : id) {
    if (b != 0) return true;
  }
  return false;
}

/// 32 lowercase hex chars; the human-facing form (CLI filters, JSON args).
std::string trace_id_hex(const TraceId& id);
/// Parses the hex form back (32 hex chars, case-insensitive). False on
/// malformed input, `out` untouched.
bool trace_id_parse(std::string_view hex, TraceId* out);
/// A fresh process-unique id (splitmix-scrambled counter; no global
/// coordination, collision-free within a process and overwhelmingly
/// unlikely across a fleet).
TraceId make_trace_id();

/// True when span recording is compiled in (MSPTRSV_TRACE=ON builds).
bool trace_compiled();
/// Arms / disarms span recording process-wide. No-op (false) when spans
/// are compiled out.
bool trace_set_enabled(bool enabled);
/// Armed right now? (Also consults the MSPTRSV_TRACE env var on first
/// call, like the failpoint registry.)
bool trace_enabled();

/// Monotonic nanoseconds (steady_clock); the time base of every span.
std::uint64_t trace_now_ns();

// ---- thread-bound context ---------------------------------------------------
// The current trace id + parent span travel with the THREAD: spans opened
// on this thread record under them, and nested spans re-parent naturally.
// Crossing a thread boundary (reader -> queue -> pool worker) is explicit:
// the request carries {trace_id, parent_span} and the executing side
// installs a ScopedTraceContext for the duration.

TraceId current_trace_id();
std::uint64_t current_parent_span();

class ScopedTraceContext {
 public:
  ScopedTraceContext(const TraceId& id, std::uint64_t parent_span = 0);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceId previous_id_;
  std::uint64_t previous_parent_;
};

// ---- recording --------------------------------------------------------------

/// Records a complete span with EXPLICIT timestamps and identity -- the
/// escape hatch for (a) synthetic spans reconstructed after the fact (the
/// queue-wait span is emitted at dispatch time from the request's stored
/// submit stamp) and (b) threads that hold a request's identity in hand
/// rather than in thread-local context (the completion pump). `name` and
/// arg names must be string literals (stored by pointer). No-op unless
/// compiled + armed.
void trace_emit(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                const TraceId& id, std::uint64_t parent_span,
                const char* a0_name = nullptr, std::int64_t a0 = 0,
                const char* a1_name = nullptr, std::int64_t a1 = 0);

/// As trace_emit but under the thread's current context (kernel leader
/// spans: the gang leader is the thread that carried the context in).
void trace_emit_here(const char* name, std::uint64_t t0_ns,
                     std::uint64_t t1_ns, const char* a0_name = nullptr,
                     std::int64_t a0 = 0, const char* a1_name = nullptr,
                     std::int64_t a1 = 0);

/// RAII span: stamps t0 at construction, records at destruction, and makes
/// itself the thread's parent span for its lifetime (so spans nest).
/// Construction is one relaxed load when tracing is disarmed.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) { maybe_begin(name); }
  TraceSpan(const char* name, const char* a0_name, std::int64_t a0) {
    maybe_begin(name);
    a0_name_ = a0_name;
    a0_ = a0;
  }
  ~TraceSpan() {
    if (active_) end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches the second numeric arg (e.g. a result size learned late).
  void set_arg(const char* name, std::int64_t value) {
    a1_name_ = name;
    a1_ = value;
  }
  bool active() const { return active_; }
  /// This span's id (0 when inactive) -- what a request stores so OTHER
  /// threads can parent to it (SubmitOptions::parent_span).
  std::uint64_t span_id() const { return span_; }

 private:
  void maybe_begin(const char* name);
  void end();

  bool active_ = false;
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::uint64_t span_ = 0;
  std::uint64_t saved_parent_ = 0;
  const char* a0_name_ = nullptr;
  std::int64_t a0_ = 0;
  const char* a1_name_ = nullptr;
  std::int64_t a1_ = 0;
};

// ---- collection -------------------------------------------------------------

/// Snapshots every thread's ring into one Chrome trace-event JSON document
/// ({"traceEvents":[...]}; ts/dur in microseconds). Loadable as-is in
/// Perfetto / chrome://tracing. Empty document when compiled out.
std::string trace_collect_json();
/// Same, filtered to one trace id (what kTraceDump with a filter serves).
std::string trace_collect_json(const TraceId& id);
/// Drops every buffered event and retained slow trace (tests; also the
/// bench harness between studies).
void trace_clear();
/// Buffered events across all rings right now (observability/tests).
std::size_t trace_event_count();

// ---- slow-request sampler ---------------------------------------------------
// Always on while tracing is armed: every completion reports its latency
// here; completions slower than the configured threshold -- or, with no
// threshold, slower than a rolling high-percentile estimate -- get their
// full span tree copied OUT of the rings before it can wrap away. The
// retained trees ride along in kTraceDump replies and --trace-dir dumps,
// so "the slow one from an hour ago" is still there.

/// Explicit slowness threshold in microseconds; 0 (default) = automatic
/// (a rolling ~p99 estimate of reported latencies).
void trace_set_slow_threshold_us(double us);
/// Reports a completed solve; samples its span tree if slow (see above).
void trace_note_completion(const TraceId& id, double latency_us);
/// Retained slow traces as one trace-event JSON document (newest last).
std::string trace_slow_json();
std::size_t trace_slow_count();

// ---- per-solve phase attribution (always compiled) --------------------------

/// Wall-clock attribution of one reply's latency, in microseconds. The
/// first six are measured by the service/core layers; reply_us is stamped
/// by the server's completion pump. claim_us is measured inside the
/// kernel region but reported separately (kernel_us excludes it), so the
/// seven phases partition the observable latency. Rides the solve-ok
/// frame as an optional tail (docs/PROTOCOL.md) and feeds the per-phase
/// histograms in ServiceStats.
struct PhaseBreakdown {
  double queue_us = 0;     ///< submit -> dispatch start (total queue wait)
  double coalesce_us = 0;  ///< part of the wait spent gathering companions
  double claim_us = 0;     ///< shared-pool gang claim
  double pack_us = 0;      ///< column-major -> interleaved panel transpose
  double kernel_us = 0;    ///< the solve sweep itself (minus claim)
  double unpack_us = 0;    ///< panel -> column-major transpose
  double reply_us = 0;     ///< completion -> reply flushed on the socket
};

/// Names for the seven phases above, in field order (metrics labels,
/// JSON keys). kNumPhases == 7.
inline constexpr std::size_t kNumPhases = 7;
inline constexpr const char* kPhaseNames[kNumPhases] = {
    "queue", "coalesce", "claim", "pack", "kernel", "unpack", "reply"};

/// Thread-local deposit box the deep layers drop sub-phase durations into
/// (worker_pool's claim, plan.cpp's pack/kernel/unpack): the layers below
/// the service have no request in hand, but they DO run on the
/// submitting dispatch thread, so a thread-local accumulator reaches the
/// service without widening any kernel signature. run_batch_lower resets
/// it on entry; the service reads it after solve_batch returns.
struct PhaseScratch {
  double claim_us = 0;
  double pack_us = 0;
  double kernel_us = 0;
  double unpack_us = 0;
  void reset() { claim_us = pack_us = kernel_us = unpack_us = 0; }
};
PhaseScratch& phase_scratch();

namespace detail {
/// The macro fast path: one relaxed load (false forever when compiled
/// out; lazily consults the MSPTRSV_TRACE env var like the failpoints).
bool trace_armed();
}  // namespace detail

}  // namespace msptrsv::support::trace

// ---- macro sites ------------------------------------------------------------
// MSPTRSV_TRACE_SPAN(name[, arg_name, arg]) opens an anonymous RAII span
// for the enclosing scope. MSPTRSV_TRACE_ARMED() is the inline gate for
// hand-rolled sites (kernel leaders capture their own t0 and call
// trace_emit_here). Both vanish entirely under -DMSPTRSV_TRACE=OFF.
#if defined(MSPTRSV_TRACE) && MSPTRSV_TRACE

#define MSPTRSV_TRACE_CONCAT_INNER(a, b) a##b
#define MSPTRSV_TRACE_CONCAT(a, b) MSPTRSV_TRACE_CONCAT_INNER(a, b)
#define MSPTRSV_TRACE_SPAN(...)                          \
  ::msptrsv::support::trace::TraceSpan MSPTRSV_TRACE_CONCAT( \
      msptrsv_trace_span_, __LINE__)(__VA_ARGS__)
#define MSPTRSV_TRACE_ARMED() ::msptrsv::support::trace::detail::trace_armed()

#else

#define MSPTRSV_TRACE_SPAN(...) \
  do {                          \
  } while (false)
#define MSPTRSV_TRACE_ARMED() false

#endif
