// Tiny command-line flag parser for the benchmark and example binaries.
//
// Supported syntax:  --name=value | --name value | --flag (boolean true).
// Unknown flags raise a PreconditionError listing the registered options, so
// every binary gets a usable --help for free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace msptrsv::support {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Registers an option. `default_value` is returned when the flag is
  /// absent. Registration must happen before parse().
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text printed
  /// to stdout); callers should then exit 0.
  bool parse(int argc, const char* const* argv);

  /// Typed accessors. Each requires the option to have been registered.
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated list accessor (empty string -> empty vector).
  std::vector<std::string> get_list(const std::string& name) const;

  std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };
  const Option& find(const std::string& name) const;

  std::string summary_;
  std::map<std::string, Option> options_;
};

}  // namespace msptrsv::support
