// Versioned binary blob format -- the substrate of plan persistence.
//
// A blob is:   [magic "MSPB"] [u16 format version] [u8 endian tag]
//              [u8 reserved] [payload ...] [u32 CRC-32 of payload]
//
// Design constraints, in order:
//  * a truncated, bit-flipped, or wrong-version file must be DETECTED, not
//    crash or silently misload -- BlobReader verifies the header and the
//    CRC trailer up front and every read is bounds-checked;
//  * reads never throw: a reader is a fail-stop stream (first violation
//    latches an error message, subsequent reads return zero values), so
//    deserializers are written straight-line and check ok() once at the
//    end;
//  * blobs are tagged with the writer's endianness and rejected on
//    mismatch rather than byte-swapped -- every HPC target this library
//    cares about is little-endian, and a clean error beats silently slow
//    swapping paths that never get tested.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace msptrsv::support {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) of a byte range.
/// Uses the SSE4.2 crc32 instruction when the host has it and a
/// slice-by-8 table fallback otherwise -- both compute the same function,
/// so blobs verify across machines. Chosen over classic CRC-32 because
/// plan loads checksum the whole multi-megabyte blob on the cold path.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// 1 on little-endian hosts, 2 on big-endian (the on-disk tag values).
std::uint8_t host_endian_tag();

/// Fixed framing overhead of every blob image: the 8-byte header plus the
/// 4-byte CRC trailer. Consumers that size or sanity-check whole blob
/// images (the wire protocol's length-prefixed frames ride this format)
/// use these instead of re-deriving the layout.
inline constexpr std::size_t kBlobHeaderBytes = 8;
inline constexpr std::size_t kBlobTrailerBytes = 4;
inline constexpr std::size_t kBlobMinBytes =
    kBlobHeaderBytes + kBlobTrailerBytes;

class BlobWriter {
 public:
  /// `format_version` is stamped into the header; readers reject blobs
  /// whose version they do not understand.
  explicit BlobWriter(std::uint16_t format_version);

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  /// Length-prefixed (u64) byte string.
  void write_string(std::string_view s);

  /// Length-prefixed (u64 element count) array of trivially copyable
  /// elements, written as raw bytes. The count field is padded to an
  /// 8-byte blob offset so the payload lands 8-aligned -- which lets
  /// read_vector build the vector with one aligned bulk copy instead of a
  /// zero-fill pass plus a memcpy.
  template <typename T>
  void write_span(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    align8();
    write_u64(static_cast<std::uint64_t>(v.size()));
    append(v.data(), v.size() * sizeof(T));
  }

  /// Bytes written so far (payload only, header excluded).
  std::size_t payload_size() const { return buf_.size() - kHeaderSize; }

  /// Seals the blob: appends the CRC trailer and returns the full byte
  /// image. The writer is spent afterwards.
  std::vector<std::uint8_t> finish() &&;

 private:
  static constexpr std::size_t kHeaderSize = 8;
  void append(const void* data, std::size_t bytes);
  /// Zero-pads the buffer to the next 8-byte blob offset.
  void align8() {
    while (buf_.size() % 8 != 0) buf_.push_back(0);
  }

  std::vector<std::uint8_t> buf_;
};

class BlobReader {
 public:
  /// Wraps (does not copy) `bytes` and verifies magic, endianness,
  /// version, and the CRC trailer. On any violation the reader starts in
  /// the failed state with a diagnostic in error().
  BlobReader(std::span<const std::uint8_t> bytes,
             std::uint16_t expected_version);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  /// Latches a failure from a higher layer (e.g. a deserializer that read
  /// structurally impossible values). First failure wins.
  void fail(std::string message);

  /// Format version stamped in the header (valid even when the version
  /// check failed, for error reporting).
  std::uint16_t version() const { return version_; }

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  std::int64_t read_i64();
  double read_f64();
  std::string read_string();

  /// Reads a write_span-encoded array. The element count is validated
  /// against the remaining payload BEFORE allocating, so a corrupt length
  /// cannot trigger a huge allocation. When the payload pointer is
  /// T-aligned (the writer's 8-byte padding guarantees it for whole-file
  /// blobs) the vector is built with one bulk copy -- the plan-load hot
  /// path; otherwise it falls back to zero-fill + memcpy.
  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    align8();
    const std::uint64_t count = read_u64();
    if (!ok()) return {};
    if (count > remaining() / sizeof(T)) {
      fail("array of " + std::to_string(count) + " x " +
           std::to_string(sizeof(T)) + "B elements exceeds the " +
           std::to_string(remaining()) + " payload bytes left");
      return {};
    }
    const std::uint8_t* p = bytes_.data() + pos_;
    if (reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0) {
      const T* first = reinterpret_cast<const T*>(p);
      std::vector<T> out(first, first + count);
      pos_ += static_cast<std::size_t>(count) * sizeof(T);
      return out;
    }
    std::vector<T> out(static_cast<std::size_t>(count));
    extract(out.data(), out.size() * sizeof(T));
    return out;
  }

  /// Consumes a write_span-encoded array WITHOUT materializing it (same
  /// bounds checks as read_vector). Returns the element count skipped.
  /// Used by loads that do not need a section's data -- e.g. a borrowed
  /// plan load, where the caller already holds the factor.
  template <typename T>
  std::uint64_t skip_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    align8();
    const std::uint64_t count = read_u64();
    if (!ok()) return 0;
    if (count > remaining() / sizeof(T)) {
      fail("array of " + std::to_string(count) + " x " +
           std::to_string(sizeof(T)) + "B elements exceeds the " +
           std::to_string(remaining()) + " payload bytes left");
      return 0;
    }
    pos_ += static_cast<std::size_t>(count) * sizeof(T);
    return count;
  }

  /// Payload bytes not yet consumed.
  std::size_t remaining() const { return end_ - pos_; }
  bool at_end() const { return ok() && remaining() == 0; }

 private:
  void extract(void* out, std::size_t bytes);
  /// Consumes the writer's padding up to the next 8-byte blob offset.
  void align8() {
    const std::size_t aligned = (pos_ + 7) & ~std::size_t{7};
    pos_ = aligned <= end_ ? aligned : end_;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;  ///< next unread payload byte
  std::size_t end_ = 0;  ///< one past the last payload byte (CRC excluded)
  std::uint16_t version_ = 0;
  std::string error_;
};

/// Writes `bytes` to `path` atomically (write to a same-directory temp
/// file, then rename): readers and racing writers only ever observe
/// complete blobs. Returns false (with errno intact) on any I/O failure.
bool write_file(const std::string& path, std::span<const std::uint8_t> bytes);

/// Reads a whole file. Returns false on any I/O failure; `out` is cleared
/// first either way.
bool read_file(const std::string& path, std::vector<std::uint8_t>& out);

}  // namespace msptrsv::support
