// Deterministic fault injection for the chaos tests.
//
// A failpoint is a NAMED site compiled into a hot seam (socket read/write,
// blob decode, plan-cache disk IO, dispatch, kernel level loops) that does
// nothing until a test arms it with an action:
//
//   error(CODE)   the site reports a failure carrying CODE
//   delay(USEC)   the site sleeps USEC microseconds, then proceeds
//   crash         the process exits immediately (no atexit, no drain)
//   partial(N)    the site truncates its effect to the first N bytes
//   pause         the site BLOCKS until the failpoint is cleared/re-armed
//
// plus two modifiers: `*N` fires at most N times (then the site goes quiet)
// and `@K` skips the first K evaluations. `error(7)*2@1` reads: let the
// first hit through, then fail twice with code 7, then behave normally.
//
// Arming is per-process, by API (failpoint_set) or environment
// (MSPTRSV_FAILPOINTS="name=spec;name=spec"), and -- on servers started
// with --enable-failpoints -- over the wire (net/protocol.hpp kFailpoint).
// `pause` plus failpoint_wait_hits() is what replaces wall-clock sleeps in
// race tests: freeze the victim at the seam, observe it parked via its hit
// counter, run the racing actor, release.
//
// Cost when compiled in but not armed: one relaxed atomic load per site
// (a process-wide armed count). Cost when compiled out
// (-DMSPTRSV_FAILPOINTS=0 / cmake -DMSPTRSV_FAILPOINTS=OFF): zero -- the
// MSPTRSV_FAILPOINT macro expands to an empty result object that constant-
// folds away, so production builds carry no trace of the sites.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace msptrsv::support {

struct FailpointHit {
  enum class Kind : std::uint8_t {
    kOff = 0,   ///< site not armed (or exhausted): proceed normally
    kError,     ///< report a failure; `arg` is the injected code
    kDelay,     ///< the sleep already happened inside eval; proceed
    kPartial,   ///< truncate the site's effect to the first `arg` bytes
    kPause,     ///< the block already happened inside eval; proceed
  };
  Kind kind = Kind::kOff;
  std::int64_t arg = 0;
  explicit operator bool() const { return kind != Kind::kOff; }
};

/// True when the sites are compiled in (MSPTRSV_FAILPOINTS build option).
/// Tests that need injection skip themselves when this is false.
bool failpoints_compiled();

/// Arms `name` with `spec` (grammar above). Replacing an armed site wakes
/// any evaluation paused on it. Returns false on a parse error or when the
/// framework is compiled out.
bool failpoint_set(const std::string& name, const std::string& spec);

/// Disarms `name`, waking any evaluation paused on it. Idempotent.
void failpoint_clear(const std::string& name);

/// Disarms everything (test teardown).
void failpoint_clear_all();

/// Number of currently armed sites (0 when compiled out) -- echoed in the
/// wire protocol's failpoint-ok frame so tests can assert arming took.
std::size_t failpoint_armed_count();

/// Times `name` has FIRED (skip-modifier passes and exhausted evaluations
/// do not count). Survives clear -- counters reset only on process exit.
std::uint64_t failpoint_hits(const std::string& name);

/// Blocks until failpoint_hits(name) >= min_hits or timeout_ms elapses.
/// The deterministic replacement for "sleep and hope": a test arms `pause`,
/// starts the victim thread, and waits here until the victim is provably
/// parked at the seam before racing it.
bool failpoint_wait_hits(const std::string& name, std::uint64_t min_hits,
                         int timeout_ms);

/// Full evaluation of a site (called via the macro, not directly): applies
/// delay/pause/crash inline and returns what the site should do. Exhausted
/// and skipped evaluations return kOff.
FailpointHit failpoint_eval(const char* name);

namespace detail {
/// One relaxed load; lazily parses MSPTRSV_FAILPOINTS from the environment
/// on the first call so env-armed sites fire without any API call.
bool failpoints_armed();
}  // namespace detail

}  // namespace msptrsv::support

#if defined(MSPTRSV_FAILPOINTS) && MSPTRSV_FAILPOINTS
#define MSPTRSV_FAILPOINT(name)                     \
  (::msptrsv::support::detail::failpoints_armed()   \
       ? ::msptrsv::support::failpoint_eval(name)   \
       : ::msptrsv::support::FailpointHit{})
#else
#define MSPTRSV_FAILPOINT(name) (::msptrsv::support::FailpointHit{})
#endif
