// Fundamental scalar type aliases shared across the library.
#pragma once

#include <cstdint>

namespace msptrsv {

/// Row/column index. 32-bit is sufficient for every matrix in the paper's
/// suite once the two web graphs are scaled to fit a single node.
using index_t = std::int32_t;

/// Offsets into nonzero arrays (can exceed 2^31 for very dense inputs).
using offset_t = std::int64_t;

/// Matrix/vector element type. The paper solves in double precision.
using value_t = double;

/// Simulated time in microseconds (all sim cost constants use this unit).
using sim_time_t = double;

}  // namespace msptrsv
