// Interconnect topologies of the evaluation platforms.
//
// DGX-1 (V100): 8 GPUs in the hybrid cube-mesh -- two fully connected
// quads {0..3} and {4..7} with cross links 0-4, 1-5, 2-6, 3-7; NVLink2
// pairs are single (25 GB/s/dir) or double (50 GB/s/dir) per the published
// wiring. Non-adjacent pairs route over two hops.
//
// DGX-2 (V100): 16 GPUs all-to-all through NVSwitch; modelled as one
// ingress and one egress port per GPU (the switch fabric itself is
// non-blocking), so per-GPU bandwidth is *constant* in the GPU count --
// the property behind the flatter scaling of Fig. 10b.
#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace msptrsv::sim {

enum class TopologyKind {
  kPointToPoint,  ///< explicit GPU-GPU links (DGX-1)
  kSwitched,      ///< per-GPU ports into a non-blocking switch (DGX-2)
};

/// A directed bandwidth resource: either a physical NVLink bundle (point to
/// point) or a switch port (switched).
struct LinkSpec {
  int src = -1;        ///< source GPU (or port owner for switched)
  int dst = -1;        ///< destination GPU (-1 for an egress port)
  double bw_gbs = 0.0; ///< bandwidth in GB/s per direction
};

class Topology {
 public:
  /// Empty topology (0 GPUs); assign a builder's result before use.
  Topology() = default;

  /// DGX-1 hybrid cube-mesh restricted to the first `num_gpus` GPUs
  /// (1 <= num_gpus <= 8). The first four GPUs form a fully connected quad,
  /// matching the paper's "up to 4 GPUs that are fully connected".
  static Topology dgx1(int num_gpus);

  /// DGX-2 NVSwitch all-to-all (1 <= num_gpus <= 16).
  static Topology dgx2(int num_gpus);

  /// Uniform custom all-to-all point-to-point network (testing / studies).
  static Topology all_to_all(int num_gpus, double bw_gbs);

  TopologyKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  int num_gpus() const { return num_gpus_; }
  int num_links() const { return static_cast<int>(links_.size()); }
  const LinkSpec& link(int id) const { return links_[static_cast<std::size_t>(id)]; }
  const std::vector<LinkSpec>& links() const { return links_; }

  /// Ordered link ids a message from src to dst traverses. Point-to-point:
  /// the (possibly multi-hop) min-hop path; switched: {egress(src),
  /// ingress(dst)}. Requires src != dst.
  const std::vector<int>& route(int src, int dst) const;

  /// Number of GPU-to-GPU hops on the route (switched counts as 1).
  int hops(int src, int dst) const;

  /// Min link bandwidth along the route (the bottleneck for one message).
  double route_bandwidth_gbs(int src, int dst) const;

  /// Sum of bandwidth of links incident to a GPU (the paper's "active
  /// communication bandwidth per GPU" that grows with DGX-1 GPU count).
  double active_bandwidth_gbs(int gpu) const;

 private:
  void build_routes();

  TopologyKind kind_ = TopologyKind::kPointToPoint;
  std::string name_;
  int num_gpus_ = 0;
  std::vector<LinkSpec> links_;
  /// routes_[src * num_gpus + dst]
  std::vector<std::vector<int>> routes_;
};

}  // namespace msptrsv::sim
