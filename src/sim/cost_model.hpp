// Calibration constants of the machine model.
//
// Every constant is a *time* (microseconds) or a *rate* with a documented
// physical counterpart on the V100/DGX systems the paper evaluates. The
// reproduction targets relative shapes, so what matters is the ratios:
// a unified-memory page fault is ~10^1 us while an NVSHMEM fine-grained get
// is ~10^0 us and a device-scope atomic is ~10^-2 us -- three orders of
// magnitude that drive every result in the paper.
#pragma once

#include "support/types.hpp"

namespace msptrsv::sim {

struct CostModel {
  // --- compute -----------------------------------------------------------
  /// Solver warps concurrently resident per GPU. A V100 has 80 SMs x 64
  /// warp slots; the sync-free solver keeps a fraction of them active.
  int warp_slots_per_gpu = 192;
  /// Fixed cost of solving one component (division + bookkeeping).
  sim_time_t solve_base_us = 0.06;
  /// Per-nonzero cost of the update fan-out in the solved column.
  sim_time_t solve_per_nnz_us = 0.0035;
  /// Device-scope atomic add/incr (L2-resident), issue-to-retire.
  sim_time_t atomic_local_us = 0.01;
  /// Latency until a *local* dependent's busy-wait loop observes a
  /// device-scope update: L2 propagation plus half a poll iteration.
  /// Measured sync-free solvers show ~1-2 us per dependency level even on
  /// one GPU; this constant is why csrsv2's ~4-10 us per-level barrier
  /// loses on deep matrices but not by orders of magnitude.
  sim_time_t local_visibility_us = 1.2;
  /// Issue cost of a *system-scope* atomic to managed memory (the warp
  /// proceeds once the request is queued to the fabric; the page-level
  /// migration cost lands on the page timeline, not the producer).
  sim_time_t atomic_system_us = 0.8;

  // --- kernels -----------------------------------------------------------
  /// Host-side kernel launch overhead (one per task in the task model).
  sim_time_t kernel_launch_us = 6.0;
  /// Per-level kernel + synchronization cost of the level-set baseline
  /// (cuSPARSE csrsv2-style execution).
  sim_time_t level_sync_us = 4.0;

  // --- unified memory ----------------------------------------------------
  /// Migration granule. The driver adapts between 4 KiB and 2 MiB; for the
  /// scattered single-word atomics of SpTRSV's intermediate arrays it stays
  /// at the minimum granule, which also keeps the page-level parallelism of
  /// the scaled-down suite analogs representative of the paper-scale runs.
  double page_bytes = 4096.0;
  /// GPU page-fault service time (fault + TLB shootdown + map update);
  /// measured 10-40 us on Volta-class parts depending on batching.
  sim_time_t page_fault_us = 25.0;
  /// Driver thrashing mitigation: a page whose migrations come back to
  /// back -- more than um_pin_threshold bounces, each within
  /// um_storm_window_us of the previous -- is pinned where it is, and
  /// other processors are served through direct remote (peer) mappings ...
  int um_pin_threshold = 3;
  sim_time_t um_storm_window_us = 40.0;
  /// ... or whose lifetime migration count exceeds this cap (slow but
  /// persistent alternation; the driver throttles migration volume too).
  int um_bounce_cap = 12;
  /// ... until the pin expires and migrate-on-write (and hence the thrash
  /// cycle) resumes. Rate-based detection is why the wide-and-shallow
  /// nlpkkt160 (a synchronized bounce storm the driver catches instantly)
  /// keeps scaling under Unified Memory in Fig. 3 while deep matrices,
  /// whose pages alternate slowly as the wavefront passes, churn forever.
  sim_time_t um_pin_duration_us = 500.0;
  /// One direct access to a thrashing-mitigated page (no migration). The
  /// driver maps such pages into *host* sysmem, so every access -- read or
  /// system-scope atomic -- crosses PCIe: distinctly slower than an NVLink
  /// peer access, which is why mitigated Unified Memory still trails the
  /// NVSHMEM design even once the fault storm subsides.
  sim_time_t remote_access_us = 6.0;

  // --- nvshmem -----------------------------------------------------------
  /// Initiation overhead of a GPU-initiated one-sided get/put.
  sim_time_t get_overhead_us = 0.6;
  /// Extra latency per NVLink hop on the route.
  sim_time_t hop_latency_us = 0.3;
  /// One __shfl_down_sync step of the warp-level reduction.
  sim_time_t shuffle_us = 0.04;
  /// Busy-wait loop iteration period of the lock-wait phase.
  sim_time_t poll_quantum_us = 0.3;
  /// nvshmem_fence / nvshmem_quiet (used by the naive Get-Update-Put
  /// ablation; the read-only model never pays it).
  sim_time_t fence_us = 1.2;

  // --- host --------------------------------------------------------------
  /// PCIe gen3 x16 effective bandwidth, for spills in the capacity model.
  double pcie_bw_gbs = 12.0;

  // --- analysis phase ----------------------------------------------------
  /// Per-nonzero cost of the in-degree counting kernel (streaming atomics).
  sim_time_t indegree_per_nnz_us = 0.0008;
};

/// Bytes per microsecond for a GB/s figure (1 GB/s = 1000 B/us).
inline double bytes_per_us(double gbs) { return gbs * 1000.0; }

}  // namespace msptrsv::sim
