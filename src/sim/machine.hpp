// A simulated multi-GPU node: device specs + topology + cost model.
//
// Machines are cheap value objects; solvers instantiate the stateful pieces
// (Interconnect, UnifiedMemoryModel, NvshmemModel) per run.
#pragma once

#include <string>

#include "sim/cost_model.hpp"
#include "sim/topology.hpp"

namespace msptrsv::sim {

struct GpuSpec {
  /// V100-SXM2 16 GB.
  double memory_bytes = 16.0 * 1024.0 * 1024.0 * 1024.0;
};

struct Machine {
  std::string name;
  Topology topology;
  CostModel cost;
  GpuSpec gpu;

  int num_gpus() const { return topology.num_gpus(); }

  /// NVIDIA V100-DGX-1 with the first `num_gpus` GPUs (<= 8). The paper's
  /// NVSHMEM runs use <= 4 (the fully P2P-connected quad).
  static Machine dgx1(int num_gpus, CostModel cost = {});

  /// NVIDIA V100-DGX-2 with `num_gpus` <= 16 (all-to-all NVSwitch).
  static Machine dgx2(int num_gpus, CostModel cost = {});

  /// Custom uniform all-to-all machine for sensitivity studies.
  static Machine custom(int num_gpus, double link_gbs, CostModel cost = {});
};

}  // namespace msptrsv::sim
