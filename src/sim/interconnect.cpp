#include "sim/interconnect.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace msptrsv::sim {

Interconnect::Interconnect(const Topology& topo, const CostModel& cost)
    : topo_(topo), cost_(cost) {
  next_free_.assign(static_cast<std::size_t>(topo_.num_links()), 0.0);
  stats_.assign(static_cast<std::size_t>(topo_.num_links()), {});
}

sim_time_t Interconnect::transfer(int src, int dst, double bytes,
                                  sim_time_t now) {
  MSPTRSV_REQUIRE(bytes >= 0.0, "message size must be non-negative");
  if (src == dst) return now;  // local: no network involvement
  const std::vector<int>& route = topo_.route(src, dst);
  // Latency + serialization model. Per-link occupancy is tracked
  // statistically (bytes, busy time) rather than as a hard timeline: the
  // engine emits bookings in component-readiness order, not global time
  // order, so a shared timeline would let causally later messages delay
  // earlier ones. At this workload's message sizes (4 B gets to 4 KiB page
  // migrations) serialization never saturates an NVLink, so the
  // approximation costs little; link *stats* still expose hot links.
  const double bottleneck = topo_.route_bandwidth_gbs(src, dst);
  const sim_time_t serialize = bytes / bytes_per_us(bottleneck);
  const sim_time_t wire =
      cost_.hop_latency_us * static_cast<double>(route.size());
  for (int id : route) {
    LinkStats& s = stats_[static_cast<std::size_t>(id)];
    s.bytes += bytes;
    s.messages += 1;
    s.busy_us += serialize;
  }
  return now + serialize + wire;
}

sim_time_t Interconnect::uncontended_latency(int src, int dst,
                                             double bytes) const {
  if (src == dst) return 0.0;
  const std::vector<int>& route = topo_.route(src, dst);
  const double bw = topo_.route_bandwidth_gbs(src, dst);
  return bytes / bytes_per_us(bw) +
         cost_.hop_latency_us * static_cast<double>(route.size());
}

const LinkStats& Interconnect::link_stats(int link_id) const {
  MSPTRSV_REQUIRE(link_id >= 0 && link_id < topo_.num_links(),
                  "link id out of range");
  return stats_[static_cast<std::size_t>(link_id)];
}

double Interconnect::total_bytes() const {
  double b = 0.0;
  for (const LinkStats& s : stats_) b += s.bytes;
  return b;
}

std::uint64_t Interconnect::total_messages() const {
  std::uint64_t m = 0;
  for (const LinkStats& s : stats_) m += s.messages;
  return m;
}

void Interconnect::reset() {
  std::fill(next_free_.begin(), next_free_.end(), 0.0);
  std::fill(stats_.begin(), stats_.end(), LinkStats{});
}

}  // namespace msptrsv::sim
