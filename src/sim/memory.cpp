#include "sim/memory.hpp"

#include <sstream>

#include "support/contracts.hpp"

namespace msptrsv::sim {

MemoryTracker::MemoryTracker(int num_devices, double capacity_bytes)
    : capacity_(capacity_bytes) {
  MSPTRSV_REQUIRE(num_devices >= 1, "need at least one device");
  MSPTRSV_REQUIRE(capacity_bytes > 0.0, "capacity must be positive");
  used_.assign(static_cast<std::size_t>(num_devices), 0.0);
}

void MemoryTracker::allocate(int device, double bytes,
                             const std::string& label) {
  MSPTRSV_REQUIRE(device >= 0 && device < num_devices(),
                  "device id out of range");
  MSPTRSV_REQUIRE(bytes >= 0.0, "allocation size must be non-negative");
  MSPTRSV_REQUIRE(
      used_[static_cast<std::size_t>(device)] + bytes <= capacity_,
      "out of device memory on GPU " + std::to_string(device) + " for '" +
          label + "': need " + std::to_string(bytes) + " B, headroom " +
          std::to_string(headroom_bytes(device)) + " B");
  used_[static_cast<std::size_t>(device)] += bytes;
  log_.emplace_back(label + "@gpu" + std::to_string(device), bytes);
}

bool MemoryTracker::would_fit(int device, double bytes) const {
  MSPTRSV_REQUIRE(device >= 0 && device < num_devices(),
                  "device id out of range");
  return used_[static_cast<std::size_t>(device)] + bytes <= capacity_;
}

void MemoryTracker::release(int device, double bytes) {
  MSPTRSV_REQUIRE(device >= 0 && device < num_devices(),
                  "device id out of range");
  MSPTRSV_REQUIRE(used_[static_cast<std::size_t>(device)] >= bytes,
                  "releasing more memory than allocated");
  used_[static_cast<std::size_t>(device)] -= bytes;
}

double MemoryTracker::used_bytes(int device) const {
  MSPTRSV_REQUIRE(device >= 0 && device < num_devices(),
                  "device id out of range");
  return used_[static_cast<std::size_t>(device)];
}

double MemoryTracker::headroom_bytes(int device) const {
  return capacity_ - used_bytes(device);
}

std::string MemoryTracker::summary() const {
  std::ostringstream os;
  for (int d = 0; d < num_devices(); ++d) {
    os << "GPU " << d << ": "
       << used_bytes(d) / (1024.0 * 1024.0) << " MiB / "
       << capacity_ / (1024.0 * 1024.0) << " MiB\n";
  }
  return os.str();
}

int min_gpus_for_footprint(double bytes_total, double replicated_bytes,
                           double capacity_bytes, int max_gpus) {
  MSPTRSV_REQUIRE(capacity_bytes > 0.0 && max_gpus >= 1,
                  "capacity and GPU count must be positive");
  for (int g = 1; g <= max_gpus; ++g) {
    if (bytes_total / g + replicated_bytes <= capacity_bytes) return g;
  }
  return max_gpus + 1;
}

}  // namespace msptrsv::sim
