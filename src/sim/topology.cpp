#include "sim/topology.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <queue>

#include "support/contracts.hpp"

namespace msptrsv::sim {

namespace {

struct Edge {
  int a, b;
  int lanes;  // 1 = single NVLink (25 GB/s/dir), 2 = double (50 GB/s/dir)
};

/// Published NVLink wiring of the DGX-1V hybrid cube-mesh: two fully
/// connected quads plus the four cube cross-edges; each GPU uses exactly
/// six NVLink2 lanes.
constexpr std::array<Edge, 16> kDgx1Edges = {{
    {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {0, 4, 2},
    {1, 2, 2}, {1, 3, 1}, {1, 5, 2},
    {2, 3, 2}, {2, 6, 1},
    {3, 7, 1},
    {4, 5, 1}, {4, 6, 1}, {4, 7, 2},
    {5, 6, 2}, {5, 7, 1},
    {6, 7, 2},
}};

constexpr double kNvlink2LaneGbs = 25.0;
/// Effective per-GPU NVSwitch port bandwidth (6 lanes, ~100+ GB/s achieved;
/// the paper quotes "around 100GB/s per node").
constexpr double kNvswitchPortGbs = 120.0;

}  // namespace

Topology Topology::dgx1(int num_gpus) {
  MSPTRSV_REQUIRE(num_gpus >= 1 && num_gpus <= 8,
                  "DGX-1 hosts between 1 and 8 GPUs");
  Topology t;
  t.kind_ = TopologyKind::kPointToPoint;
  t.name_ = "DGX-1";
  t.num_gpus_ = num_gpus;
  for (const Edge& e : kDgx1Edges) {
    if (e.a >= num_gpus || e.b >= num_gpus) continue;
    const double bw = kNvlink2LaneGbs * e.lanes;
    t.links_.push_back({e.a, e.b, bw});
    t.links_.push_back({e.b, e.a, bw});
  }
  t.build_routes();
  return t;
}

Topology Topology::dgx2(int num_gpus) {
  MSPTRSV_REQUIRE(num_gpus >= 1 && num_gpus <= 16,
                  "DGX-2 hosts between 1 and 16 GPUs");
  Topology t;
  t.kind_ = TopologyKind::kSwitched;
  t.name_ = "DGX-2";
  t.num_gpus_ = num_gpus;
  // Link 2g   = egress port of GPU g,
  // link 2g+1 = ingress port of GPU g.
  for (int g = 0; g < num_gpus; ++g) {
    t.links_.push_back({g, -1, kNvswitchPortGbs});
    t.links_.push_back({-1, g, kNvswitchPortGbs});
  }
  t.build_routes();
  return t;
}

Topology Topology::all_to_all(int num_gpus, double bw_gbs) {
  MSPTRSV_REQUIRE(num_gpus >= 1, "need at least one GPU");
  MSPTRSV_REQUIRE(bw_gbs > 0.0, "bandwidth must be positive");
  Topology t;
  t.kind_ = TopologyKind::kPointToPoint;
  t.name_ = "all-to-all";
  t.num_gpus_ = num_gpus;
  for (int a = 0; a < num_gpus; ++a) {
    for (int b = a + 1; b < num_gpus; ++b) {
      t.links_.push_back({a, b, bw_gbs});
      t.links_.push_back({b, a, bw_gbs});
    }
  }
  t.build_routes();
  return t;
}

void Topology::build_routes() {
  routes_.assign(static_cast<std::size_t>(num_gpus_) * num_gpus_, {});
  if (kind_ == TopologyKind::kSwitched) {
    for (int s = 0; s < num_gpus_; ++s) {
      for (int d = 0; d < num_gpus_; ++d) {
        if (s == d) continue;
        routes_[static_cast<std::size_t>(s) * num_gpus_ + d] = {2 * s,
                                                                2 * d + 1};
      }
    }
    return;
  }

  // Min-hop routing with deterministic tie-breaking: prefer the path whose
  // bottleneck bandwidth is highest, then the lowest intermediate ids.
  // BFS per source over the directed link graph.
  std::vector<std::vector<int>> out(static_cast<std::size_t>(num_gpus_));
  for (int id = 0; id < num_links(); ++id) {
    out[static_cast<std::size_t>(links_[static_cast<std::size_t>(id)].src)]
        .push_back(id);
  }
  for (auto& v : out) {
    std::sort(v.begin(), v.end(), [&](int x, int y) {
      const LinkSpec& lx = links_[static_cast<std::size_t>(x)];
      const LinkSpec& ly = links_[static_cast<std::size_t>(y)];
      if (lx.bw_gbs != ly.bw_gbs) return lx.bw_gbs > ly.bw_gbs;
      return lx.dst < ly.dst;
    });
  }

  for (int s = 0; s < num_gpus_; ++s) {
    std::vector<int> dist(static_cast<std::size_t>(num_gpus_),
                          std::numeric_limits<int>::max());
    std::vector<int> via_link(static_cast<std::size_t>(num_gpus_), -1);
    std::queue<int> bfs;
    dist[static_cast<std::size_t>(s)] = 0;
    bfs.push(s);
    while (!bfs.empty()) {
      const int u = bfs.front();
      bfs.pop();
      for (int id : out[static_cast<std::size_t>(u)]) {
        const int v = links_[static_cast<std::size_t>(id)].dst;
        if (dist[static_cast<std::size_t>(v)] >
            dist[static_cast<std::size_t>(u)] + 1) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          via_link[static_cast<std::size_t>(v)] = id;
          bfs.push(v);
        }
      }
    }
    for (int d = 0; d < num_gpus_; ++d) {
      if (d == s) continue;
      MSPTRSV_ENSURE(via_link[static_cast<std::size_t>(d)] >= 0,
                     "disconnected topology: no route between GPUs " +
                         std::to_string(s) + " and " + std::to_string(d));
      std::vector<int> path;
      for (int v = d; v != s;) {
        const int id = via_link[static_cast<std::size_t>(v)];
        path.push_back(id);
        v = links_[static_cast<std::size_t>(id)].src;
      }
      std::reverse(path.begin(), path.end());
      routes_[static_cast<std::size_t>(s) * num_gpus_ + d] = std::move(path);
    }
  }
}

const std::vector<int>& Topology::route(int src, int dst) const {
  MSPTRSV_REQUIRE(src >= 0 && src < num_gpus_ && dst >= 0 && dst < num_gpus_,
                  "GPU id out of range");
  MSPTRSV_REQUIRE(src != dst, "no route from a GPU to itself");
  return routes_[static_cast<std::size_t>(src) * num_gpus_ + dst];
}

int Topology::hops(int src, int dst) const {
  if (kind_ == TopologyKind::kSwitched) return 1;
  return static_cast<int>(route(src, dst).size());
}

double Topology::route_bandwidth_gbs(int src, int dst) const {
  double bw = std::numeric_limits<double>::max();
  for (int id : route(src, dst)) {
    bw = std::min(bw, links_[static_cast<std::size_t>(id)].bw_gbs);
  }
  return bw;
}

double Topology::active_bandwidth_gbs(int gpu) const {
  MSPTRSV_REQUIRE(gpu >= 0 && gpu < num_gpus_, "GPU id out of range");
  double bw = 0.0;
  for (const LinkSpec& l : links_) {
    if (l.src == gpu) bw += l.bw_gbs;
  }
  return bw;
}

}  // namespace msptrsv::sim
