#include "sim/unified_memory.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace msptrsv::sim {

UnifiedMemoryModel::UnifiedMemoryModel(Interconnect& net, const CostModel& cost,
                                       int num_gpus)
    : net_(net), cost_(cost), num_gpus_(num_gpus) {
  MSPTRSV_REQUIRE(num_gpus >= 1, "need at least one GPU");
  stats_.faults_per_gpu.assign(static_cast<std::size_t>(num_gpus), 0);
}

int UnifiedMemoryModel::create_region(index_t entries, double entry_bytes) {
  MSPTRSV_REQUIRE(entries > 0, "region must have entries");
  MSPTRSV_REQUIRE(entry_bytes > 0.0, "entry size must be positive");
  Region r;
  r.entries = entries;
  r.entry_bytes = entry_bytes;
  const index_t by_bytes = std::max<index_t>(
      1, static_cast<index_t>(cost_.page_bytes / entry_bytes));
  const index_t by_ratio = std::max<index_t>(16, entries / 1024);
  r.entries_per_page = std::min(by_bytes, by_ratio);
  const index_t pages =
      (entries + r.entries_per_page - 1) / r.entries_per_page;
  r.pages.assign(static_cast<std::size_t>(pages), Page{});
  regions_.push_back(std::move(r));
  return static_cast<int>(regions_.size()) - 1;
}

UnifiedMemoryModel::Page& UnifiedMemoryModel::page_for(int region,
                                                       index_t entry) {
  MSPTRSV_REQUIRE(region >= 0 &&
                      region < static_cast<int>(regions_.size()),
                  "region handle out of range");
  Region& r = regions_[static_cast<std::size_t>(region)];
  MSPTRSV_REQUIRE(entry >= 0 && entry < r.entries, "entry out of range");
  return r.pages[static_cast<std::size_t>(entry / r.entries_per_page)];
}

sim_time_t UnifiedMemoryModel::direct_remote(const Page& p, int gpu,
                                             double bytes, sim_time_t t) {
  stats_.direct_remote_accesses += 1;
  return t + cost_.remote_access_us +
         net_.uncontended_latency(p.owner, gpu, bytes);
}

sim_time_t UnifiedMemoryModel::access(int region, index_t entry, int gpu,
                                      sim_time_t now) {
  MSPTRSV_REQUIRE(gpu >= 0 && gpu < num_gpus_, "gpu id out of range");
  Page& p = page_for(region, entry);
  if (p.owner == -1) {
    // First touch: demand population, no migration booked.
    p.owner = gpu;
    return now;
  }
  if (p.owner != gpu) {
    if (now < p.pinned_until) {
      // Thrashing mitigation active: served via the peer mapping.
      return direct_remote(p, gpu, sizeof(value_t), now);
    }
    if (p.bounce_streak >= cost_.um_pin_threshold ||
        p.total_bounces >= cost_.um_bounce_cap) {
      // Back-to-back bounces (a storm) or persistent slow alternation:
      // the driver gives up migrating this page for a while; pages that
      // keep proving thrashy stay remote-mapped for good.
      const bool volume = p.total_bounces >= cost_.um_bounce_cap;
      p.pinned_until =
          now + cost_.um_pin_duration_us * (volume ? 8.0 : 1.0);
      p.bounce_streak = 0;
      stats_.pins += 1;
      return direct_remote(p, gpu, sizeof(value_t), now);
    }
    // Fault: service latency plus migrating one page across the fabric.
    // NOTE on serialization: the engine emits page accesses in component-
    // readiness order, not global time order, so a hard per-page timeline
    // would let causally later events delay earlier ones (and feed back
    // explosively). Migration cost is therefore charged per access --
    // latency to the accessor, bytes to the links -- while *rate* limits
    // come from the pin heuristics and the poll interval.
    stats_.faults += 1;
    stats_.faults_per_gpu[static_cast<std::size_t>(gpu)] += 1;
    stats_.migrations += 1;
    stats_.migrated_bytes += cost_.page_bytes;
    p.bounce_streak = (now - p.last_bounce < cost_.um_storm_window_us)
                          ? p.bounce_streak + 1
                          : 0;
    p.last_bounce = now;
    p.total_bounces += 1;
    const sim_time_t arrived =
        net_.transfer(p.owner, gpu, cost_.page_bytes, now) +
        cost_.page_fault_us;
    p.owner = gpu;
    p.available = arrived;
    return arrived;
  }
  return now;
}

sim_time_t UnifiedMemoryModel::poll_read(int region, index_t entry, int gpu,
                                         sim_time_t now) {
  MSPTRSV_REQUIRE(gpu >= 0 && gpu < num_gpus_, "gpu id out of range");
  Page& p = page_for(region, entry);
  if (p.owner == gpu || p.owner == -1) {
    return access(region, entry, gpu, now);
  }
  if (now < p.pinned_until) {
    // Pinned at the writer: the poll reads through the peer mapping.
    return direct_remote(p, gpu, sizeof(value_t), now);
  }
  if (std::abs(now - p.last_pull) < cost_.page_fault_us) {
    // A pull is in flight or just completed: ride it (polls cannot fault
    // faster than the driver serves faults).
    return std::max(now, p.last_pull) + cost_.page_fault_us;
  }
  const sim_time_t arrived = access(region, entry, gpu, now);
  p.last_pull = arrived;
  return arrived;
}

sim_time_t UnifiedMemoryModel::poll_visibility(int region, index_t entry,
                                               int gpu, sim_time_t now) const {
  MSPTRSV_REQUIRE(gpu >= 0 && gpu < num_gpus_, "gpu id out of range");
  MSPTRSV_REQUIRE(region >= 0 && region < static_cast<int>(regions_.size()),
                  "region handle out of range");
  const Region& r = regions_[static_cast<std::size_t>(region)];
  MSPTRSV_REQUIRE(entry >= 0 && entry < r.entries, "entry out of range");
  const Page& p = r.pages[static_cast<std::size_t>(entry / r.entries_per_page)];
  if (p.owner == gpu || p.owner == -1) return now;
  if (now < p.pinned_until) {
    return now + cost_.remote_access_us +
           net_.uncontended_latency(p.owner, gpu, r.entry_bytes);
  }
  // The dependent's poll loop pulls the page about once per fault-service
  // interval, so content landing at `now` is observed within one interval
  // plus the migration itself.
  return now + 1.5 * cost_.page_fault_us +
         net_.uncontended_latency(p.owner, gpu, cost_.page_bytes);
}

int UnifiedMemoryModel::owner_of(int region, index_t entry) const {
  MSPTRSV_REQUIRE(region >= 0 && region < static_cast<int>(regions_.size()),
                  "region handle out of range");
  const Region& r = regions_[static_cast<std::size_t>(region)];
  MSPTRSV_REQUIRE(entry >= 0 && entry < r.entries, "entry out of range");
  return r.pages[static_cast<std::size_t>(entry / r.entries_per_page)].owner;
}

}  // namespace msptrsv::sim
