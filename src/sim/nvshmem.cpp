#include "sim/nvshmem.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace msptrsv::sim {

NvshmemModel::NvshmemModel(Interconnect& net, const CostModel& cost,
                           int num_pes)
    : net_(net), cost_(cost), num_pes_(num_pes) {
  MSPTRSV_REQUIRE(num_pes >= 1, "need at least one PE");
}

double NvshmemModel::symmetric_alloc(double bytes) {
  MSPTRSV_REQUIRE(bytes >= 0.0, "allocation size must be non-negative");
  const double offset = heap_bytes_;
  heap_bytes_ += bytes;
  return offset;
}

sim_time_t NvshmemModel::get(int local_pe, int remote_pe, double bytes,
                             sim_time_t now) {
  MSPTRSV_REQUIRE(local_pe >= 0 && local_pe < num_pes_, "PE id out of range");
  MSPTRSV_REQUIRE(remote_pe >= 0 && remote_pe < num_pes_, "PE id out of range");
  stats_.gets += 1;
  stats_.bytes += bytes;
  if (local_pe == remote_pe) return now + cost_.atomic_local_us;
  // One-sided read: data flows remote -> local.
  return net_.transfer(remote_pe, local_pe, bytes, now + cost_.get_overhead_us);
}

sim_time_t NvshmemModel::put(int local_pe, int remote_pe, double bytes,
                             sim_time_t now) {
  MSPTRSV_REQUIRE(local_pe >= 0 && local_pe < num_pes_, "PE id out of range");
  MSPTRSV_REQUIRE(remote_pe >= 0 && remote_pe < num_pes_, "PE id out of range");
  stats_.puts += 1;
  stats_.bytes += bytes;
  if (local_pe == remote_pe) return now + cost_.atomic_local_us;
  return net_.transfer(local_pe, remote_pe, bytes, now + cost_.get_overhead_us);
}

sim_time_t NvshmemModel::fence(sim_time_t now) {
  stats_.fences += 1;
  return now + cost_.fence_us;
}

sim_time_t NvshmemModel::gather_reduce(int local_pe,
                                       std::span<const int> remote_pes,
                                       double bytes_each, sim_time_t now) {
  stats_.gather_reductions += 1;
  sim_time_t done = now;
  int lanes = 1;  // the local contribution occupies one lane
  for (int pe : remote_pes) {
    if (pe == local_pe) continue;
    ++lanes;
    done = std::max(done, get(local_pe, pe, bytes_each, now));
  }
  const int steps =
      lanes > 1 ? static_cast<int>(std::ceil(std::log2(lanes))) : 0;
  return done + steps * cost_.shuffle_us;
}

sim_time_t NvshmemModel::poll_visibility_delay(int local_pe,
                                               int remote_pe) const {
  if (local_pe == remote_pe) return cost_.atomic_local_us;
  // Half a poll period (expected wait for the next loop iteration) plus an
  // uncontended small get.
  return 0.5 * cost_.poll_quantum_us + cost_.get_overhead_us +
         net_.uncontended_latency(remote_pe, local_pe, sizeof(index_t));
}

}  // namespace msptrsv::sim
