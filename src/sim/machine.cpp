#include "sim/machine.hpp"

namespace msptrsv::sim {

Machine Machine::dgx1(int num_gpus, CostModel cost) {
  Machine m;
  m.name = "DGX-1x" + std::to_string(num_gpus);
  m.topology = Topology::dgx1(num_gpus);
  m.cost = cost;
  return m;
}

Machine Machine::dgx2(int num_gpus, CostModel cost) {
  Machine m;
  m.name = "DGX-2x" + std::to_string(num_gpus);
  m.topology = Topology::dgx2(num_gpus);
  m.cost = cost;
  return m;
}

Machine Machine::custom(int num_gpus, double link_gbs, CostModel cost) {
  Machine m;
  m.name = "custom-x" + std::to_string(num_gpus);
  m.topology = Topology::all_to_all(num_gpus, link_gbs);
  m.cost = cost;
  return m;
}

}  // namespace msptrsv::sim
