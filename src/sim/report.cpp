#include "sim/report.hpp"

#include <algorithm>
#include <sstream>

#include "support/stats.hpp"

namespace msptrsv::sim {

void RunReport::accumulate(const RunReport& other) {
  solve_us += other.solve_us;
  analysis_us += other.analysis_us;
  max_solve_us = std::max(max_solve_us,
                          other.num_rhs > 1 ? other.max_solve_us
                                            : other.solve_us);
  num_rhs += other.num_rhs;

  if (busy_us_per_gpu.size() < other.busy_us_per_gpu.size()) {
    busy_us_per_gpu.resize(other.busy_us_per_gpu.size(), 0.0);
  }
  for (std::size_t g = 0; g < other.busy_us_per_gpu.size(); ++g) {
    busy_us_per_gpu[g] += other.busy_us_per_gpu[g];
  }
  if (page_faults_per_gpu.size() < other.page_faults_per_gpu.size()) {
    page_faults_per_gpu.resize(other.page_faults_per_gpu.size(), 0);
  }
  for (std::size_t g = 0; g < other.page_faults_per_gpu.size(); ++g) {
    page_faults_per_gpu[g] += other.page_faults_per_gpu[g];
  }

  local_updates += other.local_updates;
  remote_updates += other.remote_updates;
  page_faults += other.page_faults;
  page_migrations += other.page_migrations;
  page_migrated_bytes += other.page_migrated_bytes;
  page_pins += other.page_pins;
  direct_remote_accesses += other.direct_remote_accesses;
  nvshmem_gets += other.nvshmem_gets;
  nvshmem_puts += other.nvshmem_puts;
  nvshmem_fences += other.nvshmem_fences;
  gather_reductions += other.gather_reductions;
  nvshmem_bytes += other.nvshmem_bytes;
  link_bytes += other.link_bytes;
  link_messages += other.link_messages;
  kernel_launches += other.kernel_launches;
}

double RunReport::load_imbalance() const {
  return support::imbalance_factor(busy_us_per_gpu);
}

double RunReport::utilization() const {
  if (solve_us <= 0.0 || busy_us_per_gpu.empty()) return 0.0;
  return support::mean(busy_us_per_gpu) / solve_us;
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os << solver_name << " on " << machine_name << " (" << num_gpus
     << " GPUs)\n";
  os << "  solve: " << solve_us << " us, analysis: " << analysis_us
     << " us";
  if (num_rhs > 1) {
    os << " (" << num_rhs << " rhs, slowest " << max_solve_us << " us)";
  }
  os << "\n";
  os << "  updates: " << local_updates << " local / " << remote_updates
     << " remote\n";
  if (page_faults > 0) {
    os << "  unified memory: " << page_faults << " faults, "
       << page_migrated_bytes / (1024.0 * 1024.0) << " MiB migrated\n";
  }
  if (nvshmem_gets + nvshmem_puts > 0) {
    os << "  nvshmem: " << nvshmem_gets << " gets, " << nvshmem_puts
       << " puts, " << gather_reductions << " gather-reductions, "
       << nvshmem_bytes / (1024.0 * 1024.0) << " MiB\n";
  }
  os << "  interconnect: " << link_bytes / (1024.0 * 1024.0) << " MiB in "
     << link_messages << " messages\n";
  os << "  kernels: " << kernel_launches
     << ", utilization: " << utilization()
     << ", imbalance: " << load_imbalance() << "\n";
  return os.str();
}

}  // namespace msptrsv::sim
