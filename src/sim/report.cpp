#include "sim/report.hpp"

#include <sstream>

#include "support/stats.hpp"

namespace msptrsv::sim {

double RunReport::load_imbalance() const {
  return support::imbalance_factor(busy_us_per_gpu);
}

double RunReport::utilization() const {
  if (solve_us <= 0.0 || busy_us_per_gpu.empty()) return 0.0;
  return support::mean(busy_us_per_gpu) / solve_us;
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os << solver_name << " on " << machine_name << " (" << num_gpus
     << " GPUs)\n";
  os << "  solve: " << solve_us << " us, analysis: " << analysis_us
     << " us\n";
  os << "  updates: " << local_updates << " local / " << remote_updates
     << " remote\n";
  if (page_faults > 0) {
    os << "  unified memory: " << page_faults << " faults, "
       << page_migrated_bytes / (1024.0 * 1024.0) << " MiB migrated\n";
  }
  if (nvshmem_gets + nvshmem_puts > 0) {
    os << "  nvshmem: " << nvshmem_gets << " gets, " << nvshmem_puts
       << " puts, " << gather_reductions << " gather-reductions, "
       << nvshmem_bytes / (1024.0 * 1024.0) << " MiB\n";
  }
  os << "  interconnect: " << link_bytes / (1024.0 * 1024.0) << " MiB in "
     << link_messages << " messages\n";
  os << "  kernels: " << kernel_launches
     << ", utilization: " << utilization()
     << ", imbalance: " << load_imbalance() << "\n";
  return os.str();
}

}  // namespace msptrsv::sim
