// CUDA Unified Memory behaviour model (Section III).
//
// Managed regions are arrays of fixed-size entries spread over migration
// granules (see create_region for sizing). A granule is exclusively
// resident on one GPU; an access from another GPU faults, migrates it over
// the interconnect, and pays the fault-service latency. This is the
// mechanism behind the paper's Fig. 3: system-wide atomics on s.in_degree /
// s.left_sum from many GPUs make the shared pages bounce.
//
// The model includes the driver's thrashing mitigation: pages that bounce
// back-to-back (a storm) or keep alternating are pinned in place for a
// while and served through direct remote (host) mappings -- cheaper than
// faulting but slower than NVLink peer access. Rate-based detection is why
// the wide-and-shallow nlpkkt160 keeps scaling under Unified Memory while
// deep matrices churn (Fig. 3b).
//
// First-touch establishes residency for free (demand population), matching
// cudaMallocManaged + first-access semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/interconnect.hpp"
#include "support/types.hpp"

namespace msptrsv::sim {

struct UnifiedMemoryStats {
  std::uint64_t faults = 0;
  std::uint64_t migrations = 0;
  double migrated_bytes = 0.0;
  std::vector<std::uint64_t> faults_per_gpu;
  /// Accesses served through the thrashing-mitigation peer mapping.
  std::uint64_t direct_remote_accesses = 0;
  /// Times the driver pinned a thrashing page.
  std::uint64_t pins = 0;
};

class UnifiedMemoryModel {
 public:
  UnifiedMemoryModel(Interconnect& net, const CostModel& cost, int num_gpus);

  /// Declares a managed array of `entries` elements of `entry_bytes` each.
  /// Returns the region handle used by access().
  ///
  /// Granule sizing: contention granules are capped at page_bytes but also
  /// scaled so that a region splits into at least ~1024 granules. At paper
  /// scale (n ~ 10^6, 4-8 B entries) this reproduces the real 4 KiB
  /// fault granule exactly; for the scaled-down suite analogs it preserves
  /// the paper-scale ratio of granules to array length, which is what the
  /// contention behaviour depends on.
  int create_region(index_t entries, double entry_bytes);

  /// Times one access (read or atomic update -- both take exclusive
  /// ownership under system-scope atomics) to `entry` of `region` from
  /// `gpu`, starting no earlier than `now`. Returns the time at which the
  /// access completes; page faults and migrations are booked on the
  /// interconnect and counted.
  sim_time_t access(int region, index_t entry, int gpu, sim_time_t now);

  /// A busy-wait reader on `gpu`: the poll loop re-acquires a remotely held
  /// page at most once per fault-service interval (polls cannot fault
  /// faster than the driver serves faults), so consecutive rate-limited
  /// polls ride the most recent migration instead of forcing new ones.
  /// Returns the time at which `gpu` can read the entry's current content.
  sim_time_t poll_read(int region, index_t entry, int gpu, sim_time_t now);

  /// Estimate (no booking) of when a busy-wait reader on `gpu` would next
  /// observe content that lands on the page at `now`: immediately when the
  /// page is local, otherwise with its next rate-limited pull plus one
  /// uncontended migration.
  sim_time_t poll_visibility(int region, index_t entry, int gpu,
                             sim_time_t now) const;

  /// Owner GPU of the page holding `entry`, or -1 if untouched.
  int owner_of(int region, index_t entry) const;

  const UnifiedMemoryStats& stats() const { return stats_; }

 private:
  struct Page {
    int owner = -1;               // -1: not yet populated (first touch free)
    sim_time_t available = 0.0;   // page is usable from this time on
    sim_time_t last_pull = -1e30; // most recent poll-induced migration
    sim_time_t pinned_until = -1e30;  // thrashing mitigation window
    sim_time_t last_bounce = -1e30;   // previous migration time
    int bounce_streak = 0;        // consecutive rapid migrations
    int total_bounces = 0;        // lifetime migration count
  };

  /// Direct remote access over the peer mapping (thrashing-mitigated page).
  sim_time_t direct_remote(const Page& p, int gpu, double bytes,
                           sim_time_t t);
  struct Region {
    index_t entries = 0;
    double entry_bytes = 0.0;
    index_t entries_per_page = 0;
    std::vector<Page> pages;
  };

  Page& page_for(int region, index_t entry);

  Interconnect& net_;
  const CostModel& cost_;
  int num_gpus_;
  std::vector<Region> regions_;
  UnifiedMemoryStats stats_;
};

}  // namespace msptrsv::sim
