// Run report: everything a simulated solve tells you besides the answer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace msptrsv::sim {

struct RunReport {
  std::string solver_name;
  std::string machine_name;
  int num_gpus = 1;

  /// Total simulated time of the solver phase. For a fused batch
  /// (SolveOptions::fuse_batch, the default) this is the amortized batch
  /// makespan; for a looped batch it is the sum over all right-hand
  /// sides. Launch/update counters follow the same convention: a fused
  /// batch counts one kernel per level/task and one update message per
  /// edge per batch, not per rhs.
  sim_time_t solve_us = 0.0;
  /// Simulated time of the preprocessing (in-degree / level analysis).
  /// Under the phase-split API this is charged exactly once: a
  /// SolverPlan's per-solve reports carry 0 here and the plan owns the
  /// analysis charge; the one-shot wrappers fold it back in.
  sim_time_t analysis_us = 0.0;
  sim_time_t total_us() const { return solve_us + analysis_us; }

  /// Right-hand sides this report covers (> 1 for solve_batch).
  int num_rhs = 1;
  /// Simulated time of the slowest single solve in a looped batch; a
  /// fused batch is ONE solve, so this equals solve_us there (and when
  /// num_rhs == 1).
  sim_time_t max_solve_us = 0.0;

  /// Per-GPU busy time of warp slots (computation only).
  std::vector<sim_time_t> busy_us_per_gpu;

  /// Dependency-update traffic classification.
  std::uint64_t local_updates = 0;
  std::uint64_t remote_updates = 0;

  /// Unified-memory counters (zero for NVSHMEM runs).
  std::uint64_t page_faults = 0;
  std::uint64_t page_migrations = 0;
  double page_migrated_bytes = 0.0;
  std::vector<std::uint64_t> page_faults_per_gpu;
  /// Thrashing-mitigation counters (driver pins, peer-mapped accesses).
  std::uint64_t page_pins = 0;
  std::uint64_t direct_remote_accesses = 0;

  /// NVSHMEM counters (zero for unified-memory runs). Counts follow the
  /// fused-batch convention (one op per edge/gather per batch); byte
  /// totals price each value-carrying payload at the batch width k --
  /// a fused update message moves k left-sum partials, not one.
  std::uint64_t nvshmem_gets = 0;
  std::uint64_t nvshmem_puts = 0;
  std::uint64_t nvshmem_fences = 0;
  std::uint64_t gather_reductions = 0;
  double nvshmem_bytes = 0.0;

  /// Interconnect totals. Like nvshmem_bytes, link_bytes scale value
  /// payloads (migrated left_sum pages, one-sided value traffic) by the
  /// fused-batch width while link_messages stay per-edge.
  double link_bytes = 0.0;
  std::uint64_t link_messages = 0;

  /// Kernel launches issued (1 per task per GPU in the task model).
  std::uint64_t kernel_launches = 0;

  /// Folds another solve's report into this one (batched execution):
  /// times and traffic counters add; names/num_gpus must already agree.
  void accumulate(const RunReport& other);

  /// max/mean of per-GPU busy time; 1.0 is perfectly balanced.
  double load_imbalance() const;
  /// Mean per-GPU busy warp-time divided by the makespan: the average
  /// number of concurrently active warps per GPU (can exceed 1; the
  /// paper's "utilization of GPUs" up to warp_slots_per_gpu).
  double utilization() const;

  std::string summary() const;
};

}  // namespace msptrsv::sim
