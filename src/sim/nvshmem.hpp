// NVSHMEM / PGAS behaviour model (Section IV).
//
// Each GPU is a processing element (PE) owning a symmetric heap. Data on
// the heap is remotely readable with GPU-initiated one-sided get (and
// writable with put), with hop-dependent latency and link-serialized
// bandwidth. The warp-parallel gather + __shfl_down_sync reduction of the
// paper's read-only communication model is provided as one operation so
// its O(log P) combining cost is modelled faithfully.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/interconnect.hpp"
#include "support/types.hpp"

namespace msptrsv::sim {

struct NvshmemStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t gather_reductions = 0;
  std::uint64_t fences = 0;
  double bytes = 0.0;
};

class NvshmemModel {
 public:
  NvshmemModel(Interconnect& net, const CostModel& cost, int num_pes);

  int num_pes() const { return num_pes_; }

  /// Collective symmetric allocation: every PE reserves `bytes`.
  /// Bookkeeping only (capacity is enforced by MemoryTracker); returns the
  /// per-PE heap offset of the new object.
  double symmetric_alloc(double bytes);
  double symmetric_heap_bytes() const { return heap_bytes_; }

  /// One-sided read of `bytes` from `remote_pe`'s heap into `local_pe`,
  /// issued at `now`. Books the links; returns completion time.
  sim_time_t get(int local_pe, int remote_pe, double bytes, sim_time_t now);

  /// One-sided write (used by the naive Get-Update-Put ablation).
  sim_time_t put(int local_pe, int remote_pe, double bytes, sim_time_t now);

  /// Ordering fence between one-sided ops (naive ablation only).
  sim_time_t fence(sim_time_t now);

  /// The read-only model's gather: one warp lane issues a get to each PE in
  /// `remote_pes` in parallel, then a warp-level reduction combines the
  /// lanes in ceil(log2(lanes)) shuffle steps. Returns completion time.
  sim_time_t gather_reduce(int local_pe, std::span<const int> remote_pes,
                           double bytes_each, sim_time_t now);

  /// Contention-free estimate of a single small get (poll visibility).
  sim_time_t poll_visibility_delay(int local_pe, int remote_pe) const;

  const NvshmemStats& stats() const { return stats_; }

 private:
  Interconnect& net_;
  const CostModel& cost_;
  int num_pes_;
  double heap_bytes_ = 0.0;
  NvshmemStats stats_;
};

}  // namespace msptrsv::sim
