// Per-device memory capacity accounting.
//
// The paper's motivation is out-of-memory execution: matrices whose working
// set exceeds one 16 GB V100 must be partitioned across GPUs. This tracker
// validates that a chosen distribution fits, and reports how many GPUs a
// workload needs -- the capacity side of the out-of-core experiments.
#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace msptrsv::sim {

class MemoryTracker {
 public:
  /// One tracker per GPU, each with `capacity_bytes` of device memory.
  MemoryTracker(int num_devices, double capacity_bytes);

  /// Registers an allocation; throws PreconditionError when the device
  /// would exceed capacity (the simulated cudaMalloc failure).
  void allocate(int device, double bytes, const std::string& label);

  /// Checks whether an allocation would fit without performing it.
  bool would_fit(int device, double bytes) const;

  void release(int device, double bytes);

  double used_bytes(int device) const;
  double capacity_bytes() const { return capacity_; }
  double headroom_bytes(int device) const;
  int num_devices() const { return static_cast<int>(used_.size()); }

  /// Human-readable per-device usage summary.
  std::string summary() const;

 private:
  double capacity_;
  std::vector<double> used_;
  std::vector<std::pair<std::string, double>> log_;
};

/// Convenience: smallest GPU count (1..max_gpus) for which `bytes_total`
/// split evenly plus `replicated_bytes` per GPU fits; returns max_gpus+1
/// when even the largest configuration cannot hold it.
int min_gpus_for_footprint(double bytes_total, double replicated_bytes,
                           double capacity_bytes, int max_gpus);

}  // namespace msptrsv::sim
