// Time-accounting layer over a Topology.
//
// Each link is a serially reusable resource: concurrent messages over the
// same link queue behind each other (bandwidth contention), while messages
// on disjoint links proceed in parallel. This is what makes the model
// sensitive to topology -- DGX-1 2-hop routes and shared links congest,
// DGX-2 ports do not until a GPU saturates its own port.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/topology.hpp"
#include "support/types.hpp"

namespace msptrsv::sim {

struct LinkStats {
  double bytes = 0.0;
  std::uint64_t messages = 0;
  sim_time_t busy_us = 0.0;
};

class Interconnect {
 public:
  Interconnect(const Topology& topo, const CostModel& cost);

  /// Books a message of `bytes` from src to dst entering the network at
  /// `now`; returns its delivery time. The transfer seizes every link on
  /// the route (store-and-forward at message granularity) and advances the
  /// links' next-free times, so later messages contend realistically.
  sim_time_t transfer(int src, int dst, double bytes, sim_time_t now);

  /// Contention-free estimate of the same message (no booking). Used for
  /// poll-loop visibility where charging every iteration would be
  /// unphysically pessimistic (polls coalesce in hardware).
  sim_time_t uncontended_latency(int src, int dst, double bytes) const;

  const Topology& topology() const { return topo_; }
  const LinkStats& link_stats(int link_id) const;
  const std::vector<LinkStats>& all_link_stats() const { return stats_; }

  double total_bytes() const;
  std::uint64_t total_messages() const;

  /// Resets occupancy and statistics (a fresh run on the same machine).
  void reset();

 private:
  const Topology& topo_;
  const CostModel& cost_;
  std::vector<sim_time_t> next_free_;
  std::vector<LinkStats> stats_;
};

}  // namespace msptrsv::sim
