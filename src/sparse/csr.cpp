#include "sparse/csr.hpp"

#include "support/contracts.hpp"

namespace msptrsv::sparse {

std::span<const index_t> CsrMatrix::row_cols(index_t i) const {
  MSPTRSV_REQUIRE(i >= 0 && i < rows, "row index out of range");
  return {col_idx.data() + row_ptr[i],
          static_cast<std::size_t>(row_ptr[i + 1] - row_ptr[i])};
}

std::span<const value_t> CsrMatrix::row_values(index_t i) const {
  MSPTRSV_REQUIRE(i >= 0 && i < rows, "row index out of range");
  return {val.data() + row_ptr[i],
          static_cast<std::size_t>(row_ptr[i + 1] - row_ptr[i])};
}

void CsrMatrix::validate() const {
  MSPTRSV_ENSURE(rows >= 0 && cols >= 0, "negative dimensions");
  MSPTRSV_ENSURE(row_ptr.size() == static_cast<std::size_t>(rows) + 1,
                 "row_ptr must have rows+1 entries");
  MSPTRSV_ENSURE(row_ptr.front() == 0, "row_ptr must start at 0");
  MSPTRSV_ENSURE(row_ptr.back() == nnz(), "row_ptr must end at nnz");
  MSPTRSV_ENSURE(col_idx.size() == val.size(), "col_idx/val size mismatch");
  for (index_t i = 0; i < rows; ++i) {
    MSPTRSV_ENSURE(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be monotone");
    for (offset_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      MSPTRSV_ENSURE(col_idx[k] >= 0 && col_idx[k] < cols,
                     "col index out of range");
      if (k > row_ptr[i]) {
        MSPTRSV_ENSURE(col_idx[k - 1] < col_idx[k],
                       "cols must be sorted and unique within a row");
      }
    }
  }
}

CsrMatrix csr_from_csc(const CscMatrix& m) {
  // A CSR view of m is the CSC of its transpose with dims swapped back.
  const CscMatrix t = transpose(m);
  CsrMatrix r;
  r.rows = m.rows;
  r.cols = m.cols;
  r.row_ptr = t.col_ptr;
  r.col_idx = t.row_idx;
  r.val = t.val;
  r.validate();
  return r;
}

CscMatrix csc_from_csr(const CsrMatrix& m) {
  CscMatrix as_csc;  // interpret CSR arrays as the CSC of the transpose
  as_csc.rows = m.cols;
  as_csc.cols = m.rows;
  as_csc.col_ptr = m.row_ptr;
  as_csc.row_idx = m.col_idx;
  as_csc.val = m.val;
  return transpose(as_csc);
}

CsrMatrix csr_from_coo(CooMatrix coo) { return csr_from_csc(csc_from_coo(std::move(coo))); }

}  // namespace msptrsv::sparse
