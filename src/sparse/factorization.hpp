// Incomplete factorizations used to manufacture triangular factors from
// general square matrices.
//
// The paper factorizes its test matrices with MA48 (HSL, proprietary); any
// nonsingular factorization with a realistic dependency structure exercises
// the same solver code paths, so we provide ILU(0) (general, no fill) and
// IC(0) (SPD) plus a convenience that produces a ready-to-solve L.
#pragma once

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace msptrsv::sparse {

struct IluResult {
  /// Unit lower-triangular factor (diagonal of ones stored explicitly).
  CscMatrix lower;
  /// Upper-triangular factor with the pivots on its diagonal.
  CscMatrix upper;
};

/// ILU(0): incomplete LU with zero fill-in on the pattern of `a`.
/// Requires a square matrix whose diagonal is fully present. Zero or
/// vanishing pivots are perturbed to `pivot_floor` (in magnitude) so the
/// factors stay nonsingular -- standard practice for preconditioners.
IluResult ilu0(const CsrMatrix& a, value_t pivot_floor = 1e-8);

/// IC(0): incomplete Cholesky on the lower-triangular pattern of an SPD
/// matrix; returns L with A ~= L * L^T on the pattern.
CscMatrix ic0(const CsrMatrix& a, value_t pivot_floor = 1e-8);

/// One-stop shop for examples/tests: takes any square CSC matrix, runs
/// ILU(0) on it (after ensuring a full diagonal) and returns the lower
/// factor in solver-ready form.
CscMatrix lower_factor_of(const CscMatrix& a);

}  // namespace msptrsv::sparse
