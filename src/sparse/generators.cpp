#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "sparse/triangular.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace msptrsv::sparse {

using support::Xoshiro256;

namespace {

/// Assigns well-conditioned values to a fixed structure: diagonal in
/// [1, 2], off-diagonals scaled so each row is diagonally dominant.
CscMatrix finalize_structure(CooMatrix coo, std::uint64_t value_seed) {
  CscMatrix m = csc_from_coo(std::move(coo));
  // Row counts for dominance scaling.
  std::vector<index_t> row_nnz(static_cast<std::size_t>(m.rows), 0);
  for (index_t r : m.row_idx) row_nnz[static_cast<std::size_t>(r)]++;
  Xoshiro256 rng(value_seed ^ 0xD1B54A32D192ED03ULL);
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      const index_t i = m.row_idx[k];
      if (i == j) {
        m.val[k] = rng.uniform_real(1.0, 2.0);
      } else {
        const double scale =
            1.0 / std::max<index_t>(1, row_nnz[static_cast<std::size_t>(i)]);
        m.val[k] = rng.uniform_real(-scale, scale);
        if (m.val[k] == 0.0) m.val[k] = 0.5 * scale;
      }
    }
  }
  require_solvable_lower(m);
  return m;
}

}  // namespace

CscMatrix gen_diagonal(index_t n) {
  MSPTRSV_REQUIRE(n > 0, "matrix size must be positive");
  CooMatrix coo;
  coo.rows = coo.cols = n;
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 0.0);
  return finalize_structure(std::move(coo), 11);
}

CscMatrix gen_chain(index_t n) {
  MSPTRSV_REQUIRE(n > 0, "matrix size must be positive");
  CooMatrix coo;
  coo.rows = coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 0.0);
    if (i > 0) coo.add(i, i - 1, 0.0);
  }
  return finalize_structure(std::move(coo), 13);
}

CscMatrix gen_banded(index_t n, index_t bandwidth, double fill,
                     std::uint64_t seed) {
  MSPTRSV_REQUIRE(n > 0, "matrix size must be positive");
  MSPTRSV_REQUIRE(bandwidth >= 0, "bandwidth must be non-negative");
  MSPTRSV_REQUIRE(fill >= 0.0 && fill <= 1.0, "fill must be in [0,1]");
  Xoshiro256 rng(seed);
  CooMatrix coo;
  coo.rows = coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 0.0);
    const index_t lo = std::max<index_t>(0, i - bandwidth);
    for (index_t j = lo; j < i; ++j) {
      if (rng.bernoulli(fill)) coo.add(i, j, 0.0);
    }
  }
  return finalize_structure(std::move(coo), seed);
}

CscMatrix gen_random_lower(index_t n, double avg_row_degree,
                           std::uint64_t seed) {
  MSPTRSV_REQUIRE(n > 0, "matrix size must be positive");
  MSPTRSV_REQUIRE(avg_row_degree >= 0.0, "degree must be non-negative");
  Xoshiro256 rng(seed);
  CooMatrix coo;
  coo.rows = coo.cols = n;
  std::unordered_set<index_t> picked;
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 0.0);
    if (i == 0) continue;
    // Poisson-like count via rounding a uniform around the mean keeps the
    // generator branch-light and deterministic.
    const double want = avg_row_degree * rng.uniform_real(0.5, 1.5);
    const index_t degree =
        std::min<index_t>(i, static_cast<index_t>(std::llround(want)));
    picked.clear();
    while (static_cast<index_t>(picked.size()) < degree) {
      picked.insert(static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(i))));
    }
    for (index_t j : picked) coo.add(i, j, 0.0);
  }
  return finalize_structure(std::move(coo), seed);
}

CscMatrix gen_layered_dag(index_t n, index_t num_levels, offset_t target_nnz,
                          double locality, std::uint64_t seed) {
  MSPTRSV_REQUIRE(n > 0, "matrix size must be positive");
  MSPTRSV_REQUIRE(num_levels >= 1 && num_levels <= n,
                  "need 1 <= num_levels <= n");
  MSPTRSV_REQUIRE(locality >= 0.0 && locality <= 1.0,
                  "locality must be in [0,1]");
  Xoshiro256 rng(seed);

  // Level boundaries: level l covers [bounds[l], bounds[l+1]); even split.
  std::vector<index_t> bounds(static_cast<std::size_t>(num_levels) + 1);
  for (index_t l = 0; l <= num_levels; ++l) {
    bounds[static_cast<std::size_t>(l)] = static_cast<index_t>(
        (static_cast<std::int64_t>(n) * l) / num_levels);
  }

  // Mandatory structure: diagonal plus one predecessor in the previous
  // level for every component outside level 0.
  const offset_t mandatory =
      static_cast<offset_t>(n) + (n - bounds[1]);
  const offset_t extra_budget = std::max<offset_t>(0, target_nnz - mandatory);
  // Extras are distributed over components of levels >= 1.
  const index_t eligible = n - bounds[1];
  const double extra_per_comp =
      eligible > 0 ? static_cast<double>(extra_budget) /
                         static_cast<double>(eligible)
                   : 0.0;

  CooMatrix coo;
  coo.rows = coo.cols = n;
  std::unordered_set<index_t> picked;

  auto pick_predecessor = [&](index_t lo, index_t hi, double rel) -> index_t {
    // Chooses from [lo, hi); with probability `locality`, clustered around
    // the position in the range that mirrors the consumer's relative
    // position `rel` in its own level (banded / mesh-like structure).
    MSPTRSV_REQUIRE(lo < hi, "empty predecessor range");
    const index_t span = hi - lo;
    if (locality > 0.0 && rng.bernoulli(locality)) {
      const index_t center =
          lo + static_cast<index_t>(rel * static_cast<double>(span - 1));
      const std::uint64_t jump = rng.geometric(
          std::min(0.9, 16.0 / static_cast<double>(std::max<index_t>(1, span))));
      const index_t offset = static_cast<index_t>(std::min<std::uint64_t>(
          jump, static_cast<std::uint64_t>(span - 1)));
      index_t cand = rng.bernoulli(0.5) ? center - offset : center + offset;
      if (cand < lo) cand = lo + (lo - cand) % span;
      if (cand >= hi) cand = hi - 1 - (cand - hi) % span;
      return cand;
    }
    return lo + static_cast<index_t>(
                    rng.next_below(static_cast<std::uint64_t>(span)));
  };

  std::vector<std::pair<index_t, index_t>> edges;  // (consumer, producer)
  for (index_t l = 0; l < num_levels; ++l) {
    const index_t lv_begin = bounds[static_cast<std::size_t>(l)];
    const index_t lv_end = bounds[static_cast<std::size_t>(l) + 1];
    for (index_t i = lv_begin; i < lv_end; ++i) {
      if (l == 0) continue;
      const double rel =
          lv_end - lv_begin > 1
              ? static_cast<double>(i - lv_begin) /
                    static_cast<double>(lv_end - lv_begin - 1)
              : 0.5;
      picked.clear();
      // Mandatory predecessor from level l-1 pins the level of i.
      const index_t prev_begin = bounds[static_cast<std::size_t>(l) - 1];
      picked.insert(pick_predecessor(prev_begin, lv_begin, rel));
      // Extra predecessors from strictly earlier LEVELS (an extra inside
      // level l would push i past its target level). Local draws come from
      // a window of recent levels (short dependency spans, banded/mesh
      // structure); non-local draws from anywhere earlier.
      const index_t avg_width = std::max<index_t>(1, n / num_levels);
      const index_t recent_lo =
          std::max<index_t>(0, lv_begin - 4 * avg_width);
      const double want = extra_per_comp * rng.uniform_real(0.5, 1.5);
      index_t extras = static_cast<index_t>(std::llround(want));
      extras = std::min<index_t>(extras, lv_begin - 1);
      int attempts = 0;
      while (static_cast<index_t>(picked.size()) < extras + 1 &&
             attempts < 4 * (extras + 1)) {
        if (rng.bernoulli(locality) && recent_lo < lv_begin) {
          picked.insert(pick_predecessor(recent_lo, lv_begin, rel));
        } else {
          picked.insert(pick_predecessor(0, lv_begin, rel));
        }
        ++attempts;
      }
      for (index_t j : picked) edges.emplace_back(i, j);
    }
  }

  // Relabel through a jittered topological order. Real factor matrices do
  // not store level sets contiguously -- components of different levels
  // interleave in the id space (a property both the block distribution and
  // the task model rely on). A Kahn sweep keyed by (original id + bounded
  // jitter) interleaves nearby levels while keeping the locality structure
  // at scales above a few level widths. Any linear extension of the DAG
  // preserves lower-triangularity and the exact level structure.
  std::vector<index_t> new_id(static_cast<std::size_t>(n));
  {
    std::vector<index_t> indeg(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<index_t>> out(static_cast<std::size_t>(n));
    for (const auto& [consumer, producer] : edges) {
      indeg[static_cast<std::size_t>(consumer)]++;
      out[static_cast<std::size_t>(producer)].push_back(consumer);
    }
    const double jitter_span =
        3.0 * static_cast<double>(n) / static_cast<double>(num_levels);
    std::vector<double> priority(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      priority[static_cast<std::size_t>(i)] =
          static_cast<double>(i) + rng.uniform_real(0.0, jitter_span);
    }
    using Entry = std::pair<double, index_t>;  // (priority, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    for (index_t i = 0; i < n; ++i) {
      if (indeg[static_cast<std::size_t>(i)] == 0) {
        heap.emplace(priority[static_cast<std::size_t>(i)], i);
      }
    }
    index_t next = 0;
    while (!heap.empty()) {
      const index_t u = heap.top().second;
      heap.pop();
      new_id[static_cast<std::size_t>(u)] = next++;
      for (index_t v : out[static_cast<std::size_t>(u)]) {
        if (--indeg[static_cast<std::size_t>(v)] == 0) {
          heap.emplace(priority[static_cast<std::size_t>(v)], v);
        }
      }
    }
    MSPTRSV_ENSURE(next == n, "layered DAG relabeling found a cycle");
  }

  for (index_t i = 0; i < n; ++i) {
    coo.add(new_id[static_cast<std::size_t>(i)],
            new_id[static_cast<std::size_t>(i)], 0.0);
  }
  for (const auto& [consumer, producer] : edges) {
    coo.add(new_id[static_cast<std::size_t>(consumer)],
            new_id[static_cast<std::size_t>(producer)], 0.0);
  }
  return finalize_structure(std::move(coo), seed);
}

CscMatrix gen_chain_heavy(index_t num_segments, index_t chain_len,
                          index_t fan_width, index_t extra_edges,
                          std::uint64_t seed) {
  MSPTRSV_REQUIRE(num_segments > 0 && chain_len > 0 && fan_width > 0,
                  "segment shape must be positive");
  MSPTRSV_REQUIRE(extra_edges >= 0, "extra_edges must be non-negative");
  Xoshiro256 rng(seed);
  const index_t seg = chain_len + fan_width;
  const index_t n = num_segments * seg;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  for (index_t s = 0; s < num_segments; ++s) {
    const index_t base = s * seg;
    // The chain: each row depends on its predecessor; the first chain row
    // of segment s > 0 roots in the previous segment's first fan row, so
    // the critical path threads every segment.
    for (index_t c = 0; c < chain_len; ++c) {
      const index_t i = base + c;
      coo.add(i, i, 0.0);
      if (c > 0) {
        coo.add(i, i - 1, 0.0);
      } else if (s > 0) {
        coo.add(i, base - fan_width, 0.0);
      }
    }
    // The fan: fan_width mutually independent rows hanging off the chain
    // tail (one wide level), plus random extra dependencies on the chain
    // for gather weight.
    const index_t tail = base + chain_len - 1;
    for (index_t f = 0; f < fan_width; ++f) {
      const index_t i = base + chain_len + f;
      coo.add(i, i, 0.0);
      coo.add(i, tail, 0.0);
    }
    for (index_t e = 0; e < extra_edges; ++e) {
      const index_t i =
          base + chain_len +
          static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(fan_width)));
      const index_t j = base + static_cast<index_t>(rng.next_below(
                                   static_cast<std::uint64_t>(chain_len)));
      coo.add(i, j, 0.0);
    }
  }
  return finalize_structure(std::move(coo), seed);
}

CscMatrix gen_grid2d_lower(index_t nx, index_t ny) {
  MSPTRSV_REQUIRE(nx > 0 && ny > 0, "grid dimensions must be positive");
  CooMatrix coo;
  const index_t n = nx * ny;
  coo.rows = coo.cols = n;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      coo.add(i, i, 0.0);
      if (x > 0) coo.add(i, i - 1, 0.0);    // west
      if (y > 0) coo.add(i, i - nx, 0.0);   // south
    }
  }
  return finalize_structure(std::move(coo), 2020);
}

CscMatrix gen_grid3d_lower(index_t nx, index_t ny, index_t nz) {
  MSPTRSV_REQUIRE(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  CooMatrix coo;
  const index_t n = nx * ny * nz;
  coo.rows = coo.cols = n;
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t i = (z * ny + y) * nx + x;
        coo.add(i, i, 0.0);
        if (x > 0) coo.add(i, i - 1, 0.0);
        if (y > 0) coo.add(i, i - nx, 0.0);
        if (z > 0) coo.add(i, i - nx * ny, 0.0);
      }
    }
  }
  return finalize_structure(std::move(coo), 3030);
}

CscMatrix gen_rmat_lower(index_t n_log2, offset_t target_edges,
                         std::uint64_t seed) {
  MSPTRSV_REQUIRE(n_log2 >= 1 && n_log2 < 31, "n_log2 must be in [1, 30]");
  MSPTRSV_REQUIRE(target_edges >= 0, "edge count must be non-negative");
  const index_t n = static_cast<index_t>(1) << n_log2;
  Xoshiro256 rng(seed);
  // Classic R-MAT quadrant probabilities (Graph500 defaults).
  const double a = 0.57, b = 0.19, c = 0.19;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  std::unordered_set<std::uint64_t> seen;
  offset_t accepted = 0;
  offset_t attempts = 0;
  const offset_t max_attempts = target_edges * 8 + 64;
  while (accepted < target_edges && attempts < max_attempts) {
    ++attempts;
    index_t u = 0, v = 0;
    for (index_t bit = 0; bit < n_log2; ++bit) {
      const double r = rng.uniform01();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    const index_t row = std::max(u, v);
    const index_t col = std::min(u, v);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(row) << 32) | static_cast<std::uint32_t>(col);
    if (!seen.insert(key).second) continue;
    coo.add(row, col, 0.0);
    ++accepted;
  }
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 0.0);
  return finalize_structure(std::move(coo), seed);
}

std::vector<value_t> gen_solution(index_t n, std::uint64_t seed) {
  MSPTRSV_REQUIRE(n >= 0, "size must be non-negative");
  Xoshiro256 rng(seed ^ 0xA5A5A5A5DEADBEEFULL);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    v = rng.uniform_real(-1.0, 1.0);
    if (std::abs(v) < 1e-3) v = 0.5;  // keep entries comfortably nonzero
  }
  return x;
}

std::vector<value_t> gen_rhs_for_solution(const CscMatrix& lower,
                                          const std::vector<value_t>& x_ref) {
  return multiply(lower, x_ref);
}

}  // namespace msptrsv::sparse
