#include "sparse/factorization.hpp"

#include <cmath>
#include <vector>

#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {

namespace {

/// Returns the position of the diagonal entry in each row; requires it to
/// be structurally present.
std::vector<offset_t> diagonal_positions(const CsrMatrix& a) {
  std::vector<offset_t> diag(static_cast<std::size_t>(a.rows), -1);
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i) {
        diag[static_cast<std::size_t>(i)] = k;
        break;
      }
    }
    MSPTRSV_REQUIRE(diag[static_cast<std::size_t>(i)] >= 0,
                    "ILU(0)/IC(0) requires a structurally full diagonal (row " +
                        std::to_string(i) + ")");
  }
  return diag;
}

}  // namespace

IluResult ilu0(const CsrMatrix& a, value_t pivot_floor) {
  MSPTRSV_REQUIRE(a.is_square(), "ILU(0) requires a square matrix");
  a.validate();
  MSPTRSV_REQUIRE(pivot_floor > 0.0, "pivot_floor must be positive");

  CsrMatrix f = a;  // factor in place on the pattern of a (IKJ variant)
  const std::vector<offset_t> diag = diagonal_positions(f);

  // Scatter buffer: position of column j in the current row, or -1.
  std::vector<offset_t> pos(static_cast<std::size_t>(f.cols), -1);
  for (index_t i = 0; i < f.rows; ++i) {
    for (offset_t k = f.row_ptr[i]; k < f.row_ptr[i + 1]; ++k) {
      pos[static_cast<std::size_t>(f.col_idx[k])] = k;
    }
    // Eliminate with every previous row k that appears in row i.
    for (offset_t kk = f.row_ptr[i]; kk < f.row_ptr[i + 1]; ++kk) {
      const index_t k = f.col_idx[kk];
      if (k >= i) break;
      value_t pivot = f.val[diag[static_cast<std::size_t>(k)]];
      if (std::abs(pivot) < pivot_floor) {
        pivot = pivot < 0 ? -pivot_floor : pivot_floor;
      }
      const value_t lik = f.val[kk] / pivot;
      f.val[kk] = lik;
      // Subtract lik * row_k restricted to the pattern of row i.
      for (offset_t kj = diag[static_cast<std::size_t>(k)] + 1;
           kj < f.row_ptr[k + 1]; ++kj) {
        const offset_t p = pos[static_cast<std::size_t>(f.col_idx[kj])];
        if (p >= 0) f.val[p] -= lik * f.val[kj];
      }
    }
    for (offset_t k = f.row_ptr[i]; k < f.row_ptr[i + 1]; ++k) {
      pos[static_cast<std::size_t>(f.col_idx[k])] = -1;
    }
    // Guard the pivot of row i for subsequent eliminations.
    value_t& piv = f.val[diag[static_cast<std::size_t>(i)]];
    if (std::abs(piv) < pivot_floor) piv = piv < 0 ? -pivot_floor : pivot_floor;
  }

  // Split into unit-lower L and upper U.
  CooMatrix lo, up;
  lo.rows = lo.cols = f.rows;
  up.rows = up.cols = f.rows;
  for (index_t i = 0; i < f.rows; ++i) {
    lo.add(i, i, 1.0);
    for (offset_t k = f.row_ptr[i]; k < f.row_ptr[i + 1]; ++k) {
      const index_t j = f.col_idx[k];
      if (j < i) lo.add(i, j, f.val[k]);
      else up.add(i, j, f.val[k]);
    }
  }
  IluResult out{csc_from_coo(std::move(lo)), csc_from_coo(std::move(up))};
  require_solvable_lower(out.lower);
  return out;
}

CscMatrix ic0(const CsrMatrix& a, value_t pivot_floor) {
  MSPTRSV_REQUIRE(a.is_square(), "IC(0) requires a square matrix");
  a.validate();
  MSPTRSV_REQUIRE(pivot_floor > 0.0, "pivot_floor must be positive");

  // Work on the lower-triangular pattern row by row:
  //   L(i,j) = (A(i,j) - sum_k L(i,k) L(j,k)) / L(j,j),  k < j on pattern
  //   L(i,i) = sqrt(A(i,i) - sum_k L(i,k)^2)
  const index_t n = a.rows;
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(n));
  std::vector<std::vector<value_t>> vals(static_cast<std::size_t>(n));

  // Dense scatter of row j of L for the dot products.
  std::vector<value_t> dense(static_cast<std::size_t>(n), 0.0);

  for (index_t i = 0; i < n; ++i) {
    auto& ci = cols[static_cast<std::size_t>(i)];
    auto& vi = vals[static_cast<std::size_t>(i)];
    value_t aii = 0.0;
    // Gather the lower-triangular pattern of row i of A.
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t j = a.col_idx[k];
      if (j < i) {
        ci.push_back(j);
        vi.push_back(a.val[k]);
      } else if (j == i) {
        aii = a.val[k];
      }
    }
    // Scatter row i (accumulating) and run the eliminations in column order
    // (a.col_idx is sorted, so ci is sorted).
    for (std::size_t t = 0; t < ci.size(); ++t) {
      const index_t j = ci[t];
      // dot(L_i, L_j) over the pattern of row j (columns < j).
      const auto& cj = cols[static_cast<std::size_t>(j)];
      const auto& vj = vals[static_cast<std::size_t>(j)];
      value_t sum = vi[t];
      // dense[] currently holds row i entries for columns < j.
      for (std::size_t s = 0; s + 1 < cj.size() + 1 && s < cj.size(); ++s) {
        if (cj[s] < j) sum -= dense[static_cast<std::size_t>(cj[s])] * vj[s];
      }
      const value_t ljj = vj.empty() ? pivot_floor : vj.back();  // diag is last
      value_t lij = sum / (std::abs(ljj) < pivot_floor ? pivot_floor : ljj);
      vi[t] = lij;
      dense[static_cast<std::size_t>(j)] = lij;
    }
    // Diagonal.
    value_t d = aii;
    for (value_t v : vi) d -= v * v;
    d = d > pivot_floor ? std::sqrt(d) : std::sqrt(pivot_floor);
    ci.push_back(i);
    vi.push_back(d);
    // Clear scatter.
    for (std::size_t t = 0; t + 1 < ci.size(); ++t) {
      dense[static_cast<std::size_t>(ci[t])] = 0.0;
    }
  }

  CooMatrix coo;
  coo.rows = coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < cols[static_cast<std::size_t>(i)].size(); ++t) {
      coo.add(i, cols[static_cast<std::size_t>(i)][t],
              vals[static_cast<std::size_t>(i)][t]);
    }
  }
  CscMatrix out = csc_from_coo(std::move(coo));
  require_solvable_lower(out);
  return out;
}

CscMatrix lower_factor_of(const CscMatrix& a) {
  MSPTRSV_REQUIRE(a.is_square(), "lower_factor_of requires a square matrix");
  // Ensure a structurally full diagonal before factorizing.
  CooMatrix coo = coo_from_csc(a);
  std::vector<bool> has_diag(static_cast<std::size_t>(a.cols), false);
  for (const Triplet& t : coo.entries) {
    if (t.row == t.col) has_diag[static_cast<std::size_t>(t.col)] = true;
  }
  for (index_t j = 0; j < a.cols; ++j) {
    if (!has_diag[static_cast<std::size_t>(j)]) coo.add(j, j, 1.0);
  }
  const CsrMatrix csr = csr_from_csc(csc_from_coo(std::move(coo)));
  IluResult f = ilu0(csr);
  return std::move(f.lower);
}

}  // namespace msptrsv::sparse
