// Matrix Market (.mtx) I/O.
//
// Supports the coordinate format with real / integer / pattern fields and
// general / symmetric / skew-symmetric symmetry, which covers every matrix
// in the paper's SuiteSparse test set. Writing always emits
// "coordinate real general" with full 17-digit round-trip precision.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csc.hpp"

namespace msptrsv::sparse {

/// Parses a Matrix Market stream into COO. Throws PreconditionError on
/// malformed input with a line-numbered message.
CooMatrix read_matrix_market(std::istream& in);

/// Convenience: read a file from disk (throws if it cannot be opened).
CooMatrix read_matrix_market_file(const std::string& path);

/// Serializes to "coordinate real general" with 1-based indices.
void write_matrix_market(std::ostream& out, const CscMatrix& m);

void write_matrix_market_file(const std::string& path, const CscMatrix& m);

}  // namespace msptrsv::sparse
