// Dependency analysis of a lower-triangular factor.
//
// Computes the level sets of Section II-B (components within a level are
// mutually independent), the per-component in-degrees used by the
// synchronization-free solvers, and the two matrix metrics the paper's
// scalability study is built on (Section VI-D):
//   dependency  = nnz / n          (average dependencies per component)
//   parallelism = n / #levels      (average components solvable in parallel)
#pragma once

#include <vector>

#include "sparse/csc.hpp"

namespace msptrsv::sparse {

struct LevelAnalysis {
  index_t n = 0;
  offset_t nnz = 0;

  /// level[i]: the earliest parallel step in which component i can solve.
  std::vector<index_t> level_of;
  /// Number of level sets (length of the critical path in components).
  index_t num_levels = 0;
  /// Components grouped by level: level l occupies
  /// [level_ptr[l], level_ptr[l+1]) in `order`, sorted ascending by id.
  std::vector<offset_t> level_ptr;
  std::vector<index_t> order;

  /// in_degree[i]: number of strict-lower nonzeros in row i, i.e. how many
  /// predecessor updates component i must observe before it can solve.
  std::vector<index_t> in_degree;

  /// Largest / average level population.
  index_t max_level_width = 0;

  double dependency_metric() const {
    return n == 0 ? 0.0 : static_cast<double>(nnz) / static_cast<double>(n);
  }
  double parallelism_metric() const {
    return num_levels == 0
               ? 0.0
               : static_cast<double>(n) / static_cast<double>(num_levels);
  }
};

/// Runs the analysis. Requires a solvable lower-triangular CSC input
/// (see require_solvable_lower); pass `validate = false` when the caller
/// has already established that (e.g. SolverPlan's analysis phase) to skip
/// the redundant O(nnz) validation pass. Cost: O(n + nnz).
LevelAnalysis analyze_levels(const CscMatrix& lower, bool validate = true);

/// Just the in-degree vector (the cheap preprocessing pass of the
/// sync-free algorithm, Section II-C), without level construction.
std::vector<index_t> compute_in_degrees(const CscMatrix& lower,
                                        bool validate = true);

}  // namespace msptrsv::sparse
