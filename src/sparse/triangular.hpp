// Triangular-matrix utilities: predicates, extraction and the invariants the
// solvers rely on (every column's first entry is the diagonal).
#pragma once

#include <string>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace msptrsv::sparse {

/// True when every nonzero satisfies row >= col.
bool is_lower_triangular(const CscMatrix& m);

/// True when every nonzero satisfies row <= col.
bool is_upper_triangular(const CscMatrix& m);

/// True when every diagonal entry is present and nonzero (required for a
/// nonsingular triangular solve).
bool has_nonsingular_diagonal(const CscMatrix& m);

/// Validates the exact shape the solvers consume: square, lower triangular,
/// sorted rows per column, and a nonzero diagonal leading every column
/// (so val[col_ptr[j]] == L(j,j), as in the paper's Algorithm 1 line 20).
/// Throws PreconditionError with a specific message otherwise.
void require_solvable_lower(const CscMatrix& m);

/// Non-throwing counterpart of require_solvable_lower, used by the
/// status-returning plan API to report user input errors as values.
struct SolvableDiagnosis {
  bool solvable = true;
  /// True when the only violation is a missing/zero diagonal (a singular
  /// factor) on an otherwise well-formed lower-triangular matrix.
  bool singular = false;
  /// Human-readable description of the first violation; empty if solvable.
  std::string detail;
};
SolvableDiagnosis diagnose_solvable_lower(const CscMatrix& m);

/// Extracts the lower triangle of a square matrix. When `unit_diagonal` is
/// true the diagonal is replaced by ones; otherwise missing or zero diagonal
/// entries are replaced by `diagonal_fill` to keep the factor nonsingular
/// (0 keeps them absent and require_solvable_lower will then reject).
CscMatrix lower_triangle_of(const CscMatrix& m, bool unit_diagonal = false,
                            value_t diagonal_fill = 0.0);

/// Extracts the strict upper triangle plus diagonal (for backward
/// substitution and for L/U splits of ILU factors).
CscMatrix upper_triangle_of(const CscMatrix& m, bool unit_diagonal = false,
                            value_t diagonal_fill = 0.0);

/// Mirrors a lower-triangular matrix into an upper-triangular one with the
/// same sparsity shape (structural reversal i,j -> n-1-j, n-1-i). Used to
/// exercise backward substitution on workloads generated as lower factors.
CscMatrix mirror_to_upper(const CscMatrix& lower);

}  // namespace msptrsv::sparse
