#include "sparse/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/contracts.hpp"

namespace msptrsv::sparse {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

struct Header {
  enum class Field { kReal, kInteger, kPattern };
  enum class Symmetry { kGeneral, kSymmetric, kSkewSymmetric };
  Field field = Field::kReal;
  Symmetry symmetry = Symmetry::kGeneral;
};

Header parse_header(const std::string& line) {
  std::istringstream is(line);
  std::string banner, object, format, field, symmetry;
  is >> banner >> object >> format >> field >> symmetry;
  MSPTRSV_REQUIRE(banner == "%%MatrixMarket",
                  "not a Matrix Market file (missing %%MatrixMarket banner)");
  MSPTRSV_REQUIRE(to_lower(object) == "matrix",
                  "unsupported Matrix Market object: " + object);
  MSPTRSV_REQUIRE(to_lower(format) == "coordinate",
                  "only the coordinate (sparse) format is supported");
  Header h;
  const std::string f = to_lower(field);
  if (f == "real") h.field = Header::Field::kReal;
  else if (f == "integer") h.field = Header::Field::kInteger;
  else if (f == "pattern") h.field = Header::Field::kPattern;
  else MSPTRSV_REQUIRE(false, "unsupported Matrix Market field: " + field);
  const std::string s = to_lower(symmetry);
  if (s == "general") h.symmetry = Header::Symmetry::kGeneral;
  else if (s == "symmetric") h.symmetry = Header::Symmetry::kSymmetric;
  else if (s == "skew-symmetric") h.symmetry = Header::Symmetry::kSkewSymmetric;
  else MSPTRSV_REQUIRE(false, "unsupported Matrix Market symmetry: " + symmetry);
  return h;
}

}  // namespace

CooMatrix read_matrix_market(std::istream& in) {
  std::string line;
  long line_no = 0;
  MSPTRSV_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty input");
  ++line_no;
  const Header header = parse_header(line);

  // Skip comments and blank lines until the size line.
  for (;;) {
    MSPTRSV_REQUIRE(static_cast<bool>(std::getline(in, line)),
                    "missing size line");
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    break;
  }

  std::istringstream size_line(line);
  long long rows = 0, cols = 0, declared_nnz = 0;
  size_line >> rows >> cols >> declared_nnz;
  MSPTRSV_REQUIRE(!size_line.fail(),
                  "malformed size line at line " + std::to_string(line_no));
  MSPTRSV_REQUIRE(rows > 0 && cols > 0 && declared_nnz >= 0,
                  "non-positive dimensions at line " + std::to_string(line_no));

  CooMatrix coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  coo.entries.reserve(static_cast<std::size_t>(declared_nnz));

  long long seen = 0;
  while (seen < declared_nnz) {
    MSPTRSV_REQUIRE(static_cast<bool>(std::getline(in, line)),
                    "unexpected end of file: expected " +
                        std::to_string(declared_nnz) + " entries, got " +
                        std::to_string(seen));
    ++line_no;
    if (line.empty() || line[0] == '%' ||
        line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    std::istringstream es(line);
    long long r = 0, c = 0;
    double v = 1.0;
    es >> r >> c;
    if (header.field != Header::Field::kPattern) es >> v;
    MSPTRSV_REQUIRE(!es.fail(),
                    "malformed entry at line " + std::to_string(line_no));
    MSPTRSV_REQUIRE(r >= 1 && r <= rows && c >= 1 && c <= cols,
                    "index out of range at line " + std::to_string(line_no));
    const index_t ri = static_cast<index_t>(r - 1);
    const index_t ci = static_cast<index_t>(c - 1);
    coo.add(ri, ci, v);
    if (header.symmetry != Header::Symmetry::kGeneral && ri != ci) {
      const double mirrored =
          header.symmetry == Header::Symmetry::kSkewSymmetric ? -v : v;
      coo.add(ci, ri, mirrored);
    }
    ++seen;
  }
  return coo;
}

CooMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  MSPTRSV_REQUIRE(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CscMatrix& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by msptrsv\n";
  out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
  char buf[64];
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      std::snprintf(buf, sizeof(buf), "%d %d %.17g\n", m.row_idx[k] + 1, j + 1,
                    m.val[k]);
      out << buf;
    }
  }
}

void write_matrix_market_file(const std::string& path, const CscMatrix& m) {
  std::ofstream out(path);
  MSPTRSV_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, m);
  MSPTRSV_ENSURE(out.good(), "write failed for " + path);
}

}  // namespace msptrsv::sparse
