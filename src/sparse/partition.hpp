// Component-to-GPU distribution (Sections III and V).
//
// The baseline distribution partitions components/columns/rhs into one
// contiguous block per GPU in ascending order -- which makes inter-GPU
// dependencies unidirectional and starves large-id GPUs. The task model
// divides components into equally sized component-tasks and deals tasks to
// GPUs round-robin; each task later becomes one kernel launch.
#pragma once

#include <vector>

#include "sparse/csc.hpp"

namespace msptrsv::sparse {

struct TaskRange {
  index_t begin = 0;  ///< first component id in the task
  index_t end = 0;    ///< one past the last component id
  int gpu = 0;        ///< owning GPU / PE
  int seq_on_gpu = 0; ///< launch order of this task on its GPU

  index_t size() const { return end - begin; }
};

class Partition {
 public:
  /// Baseline distribution: one contiguous block per GPU (equivalent to
  /// round_robin_tasks with tasks_per_gpu == 1).
  static Partition block(index_t n, int num_gpus);

  /// Section V task model: num_gpus*tasks_per_gpu equal component-tasks,
  /// task t owned by GPU (t mod num_gpus).
  static Partition round_robin_tasks(index_t n, int num_gpus,
                                     int tasks_per_gpu);

  index_t n() const { return n_; }
  int num_gpus() const { return num_gpus_; }
  int tasks_per_gpu() const { return tasks_per_gpu_; }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }

  const std::vector<TaskRange>& tasks() const { return tasks_; }
  const TaskRange& task(int t) const;

  int owner_of(index_t comp) const;
  int task_of(index_t comp) const;
  /// Component count assigned to a GPU.
  index_t components_on(int gpu) const;

  /// Number of matrix nonzeros whose update crosses a GPU boundary
  /// (column owner != row owner) -- the communication volume driver.
  offset_t count_remote_updates(const CscMatrix& lower) const;

  /// Max/mean component count across GPUs (1.0 = perfectly even).
  double component_imbalance() const;

 private:
  Partition() = default;
  void finalize();

  index_t n_ = 0;
  int num_gpus_ = 1;
  int tasks_per_gpu_ = 1;
  std::vector<TaskRange> tasks_;
  std::vector<int> task_of_;       // per component
  std::vector<index_t> per_gpu_;   // component counts
};

/// Per-GPU memory footprint estimate in bytes for a given backend, used by
/// the capacity model (out-of-core experiments). `replicated_state_bytes`
/// covers the n-sized symmetric-heap arrays every PE allocates in the
/// NVSHMEM design (the paper reports ~10% overhead from these).
struct FootprintEstimate {
  std::vector<double> bytes_per_gpu;
  double replicated_state_bytes = 0.0;
  double total_bytes = 0.0;
};

enum class StateLayout {
  kUnifiedManaged,   ///< shared n-sized arrays live in managed memory
  kSymmetricHeap,    ///< every PE holds n-sized s.in_degree / s.left_sum
};

/// Estimates bytes per GPU when distributing `lower` (CSC slices + rhs +
/// solution + intermediate arrays) under `p`. `rows_scale`/`nnz_scale`
/// inflate the estimate to paper-scale sizes for scaled-down analogs.
FootprintEstimate estimate_footprint(const CscMatrix& lower,
                                     const Partition& p, StateLayout layout,
                                     double rows_scale = 1.0,
                                     double nnz_scale = 1.0);

}  // namespace msptrsv::sparse
