#include "sparse/level_analysis.hpp"

#include <algorithm>

#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {

std::vector<index_t> compute_in_degrees(const CscMatrix& lower,
                                        bool validate) {
  if (validate) require_solvable_lower(lower);
  std::vector<index_t> indeg(static_cast<std::size_t>(lower.rows), 0);
  for (index_t j = 0; j < lower.cols; ++j) {
    // Skip the diagonal entry (first in the column by invariant).
    for (offset_t k = lower.col_ptr[j] + 1; k < lower.col_ptr[j + 1]; ++k) {
      indeg[static_cast<std::size_t>(lower.row_idx[k])]++;
    }
  }
  return indeg;
}

LevelAnalysis analyze_levels(const CscMatrix& lower, bool validate) {
  if (validate) require_solvable_lower(lower);
  LevelAnalysis a;
  a.n = lower.rows;
  a.nnz = lower.nnz();
  // Validation (if requested) already ran above; don't pay it twice.
  a.in_degree = compute_in_degrees(lower, /*validate=*/false);
  a.level_of.assign(static_cast<std::size_t>(a.n), 0);

  // Columns are processed in ascending order; every dependency j of
  // component i satisfies j < i, so one forward sweep computes the longest
  // path to each node.
  for (index_t j = 0; j < lower.cols; ++j) {
    const index_t lj = a.level_of[static_cast<std::size_t>(j)];
    for (offset_t k = lower.col_ptr[j] + 1; k < lower.col_ptr[j + 1]; ++k) {
      index_t& li = a.level_of[static_cast<std::size_t>(lower.row_idx[k])];
      li = std::max(li, static_cast<index_t>(lj + 1));
    }
  }

  a.num_levels = 0;
  for (index_t l : a.level_of) a.num_levels = std::max(a.num_levels, l);
  if (a.n > 0) a.num_levels += 1;

  // Counting sort into level buckets keeps ids ascending within a level.
  a.level_ptr.assign(static_cast<std::size_t>(a.num_levels) + 1, 0);
  for (index_t l : a.level_of) a.level_ptr[static_cast<std::size_t>(l) + 1]++;
  for (index_t l = 0; l < a.num_levels; ++l) {
    a.level_ptr[static_cast<std::size_t>(l) + 1] +=
        a.level_ptr[static_cast<std::size_t>(l)];
  }
  a.order.resize(static_cast<std::size_t>(a.n));
  std::vector<offset_t> cursor(a.level_ptr.begin(), a.level_ptr.end() - 1);
  for (index_t i = 0; i < a.n; ++i) {
    a.order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(a.level_of[static_cast<std::size_t>(i)])]++)] = i;
  }

  for (index_t l = 0; l < a.num_levels; ++l) {
    const offset_t width = a.level_ptr[static_cast<std::size_t>(l) + 1] -
                           a.level_ptr[static_cast<std::size_t>(l)];
    a.max_level_width =
        std::max(a.max_level_width, static_cast<index_t>(width));
    MSPTRSV_ENSURE(width > 0, "empty level set produced by analysis");
  }
  return a;
}

}  // namespace msptrsv::sparse
