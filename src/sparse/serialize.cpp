#include "sparse/serialize.hpp"

#include <cstring>
#include <string>

namespace msptrsv::sparse {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a folded 8 input bytes per step: the hash runs on every
/// PlanCache lookup over the whole matrix, so the classic byte-at-a-time
/// loop would cost milliseconds on service-sized factors. Word-wise
/// folding keeps the determinism-across-processes property (the only one
/// the content address needs) at ~8x the throughput.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (bytes >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h ^= chunk;
    h *= kFnvPrime;
    p += 8;
    bytes -= 8;
  }
  while (bytes-- > 0) {
    h ^= *p++;
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_span(std::uint64_t h, const std::vector<T>& v) {
  return fnv1a(h, v.data(), v.size() * sizeof(T));
}

/// Structural safety of a freshly read matrix: shape consistency plus the
/// bounds every consumer indexes through (monotone pointer array covering
/// exactly the stored nonzeros, indices within the minor dimension). Fails
/// the reader (rather than throwing) so corrupt records surface as blob
/// errors -- the CRC catches accidental damage, these checks make even a
/// resealed hostile blob memory-safe to solve with. Within-segment
/// sortedness is deliberately NOT re-checked (it cannot cause
/// out-of-bounds access, only wrong answers, and costs a full extra
/// branchy pass).
bool matrix_ok(support::BlobReader& r, const char* what, index_t major,
               index_t minor, const std::vector<offset_t>& ptr,
               const std::vector<index_t>& idx, std::size_t val_len) {
  // An all-default (0x0) matrix legitimately has an EMPTY pointer array
  // (never materialized), so accept both spellings of emptiness.
  const bool ptr_len_ok = ptr.size() == static_cast<std::size_t>(major) + 1 ||
                          (major == 0 && ptr.empty());
  bool ok = major >= 0 && minor >= 0 && ptr_len_ok && idx.size() == val_len &&
            (ptr.empty() ||
             (ptr.front() == 0 &&
              ptr.back() == static_cast<offset_t>(idx.size())));
  // Branchless accumulation so the two sweeps vectorize -- this runs on
  // the plan-load hot path (the unsigned cast folds the negative check
  // into the upper bound).
  if (ok) {
    bool bad = false;
    for (std::size_t j = 1; j < ptr.size(); ++j) {
      bad |= ptr[j - 1] > ptr[j];
    }
    const auto bound = static_cast<std::uint32_t>(minor);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      bad |= static_cast<std::uint32_t>(idx[k]) >= bound;
    }
    ok = !bad;
  }
  if (!ok) {
    r.fail(std::string(what) + " record has inconsistent structure");
    return false;
  }
  return true;
}

}  // namespace

StructuralHash hash_csc(const CscMatrix& m) {
  std::uint64_t h = kFnvOffset;
  const std::int64_t dims[2] = {m.rows, m.cols};
  h = fnv1a(h, dims, sizeof(dims));
  h = fnv1a_span(h, m.col_ptr);
  h = fnv1a_span(h, m.row_idx);
  StructuralHash out;
  out.pattern = h;
  out.values = fnv1a_span(h, m.val);
  return out;
}

void write_csc(support::BlobWriter& w, const CscMatrix& m) {
  w.write_i32(m.rows);
  w.write_i32(m.cols);
  w.write_span(std::span<const offset_t>(m.col_ptr));
  w.write_span(std::span<const index_t>(m.row_idx));
  w.write_span(std::span<const value_t>(m.val));
}

void write_csr(support::BlobWriter& w, const CsrMatrix& m) {
  w.write_i32(m.rows);
  w.write_i32(m.cols);
  w.write_span(std::span<const offset_t>(m.row_ptr));
  w.write_span(std::span<const index_t>(m.col_idx));
  w.write_span(std::span<const value_t>(m.val));
}

CscMatrix read_csc(support::BlobReader& r) {
  CscMatrix m;
  m.rows = r.read_i32();
  m.cols = r.read_i32();
  m.col_ptr = r.read_vector<offset_t>();
  m.row_idx = r.read_vector<index_t>();
  m.val = r.read_vector<value_t>();
  if (!r.ok() ||
      !matrix_ok(r, "CSC", m.cols, m.rows, m.col_ptr, m.row_idx,
                 m.val.size())) {
    return {};
  }
  return m;
}

CscMatrix skip_csc(support::BlobReader& r, offset_t& nnz_out) {
  CscMatrix m;
  m.rows = r.read_i32();
  m.cols = r.read_i32();
  const std::uint64_t ptr_count = r.skip_vector<offset_t>();
  const std::uint64_t idx_count = r.skip_vector<index_t>();
  const std::uint64_t val_count = r.skip_vector<value_t>();
  nnz_out = static_cast<offset_t>(idx_count);
  if (!r.ok()) return {};
  const bool ptr_ok =
      ptr_count == static_cast<std::uint64_t>(m.cols) + 1 ||
      (m.cols == 0 && ptr_count == 0);
  if (m.rows < 0 || m.cols < 0 || !ptr_ok || idx_count != val_count) {
    r.fail("CSC record has inconsistent structure");
    return {};
  }
  CscMatrix dims_only;
  dims_only.rows = m.rows;
  dims_only.cols = m.cols;
  return dims_only;
}

CsrMatrix read_csr(support::BlobReader& r) {
  CsrMatrix m;
  m.rows = r.read_i32();
  m.cols = r.read_i32();
  m.row_ptr = r.read_vector<offset_t>();
  m.col_idx = r.read_vector<index_t>();
  m.val = r.read_vector<value_t>();
  if (!r.ok() ||
      !matrix_ok(r, "CSR", m.rows, m.cols, m.row_ptr, m.col_idx,
                 m.val.size())) {
    return {};
  }
  return m;
}

void write_levels(support::BlobWriter& w, const LevelAnalysis& a) {
  w.write_i32(a.n);
  w.write_i64(a.nnz);
  w.write_i32(a.num_levels);
  w.write_i32(a.max_level_width);
  w.write_span(std::span<const index_t>(a.level_of));
  w.write_span(std::span<const offset_t>(a.level_ptr));
  w.write_span(std::span<const index_t>(a.order));
  w.write_span(std::span<const index_t>(a.in_degree));
}

LevelAnalysis read_levels(support::BlobReader& r) {
  LevelAnalysis a;
  a.n = r.read_i32();
  a.nnz = r.read_i64();
  a.num_levels = r.read_i32();
  a.max_level_width = r.read_i32();
  a.level_of = r.read_vector<index_t>();
  a.level_ptr = r.read_vector<offset_t>();
  a.order = r.read_vector<index_t>();
  a.in_degree = r.read_vector<index_t>();
  if (!r.ok()) return {};
  const auto sz = [](const auto& v) { return v.size(); };
  bool ok = a.n >= 0 && a.num_levels >= 0 &&
            sz(a.level_of) == static_cast<std::size_t>(a.n) &&
            sz(a.order) == static_cast<std::size_t>(a.n) &&
            sz(a.level_ptr) == static_cast<std::size_t>(a.num_levels) + 1 &&
            sz(a.in_degree) == static_cast<std::size_t>(a.n);
  // The level schedule indexes `order` through level_ptr and `x` through
  // order: both must stay in bounds even for a resealed hostile blob.
  ok = ok && a.level_ptr.front() == 0 &&
       a.level_ptr.back() == static_cast<offset_t>(a.n);
  if (ok) {
    bool bad = false;
    for (std::size_t l = 1; l < a.level_ptr.size(); ++l) {
      bad |= a.level_ptr[l - 1] > a.level_ptr[l];
    }
    const auto bound = static_cast<std::uint32_t>(a.n);
    for (std::size_t i = 0; i < a.order.size(); ++i) {
      bad |= static_cast<std::uint32_t>(a.order[i]) >= bound;
    }
    ok = !bad;
  }
  if (!ok) {
    r.fail("level-analysis record has inconsistent structure");
    return {};
  }
  return a;
}

}  // namespace msptrsv::sparse
