// Sparse-matrix (de)serialization and stable structural hashing.
//
// Two consumers:
//  * plan persistence (core/plan_snapshot) embeds the analyzed factor and
//    its row-form view in a plan blob;
//  * the content-addressed PlanCache keys plans by the structural hash, so
//    "same matrix" is decided without ever comparing matrices.
//
// The hash is a deterministic function of the matrix CONTENT only (dims,
// col_ptr, row_idx, and -- for the values variant -- the raw value bytes):
// stable across processes, machines of the same endianness, and library
// versions, which is what makes it usable as an on-disk cache filename.
#pragma once

#include <cstdint>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/level_analysis.hpp"
#include "support/blob.hpp"

namespace msptrsv::sparse {

/// Content hash of a matrix, split by sensitivity:
///  * `pattern` covers dims + col_ptr + row_idx -- what the symbolic
///    analysis depends on;
///  * `values` additionally folds in the nonzero values (so it changes on
///    every update_values refresh while `pattern` stays put).
struct StructuralHash {
  std::uint64_t pattern = 0;
  std::uint64_t values = 0;

  bool operator==(const StructuralHash&) const = default;
};

StructuralHash hash_csc(const CscMatrix& m);

/// Writes the matrix as a length-prefixed record (dims + the three
/// arrays). Appended to the writer's payload in place.
void write_csc(support::BlobWriter& w, const CscMatrix& m);
void write_csr(support::BlobWriter& w, const CsrMatrix& m);

/// Reads a write_csc/write_csr record. Validates everything a consumer
/// indexes through -- shape vs the recorded dims, a monotone pointer
/// array covering exactly the stored nonzeros, indices within the minor
/// dimension -- so even a hostile blob with a recomputed CRC is
/// memory-safe to solve with; on violation the READER is failed (r.ok()
/// turns false) and an empty matrix is returned. Within-segment
/// sortedness is NOT re-checked (it cannot cause out-of-bounds access,
/// and a CRC-verified blob written by this library is already sorted).
CscMatrix read_csc(support::BlobReader& r);
CsrMatrix read_csr(support::BlobReader& r);

/// Consumes a write_csc record WITHOUT materializing the arrays (for
/// loads where the caller already holds the matrix): only the dims
/// survive, in an otherwise-empty matrix; `nnz_out` reports the stored
/// nonzero count. Shape consistency is still checked; content is not
/// (it is never used).
CscMatrix skip_csc(support::BlobReader& r, offset_t& nnz_out);

/// Level-set analysis results round-trip with the plans that cached them
/// (the expensive half of the csrsv2-style symbolic phase).
void write_levels(support::BlobWriter& w, const LevelAnalysis& a);
LevelAnalysis read_levels(support::BlobReader& r);

}  // namespace msptrsv::sparse
