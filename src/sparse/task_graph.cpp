#include "sparse/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "support/contracts.hpp"

namespace msptrsv::sparse {

namespace {

/// Estimated microseconds to solve one row for one rhs: a handful of
/// gather flops plus a divide against cached structure. Used only to set
/// the narrow/wide boundary, so an order of magnitude is plenty.
double estimated_row_us(double nnz_per_row) {
  return 0.002 + 0.001 * nnz_per_row;
}

double measure_sync_overhead_once() {
  using clock = std::chrono::steady_clock;
  // A barrier wave (or a delivery hand-off) is a burst of contended
  // read-modify-writes on one line; time that traffic directly instead of
  // spinning up threads inside the analysis path. 4096 round-trips keep
  // the measurement above clock granularity on any plausible machine.
  constexpr int kOps = 4096;
  std::atomic<std::uint64_t> line{0};
  const auto t0 = clock::now();
  for (int i = 0; i < kOps; ++i) line.fetch_add(1, std::memory_order_acq_rel);
  const double us =
      std::chrono::duration<double, std::micro>(clock::now() - t0).count();
  // A gang sync is ~two waves of this traffic per party; 4 parties is the
  // reference shape. Clamp to a sane band: sub-0.1us would under-fuse on a
  // machine whose clock lied, >50us would fuse everything everywhere.
  const double per_op = us / kOps;
  return std::clamp(per_op * 8.0 * 100.0, 0.1, 50.0);
}

}  // namespace

double measured_sync_overhead_us() {
  static const double us = measure_sync_overhead_once();
  return us;
}

CoarsenOptions resolve_coarsen_options(CoarsenOptions opts,
                                       const LevelAnalysis& levels) {
  if (opts.narrow_width == 0) {
    const double nnz_per_row =
        levels.n == 0 ? 1.0
                      : static_cast<double>(levels.nnz) /
                            static_cast<double>(levels.n);
    // A level is narrow when a gang would spend more time synchronizing
    // than solving it: width * row_work <= sync_cost.
    const double w = measured_sync_overhead_us() / estimated_row_us(nnz_per_row);
    opts.narrow_width = static_cast<index_t>(std::clamp(w, 2.0, 64.0));
  }
  if (opts.block_rows == 0) {
    // Target ~256 KB of gathered structure per block task (row pointers,
    // column indices, values, and the solution entries it writes).
    const double nnz_per_row =
        levels.n == 0 ? 1.0
                      : static_cast<double>(levels.nnz) /
                            static_cast<double>(levels.n);
    const double bytes_per_row =
        nnz_per_row * (sizeof(value_t) + sizeof(index_t)) + 3 * sizeof(value_t);
    const double rows = 256.0 * 1024.0 / std::max(1.0, bytes_per_row);
    opts.block_rows = static_cast<index_t>(std::clamp(rows, 64.0, 1048576.0));
  }
  return opts;
}

TaskGraph coarsen_levels(const CscMatrix& lower, const LevelAnalysis& levels,
                         CoarsenOptions opts) {
  MSPTRSV_REQUIRE(lower.rows == levels.n,
                  "level analysis belongs to a different matrix");
  opts = resolve_coarsen_options(opts, levels);

  TaskGraph g;
  g.n = levels.n;
  if (g.n == 0) {
    g.task_ptr.assign(1, 0);
    g.succ_ptr.assign(1, 0);
    return g;
  }

  const auto width_of = [&](index_t l) {
    return static_cast<index_t>(
        levels.level_ptr[static_cast<std::size_t>(l) + 1] -
        levels.level_ptr[static_cast<std::size_t>(l)]);
  };

  // ---- Pass 1: carve the level sequence into tasks -------------------------
  g.task_ptr.reserve(16);
  g.task_ptr.push_back(0);
  g.task_rows.reserve(static_cast<std::size_t>(g.n));
  g.task_of.assign(static_cast<std::size_t>(g.n), 0);

  index_t chain_levels = 0;  // levels absorbed by the open chain run
  const auto close_chain = [&](index_t end_level) {
    if (chain_levels == 0) return;
    const index_t first = end_level - chain_levels;
    // One task for the whole run, rows in level order: the sequential
    // sweep satisfies every intra-run dependency (a row's predecessors
    // sit in strictly earlier levels).
    for (index_t l = first; l < end_level; ++l) {
      const offset_t b = levels.level_ptr[static_cast<std::size_t>(l)];
      const offset_t e = levels.level_ptr[static_cast<std::size_t>(l) + 1];
      for (offset_t p = b; p < e; ++p) {
        g.task_rows.push_back(levels.order[static_cast<std::size_t>(p)]);
      }
    }
    g.task_ptr.push_back(static_cast<offset_t>(g.task_rows.size()));
    g.kind.push_back(static_cast<std::uint8_t>(TaskKind::kChain));
    ++g.num_chain_tasks;
    g.levels_fused += chain_levels - 1;
    chain_levels = 0;
  };

  for (index_t l = 0; l < levels.num_levels; ++l) {
    const index_t width = width_of(l);
    if (width <= opts.narrow_width) {
      ++chain_levels;
      continue;
    }
    close_chain(l);
    // Wide level: independent rows, sliced into cache-sized blocks.
    const offset_t b = levels.level_ptr[static_cast<std::size_t>(l)];
    const offset_t e = levels.level_ptr[static_cast<std::size_t>(l) + 1];
    for (offset_t blk = b; blk < e; blk += opts.block_rows) {
      const offset_t blk_end = std::min<offset_t>(blk + opts.block_rows, e);
      for (offset_t p = blk; p < blk_end; ++p) {
        g.task_rows.push_back(levels.order[static_cast<std::size_t>(p)]);
      }
      g.task_ptr.push_back(static_cast<offset_t>(g.task_rows.size()));
      g.kind.push_back(static_cast<std::uint8_t>(TaskKind::kBlock));
      ++g.num_block_tasks;
    }
  }
  close_chain(levels.num_levels);

  g.num_tasks = static_cast<index_t>(g.kind.size());
  for (index_t t = 0; t < g.num_tasks; ++t) {
    for (offset_t p = g.task_ptr[static_cast<std::size_t>(t)];
         p < g.task_ptr[static_cast<std::size_t>(t) + 1]; ++p) {
      g.task_of[static_cast<std::size_t>(g.task_rows[static_cast<std::size_t>(p)])] = t;
    }
  }

  // ---- Pass 2: deduplicated cross-task edges -------------------------------
  // Successors of row i are column i's strict-lower entries. Tasks are
  // numbered in level order, so every cross-task edge points forward
  // (task_of[successor] > t); `last_emit` dedups per source task.
  g.in_degree.assign(static_cast<std::size_t>(g.num_tasks), 0);
  g.succ_ptr.assign(static_cast<std::size_t>(g.num_tasks) + 1, 0);
  std::vector<index_t> last_emit(static_cast<std::size_t>(g.num_tasks),
                                 static_cast<index_t>(-1));
  for (index_t t = 0; t < g.num_tasks; ++t) {
    for (offset_t p = g.task_ptr[static_cast<std::size_t>(t)];
         p < g.task_ptr[static_cast<std::size_t>(t) + 1]; ++p) {
      const index_t i = g.task_rows[static_cast<std::size_t>(p)];
      for (offset_t e = lower.col_ptr[static_cast<std::size_t>(i)] + 1;
           e < lower.col_ptr[static_cast<std::size_t>(i) + 1]; ++e) {
        const index_t ts = g.task_of[static_cast<std::size_t>(
            lower.row_idx[static_cast<std::size_t>(e)])];
        if (ts == t || last_emit[static_cast<std::size_t>(ts)] == t) continue;
        last_emit[static_cast<std::size_t>(ts)] = t;
        g.succ.push_back(ts);
        ++g.succ_ptr[static_cast<std::size_t>(t) + 1];
        ++g.in_degree[static_cast<std::size_t>(ts)];
      }
    }
    // succ entries for task t were appended contiguously; sort them so the
    // delivery fan-out walks ascending ids (friendlier to the spinners).
    const auto begin = g.succ.end() - g.succ_ptr[static_cast<std::size_t>(t) + 1];
    std::sort(begin, g.succ.end());
  }
  for (index_t t = 0; t < g.num_tasks; ++t) {
    g.succ_ptr[static_cast<std::size_t>(t) + 1] +=
        g.succ_ptr[static_cast<std::size_t>(t)];
  }
  return g;
}

ScheduleFeatures schedule_features(const LevelAnalysis& levels, offset_t nnz,
                                   index_t narrow_width) {
  ScheduleFeatures f;
  f.num_levels = levels.num_levels;
  f.max_level_width = levels.max_level_width;
  if (levels.n == 0 || levels.num_levels == 0) return f;
  f.nnz_per_row = static_cast<double>(nnz) / static_cast<double>(levels.n);
  f.avg_level_width =
      static_cast<double>(levels.n) / static_cast<double>(levels.num_levels);

  index_t narrow = 0, run = 0, runs = 0;
  index_t narrow_total_runs_len = 0;
  for (index_t l = 0; l < levels.num_levels; ++l) {
    const index_t width = static_cast<index_t>(
        levels.level_ptr[static_cast<std::size_t>(l) + 1] -
        levels.level_ptr[static_cast<std::size_t>(l)]);
    if (width <= narrow_width) {
      ++narrow;
      ++run;
      f.longest_narrow_run = std::max(f.longest_narrow_run, run);
    } else {
      if (run > 0) {
        ++runs;
        narrow_total_runs_len += run;
      }
      run = 0;
    }
  }
  if (run > 0) {
    ++runs;
    narrow_total_runs_len += run;
  }
  f.narrow_level_fraction =
      static_cast<double>(narrow) / static_cast<double>(levels.num_levels);
  f.avg_narrow_run = runs == 0 ? 0.0
                               : static_cast<double>(narrow_total_runs_len) /
                                     static_cast<double>(runs);
  return f;
}

}  // namespace msptrsv::sparse
