// Coordinate-format sparse matrix: the assembly format every generator and
// the Matrix Market reader produce before conversion to CSC/CSR.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace msptrsv::sparse {

/// One nonzero entry.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  value_t value = 0.0;
};

/// Unordered triplet list with explicit dimensions. Duplicates are allowed
/// until normalize() combines them (by summation, the Matrix Market rule).
struct CooMatrix {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<Triplet> entries;

  offset_t nnz() const { return static_cast<offset_t>(entries.size()); }

  void add(index_t r, index_t c, value_t v) { entries.push_back({r, c, v}); }

  /// Sorts column-major (col, then row) and sums duplicates in place.
  void normalize();

  /// Throws PreconditionError if any index is out of range.
  void validate() const;
};

}  // namespace msptrsv::sparse
