// Synthetic lower-triangular workload generators.
//
// The paper evaluates on SuiteSparse factors produced by MA48 (proprietary
// HSL). We reproduce the *structural* properties its analysis says matter
// (Section VI-D): dependency = nnz/n and parallelism = n/#levels, plus
// spatial locality of the dependency pattern. `layered_dag` gives exact
// control of levels and parallelism; the other generators provide classical
// extreme and application-shaped structures.
//
// All generators return a solvable lower-triangular CSC (diagonal present,
// first in each column, nonzero) with diagonally-dominant values so forward
// substitution is well conditioned, and are deterministic in their seed.
#pragma once

#include <cstdint>

#include "sparse/csc.hpp"

namespace msptrsv::sparse {

/// Diagonal matrix: one level, zero dependencies (best case).
CscMatrix gen_diagonal(index_t n);

/// Bidiagonal chain: n levels, parallelism 1 (worst case / critical path).
CscMatrix gen_chain(index_t n);

/// Tridiagonal-style banded factor: entries on the diagonal and `bandwidth`
/// sub-diagonals, each present with probability `fill`, giving locality-heavy
/// structure like 1D PDE factors.
CscMatrix gen_banded(index_t n, index_t bandwidth, double fill,
                     std::uint64_t seed);

/// Random lower factor: row i draws `avg_row_degree` predecessors uniformly
/// from [0, i). Produces log-depth DAGs with no locality (stress case for
/// communication).
CscMatrix gen_random_lower(index_t n, double avg_row_degree,
                           std::uint64_t seed);

/// The key generator: a layered DAG with exactly `num_levels` levels (when
/// n >= num_levels >= 1) and parallelism n/num_levels.
///
/// Components are laid out level-contiguously. Every component in level
/// l > 0 takes one mandatory predecessor from level l-1 (pinning its level)
/// plus extra random predecessors from earlier components, tuned so total
/// nnz ~= target_nnz. `locality` in [0,1] biases predecessor choice toward
/// nearby ids (1 = strongly local / banded-like, 0 = uniform).
CscMatrix gen_layered_dag(index_t n, index_t num_levels, offset_t target_nnz,
                          double locality, std::uint64_t seed);

/// Chain-heavy workload: `num_segments` repetitions of a long width-1
/// chain (`chain_len` rows, each depending on its predecessor) feeding a
/// `fan_width`-wide independent fan, with the next segment's chain rooted
/// in the fan. Produces chain_len narrow levels followed by one wide level
/// per segment -- the regime where a flat level schedule pays a gang
/// synchronization per chain row while a coarsened task schedule fuses
/// each chain into one task. `extra_edges` random fan-to-fan dependencies
/// per segment add gather work without changing the level structure.
CscMatrix gen_chain_heavy(index_t num_segments, index_t chain_len,
                          index_t fan_width, index_t extra_edges,
                          std::uint64_t seed);

/// Lower factor of the 5-point 2D Poisson stencil on an nx-by-ny grid
/// (structure of an IC(0)/ILU(0) factor on a structured grid: dependencies
/// on west and south neighbors; #levels = nx+ny-1 wavefronts).
CscMatrix gen_grid2d_lower(index_t nx, index_t ny);

/// Lower factor of the 7-point 3D stencil on an nx*ny*nz grid.
CscMatrix gen_grid3d_lower(index_t nx, index_t ny, index_t nz);

/// Scale-free graph structure via R-MAT edge sampling, mapped to the lower
/// triangle (edge (u,v) -> (max,min)), duplicates dropped. Produces the
/// skewed degree distributions of the paper's web/social graphs
/// (twitter7, uk-2005, citationCiteseer, ...).
CscMatrix gen_rmat_lower(index_t n_log2, offset_t target_edges,
                         std::uint64_t seed);

/// Solution/right-hand-side helpers ------------------------------------

/// Deterministic reference solution vector (entries in [-1, 1], nonzero).
std::vector<value_t> gen_solution(index_t n, std::uint64_t seed);

/// Manufactures b = L * x_ref so solvers can be checked against x_ref.
std::vector<value_t> gen_rhs_for_solution(const CscMatrix& lower,
                                          const std::vector<value_t>& x_ref);

}  // namespace msptrsv::sparse
