#include "sparse/coo.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace msptrsv::sparse {

void CooMatrix::normalize() {
  validate();
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.col != b.col) return a.col < b.col;
              return a.row < b.row;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (out > 0 && entries[out - 1].row == entries[i].row &&
        entries[out - 1].col == entries[i].col) {
      entries[out - 1].value += entries[i].value;
    } else {
      entries[out++] = entries[i];
    }
  }
  entries.resize(out);
}

void CooMatrix::validate() const {
  MSPTRSV_REQUIRE(rows >= 0 && cols >= 0, "negative matrix dimensions");
  for (const Triplet& t : entries) {
    MSPTRSV_REQUIRE(t.row >= 0 && t.row < rows, "COO row index out of range");
    MSPTRSV_REQUIRE(t.col >= 0 && t.col < cols, "COO col index out of range");
  }
}

}  // namespace msptrsv::sparse
