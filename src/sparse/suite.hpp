// Synthetic analogs of the paper's Table I test set.
//
// Each entry records the statistics the paper publishes (rows, nnz, #levels,
// parallelism) and a generator recipe that reproduces those statistics --
// exactly for #levels and parallelism (the two metrics Section VI-D ties
// scalability to), approximately for nnz -- at a configurable scale.
//
// Known typos in the published table, corrected here and noted in DESIGN.md:
//  * shipsec1 and copter2 have rows and nnz swapped (parallelism =
//    rows/levels only checks out with the swap);
//  * uk-2005's parallelism column reads 1,390,413 but rows/levels = 13,904.
// The two out-of-memory graphs (twitter7, uk-2005) are scaled down by
// default; their *paper-scale* rows/nnz are kept in `paper_rows/paper_nnz`
// so the memory-capacity model still reproduces the out-of-core behaviour.
#pragma once

#include <string>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/level_analysis.hpp"

namespace msptrsv::sparse {

struct SuiteEntry {
  std::string name;
  /// Statistics as published in Table I (after typo correction).
  index_t paper_rows = 0;
  offset_t paper_nnz = 0;
  index_t paper_levels = 0;
  double paper_parallelism = 0.0;
  /// Structure class used to pick generator locality.
  enum class Kind { kMesh, kGraph, kCircuit, kStructural } kind = Kind::kMesh;
  /// True for the two inputs the paper calls out-of-memory (>16 GB files).
  bool out_of_core = false;
};

struct SuiteMatrix {
  SuiteEntry entry;
  /// The generated analog (scaled) and its measured analysis.
  CscMatrix lower;
  LevelAnalysis analysis;
  /// rows actually generated / paper rows.
  double scale = 1.0;
};

/// The 16 Table I entries in paper order.
const std::vector<SuiteEntry>& table1_entries();

/// Looks up an entry by name (throws if unknown).
const SuiteEntry& find_entry(const std::string& name);

/// Generates the analog of one matrix. `max_rows` caps the generated size;
/// larger matrices are scaled down with nnz and levels scaled to preserve
/// the paper's dependency (nnz/n) and, where possible, parallelism
/// (n/levels) metrics. Deterministic in (name, max_rows).
SuiteMatrix generate_suite_matrix(const std::string& name, index_t max_rows);

/// Generates the whole suite (or the named subset) at the given cap.
std::vector<SuiteMatrix> generate_suite(index_t max_rows,
                                        const std::vector<std::string>& names = {});

/// The four "representative" matrices of the Fig. 3 characterization.
std::vector<std::string> fig3_matrix_names();

/// The five distinct-characteristic matrices of the Fig. 10 scaling study.
std::vector<std::string> fig10_matrix_names();

}  // namespace msptrsv::sparse
