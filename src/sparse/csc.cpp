#include "sparse/csc.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace msptrsv::sparse {

std::span<const index_t> CscMatrix::column_rows(index_t j) const {
  MSPTRSV_REQUIRE(j >= 0 && j < cols, "column index out of range");
  return {row_idx.data() + col_ptr[j],
          static_cast<std::size_t>(col_ptr[j + 1] - col_ptr[j])};
}

std::span<const value_t> CscMatrix::column_values(index_t j) const {
  MSPTRSV_REQUIRE(j >= 0 && j < cols, "column index out of range");
  return {val.data() + col_ptr[j],
          static_cast<std::size_t>(col_ptr[j + 1] - col_ptr[j])};
}

void CscMatrix::validate() const {
  MSPTRSV_ENSURE(rows >= 0 && cols >= 0, "negative dimensions");
  MSPTRSV_ENSURE(col_ptr.size() == static_cast<std::size_t>(cols) + 1,
                 "col_ptr must have cols+1 entries");
  MSPTRSV_ENSURE(col_ptr.front() == 0, "col_ptr must start at 0");
  MSPTRSV_ENSURE(col_ptr.back() == nnz(), "col_ptr must end at nnz");
  MSPTRSV_ENSURE(row_idx.size() == val.size(), "row_idx/val size mismatch");
  for (index_t j = 0; j < cols; ++j) {
    MSPTRSV_ENSURE(col_ptr[j] <= col_ptr[j + 1], "col_ptr must be monotone");
    for (offset_t k = col_ptr[j]; k < col_ptr[j + 1]; ++k) {
      MSPTRSV_ENSURE(row_idx[k] >= 0 && row_idx[k] < rows,
                     "row index out of range");
      if (k > col_ptr[j]) {
        MSPTRSV_ENSURE(row_idx[k - 1] < row_idx[k],
                       "rows must be sorted and unique within a column");
      }
    }
  }
}

CscMatrix csc_from_coo(CooMatrix coo) {
  coo.normalize();
  CscMatrix m;
  m.rows = coo.rows;
  m.cols = coo.cols;
  m.col_ptr.assign(static_cast<std::size_t>(m.cols) + 1, 0);
  m.row_idx.resize(coo.entries.size());
  m.val.resize(coo.entries.size());
  for (const Triplet& t : coo.entries) m.col_ptr[t.col + 1]++;
  for (index_t j = 0; j < m.cols; ++j) m.col_ptr[j + 1] += m.col_ptr[j];
  // Entries are already column-major sorted after normalize().
  for (std::size_t k = 0; k < coo.entries.size(); ++k) {
    m.row_idx[k] = coo.entries[k].row;
    m.val[k] = coo.entries[k].value;
  }
  m.validate();
  return m;
}

CooMatrix coo_from_csc(const CscMatrix& m) {
  CooMatrix coo;
  coo.rows = m.rows;
  coo.cols = m.cols;
  coo.entries.reserve(static_cast<std::size_t>(m.nnz()));
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      coo.entries.push_back({m.row_idx[k], j, m.val[k]});
    }
  }
  return coo;
}

CscMatrix transpose(const CscMatrix& m) {
  CscMatrix t;
  t.rows = m.cols;
  t.cols = m.rows;
  t.col_ptr.assign(static_cast<std::size_t>(t.cols) + 1, 0);
  t.row_idx.resize(static_cast<std::size_t>(m.nnz()));
  t.val.resize(static_cast<std::size_t>(m.nnz()));
  for (offset_t k = 0; k < m.nnz(); ++k) t.col_ptr[m.row_idx[k] + 1]++;
  for (index_t j = 0; j < t.cols; ++j) t.col_ptr[j + 1] += t.col_ptr[j];
  std::vector<offset_t> cursor(t.col_ptr.begin(), t.col_ptr.end() - 1);
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      const offset_t out = cursor[m.row_idx[k]]++;
      t.row_idx[out] = j;
      t.val[out] = m.val[k];
    }
  }
  t.validate();
  return t;
}

bool identical(const CscMatrix& a, const CscMatrix& b) {
  return a.rows == b.rows && a.cols == b.cols && a.col_ptr == b.col_ptr &&
         a.row_idx == b.row_idx && a.val == b.val;
}

std::vector<value_t> multiply(const CscMatrix& a, std::span<const value_t> x) {
  MSPTRSV_REQUIRE(x.size() == static_cast<std::size_t>(a.cols),
                  "vector length must equal matrix column count");
  std::vector<value_t> y(static_cast<std::size_t>(a.rows), 0.0);
  for (index_t j = 0; j < a.cols; ++j) {
    const value_t xj = x[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    for (offset_t k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      y[static_cast<std::size_t>(a.row_idx[k])] += a.val[k] * xj;
    }
  }
  return y;
}

}  // namespace msptrsv::sparse
