#include "sparse/suite.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/generators.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {

const std::vector<SuiteEntry>& table1_entries() {
  using K = SuiteEntry::Kind;
  static const std::vector<SuiteEntry> kEntries = {
      // name, rows, nnz, levels, parallelism, kind, out_of_core
      {"belgium_osm", 1441295, 2991265, 631, 2284.0, K::kMesh, false},
      {"chipcool0", 20082, 150616, 534, 38.0, K::kCircuit, false},
      {"citationCiteseer", 268495, 1425142, 102, 2632.0, K::kGraph, false},
      {"dblp-2010", 326186, 1133886, 1562, 209.0, K::kGraph, false},
      {"dc2", 116835, 441781, 14, 8345.0, K::kCircuit, false},
      {"delaunay_n20", 1048576, 4194262, 788, 1331.0, K::kMesh, false},
      {"nlpkkt160", 8345600, 118931856, 2, 4172800.0, K::kStructural, false},
      {"pkustk14", 151926, 7494215, 1075, 141.0, K::kStructural, false},
      {"powersim", 15838, 40673, 24, 660.0, K::kCircuit, false},
      {"roadNet-CA", 1971281, 4737888, 364, 5416.0, K::kMesh, false},
      {"webbase-1M", 1000005, 2348442, 512, 1953.0, K::kGraph, false},
      {"Wordnet3", 82670, 176821, 37, 2234.0, K::kGraph, false},
      // rows/nnz swapped in the published table; corrected (see header).
      {"shipsec1", 140874, 7813404, 2100, 67.0, K::kStructural, false},
      {"copter2", 55476, 759952, 190, 291.0, K::kStructural, false},
      {"twitter7", 41652230, 475658233, 18116, 2299.0, K::kGraph, true},
      // parallelism printed as 1,390,413 in the paper; rows/levels = 13904.
      {"uk-2005", 39459925, 473261087, 2838, 13904.0, K::kGraph, true},
  };
  return kEntries;
}

const SuiteEntry& find_entry(const std::string& name) {
  for (const SuiteEntry& e : table1_entries()) {
    if (e.name == name) return e;
  }
  MSPTRSV_REQUIRE(false, "unknown suite matrix: " + name);
  // Unreachable; silences the compiler.
  return table1_entries().front();
}

namespace {

std::uint64_t name_seed(const std::string& name) {
  // FNV-1a keeps per-matrix streams independent and deterministic.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

double locality_for(SuiteEntry::Kind kind) {
  // Locality of the MA48 factors, not of the original matrices: elimination
  // scatters even mesh problems considerably, so these are moderate.
  switch (kind) {
    case SuiteEntry::Kind::kMesh: return 0.65;
    case SuiteEntry::Kind::kStructural: return 0.55;
    case SuiteEntry::Kind::kCircuit: return 0.4;
    case SuiteEntry::Kind::kGraph: return 0.1;  // web/social: scattered
  }
  return 0.5;
}

}  // namespace

SuiteMatrix generate_suite_matrix(const std::string& name, index_t max_rows) {
  MSPTRSV_REQUIRE(max_rows > 0, "max_rows must be positive");
  const SuiteEntry& e = find_entry(name);

  SuiteMatrix out;
  out.entry = e;

  const index_t rows = std::min<index_t>(e.paper_rows, max_rows);
  out.scale = static_cast<double>(rows) / static_cast<double>(e.paper_rows);
  // Preserve dependency = nnz/n under scaling.
  const double dep = static_cast<double>(e.paper_nnz) /
                     static_cast<double>(e.paper_rows);
  const offset_t nnz =
      std::max<offset_t>(rows, static_cast<offset_t>(dep * rows));
  // Preserve #levels when enough rows remain, otherwise preserve the
  // parallelism ratio (n/levels) instead.
  index_t levels = e.paper_levels;
  if (levels > rows) levels = rows;
  if (out.scale < 1.0) {
    const double par = e.paper_parallelism;
    const index_t levels_by_par =
        std::max<index_t>(1, static_cast<index_t>(
                                 std::llround(rows / std::max(1.0, par))));
    // Keep the paper's level count when it still fits comfortably
    // (>= 4 components per level on average), else derive from parallelism.
    if (static_cast<double>(rows) / levels < 4.0) levels = levels_by_par;
  }
  levels = std::max<index_t>(1, std::min(levels, rows));

  out.lower = gen_layered_dag(rows, levels, nnz, locality_for(e.kind),
                              name_seed(name));
  out.analysis = analyze_levels(out.lower);
  MSPTRSV_ENSURE(out.analysis.num_levels == levels,
                 "layered generator missed the level target for " + name);
  return out;
}

std::vector<SuiteMatrix> generate_suite(index_t max_rows,
                                        const std::vector<std::string>& names) {
  std::vector<SuiteMatrix> out;
  if (names.empty()) {
    for (const SuiteEntry& e : table1_entries()) {
      out.push_back(generate_suite_matrix(e.name, max_rows));
    }
  } else {
    for (const std::string& n : names) {
      out.push_back(generate_suite_matrix(n, max_rows));
    }
  }
  return out;
}

std::vector<std::string> fig3_matrix_names() {
  // "four representative matrices": a thrash-prone mesh, a deep graph,
  // a mid-range web graph, and the high-parallelism nlpkkt160 the paper
  // singles out as the exception that keeps scaling.
  return {"belgium_osm", "dblp-2010", "webbase-1M", "nlpkkt160"};
}

std::vector<std::string> fig10_matrix_names() {
  return {"belgium_osm", "delaunay_n20", "nlpkkt160", "powersim", "Wordnet3"};
}

}  // namespace msptrsv::sparse
