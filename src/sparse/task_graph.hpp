// Coarsened task-DAG schedule over a level analysis.
//
// The level-set schedule pays one gang synchronization per level even when
// hundreds of consecutive levels are nearly serial chains -- exactly the
// regime the paper's Section VI-D "low parallelism" matrices live in. This
// pass coarsens a LevelAnalysis into TASKS under a simple cost model:
//
//  * runs of consecutive NARROW levels (population <= narrow_width) are
//    fused into ONE chain task whose rows execute sequentially in level
//    order. A width-1000-level chain collapses from 1000 barriers to one
//    task claim; intra-task dependencies are satisfied by the sequential
//    level-order sweep, so the run needs no synchronization at all.
//  * WIDE levels are split into cache-sized row blocks (block_rows rows
//    per task). Rows of one level are mutually independent, so a block
//    task is a plain parallel slice with no internal ordering.
//
// Cross-task dependencies stay explicit: task t carries an in-degree (the
// number of distinct predecessor tasks) and a deduplicated successor list,
// which is what the cpu-taskgraph backend's delivery counters run on.
//
// Tasks are numbered in level order, so every edge goes from a lower task
// id to a strictly higher one -- ascending-id claiming is deadlock-free by
// the same argument as the sync-free row schedule, and ascending task
// order IS a topological order (the property test pins this down).
//
// The pass is structure-only (no values), deterministic in its inputs, and
// costs O(n + nnz). The thresholds default from a per-process sync-cost
// measurement (measured_sync_overhead_us) so they track the machine; every
// caller that must rebuild an IDENTICAL graph later (plan blobs) pins them
// explicitly through CoarsenOptions.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/level_analysis.hpp"

namespace msptrsv::sparse {

enum class TaskKind : std::uint8_t {
  /// Fused run of narrow levels; rows execute sequentially in level order.
  kChain = 0,
  /// Row block of a single wide level; rows are mutually independent.
  kBlock = 1,
};

struct TaskGraph {
  index_t n = 0;
  index_t num_tasks = 0;

  /// Rows of task t: task_rows[task_ptr[t] .. task_ptr[t+1]) in execution
  /// order (level order for chains, ascending id within a block). Every
  /// row appears exactly once across all tasks.
  std::vector<offset_t> task_ptr;
  std::vector<index_t> task_rows;
  /// TaskKind per task.
  std::vector<std::uint8_t> kind;
  /// task_of[row]: the task that solves the row.
  std::vector<index_t> task_of;

  /// Cross-task dependency structure, deduplicated: in_degree[t] distinct
  /// predecessor tasks must deliver before t may run; the successors of t
  /// are succ[succ_ptr[t] .. succ_ptr[t+1]), each strictly greater than t.
  std::vector<index_t> in_degree;
  std::vector<offset_t> succ_ptr;
  std::vector<index_t> succ;

  /// Coarsening statistics (observability + the autotuner's features).
  index_t num_chain_tasks = 0;
  index_t num_block_tasks = 0;
  /// Levels fused away: num_levels - (level runs surviving as sync points).
  index_t levels_fused = 0;

  bool chain(index_t t) const {
    return kind[static_cast<std::size_t>(t)] ==
           static_cast<std::uint8_t>(TaskKind::kChain);
  }
};

/// Coarsening thresholds. Zero means "derive from the cost model": a level
/// is narrow when solving it costs less than a synchronization, and blocks
/// target a fixed working-set size per task.
struct CoarsenOptions {
  /// Levels with population <= narrow_width fuse into chain tasks.
  index_t narrow_width = 0;
  /// Rows per block task when splitting a wide level.
  index_t block_rows = 0;
};

/// Resolves zeroed CoarsenOptions fields against the cost model: the
/// narrow threshold is the row count whose solve work (estimated from
/// nnz/row) is dwarfed by one measured gang synchronization, and blocks
/// size to ~a few hundred KB of gathered structure. Deterministic for
/// fixed inputs within one process.
CoarsenOptions resolve_coarsen_options(CoarsenOptions opts,
                                       const LevelAnalysis& levels);

/// Builds the coarsened task DAG for `lower` (the analyzed factor whose
/// level sets `levels` describes). Zeroed option fields are resolved via
/// resolve_coarsen_options first.
TaskGraph coarsen_levels(const CscMatrix& lower, const LevelAnalysis& levels,
                         CoarsenOptions opts = {});

/// Per-process cost of one gang synchronization in microseconds, measured
/// once on first use (a timed burst of contended atomic round-trips --
/// the same traffic a barrier wave or a delivery hand-off pays). Falls
/// back to a fixed estimate when the clock is too coarse to resolve it.
double measured_sync_overhead_us();

/// Structural features of a level analysis, extracted once at analyze time
/// for the schedule autotuner (and recorded in the plan blob with the
/// decision they produced).
struct ScheduleFeatures {
  double nnz_per_row = 0.0;
  index_t num_levels = 0;
  index_t max_level_width = 0;
  double avg_level_width = 0.0;
  /// Fraction of levels with population <= narrow_width.
  double narrow_level_fraction = 0.0;
  /// Longest / mean run of consecutive narrow levels.
  index_t longest_narrow_run = 0;
  double avg_narrow_run = 0.0;
};

/// Computes the features against an explicit narrow threshold (pass the
/// resolved CoarsenOptions::narrow_width so the tuner and the coarsener
/// agree on what "narrow" means).
ScheduleFeatures schedule_features(const LevelAnalysis& levels, offset_t nnz,
                                   index_t narrow_width);

}  // namespace msptrsv::sparse
