#include "sparse/partition.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "support/stats.hpp"

namespace msptrsv::sparse {

Partition Partition::block(index_t n, int num_gpus) {
  return round_robin_tasks(n, num_gpus, 1);
}

Partition Partition::round_robin_tasks(index_t n, int num_gpus,
                                       int tasks_per_gpu) {
  MSPTRSV_REQUIRE(n > 0, "cannot partition an empty system");
  MSPTRSV_REQUIRE(num_gpus >= 1, "need at least one GPU");
  MSPTRSV_REQUIRE(tasks_per_gpu >= 1, "need at least one task per GPU");
  Partition p;
  p.n_ = n;
  p.num_gpus_ = num_gpus;
  p.tasks_per_gpu_ = tasks_per_gpu;

  const int total_tasks =
      std::min<int>(static_cast<int>(n), num_gpus * tasks_per_gpu);
  std::vector<int> launch_seq(static_cast<std::size_t>(num_gpus), 0);
  for (int t = 0; t < total_tasks; ++t) {
    TaskRange r;
    r.begin = static_cast<index_t>(
        (static_cast<std::int64_t>(n) * t) / total_tasks);
    r.end = static_cast<index_t>(
        (static_cast<std::int64_t>(n) * (t + 1)) / total_tasks);
    r.gpu = t % num_gpus;
    r.seq_on_gpu = launch_seq[static_cast<std::size_t>(r.gpu)]++;
    p.tasks_.push_back(r);
  }
  p.finalize();
  return p;
}

void Partition::finalize() {
  task_of_.assign(static_cast<std::size_t>(n_), 0);
  per_gpu_.assign(static_cast<std::size_t>(num_gpus_), 0);
  for (int t = 0; t < num_tasks(); ++t) {
    const TaskRange& r = tasks_[static_cast<std::size_t>(t)];
    MSPTRSV_ENSURE(r.begin <= r.end && r.end <= n_, "bad task range");
    for (index_t i = r.begin; i < r.end; ++i) {
      task_of_[static_cast<std::size_t>(i)] = t;
    }
    per_gpu_[static_cast<std::size_t>(r.gpu)] += r.size();
  }
  index_t covered = 0;
  for (index_t c : per_gpu_) covered += c;
  MSPTRSV_ENSURE(covered == n_, "tasks must cover every component exactly once");
}

const TaskRange& Partition::task(int t) const {
  MSPTRSV_REQUIRE(t >= 0 && t < num_tasks(), "task index out of range");
  return tasks_[static_cast<std::size_t>(t)];
}

int Partition::owner_of(index_t comp) const {
  MSPTRSV_REQUIRE(comp >= 0 && comp < n_, "component index out of range");
  return tasks_[static_cast<std::size_t>(task_of_[static_cast<std::size_t>(comp)])].gpu;
}

int Partition::task_of(index_t comp) const {
  MSPTRSV_REQUIRE(comp >= 0 && comp < n_, "component index out of range");
  return task_of_[static_cast<std::size_t>(comp)];
}

index_t Partition::components_on(int gpu) const {
  MSPTRSV_REQUIRE(gpu >= 0 && gpu < num_gpus_, "gpu index out of range");
  return per_gpu_[static_cast<std::size_t>(gpu)];
}

offset_t Partition::count_remote_updates(const CscMatrix& lower) const {
  MSPTRSV_REQUIRE(lower.rows == n_, "partition/matrix size mismatch");
  offset_t remote = 0;
  for (index_t j = 0; j < lower.cols; ++j) {
    const int col_owner = owner_of(j);
    for (offset_t k = lower.col_ptr[j]; k < lower.col_ptr[j + 1]; ++k) {
      const index_t i = lower.row_idx[k];
      if (i != j && owner_of(i) != col_owner) ++remote;
    }
  }
  return remote;
}

double Partition::component_imbalance() const {
  std::vector<double> counts(per_gpu_.begin(), per_gpu_.end());
  return support::imbalance_factor(counts);
}

FootprintEstimate estimate_footprint(const CscMatrix& lower,
                                     const Partition& p, StateLayout layout,
                                     double rows_scale, double nnz_scale) {
  MSPTRSV_REQUIRE(rows_scale >= 1.0 && nnz_scale >= 1.0,
                  "scales inflate toward paper sizes, so must be >= 1");
  const double n = static_cast<double>(p.n()) * rows_scale;
  const int g = p.num_gpus();
  FootprintEstimate est;
  est.bytes_per_gpu.assign(static_cast<std::size_t>(g), 0.0);

  // Per-GPU nonzero counts of the owned columns.
  std::vector<double> nnz_per_gpu(static_cast<std::size_t>(g), 0.0);
  for (index_t j = 0; j < lower.cols; ++j) {
    nnz_per_gpu[static_cast<std::size_t>(p.owner_of(j))] +=
        static_cast<double>(lower.col_ptr[j + 1] - lower.col_ptr[j]);
  }

  for (int d = 0; d < g; ++d) {
    const double local_rows =
        static_cast<double>(p.components_on(d)) * rows_scale;
    const double local_nnz = nnz_per_gpu[static_cast<std::size_t>(d)] * nnz_scale;
    double bytes = 0.0;
    bytes += local_nnz * (sizeof(index_t) + sizeof(value_t));  // row_idx + val
    bytes += local_rows * sizeof(offset_t);                    // col_ptr slice
    bytes += local_rows * sizeof(value_t) * 2;                 // b and x slices
    bytes += local_rows * (sizeof(value_t) + sizeof(index_t)); // d.left_sum/d.in_degree
    if (layout == StateLayout::kSymmetricHeap) {
      // Every PE allocates full n-sized s.left_sum + s.in_degree.
      const double replicated = n * (sizeof(value_t) + sizeof(index_t));
      bytes += replicated;
      est.replicated_state_bytes += replicated;
    }
    est.bytes_per_gpu[static_cast<std::size_t>(d)] = bytes;
    est.total_bytes += bytes;
  }
  if (layout == StateLayout::kUnifiedManaged) {
    // One shared copy of the managed arrays, attributed evenly.
    const double managed = n * (sizeof(value_t) + sizeof(index_t));
    est.replicated_state_bytes = managed;
    est.total_bytes += managed;
    for (double& b : est.bytes_per_gpu) b += managed / g;
  }
  return est;
}

}  // namespace msptrsv::sparse
