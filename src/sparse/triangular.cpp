#include "sparse/triangular.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace msptrsv::sparse {

bool is_lower_triangular(const CscMatrix& m) {
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      if (m.row_idx[k] < j) return false;
    }
  }
  return true;
}

bool is_upper_triangular(const CscMatrix& m) {
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      if (m.row_idx[k] > j) return false;
    }
  }
  return true;
}

bool has_nonsingular_diagonal(const CscMatrix& m) {
  if (!m.is_square()) return false;
  for (index_t j = 0; j < m.cols; ++j) {
    bool found = false;
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      if (m.row_idx[k] == j) {
        found = m.val[k] != 0.0;
        break;
      }
      if (m.row_idx[k] > j) break;
    }
    if (!found) return false;
  }
  return true;
}

SolvableDiagnosis diagnose_solvable_lower(const CscMatrix& m) {
  SolvableDiagnosis d;
  auto fail = [&](bool singular, std::string detail) {
    d.solvable = false;
    d.singular = singular;
    d.detail = std::move(detail);
    return d;
  };
  if (!m.is_square()) {
    return fail(false, "triangular solve requires a square matrix (" +
                           std::to_string(m.rows) + "x" +
                           std::to_string(m.cols) + ")");
  }
  try {
    m.validate();
  } catch (const std::exception& e) {
    return fail(false, std::string("malformed CSC structure: ") + e.what());
  }
  if (!is_lower_triangular(m)) {
    return fail(false, "matrix has entries above the diagonal (not lower "
                       "triangular)");
  }
  for (index_t j = 0; j < m.cols; ++j) {
    if (m.col_ptr[j] >= m.col_ptr[j + 1] || m.row_idx[m.col_ptr[j]] != j) {
      return fail(true, "column " + std::to_string(j) +
                            " is missing its diagonal entry (singular)");
    }
    if (m.val[m.col_ptr[j]] == 0.0) {
      return fail(true, "zero diagonal at column " + std::to_string(j) +
                            " (singular)");
    }
  }
  return d;
}

void require_solvable_lower(const CscMatrix& m) {
  MSPTRSV_REQUIRE(m.is_square(), "triangular solve requires a square matrix");
  m.validate();
  for (index_t j = 0; j < m.cols; ++j) {
    MSPTRSV_REQUIRE(m.col_ptr[j] < m.col_ptr[j + 1],
                    "column " + std::to_string(j) + " is empty (singular)");
    MSPTRSV_REQUIRE(m.row_idx[m.col_ptr[j]] == j,
                    "column " + std::to_string(j) +
                        " must start with its diagonal entry");
    MSPTRSV_REQUIRE(m.val[m.col_ptr[j]] != 0.0,
                    "zero diagonal at column " + std::to_string(j));
  }
}

namespace {
CscMatrix filter_triangle(const CscMatrix& m, bool lower, bool unit_diagonal,
                          value_t diagonal_fill) {
  MSPTRSV_REQUIRE(m.is_square(), "triangle extraction requires a square matrix");
  CooMatrix coo;
  coo.rows = m.rows;
  coo.cols = m.cols;
  std::vector<bool> has_diag(static_cast<std::size_t>(m.cols), false);
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      const index_t i = m.row_idx[k];
      const bool keep = lower ? (i >= j) : (i <= j);
      if (!keep) continue;
      if (i == j) {
        has_diag[static_cast<std::size_t>(j)] = true;
        coo.add(i, j, unit_diagonal ? 1.0 : (m.val[k] != 0.0 ? m.val[k]
                                                             : diagonal_fill));
      } else {
        coo.add(i, j, m.val[k]);
      }
    }
  }
  for (index_t j = 0; j < m.cols; ++j) {
    if (!has_diag[static_cast<std::size_t>(j)]) {
      const value_t d = unit_diagonal ? 1.0 : diagonal_fill;
      if (d != 0.0) coo.add(j, j, d);
    }
  }
  return csc_from_coo(std::move(coo));
}
}  // namespace

CscMatrix lower_triangle_of(const CscMatrix& m, bool unit_diagonal,
                            value_t diagonal_fill) {
  return filter_triangle(m, /*lower=*/true, unit_diagonal, diagonal_fill);
}

CscMatrix upper_triangle_of(const CscMatrix& m, bool unit_diagonal,
                            value_t diagonal_fill) {
  return filter_triangle(m, /*lower=*/false, unit_diagonal, diagonal_fill);
}

CscMatrix mirror_to_upper(const CscMatrix& lower) {
  MSPTRSV_REQUIRE(is_lower_triangular(lower),
                  "mirror_to_upper expects a lower-triangular input");
  const index_t n = lower.rows;
  CooMatrix coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t j = 0; j < lower.cols; ++j) {
    for (offset_t k = lower.col_ptr[j]; k < lower.col_ptr[j + 1]; ++k) {
      // (i, j) with i >= j maps to (n-1-i, n-1-j)' = row n-1-i <= col n-1-j.
      coo.add(n - 1 - lower.row_idx[k], n - 1 - j, lower.val[k]);
    }
  }
  CscMatrix out = csc_from_coo(std::move(coo));
  MSPTRSV_ENSURE(is_upper_triangular(out), "mirror produced a non-upper matrix");
  return out;
}

}  // namespace msptrsv::sparse
