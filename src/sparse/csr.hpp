// Compressed Sparse Row matrix. Used by the ILU(0)/IC(0) factorizations
// (which sweep rows) and by the row-major reference solver; converts to/from
// the CSC format that the multi-GPU solvers consume.
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "support/types.hpp"

namespace msptrsv::sparse {

struct CsrMatrix {
  index_t rows = 0;
  index_t cols = 0;
  /// Size rows+1; row i occupies [row_ptr[i], row_ptr[i+1]).
  std::vector<offset_t> row_ptr;
  /// Column index of each nonzero, sorted ascending within a row.
  std::vector<index_t> col_idx;
  std::vector<value_t> val;

  offset_t nnz() const { return static_cast<offset_t>(col_idx.size()); }
  bool is_square() const { return rows == cols; }

  std::span<const index_t> row_cols(index_t i) const;
  std::span<const value_t> row_values(index_t i) const;

  void validate() const;
};

/// Format conversions (structure-preserving, deterministic).
CsrMatrix csr_from_csc(const CscMatrix& m);
CscMatrix csc_from_csr(const CsrMatrix& m);
CsrMatrix csr_from_coo(CooMatrix coo);

}  // namespace msptrsv::sparse
