// Compressed Sparse Column matrix -- the storage format of the paper
// (Section II: L is stored in CSC; `val[col_ptr[i]]` is the diagonal when
// rows are sorted within each column).
#pragma once

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "support/types.hpp"

namespace msptrsv::sparse {

struct CscMatrix {
  index_t rows = 0;
  index_t cols = 0;
  /// Size cols+1; column j occupies [col_ptr[j], col_ptr[j+1]).
  std::vector<offset_t> col_ptr;
  /// Row index of each nonzero, sorted ascending within a column.
  std::vector<index_t> row_idx;
  /// Value of each nonzero.
  std::vector<value_t> val;

  offset_t nnz() const { return static_cast<offset_t>(row_idx.size()); }
  bool is_square() const { return rows == cols; }

  /// View of the row indices of column j.
  std::span<const index_t> column_rows(index_t j) const;
  /// View of the values of column j.
  std::span<const value_t> column_values(index_t j) const;

  /// Structural sanity: monotone col_ptr, in-range sorted unique rows.
  /// Throws InvariantError on violation.
  void validate() const;
};

/// Builds a CSC matrix from (possibly unsorted, duplicated) triplets.
CscMatrix csc_from_coo(CooMatrix coo);

/// Converts back to triplets (used by I/O and tests).
CooMatrix coo_from_csc(const CscMatrix& m);

/// Structural + numerical transpose. The transpose of a CSC matrix is its
/// CSR representation with rows/cols swapped; this returns a proper CSC.
CscMatrix transpose(const CscMatrix& m);

/// True when both matrices have identical structure and values.
bool identical(const CscMatrix& a, const CscMatrix& b);

/// y = A * x (dense vector). Used to manufacture right-hand sides and to
/// verify solutions.
std::vector<value_t> multiply(const CscMatrix& a, std::span<const value_t> x);

}  // namespace msptrsv::sparse
