// Live metrics of the solve service, recorded lock-free on the hot path.
//
// Every submit/dispatch/complete event lands in plain atomic counters, a
// fixed-size latency ring, a power-of-two coalesce-width histogram, and a
// small open-addressed per-plan table -- no mutex anywhere near a request,
// so a stats scrape (snapshot()) never stalls the data path and the data
// path never serializes on observability. snapshot() assembles a coherent-
// enough point-in-time view: counters are read individually (monotonic, so
// cross-counter skew is bounded by what arrived during the read) and the
// latency quantiles come from the most recent ring contents.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace msptrsv::service {

/// Activity of one plan (keyed by SolverPlan::state_id()).
struct PlanActivity {
  const void* plan = nullptr;
  index_t rows = 0;
  /// Right-hand sides completed against this plan.
  std::uint64_t solves = 0;
};

struct ServiceStatsSnapshot {
  /// Right-hand sides admitted past backpressure.
  std::uint64_t submitted = 0;
  /// Right-hand sides refused with kOverloaded.
  std::uint64_t rejected = 0;
  /// Right-hand sides answered successfully / with an error.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Fused dispatches executed (each is one solve_batch call).
  std::uint64_t batches = 0;
  /// Right-hand sides that shared their dispatch with at least one other
  /// (the coalescing win: these rode the fused path "for free").
  std::uint64_t coalesced_rhs = 0;
  /// Dispatch width histogram: buckets 1, 2, 3-4, 5-8, 9-16, 17-32,
  /// 33-64, 65+ right-hand sides per fused call.
  std::array<std::uint64_t, 8> coalesce_hist{};
  /// Mean rhs per dispatch (dispatched rhs over batches, both counted at
  /// dispatch time).
  double mean_coalesce_width = 0.0;
  /// Pending right-hand sides at snapshot time / high-water mark.
  std::uint64_t queue_depth = 0;
  std::uint64_t peak_queue_depth = 0;
  /// Submit-to-completion latency over the most recent completions
  /// (support::percentile on the ring): the client-visible figure,
  /// coalesce-window wait included.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Per-plan completion counts (plans beyond the table capacity are
  /// summed into `other_plan_solves`). Keyed by the plan's state address
  /// for the service's lifetime: if a counted plan is destroyed and the
  /// allocator reuses its address for a NEW plan, the new plan's solves
  /// continue the old slot -- acceptable for a live dashboard; don't use
  /// this as an audit log across plan churn.
  std::vector<PlanActivity> per_plan;
  std::uint64_t other_plan_solves = 0;
};

class ServiceStats {
 public:
  /// Latency samples retained for the quantile window.
  static constexpr std::size_t kLatencyRing = 4096;
  /// Distinct plans tracked individually.
  static constexpr std::size_t kPlanSlots = 128;

  void on_submit(std::uint64_t num_rhs);
  void on_reject(std::uint64_t num_rhs);
  /// One fused dispatch of `width` total rhs merged from `requests`
  /// client requests (width counts into coalesced_rhs only when
  /// requests > 1 -- a lone multi-rhs batch coalesced with nothing).
  void on_dispatch(index_t width, std::size_t requests);
  /// One completed REQUEST (num_rhs of its columns), with the end-to-end
  /// latency observed by that request's client.
  void on_complete(const void* plan, index_t rows, std::uint64_t num_rhs,
                   bool ok, double latency_us);
  /// Queue-depth gauge (pending rhs); also tracks the high-water mark.
  void on_queue_depth(std::uint64_t depth);

  ServiceStatsSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> dispatched_rhs_{0};
  std::atomic<std::uint64_t> coalesced_rhs_{0};
  std::array<std::atomic<std::uint64_t>, 8> hist_{};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};

  /// Latency ring: doubles stored as bit patterns so the slots are plain
  /// atomics. ring_next_ only grows; the ring holds the last kLatencyRing
  /// samples.
  std::array<std::atomic<std::uint64_t>, kLatencyRing> ring_{};
  std::atomic<std::uint64_t> ring_next_{0};
  std::atomic<std::uint64_t> max_latency_bits_{0};

  /// Open-addressed per-plan counters: slots claim their key with one CAS
  /// and count forever after (plans are few and long-lived in a service;
  /// overflow spills into other_).
  struct PlanSlot {
    std::atomic<const void*> id{nullptr};
    std::atomic<index_t> rows{0};
    std::atomic<std::uint64_t> solves{0};
  };
  std::array<PlanSlot, kPlanSlots> plans_{};
  std::atomic<std::uint64_t> other_{0};
};

}  // namespace msptrsv::service
