// Live metrics of the solve service, recorded lock-free on the hot path.
//
// Every submit/dispatch/complete/shed event lands in plain atomic
// counters, latency rings (overall + one per priority class), a
// power-of-two coalesce-width histogram, a packed-dispatch histogram, and
// a small open-addressed per-plan table -- no mutex anywhere near a
// request, so a stats scrape (snapshot()) never stalls the data path and
// the data path never serializes on observability. snapshot() assembles a
// coherent-enough point-in-time view: counters are read individually
// (monotonic, so cross-counter skew is bounded by what arrived during the
// read) and the latency quantiles come from the most recent ring contents.
//
// LIMITATION -- the quantiles are ring-windowed, not lifetime-exact: each
// ring holds only the most recent `latency_ring` completions (per class),
// so p50/p99 describe a sliding window, old samples are overwritten
// silently, and a burst larger than the ring forgets its own head. The
// window is a constructor parameter (ServiceOptions::stats_latency_ring
// for the service); size it to at least a few seconds of peak completion
// rate if you scrape periodically. A real deployment that needs mergeable,
// full-history quantiles wants HDR-histogram-style state instead -- see
// docs/OPERATIONS.md ("Reading the stats") and the ROADMAP follow-up.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "service/latency_histogram.hpp"
#include "service/priority.hpp"
#include "support/trace.hpp"
#include "support/types.hpp"

namespace msptrsv::service {

/// Activity of one plan (keyed by SolverPlan::state_id()).
struct PlanActivity {
  const void* plan = nullptr;
  index_t rows = 0;
  /// Right-hand sides completed against this plan.
  std::uint64_t solves = 0;
};

/// Per-priority-class slice of the snapshot.
struct PriorityClassStats {
  /// Right-hand sides admitted / answered OK / shed past their deadline.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  /// Pending rhs of this class at snapshot time.
  std::uint64_t queue_depth = 0;
  /// Ring-windowed latency quantiles of this class (see file comment).
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Full-history mergeable latency histogram of this class (HDR-style
  /// log-linear buckets; see latency_histogram.hpp) -- what the fleet
  /// aggregation path sums across shards.
  LatencyHistogramSnapshot latency_hist;
};

struct ServiceStatsSnapshot {
  /// Right-hand sides admitted past backpressure.
  std::uint64_t submitted = 0;
  /// Right-hand sides refused with kOverloaded.
  std::uint64_t rejected = 0;
  /// Right-hand sides answered successfully / with an error.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Right-hand sides shed with kDeadlineExceeded (counted in neither
  /// completed nor failed).
  std::uint64_t shed = 0;
  /// Fused dispatches executed (each is one solve_batch call; a packed
  /// dispatch counts once per PLAN sub-batch it carries).
  std::uint64_t batches = 0;
  /// Right-hand sides that shared their dispatch with at least one other
  /// (the coalescing win: these rode the fused path "for free").
  std::uint64_t coalesced_rhs = 0;
  /// Dispatch width histogram: buckets 1, 2, 3-4, 5-8, 9-16, 17-32,
  /// 33-64, 65+ right-hand sides per fused call.
  std::array<std::uint64_t, 8> coalesce_hist{};
  /// Mean rhs per dispatch (dispatched rhs over batches, both counted at
  /// dispatch time).
  double mean_coalesce_width = 0.0;
  /// Cross-plan packing: pool dispatches that carried more than one
  /// plan's sub-batch, and the total sub-batches they carried.
  std::uint64_t packed_dispatches = 0;
  std::uint64_t packed_plans = 0;
  /// Plans-per-dispatch histogram: buckets 1, 2, 3-4, 5-8, 9+.
  std::array<std::uint64_t, 5> packed_hist{};
  /// Pending right-hand sides at snapshot time / high-water mark.
  std::uint64_t queue_depth = 0;
  std::uint64_t peak_queue_depth = 0;
  /// Submit-to-completion latency over the most recent completions (ring-
  /// windowed, see file comment): the client-visible figure, coalesce-
  /// window wait included.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Full-history latency histogram across all classes: unlike the ring
  /// quantiles above it never forgets a sample, and two snapshots (e.g.
  /// from two router shards) merge by bucket addition -- the server-side
  /// aggregation answer to the ring-window limitation.
  LatencyHistogramSnapshot latency_hist;
  /// Per-PHASE latency histograms, indexed in support::trace::kPhaseNames
  /// order (queue/coalesce/claim/pack/kernel/unpack/reply): where inside
  /// the pipeline the latency above actually went. Full-history and
  /// mergeable like latency_hist.
  std::array<LatencyHistogramSnapshot, support::trace::kNumPhases>
      phase_hist{};
  /// Per-class slices, indexed by static_cast<size_t>(Priority).
  std::array<PriorityClassStats, kNumPriorities> per_class{};
  /// Per-plan completion counts (plans beyond the table capacity are
  /// summed into `other_plan_solves`). Keyed by the plan's state address
  /// for the service's lifetime: if a counted plan is destroyed and the
  /// allocator reuses its address for a NEW plan, the new plan's solves
  /// continue the old slot -- acceptable for a live dashboard; don't use
  /// this as an audit log across plan churn.
  std::vector<PlanActivity> per_plan;
  std::uint64_t other_plan_solves = 0;
};

class ServiceStats {
 public:
  /// Default latency samples retained per quantile window (see the file
  /// comment for what the window means and when to size it up).
  static constexpr std::size_t kDefaultLatencyRing = 4096;
  /// Distinct plans tracked individually.
  static constexpr std::size_t kPlanSlots = 128;

  /// `latency_ring` is the per-ring sample capacity (overall ring plus
  /// one ring per priority class), clamped to >= 16.
  explicit ServiceStats(std::size_t latency_ring = kDefaultLatencyRing);

  void on_submit(Priority p, std::uint64_t num_rhs);
  void on_reject(std::uint64_t num_rhs);
  /// One fused dispatch of `width` total rhs merged from `requests`
  /// client requests (width counts into coalesced_rhs only when
  /// requests > 1 -- a lone multi-rhs batch coalesced with nothing).
  void on_dispatch(index_t width, std::size_t requests);
  /// One POOL dispatch carrying `plans` single-plan sub-batches (>= 1;
  /// > 1 is a cross-plan packed dispatch). Called once per pop, alongside
  /// one on_dispatch per sub-batch.
  void on_pool_dispatch(std::size_t plans);
  /// One completed REQUEST (num_rhs of its columns), with the end-to-end
  /// latency observed by that request's client.
  void on_complete(const void* plan, index_t rows, std::uint64_t num_rhs,
                   bool ok, Priority priority, double latency_us);
  /// One request shed with kDeadlineExceeded (not a completion).
  void on_shed(Priority priority, std::uint64_t num_rhs);
  /// Per-phase attribution of one completed request. The first six phases
  /// (queue..unpack) are known at completion time and recorded here;
  /// reply_us is ignored -- the reply phase ends on the SOCKET, after the
  /// service handed the result off, so the server pump reports it
  /// separately through on_reply_phase once the frame is flushed.
  void on_phases(const support::trace::PhaseBreakdown& phases);
  void on_reply_phase(double reply_us);
  /// Queue-depth gauge (pending rhs, total and per class); also tracks
  /// the high-water mark of the total.
  void on_queue_depth(std::uint64_t depth,
                      const std::array<std::uint64_t, kNumPriorities>&
                          depth_by_class);

  ServiceStatsSnapshot snapshot() const;
  std::size_t latency_ring_capacity() const { return ring_capacity_; }

 private:
  /// Lock-free sliding-window latency record: doubles stored as bit
  /// patterns so the slots are plain atomics. next only grows; the ring
  /// holds the last ring_capacity_ samples.
  struct Ring {
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> max_bits{0};
  };
  void record(Ring& ring, double latency_us);
  void quantiles(const Ring& ring, double& p50, double& p99,
                 double& max) const;

  const std::size_t ring_capacity_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> dispatched_rhs_{0};
  std::atomic<std::uint64_t> coalesced_rhs_{0};
  std::array<std::atomic<std::uint64_t>, 8> hist_{};
  std::atomic<std::uint64_t> packed_dispatches_{0};
  std::atomic<std::uint64_t> packed_plans_{0};
  std::array<std::atomic<std::uint64_t>, 5> packed_hist_{};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};

  Ring overall_;
  /// Full-history mergeable histograms alongside the rings: the rings
  /// answer "recent" cheaply, the histograms answer "ever" mergeably.
  LatencyHistogram hist_overall_;
  std::array<LatencyHistogram, kNumPriorities> hist_class_{};
  /// Per-phase histograms (kPhaseNames order); lock-free like the rest.
  std::array<LatencyHistogram, support::trace::kNumPhases> hist_phase_{};
  /// Per-class counters and rings, indexed by static_cast<size_t>(Priority).
  struct ClassCounters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> queue_depth{0};
  };
  std::array<ClassCounters, kNumPriorities> class_{};
  std::array<Ring, kNumPriorities> class_ring_{};

  /// Open-addressed per-plan counters: slots claim their key with one CAS
  /// and count forever after (plans are few and long-lived in a service;
  /// overflow spills into other_).
  struct PlanSlot {
    std::atomic<const void*> id{nullptr};
    std::atomic<index_t> rows{0};
    std::atomic<std::uint64_t> solves{0};
  };
  std::array<PlanSlot, kPlanSlots> plans_{};
  std::atomic<std::uint64_t> other_{0};
};

}  // namespace msptrsv::service
