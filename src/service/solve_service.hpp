// Multi-tenant solve service: the front door many concurrent clients call.
//
// PRs 1-3 built the substrate -- reusable SolverPlans, a true fused
// solve_batch, a content-addressed PlanCache -- and this subsystem turns it
// into a server:
//
//   service::SolveService svc;                        // shared pool + cache
//   auto plan = svc.plan_for(L, "cpu-syncfree");      // analyze-on-first-use
//   auto fut  = svc.submit(*plan, b);                 // async, non-blocking
//   auto slo  = svc.submit(*plan, b2,                 // SLO'd traffic
//       {.priority = service::Priority::kHigh,
//        .deadline = std::chrono::milliseconds(5)});
//   ...
//   core::Expected<core::SolveResult> r = fut.get();  // or r.status() ==
//                                                     // kOverloaded /
//                                                     // kDeadlineExceeded
//
//  * REQUEST COALESCING: same-plan requests arriving within a small window
//    merge into ONE fused solve_batch call -- independent single-RHS
//    traffic rides the 3-7x per-rhs fused path for free, and the result
//    bits are exactly what sequential plan.solve calls would produce
//    (the fused kernel's bit-for-bit guarantee from PR 2).
//  * PRIORITIES + DEADLINES: every submit carries a Priority class and an
//    optional start-by deadline. Ripening is weighted and deadline-aware
//    (see request_queue.hpp): high-priority groups dispatch first without
//    waiting for company, background groups wait longer and fuse wider,
//    and neither class can starve the other (bounded-delay aging).
//    Requests that would start past their deadline are shed with typed
//    kDeadlineExceeded instead of being solved for a client that already
//    gave up.
//  * CROSS-PLAN PACKING: ripe narrow solves from DIFFERENT small plans are
//    packed into one pool dispatch and executed as sibling tasks on one
//    claimed gang -- many tiny tenants ride one dispatch instead of
//    queueing one each, which is what keeps occupancy up when no single
//    tenant is wide enough to fill a gang. Bits are unchanged: each
//    sub-batch still runs the plan's own fused solve_batch.
//  * SHARDED DISPATCH: plans hash onto ServiceOptions::dispatch_shards
//    independent queue+dispatcher pairs, so the submit path scales past a
//    single pop/hand-off thread. (Coalescing and packing are per-shard:
//    same-plan requests always share a shard by construction.)
//  * SHARED EXECUTION: dispatches run as tasks on the process-wide
//    core::SharedWorkerPool (per-thread deques, work stealing), every
//    plan built through the service has use_shared_pool set, and gang
//    claims are reservation-capped at pool_size / active_solves under
//    contention -- total host threads stay capped no matter how many
//    tenants solve at once, no tenant's gang monopolizes the machine, and
//    an idle plan holds zero threads.
//  * BACKPRESSURE: admission is bounded in pending right-hand sides;
//    past the bound submit() completes the future immediately with typed
//    kOverloaded (never blocks, never drops silently).
//  * OBSERVABILITY: a lock-free ServiceStats publishes queue depth and
//    latency quantiles per priority class, the coalesce-width and
//    packed-dispatch histograms, per-plan solve counts, and shed counts.
//
// Lifetime: the service drains on destruction -- every admitted request is
// answered before the destructor returns. Plans handed out by plan_for()
// stay valid after the service dies (they only reference the process-wide
// shared pool).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "core/worker_pool.hpp"
#include "service/priority.hpp"
#include "service/request_queue.hpp"
#include "service/service_stats.hpp"

namespace msptrsv::service {

struct ServiceOptions {
  /// Admission bound: OUTSTANDING right-hand sides across all plans --
  /// everything admitted and not yet answered, whether still queued or
  /// already executing. Beyond it submits fail fast with kOverloaded.
  std::size_t max_pending_rhs = 1024;
  /// Widest fused dispatch (rhs per solve_batch call).
  index_t max_coalesce = 32;
  /// How long the first NORMAL-priority request of a group may wait for
  /// company. kHigh never waits; kBackground waits
  /// background_window_scale times this. 0 still coalesces whatever
  /// accumulates while the dispatcher is busy.
  std::chrono::microseconds coalesce_window{200};
  /// kBackground's window multiplier (>= 1).
  double background_window_scale = 4.0;
  /// Cross-plan packing: a ripe SMALL group (<= pack_small_rows rows,
  /// <= pack_narrow_width pending rhs) carries up to pack_max_groups - 1
  /// other ripe small groups in its pool dispatch, executed as sibling
  /// tasks on one claimed gang. 1 disables packing.
  std::size_t pack_max_groups = 8;
  index_t pack_narrow_width = 4;
  index_t pack_small_rows = 4096;
  /// Dispatcher shards: plans hash onto this many independent
  /// queue+dispatcher pairs (>= 1). Same-plan traffic always lands on one
  /// shard, so coalescing is unaffected; cross-plan packing only packs
  /// within a shard, so many-tiny-tenant deployments should prefer few
  /// shards unless submit rate demands more.
  int dispatch_shards = 1;
  /// Latency quantile window per stats ring (overall + one per priority
  /// class) -- quantiles cover only the most recent this-many
  /// completions; see the service_stats.hpp file comment.
  std::size_t stats_latency_ring = ServiceStats::kDefaultLatencyRing;
  /// Plan cache configuration for analyze-on-first-use (count capacity +
  /// optional byte budget).
  core::CacheOptions cache{};
  /// Optional blob directory for the cache (cross-process warm starts).
  std::string cache_dir;
  /// Pool the DISPATCH TASKS run on; null = the process-wide
  /// SharedWorkerPool::instance(). A non-null pool MUST outlive the
  /// service: a pool destroyed first abandons queued dispatches and the
  /// service's drain/destructor would wait forever. Note the kernel gangs
  /// of served plans always claim from the process-wide instance
  /// (use_shared_pool is a plan-level option with no per-service pool
  /// plumbing), so a private pool here isolates dispatch scheduling, not
  /// kernel threads.
  core::SharedWorkerPool* pool = nullptr;
};

class SolveService {
 public:
  using Reply = core::Expected<core::SolveResult>;

  explicit SolveService(ServiceOptions options = {});
  /// Drains: every admitted request is answered before this returns.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Asynchronous single-RHS solve. The future resolves to the solution
  /// (bit-for-bit what plan.solve(b) returns, however the dispatch was
  /// coalesced or packed) or to a typed error: kOverloaded under
  /// backpressure / shutdown, kDeadlineExceeded when `submit.deadline`
  /// passed before the solve could start, kShapeMismatch for a
  /// wrong-length b (checked at submit -- a malformed request must not
  /// poison a fused batch). Never blocks.
  std::future<Reply> submit(const core::SolverPlan& plan,
                            std::vector<value_t> b, SubmitOptions submit = {});

  /// Asynchronous multi-RHS solve (num_rhs columns, column-major). A
  /// client batch stays whole -- it may be coalesced WITH others but is
  /// never split across dispatches.
  std::future<Reply> submit_batch(const core::SolverPlan& plan,
                                  std::vector<value_t> rhs, index_t num_rhs,
                                  SubmitOptions submit = {});

  // ---- analyze-on-first-use ------------------------------------------------
  // All plan_for paths stamp use_shared_pool and go through the service's
  // own PlanCache: the first request against a factor pays the symbolic
  // phase (or a blob read), every later one is an O(1) hit.

  core::Expected<core::SolverPlan> plan_for(const sparse::CscMatrix& lower,
                                            core::SolveOptions options);
  /// Registry-keyed backend ("cpu-syncfree", "mg-zerocopy", ...).
  core::Expected<core::SolverPlan> plan_for(const sparse::CscMatrix& lower,
                                            std::string_view backend_key);
  /// Machine-preset construction ("dgx1x8", "dgx2x16", ...).
  core::Expected<core::SolverPlan> plan_for_preset(
      const sparse::CscMatrix& lower, std::string_view preset_key,
      core::Backend backend = core::Backend::kMgZeroCopy);

  /// Blocks until every request admitted so far has been answered.
  void drain();

  /// Abandons every in-flight solve: the dispatch token is cancelled, the
  /// host kernels notice at their next level/claim boundary, and each
  /// affected request is answered kOverloaded with its workspace returned
  /// clean. One-shot and irreversible -- after this call every future
  /// dispatch on this service is abandoned too, so it belongs immediately
  /// before destruction when a bounded shutdown matters more than
  /// finishing queued work. drain() afterwards completes in kernel-stride
  /// time instead of full-solve time.
  void abandon_inflight() { abandon_.cancel(); }

  ServiceStatsSnapshot stats() const { return stats_.snapshot(); }
  /// Reply-phase figure from the layer that actually flushes replies (the
  /// network server's completion pump): completion-to-socket-flush, in
  /// microseconds. Completes the per-phase histograms the first six
  /// phases of which the service records itself.
  void record_reply_us(double us) { stats_.on_reply_phase(us); }
  core::PlanCache& plan_cache() { return cache_; }
  const core::PlanCache& plan_cache() const { return cache_; }
  core::SharedWorkerPool& pool() { return *pool_; }
  const ServiceOptions& options() const { return options_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  std::future<Reply> enqueue(const core::SolverPlan& plan,
                             std::vector<value_t> rhs, index_t num_rhs,
                             SubmitOptions submit);
  /// The queue shard serving `state_id` (same plan -> same shard, always).
  std::size_t shard_of(const void* state_id) const;
  void dispatch_loop(std::size_t shard);
  /// Publishes total + per-class queue depth across all shards.
  void publish_depth();

  /// Runs one popped dispatch on a pool worker: shed expired requests,
  /// then execute the (possibly packed) group set. Must not throw.
  void execute_dispatch(PoppedDispatch& dispatch) noexcept;
  /// One single-plan sub-batch: concatenate, one fused solve_batch,
  /// split, answer every promise. Must not throw.
  void execute_group(std::vector<SolveRequest>& batch) noexcept;
  /// Answers `r` with kDeadlineExceeded and settles the admission
  /// accounting (the shed path of the deadline contract).
  void shed_request(SolveRequest& r) noexcept;

  ServiceOptions options_;
  core::SharedWorkerPool* pool_;
  core::PlanCache cache_;
  /// One queue per dispatcher shard; plans hash onto shards by state_id.
  std::vector<std::unique_ptr<RequestQueue>> shards_;
  ServiceStats stats_;

  /// Cross-shard queued-rhs gauges, mirrored from push/pop deltas so
  /// publish_depth() is a few atomic loads instead of locking every
  /// shard's mutex on every submit (which would serialize exactly the
  /// path dispatch_shards exists to scale).
  std::atomic<std::uint64_t> queued_rhs_{0};
  std::array<std::atomic<std::uint64_t>, kNumPriorities> queued_by_class_{};

  /// Lifetime cancellation source: its token rides every dispatched
  /// solve_batch, so abandon_inflight() can stop mid-execution work.
  core::CancelSource abandon_;

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  /// Requests admitted but not yet answered (queued OR executing): the
  /// drain condition is this hitting zero, which closes the window where
  /// a request is out of the queue but not yet answered.
  std::size_t unanswered_ = 0;
  /// The same span counted in RIGHT-HAND SIDES -- what max_pending_rhs
  /// bounds (popped-but-executing work included, so backpressure holds
  /// even when the dispatchers keep the queues themselves near empty).
  std::size_t outstanding_rhs_ = 0;

  std::vector<std::thread> dispatchers_;
};

}  // namespace msptrsv::service
