// Multi-tenant solve service: the front door many concurrent clients call.
//
// PRs 1-3 built the substrate -- reusable SolverPlans, a true fused
// solve_batch, a content-addressed PlanCache -- and this subsystem turns it
// into a server:
//
//   service::SolveService svc;                        // shared pool + cache
//   auto plan = svc.plan_for(L, "cpu-syncfree");      // analyze-on-first-use
//   auto fut  = svc.submit(*plan, b);                 // async, non-blocking
//   ...
//   core::Expected<core::SolveResult> r = fut.get();  // or r.status() ==
//                                                     // kOverloaded
//
//  * REQUEST COALESCING: same-plan requests arriving within a small window
//    merge into ONE fused solve_batch call -- independent single-RHS
//    traffic rides the 3-7x per-rhs fused path for free, and the result
//    bits are exactly what sequential plan.solve calls would produce
//    (the fused kernel's bit-for-bit guarantee from PR 2).
//  * SHARED EXECUTION: dispatches run as tasks on the process-wide
//    core::SharedWorkerPool (per-thread deques, work stealing), and every
//    plan built through the service has use_shared_pool set, so kernel
//    gangs claim idle shared workers instead of spawning plan-owned
//    threads -- total host threads stay capped no matter how many tenants
//    solve at once, and an idle plan holds zero threads.
//  * BACKPRESSURE: admission is bounded in pending right-hand sides;
//    past the bound submit() completes the future immediately with typed
//    kOverloaded (never blocks, never drops silently).
//  * OBSERVABILITY: a lock-free ServiceStats publishes queue depth, the
//    coalesce-width histogram, per-plan solve counts, and p50/p99/max
//    end-to-end latency.
//
// Lifetime: the service drains on destruction -- every admitted request is
// answered before the destructor returns. Plans handed out by plan_for()
// stay valid after the service dies (they only reference the process-wide
// shared pool).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "core/worker_pool.hpp"
#include "service/request_queue.hpp"
#include "service/service_stats.hpp"

namespace msptrsv::service {

struct ServiceOptions {
  /// Admission bound: OUTSTANDING right-hand sides across all plans --
  /// everything admitted and not yet answered, whether still queued or
  /// already executing. Beyond it submits fail fast with kOverloaded.
  std::size_t max_pending_rhs = 1024;
  /// Widest fused dispatch (rhs per solve_batch call).
  index_t max_coalesce = 32;
  /// How long the first request of a group may wait for company. 0 still
  /// coalesces whatever accumulates while the dispatcher is busy.
  std::chrono::microseconds coalesce_window{200};
  /// Plan cache configuration for analyze-on-first-use (count capacity +
  /// optional byte budget).
  core::CacheOptions cache{};
  /// Optional blob directory for the cache (cross-process warm starts).
  std::string cache_dir;
  /// Pool the DISPATCH TASKS run on; null = the process-wide
  /// SharedWorkerPool::instance(). A non-null pool MUST outlive the
  /// service: a pool destroyed first abandons queued dispatches and the
  /// service's drain/destructor would wait forever. Note the kernel gangs
  /// of served plans always claim from the process-wide instance
  /// (use_shared_pool is a plan-level option with no per-service pool
  /// plumbing), so a private pool here isolates dispatch scheduling, not
  /// kernel threads.
  core::SharedWorkerPool* pool = nullptr;
};

class SolveService {
 public:
  using Reply = core::Expected<core::SolveResult>;

  explicit SolveService(ServiceOptions options = {});
  /// Drains: every admitted request is answered before this returns.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Asynchronous single-RHS solve. The future resolves to the solution
  /// (bit-for-bit what plan.solve(b) returns, however the dispatch was
  /// coalesced) or to a typed error: kOverloaded under backpressure /
  /// shutdown, kShapeMismatch for a wrong-length b (checked at submit --
  /// a malformed request must not poison a fused batch). Never blocks.
  std::future<Reply> submit(const core::SolverPlan& plan,
                            std::vector<value_t> b);

  /// Asynchronous multi-RHS solve (num_rhs columns, column-major). A
  /// client batch stays whole -- it may be coalesced WITH others but is
  /// never split across dispatches.
  std::future<Reply> submit_batch(const core::SolverPlan& plan,
                                  std::vector<value_t> rhs, index_t num_rhs);

  // ---- analyze-on-first-use ------------------------------------------------
  // All plan_for paths stamp use_shared_pool and go through the service's
  // own PlanCache: the first request against a factor pays the symbolic
  // phase (or a blob read), every later one is an O(1) hit.

  core::Expected<core::SolverPlan> plan_for(const sparse::CscMatrix& lower,
                                            core::SolveOptions options);
  /// Registry-keyed backend ("cpu-syncfree", "mg-zerocopy", ...).
  core::Expected<core::SolverPlan> plan_for(const sparse::CscMatrix& lower,
                                            std::string_view backend_key);
  /// Machine-preset construction ("dgx1x8", "dgx2x16", ...).
  core::Expected<core::SolverPlan> plan_for_preset(
      const sparse::CscMatrix& lower, std::string_view preset_key,
      core::Backend backend = core::Backend::kMgZeroCopy);

  /// Blocks until every request admitted so far has been answered.
  void drain();

  ServiceStatsSnapshot stats() const { return stats_.snapshot(); }
  core::PlanCache& plan_cache() { return cache_; }
  core::SharedWorkerPool& pool() { return *pool_; }
  const ServiceOptions& options() const { return options_; }

 private:
  std::future<Reply> enqueue(const core::SolverPlan& plan,
                             std::vector<value_t> rhs, index_t num_rhs);
  void dispatch_loop();
  /// Runs one coalesced dispatch on a pool worker: concatenate, one fused
  /// solve_batch, split, answer every promise. Must not throw.
  void execute(std::vector<SolveRequest>& batch) noexcept;

  ServiceOptions options_;
  core::SharedWorkerPool* pool_;
  core::PlanCache cache_;
  RequestQueue queue_;
  ServiceStats stats_;

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  /// Requests admitted but not yet answered (queued OR executing): the
  /// drain condition is this hitting zero, which closes the window where
  /// a request is out of the queue but not yet answered.
  std::size_t unanswered_ = 0;
  /// The same span counted in RIGHT-HAND SIDES -- what max_pending_rhs
  /// bounds (popped-but-executing work included, so backpressure holds
  /// even when the dispatcher keeps the queue itself near empty).
  std::size_t outstanding_rhs_ = 0;

  std::thread dispatcher_;
};

}  // namespace msptrsv::service
