#include "service/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace msptrsv::service {

void LatencyHistogramSnapshot::merge(const LatencyHistogramSnapshot& other) {
  count += other.count;
  sum_us += other.sum_us;
  if (other.counts.size() > counts.size()) counts.resize(other.counts.size());
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
}

double LatencyHistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; q = 1 is the last sample.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return static_cast<double>(LatencyHistogram::bucket_floor(i));
    }
  }
  return counts.empty()
             ? 0.0
             : static_cast<double>(
                   LatencyHistogram::bucket_floor(counts.size() - 1));
}

double LatencyHistogramSnapshot::mean_us() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum_us) / static_cast<double>(count);
}

double LatencyHistogramSnapshot::max_us() const {
  for (std::size_t i = counts.size(); i-- > 0;) {
    if (counts[i] != 0) {
      return static_cast<double>(LatencyHistogram::bucket_ceil(i));
    }
  }
  return 0.0;
}

LatencyHistogram::LatencyHistogram()
    : counts_(new std::atomic<std::uint64_t>[kBuckets]) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t LatencyHistogram::index_of(std::uint64_t us) {
  if (us < kSub) return static_cast<std::size_t>(us);
  // Octave = position of the most significant bit above the linear region;
  // sub-bucket = the next kSubBits bits below it.
  const int msb = 63 - std::countl_zero(us);
  const int shift = msb - kSubBits;
  const std::uint64_t sub = (us >> shift) - kSub;  // in [0, kSub)
  const std::size_t idx =
      static_cast<std::size_t>(shift + 1) * kSub + static_cast<std::size_t>(sub);
  return std::min(idx, kBuckets - 1);
}

std::uint64_t LatencyHistogram::bucket_floor(std::size_t idx) {
  if (idx < kSub) return idx;
  const std::size_t shift = idx / kSub - 1;
  const std::uint64_t sub = idx % kSub;
  return (kSub + sub) << shift;
}

std::uint64_t LatencyHistogram::bucket_ceil(std::size_t idx) {
  if (idx < kSub) return idx;
  const std::size_t shift = idx / kSub - 1;
  const std::uint64_t sub = idx % kSub;
  return (((kSub + sub + 1) << shift)) - 1;
}

void LatencyHistogram::record(double us) {
  const std::uint64_t v =
      us <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(us));
  counts_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(v, std::memory_order_relaxed);
}

LatencyHistogramSnapshot LatencyHistogram::snapshot() const {
  LatencyHistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  std::size_t last = 0;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    if (counts[i] != 0) last = i + 1;
  }
  counts.resize(last);
  s.counts = std::move(counts);
  return s;
}

}  // namespace msptrsv::service
