#include "service/service_stats.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "support/stats.hpp"

namespace msptrsv::service {

namespace {

/// Bucket index for a dispatch width: 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64,
/// 65+ (power-of-two edges past the first two).
std::size_t width_bucket(index_t width) {
  if (width <= 1) return 0;
  if (width <= 2) return 1;
  if (width <= 4) return 2;
  if (width <= 8) return 3;
  if (width <= 16) return 4;
  if (width <= 32) return 5;
  if (width <= 64) return 6;
  return 7;
}

}  // namespace

void ServiceStats::on_submit(std::uint64_t num_rhs) {
  submitted_.fetch_add(num_rhs, std::memory_order_relaxed);
}

void ServiceStats::on_reject(std::uint64_t num_rhs) {
  rejected_.fetch_add(num_rhs, std::memory_order_relaxed);
}

void ServiceStats::on_dispatch(index_t width, std::size_t requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  dispatched_rhs_.fetch_add(static_cast<std::uint64_t>(width),
                            std::memory_order_relaxed);
  hist_[width_bucket(width)].fetch_add(1, std::memory_order_relaxed);
  // Coalesced means MERGED: a lone client's multi-rhs batch is wide but
  // shared with no one.
  if (requests > 1) {
    coalesced_rhs_.fetch_add(static_cast<std::uint64_t>(width),
                             std::memory_order_relaxed);
  }
}

void ServiceStats::on_complete(const void* plan, index_t rows,
                               std::uint64_t num_rhs, bool ok,
                               double latency_us) {
  (ok ? completed_ : failed_).fetch_add(num_rhs, std::memory_order_relaxed);

  const std::uint64_t slot =
      ring_next_.fetch_add(1, std::memory_order_relaxed) % kLatencyRing;
  ring_[slot].store(std::bit_cast<std::uint64_t>(latency_us),
                    std::memory_order_relaxed);
  // CAS max; latencies are non-negative, so the bit patterns order like
  // the doubles do.
  std::uint64_t seen = max_latency_bits_.load(std::memory_order_relaxed);
  const std::uint64_t mine = std::bit_cast<std::uint64_t>(latency_us);
  while (std::bit_cast<double>(seen) < latency_us &&
         !max_latency_bits_.compare_exchange_weak(
             seen, mine, std::memory_order_relaxed)) {
  }

  // Per-plan table: linear probe from a pointer-derived home slot; claim
  // an empty slot with CAS; overflow spills into other_.
  const std::size_t home =
      (reinterpret_cast<std::uintptr_t>(plan) >> 4) % kPlanSlots;
  for (std::size_t i = 0; i < kPlanSlots; ++i) {
    PlanSlot& s = plans_[(home + i) % kPlanSlots];
    const void* id = s.id.load(std::memory_order_acquire);
    if (id == nullptr) {
      const void* expected = nullptr;
      if (s.id.compare_exchange_strong(expected, plan,
                                       std::memory_order_acq_rel)) {
        s.rows.store(rows, std::memory_order_relaxed);
        s.solves.fetch_add(num_rhs, std::memory_order_relaxed);
        return;
      }
      id = expected;  // somebody else claimed it; fall through to compare
    }
    if (id == plan) {
      s.solves.fetch_add(num_rhs, std::memory_order_relaxed);
      return;
    }
  }
  other_.fetch_add(num_rhs, std::memory_order_relaxed);
}

void ServiceStats::on_queue_depth(std::uint64_t depth) {
  queue_depth_.store(depth, std::memory_order_relaxed);
  std::uint64_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak && !peak_queue_depth_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

ServiceStatsSnapshot ServiceStats::snapshot() const {
  ServiceStatsSnapshot out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.coalesced_rhs = coalesced_rhs_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < hist_.size(); ++i) {
    out.coalesce_hist[i] = hist_[i].load(std::memory_order_relaxed);
  }
  out.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  out.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);

  const std::uint64_t total = ring_next_.load(std::memory_order_relaxed);
  const std::size_t have =
      static_cast<std::size_t>(std::min<std::uint64_t>(total, kLatencyRing));
  std::vector<double> latencies;
  latencies.reserve(have);
  for (std::size_t i = 0; i < have; ++i) {
    latencies.push_back(
        std::bit_cast<double>(ring_[i].load(std::memory_order_relaxed)));
  }
  out.p50_latency_us = support::percentile(latencies, 0.50);
  out.p99_latency_us = support::percentile(latencies, 0.99);
  out.max_latency_us =
      std::bit_cast<double>(max_latency_bits_.load(std::memory_order_relaxed));

  // Both counters tick at dispatch time, so the ratio is coherent even
  // while dispatches are still executing.
  out.mean_coalesce_width =
      out.batches == 0
          ? 0.0
          : static_cast<double>(
                dispatched_rhs_.load(std::memory_order_relaxed)) /
                static_cast<double>(out.batches);

  for (const PlanSlot& s : plans_) {
    const void* id = s.id.load(std::memory_order_acquire);
    if (id == nullptr) continue;
    PlanActivity a;
    a.plan = id;
    a.rows = s.rows.load(std::memory_order_relaxed);
    a.solves = s.solves.load(std::memory_order_relaxed);
    out.per_plan.push_back(a);
  }
  std::sort(out.per_plan.begin(), out.per_plan.end(),
            [](const PlanActivity& a, const PlanActivity& b) {
              return a.solves > b.solves;
            });
  out.other_plan_solves = other_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace msptrsv::service
