#include "service/service_stats.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "support/stats.hpp"

namespace msptrsv::service {

namespace {

/// Bucket index for a dispatch width: 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64,
/// 65+ (power-of-two edges past the first two).
std::size_t width_bucket(index_t width) {
  if (width <= 1) return 0;
  if (width <= 2) return 1;
  if (width <= 4) return 2;
  if (width <= 8) return 3;
  if (width <= 16) return 4;
  if (width <= 32) return 5;
  if (width <= 64) return 6;
  return 7;
}

/// Bucket index for plans per pool dispatch: 1, 2, 3-4, 5-8, 9+.
std::size_t pack_bucket(std::size_t plans) {
  if (plans <= 1) return 0;
  if (plans <= 2) return 1;
  if (plans <= 4) return 2;
  if (plans <= 8) return 3;
  return 4;
}

}  // namespace

ServiceStats::ServiceStats(std::size_t latency_ring)
    : ring_capacity_(std::max<std::size_t>(16, latency_ring)) {
  const auto init = [&](Ring& r) {
    r.slots = std::make_unique<std::atomic<std::uint64_t>[]>(ring_capacity_);
    for (std::size_t i = 0; i < ring_capacity_; ++i) {
      r.slots[i].store(0, std::memory_order_relaxed);
    }
  };
  init(overall_);
  for (Ring& r : class_ring_) init(r);
}

void ServiceStats::on_submit(Priority p, std::uint64_t num_rhs) {
  submitted_.fetch_add(num_rhs, std::memory_order_relaxed);
  class_[static_cast<std::size_t>(p)].submitted.fetch_add(
      num_rhs, std::memory_order_relaxed);
}

void ServiceStats::on_reject(std::uint64_t num_rhs) {
  rejected_.fetch_add(num_rhs, std::memory_order_relaxed);
}

void ServiceStats::on_dispatch(index_t width, std::size_t requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  dispatched_rhs_.fetch_add(static_cast<std::uint64_t>(width),
                            std::memory_order_relaxed);
  hist_[width_bucket(width)].fetch_add(1, std::memory_order_relaxed);
  // Coalesced means MERGED: a lone client's multi-rhs batch is wide but
  // shared with no one.
  if (requests > 1) {
    coalesced_rhs_.fetch_add(static_cast<std::uint64_t>(width),
                             std::memory_order_relaxed);
  }
}

void ServiceStats::on_pool_dispatch(std::size_t plans) {
  packed_hist_[pack_bucket(plans)].fetch_add(1, std::memory_order_relaxed);
  if (plans > 1) {
    packed_dispatches_.fetch_add(1, std::memory_order_relaxed);
    packed_plans_.fetch_add(static_cast<std::uint64_t>(plans),
                            std::memory_order_relaxed);
  }
}

void ServiceStats::record(Ring& ring, double latency_us) {
  const std::uint64_t slot =
      ring.next.fetch_add(1, std::memory_order_relaxed) % ring_capacity_;
  const std::uint64_t mine = std::bit_cast<std::uint64_t>(latency_us);
  ring.slots[slot].store(mine, std::memory_order_relaxed);
  // CAS max; latencies are non-negative, so the bit patterns order like
  // the doubles do.
  std::uint64_t seen = ring.max_bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(seen) < latency_us &&
         !ring.max_bits.compare_exchange_weak(seen, mine,
                                              std::memory_order_relaxed)) {
  }
}

void ServiceStats::quantiles(const Ring& ring, double& p50, double& p99,
                             double& max) const {
  const std::uint64_t total = ring.next.load(std::memory_order_relaxed);
  const std::size_t have = static_cast<std::size_t>(
      std::min<std::uint64_t>(total, ring_capacity_));
  std::vector<double> latencies;
  latencies.reserve(have);
  for (std::size_t i = 0; i < have; ++i) {
    latencies.push_back(
        std::bit_cast<double>(ring.slots[i].load(std::memory_order_relaxed)));
  }
  p50 = support::percentile(latencies, 0.50);
  p99 = support::percentile(latencies, 0.99);
  max = std::bit_cast<double>(ring.max_bits.load(std::memory_order_relaxed));
}

void ServiceStats::on_complete(const void* plan, index_t rows,
                               std::uint64_t num_rhs, bool ok,
                               Priority priority, double latency_us) {
  (ok ? completed_ : failed_).fetch_add(num_rhs, std::memory_order_relaxed);
  ClassCounters& cls = class_[static_cast<std::size_t>(priority)];
  if (ok) cls.completed.fetch_add(num_rhs, std::memory_order_relaxed);

  record(overall_, latency_us);
  record(class_ring_[static_cast<std::size_t>(priority)], latency_us);
  hist_overall_.record(latency_us);
  hist_class_[static_cast<std::size_t>(priority)].record(latency_us);

  // Per-plan table: linear probe from a pointer-derived home slot; claim
  // an empty slot with CAS; overflow spills into other_.
  const std::size_t home =
      (reinterpret_cast<std::uintptr_t>(plan) >> 4) % kPlanSlots;
  for (std::size_t i = 0; i < kPlanSlots; ++i) {
    PlanSlot& s = plans_[(home + i) % kPlanSlots];
    const void* id = s.id.load(std::memory_order_acquire);
    if (id == nullptr) {
      const void* expected = nullptr;
      if (s.id.compare_exchange_strong(expected, plan,
                                       std::memory_order_acq_rel)) {
        s.rows.store(rows, std::memory_order_relaxed);
        s.solves.fetch_add(num_rhs, std::memory_order_relaxed);
        return;
      }
      id = expected;  // somebody else claimed it; fall through to compare
    }
    if (id == plan) {
      s.solves.fetch_add(num_rhs, std::memory_order_relaxed);
      return;
    }
  }
  other_.fetch_add(num_rhs, std::memory_order_relaxed);
}

void ServiceStats::on_phases(const support::trace::PhaseBreakdown& phases) {
  hist_phase_[0].record(phases.queue_us);
  hist_phase_[1].record(phases.coalesce_us);
  hist_phase_[2].record(phases.claim_us);
  hist_phase_[3].record(phases.pack_us);
  hist_phase_[4].record(phases.kernel_us);
  hist_phase_[5].record(phases.unpack_us);
  // [6] (reply) is recorded by on_reply_phase from the server pump.
}

void ServiceStats::on_reply_phase(double reply_us) {
  hist_phase_[support::trace::kNumPhases - 1].record(reply_us);
}

void ServiceStats::on_shed(Priority priority, std::uint64_t num_rhs) {
  shed_.fetch_add(num_rhs, std::memory_order_relaxed);
  class_[static_cast<std::size_t>(priority)].shed.fetch_add(
      num_rhs, std::memory_order_relaxed);
}

void ServiceStats::on_queue_depth(
    std::uint64_t depth,
    const std::array<std::uint64_t, kNumPriorities>& depth_by_class) {
  queue_depth_.store(depth, std::memory_order_relaxed);
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    class_[c].queue_depth.store(depth_by_class[c],
                                std::memory_order_relaxed);
  }
  std::uint64_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak && !peak_queue_depth_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

ServiceStatsSnapshot ServiceStats::snapshot() const {
  ServiceStatsSnapshot out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.coalesced_rhs = coalesced_rhs_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < hist_.size(); ++i) {
    out.coalesce_hist[i] = hist_[i].load(std::memory_order_relaxed);
  }
  out.packed_dispatches =
      packed_dispatches_.load(std::memory_order_relaxed);
  out.packed_plans = packed_plans_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < packed_hist_.size(); ++i) {
    out.packed_hist[i] = packed_hist_[i].load(std::memory_order_relaxed);
  }
  out.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  out.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);

  quantiles(overall_, out.p50_latency_us, out.p99_latency_us,
            out.max_latency_us);
  out.latency_hist = hist_overall_.snapshot();
  for (std::size_t p = 0; p < hist_phase_.size(); ++p) {
    out.phase_hist[p] = hist_phase_[p].snapshot();
  }
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    PriorityClassStats& pc = out.per_class[c];
    pc.submitted = class_[c].submitted.load(std::memory_order_relaxed);
    pc.completed = class_[c].completed.load(std::memory_order_relaxed);
    pc.shed = class_[c].shed.load(std::memory_order_relaxed);
    pc.queue_depth = class_[c].queue_depth.load(std::memory_order_relaxed);
    quantiles(class_ring_[c], pc.p50_latency_us, pc.p99_latency_us,
              pc.max_latency_us);
    pc.latency_hist = hist_class_[c].snapshot();
  }

  // Both counters tick at dispatch time, so the ratio is coherent even
  // while dispatches are still executing.
  out.mean_coalesce_width =
      out.batches == 0
          ? 0.0
          : static_cast<double>(
                dispatched_rhs_.load(std::memory_order_relaxed)) /
                static_cast<double>(out.batches);

  for (const PlanSlot& s : plans_) {
    const void* id = s.id.load(std::memory_order_acquire);
    if (id == nullptr) continue;
    PlanActivity a;
    a.plan = id;
    a.rows = s.rows.load(std::memory_order_relaxed);
    a.solves = s.solves.load(std::memory_order_relaxed);
    out.per_plan.push_back(a);
  }
  std::sort(out.per_plan.begin(), out.per_plan.end(),
            [](const PlanActivity& a, const PlanActivity& b) {
              return a.solves > b.solves;
            });
  out.other_plan_solves = other_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace msptrsv::service
