// Scheduling vocabulary of the solve service, shared by the request queue
// (which schedules on it), the stats (which aggregate per class), and the
// submit API (which stamps it on requests). Deliberately dependency-free:
// everything observability-side can name a Priority without pulling in the
// plan machinery.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "support/trace.hpp"

namespace msptrsv::service {

/// Scheduling class of a request. Order matters: smaller enum value =
/// more urgent; kNumPriorities sizes every per-class stats array.
enum class Priority : std::uint8_t {
  /// Latency-sensitive: ripens immediately (coalesces only with what has
  /// already accumulated) and wins selection at comparable wait.
  kHigh = 0,
  /// The default: one coalesce window, the PR 4 behavior.
  kNormal = 1,
  /// Throughput traffic: waits a multiple of the window for maximal
  /// fusion and yields to the classes above while they are fresh.
  kBackground = 2,
};
inline constexpr std::size_t kNumPriorities = 3;

constexpr std::string_view to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kBackground: return "background";
  }
  return "unknown-priority";
}

/// Per-request scheduling knobs of submit/submit_batch.
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Relative SLO: the request should START executing within this much of
  /// submit time. 0 = no deadline. A deadline pulls its group's ripening
  /// forward (the dispatch happens early enough to make it); a request
  /// that still starts late is shed with kDeadlineExceeded rather than
  /// solved for a client that has already given up.
  std::chrono::microseconds deadline{0};
  /// Request-scoped trace identity (all-zero = untraced) and the span the
  /// submitting side opened for this request: the dispatcher installs
  /// both as the executing thread's trace context so the server-side span
  /// tree (queue wait, gang claim, kernel levels) stitches under the
  /// caller's. See support/trace.hpp.
  support::trace::TraceId trace_id{};
  std::uint64_t parent_span = 0;
};

}  // namespace msptrsv::service
