#include "service/request_queue.hpp"

#include <algorithm>

namespace msptrsv::service {

RequestQueue::RequestQueue(std::chrono::microseconds coalesce_window,
                           index_t max_width)
    : window_(coalesce_window), max_width_(std::max<index_t>(1, max_width)) {}

bool RequestQueue::push(SolveRequest r) {
  const index_t k = r.num_rhs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    Group& g = groups_[r.plan.state_id()];
    g.width += k;
    g.requests.push_back(std::move(r));
    pending_rhs_ += static_cast<std::size_t>(k);
  }
  cv_.notify_one();
  return true;
}

bool RequestQueue::ripe_locked(const Group& g, Clock::time_point now) const {
  if (stopping_) return true;
  if (g.width >= max_width_) return true;
  return now - g.requests.front().submitted >= window_;
}

std::vector<SolveRequest> RequestQueue::pop_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const Clock::time_point now = Clock::now();
    // Among ripe groups take the one whose head waited longest (FIFO
    // fairness across plans); otherwise compute the earliest ripening to
    // bound the wait.
    const void* best = nullptr;
    Clock::time_point best_head{};
    Clock::time_point next_deadline = Clock::time_point::max();
    for (const auto& [id, g] : groups_) {
      const Clock::time_point head = g.requests.front().submitted;
      if (ripe_locked(g, now)) {
        if (best == nullptr || head < best_head) {
          best = id;
          best_head = head;
        }
      } else {
        next_deadline = std::min(next_deadline, head + window_);
      }
    }
    if (best != nullptr) {
      Group& g = groups_.find(best)->second;
      std::vector<SolveRequest> out;
      index_t width = 0;
      // Whole requests only: a multi-rhs submit is one client's batch and
      // is never split across dispatches. The first request always goes
      // (even when wider than max_width_ on its own).
      while (!g.requests.empty() &&
             (out.empty() ||
              width + g.requests.front().num_rhs <= max_width_)) {
        width += g.requests.front().num_rhs;
        out.push_back(std::move(g.requests.front()));
        g.requests.pop_front();
      }
      g.width -= width;
      pending_rhs_ -= static_cast<std::size_t>(width);
      if (g.requests.empty()) groups_.erase(best);
      return out;
    }
    if (stopping_) return {};  // drained: the dispatcher's exit signal
    if (next_deadline == Clock::time_point::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, next_deadline);
    }
  }
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth_rhs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_rhs_;
}

}  // namespace msptrsv::service
