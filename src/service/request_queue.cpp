#include "service/request_queue.hpp"

#include <algorithm>

namespace msptrsv::service {

namespace {

/// Selection weights of the weighted-wait rule: among ripe groups the
/// dispatcher takes the largest (head wait) * weight. Higher classes win
/// while waits are comparable; a lower class wins once it has waited the
/// weight ratio longer -- bounded delay in both directions, so neither a
/// background flood nor a high-priority stream can starve the other
/// indefinitely (the aging bound the starvation test pins down).
constexpr double kClassWeight[kNumPriorities] = {16.0, 4.0, 1.0};

std::size_t class_of(Priority p) { return static_cast<std::size_t>(p); }

}  // namespace

RequestQueue::RequestQueue(QueueOptions options) : opt_([&] {
  QueueOptions o = options;
  o.max_width = std::max<index_t>(1, o.max_width);
  o.pack_max_groups = std::max<std::size_t>(1, o.pack_max_groups);
  o.pack_narrow_width = std::max<index_t>(1, o.pack_narrow_width);
  o.background_window_scale = std::max(1.0, o.background_window_scale);
  return o;
}()) {}

bool RequestQueue::push(SolveRequest r) {
  const index_t k = r.num_rhs;
  const std::size_t cls = class_of(r.priority);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    Group& g = groups_[r.plan.state_id()];
    if (g.requests.empty()) {
      g.priority = r.priority;
      g.earliest_deadline = r.deadline;
    } else {
      // A more urgent rider promotes the whole group (it dispatches with
      // it anyway), and the earliest deadline governs the ripen pull.
      g.priority = std::min(g.priority, r.priority);
      g.earliest_deadline = std::min(g.earliest_deadline, r.deadline);
    }
    g.width += k;
    g.requests.push_back(std::move(r));
    pending_rhs_ += static_cast<std::size_t>(k);
    pending_by_class_[cls] += static_cast<std::size_t>(k);
  }
  // One notify covers both "new group may be ripe" and "an existing
  // group's ripen time moved earlier" (promotion / deadline pull): the
  // popper recomputes every ripen time on each wake.
  cv_.notify_one();
  return true;
}

RequestQueue::Clock::time_point RequestQueue::ripe_at_locked(
    const Group& g) const {
  if (stopping_) return Clock::time_point::min();           // drain mode
  if (g.width >= opt_.max_width) return Clock::time_point::min();
  const Clock::time_point head = g.requests.front().submitted;
  Clock::time_point at;
  switch (g.priority) {
    case Priority::kHigh:
      at = head;  // latency class: never waits for company
      break;
    case Priority::kBackground:
      at = head + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::micro>(
                          static_cast<double>(opt_.window.count()) *
                          opt_.background_window_scale));
      break;
    case Priority::kNormal:
    default:
      at = head + opt_.window;
      break;
  }
  if (g.earliest_deadline != Clock::time_point::max()) {
    // Deadline pull: dispatch early enough to START before the deadline,
    // with one window of headroom for the pop -> execute handoff. (A
    // deadline tighter than the window ripens the group immediately.)
    const Clock::time_point pull = g.earliest_deadline - opt_.window;
    at = std::min(at, pull);
  }
  return at;
}

bool RequestQueue::packable_locked(const Group& g) const {
  return g.requests.front().plan.rows() <= opt_.pack_small_rows &&
         g.width <= opt_.pack_narrow_width;
}

std::vector<SolveRequest> RequestQueue::take_locked(const void* id, Group& g,
                                                    index_t width_cap) {
  std::vector<SolveRequest> out;
  index_t width = 0;
  // Whole requests only: a multi-rhs submit is one client's batch and is
  // never split across dispatches. The first request always goes (even
  // when wider than the cap on its own).
  while (!g.requests.empty() &&
         (out.empty() || width + g.requests.front().num_rhs <= width_cap)) {
    width += g.requests.front().num_rhs;
    out.push_back(std::move(g.requests.front()));
    g.requests.pop_front();
  }
  g.width -= width;
  pending_rhs_ -= static_cast<std::size_t>(width);
  for (const SolveRequest& r : out) {
    pending_by_class_[class_of(r.priority)] -=
        static_cast<std::size_t>(r.num_rhs);
  }
  if (g.requests.empty()) {
    groups_.erase(id);
  } else {
    // Derived fields over the remainder (the popped head may have carried
    // the promotion or the earliest deadline).
    g.priority = Priority::kBackground;
    g.earliest_deadline = Clock::time_point::max();
    for (const SolveRequest& r : g.requests) {
      g.priority = std::min(g.priority, r.priority);
      g.earliest_deadline = std::min(g.earliest_deadline, r.deadline);
    }
  }
  return out;
}

PoppedDispatch RequestQueue::pop_dispatch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const Clock::time_point now = Clock::now();
    const void* best = nullptr;
    double best_score = -1.0;
    Clock::time_point next_ripe = Clock::time_point::max();
    for (const auto& [id, g] : groups_) {
      const Clock::time_point at = ripe_at_locked(g);
      if (at <= now) {
        const double wait_us =
            std::chrono::duration<double, std::micro>(
                now - g.requests.front().submitted)
                .count();
        // +1us floor so a freshly-ripe high group still outranks a
        // freshly-ripe background one at (near) zero wait.
        const double score =
            (wait_us + 1.0) * kClassWeight[class_of(g.priority)];
        if (score > best_score) {
          best_score = score;
          best = id;
        }
      } else {
        next_ripe = std::min(next_ripe, at);
      }
    }
    if (best != nullptr) {
      PoppedDispatch out;
      Group& g = groups_.find(best)->second;
      const bool pack = opt_.pack_max_groups > 1 && packable_locked(g);
      out.groups.push_back(take_locked(best, g, opt_.max_width));
      if (pack) {
        // The winner is a small tenant: carry other ripe small tenants in
        // the same dispatch (ids first -- take_locked erases map entries).
        std::vector<const void*> riders;
        for (const auto& [id, og] : groups_) {
          if (out.groups.size() + riders.size() >= opt_.pack_max_groups)
            break;
          if (id == best) continue;  // best survives only on a partial pop
          if (packable_locked(og) && ripe_at_locked(og) <= now)
            riders.push_back(id);
        }
        for (const void* id : riders) {
          Group& og = groups_.find(id)->second;
          out.groups.push_back(take_locked(id, og, opt_.pack_narrow_width));
        }
      }
      return out;
    }
    if (stopping_) return {};  // drained: the dispatcher's exit signal
    if (next_ripe == Clock::time_point::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, next_ripe);
    }
  }
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth_rhs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_rhs_;
}

std::size_t RequestQueue::depth_rhs(Priority p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_by_class_[class_of(p)];
}

}  // namespace msptrsv::service
