#include "service/solve_service.hpp"

#include <exception>
#include <string>
#include <utility>

#include "core/registry.hpp"

namespace msptrsv::service {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - t0).count();
}

/// A future already carrying its answer (the rejection/validation path).
std::future<SolveService::Reply> ready_reply(SolveService::Reply reply) {
  std::promise<SolveService::Reply> p;
  std::future<SolveService::Reply> f = p.get_future();
  p.set_value(std::move(reply));
  return f;
}

}  // namespace

SolveService::SolveService(ServiceOptions options)
    : options_(options),
      pool_(options.pool != nullptr ? options.pool
                                    : &core::SharedWorkerPool::instance()),
      cache_(options.cache),
      queue_(options.coalesce_window, options.max_coalesce) {
  if (!options_.cache_dir.empty()) {
    cache_.set_disk_directory(options_.cache_dir);
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SolveService::~SolveService() {
  // Stop admission, let the dispatcher drain whatever is queued (shutdown
  // flips pop_batch to drain mode), then wait for every in-flight
  // dispatch to answer its promises -- they run on the shared pool and
  // reference this object.
  queue_.shutdown();
  dispatcher_.join();
  drain();
}

std::future<SolveService::Reply> SolveService::submit(
    const core::SolverPlan& plan, std::vector<value_t> b) {
  return enqueue(plan, std::move(b), 1);
}

std::future<SolveService::Reply> SolveService::submit_batch(
    const core::SolverPlan& plan, std::vector<value_t> rhs,
    index_t num_rhs) {
  return enqueue(plan, std::move(rhs), num_rhs);
}

std::future<SolveService::Reply> SolveService::enqueue(
    const core::SolverPlan& plan, std::vector<value_t> rhs,
    index_t num_rhs) {
  // Shape errors are caught HERE, not at dispatch: a wrong-length rhs
  // concatenated into a fused batch would corrupt its neighbors' columns.
  if (num_rhs < 1) {
    return ready_reply(Reply(core::SolveStatus::kShapeMismatch,
                             "num_rhs must be >= 1 (got " +
                                 std::to_string(num_rhs) + ")"));
  }
  const std::size_t expected = static_cast<std::size_t>(plan.rows()) *
                               static_cast<std::size_t>(num_rhs);
  if (rhs.size() != expected) {
    return ready_reply(
        Reply(core::SolveStatus::kShapeMismatch,
              "batch of " + std::to_string(num_rhs) + " rhs requires " +
                  std::to_string(expected) + " values (column-major), got " +
                  std::to_string(rhs.size())));
  }
  // A batch wider than the whole admission bound can NEVER be admitted:
  // that is a permanent shape problem, not transient overload -- telling
  // the client to "retry later" would loop it forever.
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  if (k > options_.max_pending_rhs) {
    return ready_reply(
        Reply(core::SolveStatus::kShapeMismatch,
              "batch of " + std::to_string(num_rhs) +
                  " rhs exceeds the service admission bound of " +
                  std::to_string(options_.max_pending_rhs) +
                  " outstanding rhs; split the batch or raise "
                  "ServiceOptions::max_pending_rhs"));
  }

  SolveRequest request{plan, std::move(rhs), num_rhs, {}, Clock::now()};
  std::future<Reply> future = request.promise.get_future();

  // Admission counts OUTSTANDING rhs -- admitted but not yet answered --
  // not just the un-popped queue: a popped batch moves to the shared
  // pool's deques, and bounding only the queue would let a sustained
  // flood accumulate admitted work there without limit.
  bool admitted;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    admitted = outstanding_rhs_ + k <= options_.max_pending_rhs;
    if (admitted) {
      ++unanswered_;
      outstanding_rhs_ += k;
    }
  }
  if (admitted && !queue_.push(std::move(request))) {
    // Shutdown, the queue's only refusal: roll the admission back.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --unanswered_;
    outstanding_rhs_ -= k;
    pending_cv_.notify_all();
    admitted = false;
  }
  if (!admitted) {
    stats_.on_reject(static_cast<std::uint64_t>(num_rhs));
    return ready_reply(
        Reply(core::SolveStatus::kOverloaded,
              "solve service is at capacity (" +
                  std::to_string(options_.max_pending_rhs) +
                  " pending rhs) or shutting down; retry later"));
  }
  stats_.on_submit(static_cast<std::uint64_t>(num_rhs));
  stats_.on_queue_depth(queue_.depth_rhs());
  return future;
}

void SolveService::dispatch_loop() {
  for (;;) {
    std::vector<SolveRequest> batch = queue_.pop_batch();
    stats_.on_queue_depth(queue_.depth_rhs());
    if (batch.empty()) return;  // shut down and drained

    index_t width = 0;
    for (const SolveRequest& r : batch) width += r.num_rhs;
    stats_.on_dispatch(width, batch.size());

    // Hand the dispatch to the shared pool: per-thread deques + stealing
    // spread concurrent plans' batches across the machine, and the worker
    // that picks it up becomes tid 0 of the solve's gang. shared_ptr
    // because std::function must be copyable.
    auto job = std::make_shared<std::vector<SolveRequest>>(std::move(batch));
    pool_->submit([this, job] { execute(*job); });
  }
}

void SolveService::execute(std::vector<SolveRequest>& batch) noexcept {
  const core::SolverPlan& plan = batch.front().plan;
  const std::size_t n = static_cast<std::size_t>(plan.rows());
  index_t total_rhs = 0;
  for (const SolveRequest& r : batch) total_rhs += r.num_rhs;

  // Answer exactly once per request, in order; `answered` makes the
  // catch-all below safe (a promise set twice would itself throw).
  std::size_t answered = 0;
  const auto answer = [&](SolveRequest& r, Reply reply, bool ok) {
    const double latency = us_since(r.submitted, Clock::now());
    stats_.on_complete(plan.state_id(), plan.rows(),
                       static_cast<std::uint64_t>(r.num_rhs), ok, latency);
    r.promise.set_value(std::move(reply));
    ++answered;
    {
      // Notify UNDER the lock: a drain()-ing destructor may tear the
      // condition variable down the moment the count hits zero, so the
      // notify must complete before the waiter can observe it.
      std::lock_guard<std::mutex> lock(pending_mutex_);
      --unanswered_;
      outstanding_rhs_ -= static_cast<std::size_t>(r.num_rhs);
      pending_cv_.notify_all();
    }
  };

  try {
    Reply result = [&]() -> Reply {
      if (batch.size() == 1) {
        // The common un-coalesced case: solve straight from the client's
        // buffer, no concatenation copy.
        return plan.solve_batch(batch.front().rhs, batch.front().num_rhs);
      }
      std::vector<value_t> concat;
      concat.reserve(n * static_cast<std::size_t>(total_rhs));
      for (const SolveRequest& r : batch) {
        concat.insert(concat.end(), r.rhs.begin(), r.rhs.end());
      }
      return plan.solve_batch(concat, total_rhs);
    }();

    if (!result.ok()) {
      for (SolveRequest& r : batch) {
        answer(r, Reply(result.error()), /*ok=*/false);
      }
      return;
    }

    core::SolveResult& whole = result.value();
    if (batch.size() == 1) {
      answer(batch.front(), std::move(whole), /*ok=*/true);
      return;
    }
    std::size_t offset = 0;
    for (SolveRequest& r : batch) {
      core::SolveResult reply;
      const std::size_t cols = static_cast<std::size_t>(r.num_rhs);
      reply.x.assign(whole.x.begin() + static_cast<std::ptrdiff_t>(offset * n),
                     whole.x.begin() +
                         static_cast<std::ptrdiff_t>((offset + cols) * n));
      // Every rider shares the batch's report: the solve cost IS the
      // fused makespan (that is the whole point of coalescing); only the
      // rhs count is each client's own.
      reply.report = whole.report;
      reply.report.num_rhs = r.num_rhs;
      reply.wall_seconds = whole.wall_seconds;
      answer(r, std::move(reply), /*ok=*/true);
      offset += cols;
    }
  } catch (const std::exception& e) {
    const std::string what = e.what();
    for (std::size_t i = answered; i < batch.size(); ++i) {
      answer(batch[i],
             Reply(core::SolveStatus::kInternalError,
                   "dispatch failed: " + what),
             /*ok=*/false);
    }
  } catch (...) {
    for (std::size_t i = answered; i < batch.size(); ++i) {
      answer(batch[i],
             Reply(core::SolveStatus::kInternalError,
                   "dispatch failed with a non-standard exception"),
             /*ok=*/false);
    }
  }
}

core::Expected<core::SolverPlan> SolveService::plan_for(
    const sparse::CscMatrix& lower, core::SolveOptions options) {
  options.use_shared_pool = true;
  return cache_.get_or_analyze(lower, options);
}

core::Expected<core::SolverPlan> SolveService::plan_for(
    const sparse::CscMatrix& lower, std::string_view backend_key) {
  core::Expected<core::SolveOptions> opt =
      core::registry::service_options(backend_key);
  if (!opt.ok()) return core::Expected<core::SolverPlan>(opt.error());
  return cache_.get_or_analyze(lower, opt.value());
}

core::Expected<core::SolverPlan> SolveService::plan_for_preset(
    const sparse::CscMatrix& lower, std::string_view preset_key,
    core::Backend backend) {
  core::Expected<core::SolveOptions> opt =
      core::registry::service_preset_options(preset_key, backend);
  if (!opt.ok()) return core::Expected<core::SolverPlan>(opt.error());
  return cache_.get_or_analyze(lower, opt.value());
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [&] { return unanswered_ == 0; });
}

}  // namespace msptrsv::service
