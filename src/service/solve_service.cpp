#include "service/solve_service.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "core/registry.hpp"
#include "core/workspace.hpp"
#include "support/failpoint.hpp"
#include "support/trace.hpp"

namespace msptrsv::service {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - t0).count();
}

/// steady_clock time_point -> the trace layer's nanosecond time base
/// (both are time_since_epoch of the same clock).
std::uint64_t ns_of(Clock::time_point t) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

/// A future already carrying its answer (the rejection/validation path).
std::future<SolveService::Reply> ready_reply(SolveService::Reply reply) {
  std::promise<SolveService::Reply> p;
  std::future<SolveService::Reply> f = p.get_future();
  p.set_value(std::move(reply));
  return f;
}

QueueOptions queue_options(const ServiceOptions& o) {
  QueueOptions q;
  q.window = o.coalesce_window;
  q.max_width = o.max_coalesce;
  q.background_window_scale = o.background_window_scale;
  q.pack_max_groups = o.pack_max_groups;
  q.pack_narrow_width = o.pack_narrow_width;
  q.pack_small_rows = o.pack_small_rows;
  return q;
}

}  // namespace

SolveService::SolveService(ServiceOptions options)
    : options_(options),
      pool_(options.pool != nullptr ? options.pool
                                    : &core::SharedWorkerPool::instance()),
      cache_(options.cache),
      stats_(options.stats_latency_ring) {
  if (!options_.cache_dir.empty()) {
    cache_.set_disk_directory(options_.cache_dir);
  }
  const int n_shards = std::max(1, options_.dispatch_shards);
  options_.dispatch_shards = n_shards;
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    shards_.push_back(std::make_unique<RequestQueue>(queue_options(options_)));
  }
  dispatchers_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    dispatchers_.emplace_back(
        [this, s] { dispatch_loop(static_cast<std::size_t>(s)); });
  }
}

SolveService::~SolveService() {
  // Stop admission, let each dispatcher drain whatever is queued on its
  // shard (shutdown flips pop_dispatch to drain mode), then wait for
  // every in-flight dispatch to answer its promises -- they run on the
  // shared pool and reference this object.
  for (auto& q : shards_) q->shutdown();
  for (std::thread& d : dispatchers_) d.join();
  drain();
}

std::size_t SolveService::shard_of(const void* state_id) const {
  // Fibonacci-mix the pointer (state ids are heap addresses: the low bits
  // are alignment zeros, the high bits are shared) so plans spread evenly
  // over the shards.
  const std::uint64_t h =
      (reinterpret_cast<std::uintptr_t>(state_id) >> 4) *
      UINT64_C(0x9E3779B97F4A7C15);
  return static_cast<std::size_t>((h >> 32) % shards_.size());
}

std::future<SolveService::Reply> SolveService::submit(
    const core::SolverPlan& plan, std::vector<value_t> b,
    SubmitOptions submit) {
  return enqueue(plan, std::move(b), 1, submit);
}

std::future<SolveService::Reply> SolveService::submit_batch(
    const core::SolverPlan& plan, std::vector<value_t> rhs, index_t num_rhs,
    SubmitOptions submit) {
  return enqueue(plan, std::move(rhs), num_rhs, submit);
}

std::future<SolveService::Reply> SolveService::enqueue(
    const core::SolverPlan& plan, std::vector<value_t> rhs, index_t num_rhs,
    SubmitOptions submit) {
  // Shape errors are caught HERE, not at dispatch: a wrong-length rhs
  // concatenated into a fused batch would corrupt its neighbors' columns.
  if (num_rhs < 1) {
    return ready_reply(Reply(core::SolveStatus::kShapeMismatch,
                             "num_rhs must be >= 1 (got " +
                                 std::to_string(num_rhs) + ")"));
  }
  const std::size_t expected = static_cast<std::size_t>(plan.rows()) *
                               static_cast<std::size_t>(num_rhs);
  if (rhs.size() != expected) {
    return ready_reply(
        Reply(core::SolveStatus::kShapeMismatch,
              "batch of " + std::to_string(num_rhs) + " rhs requires " +
                  std::to_string(expected) + " values (column-major), got " +
                  std::to_string(rhs.size())));
  }
  // A batch wider than the whole admission bound can NEVER be admitted:
  // that is a permanent shape problem, not transient overload -- telling
  // the client to "retry later" would loop it forever.
  const std::size_t k = static_cast<std::size_t>(num_rhs);
  if (k > options_.max_pending_rhs) {
    return ready_reply(
        Reply(core::SolveStatus::kShapeMismatch,
              "batch of " + std::to_string(num_rhs) +
                  " rhs exceeds the service admission bound of " +
                  std::to_string(options_.max_pending_rhs) +
                  " outstanding rhs; split the batch or raise "
                  "ServiceOptions::max_pending_rhs"));
  }

  SolveRequest request{plan,
                       std::move(rhs),
                       num_rhs,
                       submit.priority,
                       Clock::time_point::max(),
                       {},
                       Clock::now()};
  if (submit.deadline.count() > 0) {
    request.deadline = request.submitted + submit.deadline;
  }
  request.trace_id = submit.trace_id;
  request.parent_span = submit.parent_span;
  std::future<Reply> future = request.promise.get_future();

  // Admission counts OUTSTANDING rhs -- admitted but not yet answered --
  // not just the un-popped queues: a popped batch moves to the shared
  // pool's deques, and bounding only the queues would let a sustained
  // flood accumulate admitted work there without limit.
  bool admitted;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    admitted = outstanding_rhs_ + k <= options_.max_pending_rhs;
    if (admitted) {
      ++unanswered_;
      outstanding_rhs_ += k;
    }
  }
  const Priority priority = request.priority;
  RequestQueue& shard = *shards_[shard_of(plan.state_id())];
  if (admitted && !shard.push(std::move(request))) {
    // Shutdown, the queue's only refusal: roll the admission back.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --unanswered_;
    outstanding_rhs_ -= k;
    pending_cv_.notify_all();
    admitted = false;
  }
  if (!admitted) {
    stats_.on_reject(static_cast<std::uint64_t>(num_rhs));
    return ready_reply(
        Reply(core::SolveStatus::kOverloaded,
              "solve service is at capacity (" +
                  std::to_string(options_.max_pending_rhs) +
                  " pending rhs) or shutting down; retry later"));
  }
  queued_rhs_.fetch_add(k, std::memory_order_relaxed);
  queued_by_class_[static_cast<std::size_t>(priority)].fetch_add(
      k, std::memory_order_relaxed);
  stats_.on_submit(priority, static_cast<std::uint64_t>(num_rhs));
  publish_depth();
  return future;
}

void SolveService::publish_depth() {
  // Mirrored atomics, not the shard mutexes: this runs on every submit
  // and every pop, and locking all N shards here would serialize the
  // very path sharding is meant to scale. The gauges are eventually
  // consistent with the queues (push increments before this publish, pop
  // decrements before its publish).
  std::array<std::uint64_t, kNumPriorities> by_class{};
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    by_class[c] = queued_by_class_[c].load(std::memory_order_relaxed);
  }
  stats_.on_queue_depth(queued_rhs_.load(std::memory_order_relaxed),
                        by_class);
}

void SolveService::dispatch_loop(std::size_t shard) {
  RequestQueue& queue = *shards_[shard];
  for (;;) {
    PoppedDispatch dispatch = queue.pop_dispatch();
    for (const std::vector<SolveRequest>& g : dispatch.groups) {
      for (const SolveRequest& r : g) {
        const std::uint64_t k = static_cast<std::uint64_t>(r.num_rhs);
        queued_rhs_.fetch_sub(k, std::memory_order_relaxed);
        queued_by_class_[static_cast<std::size_t>(r.priority)].fetch_sub(
            k, std::memory_order_relaxed);
      }
    }
    publish_depth();
    if (dispatch.groups.empty()) return;  // shut down and drained

    // Hand the dispatch to the shared pool: per-thread deques + stealing
    // spread concurrent plans' batches across the machine, and the worker
    // that picks it up becomes tid 0 of the dispatch's gang. A dispatch
    // carrying any high-priority request jumps the pool's task queue
    // (urgent submit) -- the priority must survive the last FIFO stage
    // between this pop and a worker, not just the pop order. shared_ptr
    // because std::function must be copyable.
    bool urgent = false;
    for (const std::vector<SolveRequest>& g : dispatch.groups) {
      for (const SolveRequest& r : g) {
        urgent = urgent || r.priority == Priority::kHigh;
      }
    }
    auto job = std::make_shared<PoppedDispatch>(std::move(dispatch));
    pool_->submit([this, job] { execute_dispatch(*job); }, urgent);
  }
}

void SolveService::shed_request(SolveRequest& r) noexcept {
  stats_.on_shed(r.priority, static_cast<std::uint64_t>(r.num_rhs));
  const double waited = us_since(r.submitted, Clock::now());
  r.promise.set_value(Reply(
      core::SolveStatus::kDeadlineExceeded,
      "deadline passed before the solve could start (waited " +
          std::to_string(static_cast<long long>(waited)) +
          " us); request shed"));
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --unanswered_;
    outstanding_rhs_ -= static_cast<std::size_t>(r.num_rhs);
    pending_cv_.notify_all();
  }
}

void SolveService::execute_dispatch(PoppedDispatch& dispatch) noexcept {
  // Shed requests whose start-by deadline has already passed -- solving
  // them would spend gang time on answers nobody is waiting for. The
  // check sits at execution start (not pop) so queue-to-worker handoff
  // delay counts against the deadline too.
  const Clock::time_point now = Clock::now();
  for (std::vector<SolveRequest>& group : dispatch.groups) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (group[i].deadline < now) {
        shed_request(group[i]);
      } else {
        if (kept != i) group[kept] = std::move(group[i]);
        ++kept;
      }
    }
    group.erase(group.begin() + static_cast<std::ptrdiff_t>(kept),
                group.end());
  }
  std::erase_if(dispatch.groups,
                [](const std::vector<SolveRequest>& g) { return g.empty(); });
  if (dispatch.groups.empty()) return;

  stats_.on_pool_dispatch(dispatch.groups.size());
  if (dispatch.groups.size() == 1) {
    execute_group(dispatch.groups.front());
    return;
  }

  // Cross-plan packed dispatch: the sub-batches run as SIBLING tasks on
  // one claimed gang -- one claim for the whole pack instead of one tiny
  // (and reservation-throttled) gang per tenant. Each sibling pins its
  // nested solve to width 1 (ScopedGangCap): the packed plans are small,
  // so intra-solve parallelism is worth less than solving the pack's
  // members concurrently, and the siblings must not steal each other's
  // workers. Bits are unchanged -- the kernels are width-invariant.
  std::atomic<std::size_t> next{0};
  pool_->run_gang(
      static_cast<int>(dispatch.groups.size()) - 1, [](int) {},
      [&](int, int) {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= dispatch.groups.size()) return;
          core::ScopedGangCap solo(1);
          execute_group(dispatch.groups[i]);
        }
      });
}

void SolveService::execute_group(std::vector<SolveRequest>& batch) noexcept {
  const core::SolverPlan& plan = batch.front().plan;
  const std::size_t n = static_cast<std::size_t>(plan.rows());
  index_t total_rhs = 0;
  for (const SolveRequest& r : batch) total_rhs += r.num_rhs;
  stats_.on_dispatch(total_rhs, batch.size());

  // Execution start / coalesce end: queue_us is each request's
  // submit-to-here wait; coalesce_us is the part of that wait spent
  // gathering companions (submit to the YOUNGEST member's submit).
  const Clock::time_point exec_start = Clock::now();
  Clock::time_point youngest = batch.front().submitted;
  for (const SolveRequest& r : batch) {
    youngest = std::max(youngest, r.submitted);
  }
  // Synthetic spans for the wait the requests already served: emitted
  // with the stored timestamps, parented under each request's own client
  // span (the tree is per-request even when the dispatch is fused).
  if (MSPTRSV_TRACE_ARMED()) {
    const std::uint64_t exec_ns = ns_of(exec_start);
    const std::uint64_t youngest_ns = ns_of(youngest);
    for (const SolveRequest& r : batch) {
      if (!support::trace::trace_id_set(r.trace_id)) continue;
      const std::uint64_t sub_ns = ns_of(r.submitted);
      support::trace::trace_emit("service.queue", sub_ns, exec_ns, r.trace_id,
                                 r.parent_span, "rhs",
                                 static_cast<std::int64_t>(r.num_rhs));
      support::trace::trace_emit(
          "service.coalesce", sub_ns, youngest_ns, r.trace_id, r.parent_span,
          "companions", static_cast<std::int64_t>(batch.size() - 1));
    }
  }

  // Answer exactly once per request, in order; `answered` makes the
  // catch-all below safe (a promise set twice would itself throw).
  std::size_t answered = 0;
  const auto answer = [&](SolveRequest& r, Reply reply, bool ok) {
    const double latency = us_since(r.submitted, Clock::now());
    stats_.on_complete(plan.state_id(), plan.rows(),
                       static_cast<std::uint64_t>(r.num_rhs), ok, r.priority,
                       latency);
    // Slow-request sampler: report every completion (no-op when tracing
    // is disarmed or the request is untraced).
    support::trace::trace_note_completion(r.trace_id, latency);
    r.promise.set_value(std::move(reply));
    ++answered;
    {
      // Notify UNDER the lock: a drain()-ing destructor may tear the
      // condition variable down the moment the count hits zero, so the
      // notify must complete before the waiter can observe it.
      std::lock_guard<std::mutex> lock(pending_mutex_);
      --unanswered_;
      outstanding_rhs_ -= static_cast<std::size_t>(r.num_rhs);
      pending_cv_.notify_all();
    }
  };

  try {
    Reply result = [&]() -> Reply {
      // Chaos seam: fail or stall a whole dispatch group here without
      // involving the kernels (error arg = the SolveStatus to inject).
      if (const support::FailpointHit fp =
              MSPTRSV_FAILPOINT("service.dispatch");
          fp.kind == support::FailpointHit::Kind::kError) {
        return Reply(static_cast<core::SolveStatus>(fp.arg),
                     "injected by failpoint service.dispatch");
      }
      // The fused solve is ONE kernel run: its spans (gang claim, kernel
      // levels) record under the FIRST traced request of the batch -- the
      // executing thread is tid 0 of the gang, so installing the context
      // here is what carries the id all the way into the kernels. Riders
      // still get their own queue/coalesce spans and phase figures.
      std::optional<support::trace::ScopedTraceContext> trace_ctx;
      if (MSPTRSV_TRACE_ARMED()) {
        for (const SolveRequest& r : batch) {
          if (support::trace::trace_id_set(r.trace_id)) {
            trace_ctx.emplace(r.trace_id, r.parent_span);
            break;
          }
        }
      }
      MSPTRSV_TRACE_SPAN("service.execute", "rhs",
                         static_cast<std::int64_t>(total_rhs));
      // The service-lifetime abandon token rides every dispatch so
      // abandon_inflight() stops mid-execution solves; the plan tightens
      // it with its own time_budget (core::SolverPlan::effective_token).
      const core::CancelToken cancel = abandon_.token();
      if (batch.size() == 1) {
        // The common un-coalesced case: solve straight from the client's
        // buffer, no concatenation copy.
        return plan.solve_batch(batch.front().rhs, batch.front().num_rhs,
                                cancel);
      }
      std::vector<value_t> concat;
      concat.reserve(n * static_cast<std::size_t>(total_rhs));
      for (const SolveRequest& r : batch) {
        concat.insert(concat.end(), r.rhs.begin(), r.rhs.end());
      }
      return plan.solve_batch(concat, total_rhs, cancel);
    }();

    if (!result.ok()) {
      for (SolveRequest& r : batch) {
        answer(r, Reply(result.error()), /*ok=*/false);
      }
      return;
    }

    core::SolveResult& whole = result.value();
    // Per-request phase attribution: claim/pack/kernel/unpack are batch
    // figures from the core (shared by every rider -- the fused run IS
    // their solve); queue/coalesce are each request's own wait. reply_us
    // stays 0 here -- the server pump stamps it once the frame flushes.
    const auto stamp_phases = [&](SolveRequest& r, core::SolveResult& reply) {
      reply.phases.queue_us = us_since(r.submitted, exec_start);
      reply.phases.coalesce_us = us_since(r.submitted, youngest);
      reply.completed_ns = whole.completed_ns;
      stats_.on_phases(reply.phases);
    };
    if (batch.size() == 1) {
      stamp_phases(batch.front(), whole);
      answer(batch.front(), std::move(whole), /*ok=*/true);
      return;
    }
    std::size_t offset = 0;
    for (SolveRequest& r : batch) {
      core::SolveResult reply;
      const std::size_t cols = static_cast<std::size_t>(r.num_rhs);
      reply.x.assign(whole.x.begin() + static_cast<std::ptrdiff_t>(offset * n),
                     whole.x.begin() +
                         static_cast<std::ptrdiff_t>((offset + cols) * n));
      // Every rider shares the batch's report: the solve cost IS the
      // fused makespan (that is the whole point of coalescing); only the
      // rhs count is each client's own.
      reply.report = whole.report;
      reply.report.num_rhs = r.num_rhs;
      reply.wall_seconds = whole.wall_seconds;
      reply.phases = whole.phases;
      stamp_phases(r, reply);
      answer(r, std::move(reply), /*ok=*/true);
      offset += cols;
    }
  } catch (const std::exception& e) {
    const std::string what = e.what();
    for (std::size_t i = answered; i < batch.size(); ++i) {
      answer(batch[i],
             Reply(core::SolveStatus::kInternalError,
                   "dispatch failed: " + what),
             /*ok=*/false);
    }
  } catch (...) {
    for (std::size_t i = answered; i < batch.size(); ++i) {
      answer(batch[i],
             Reply(core::SolveStatus::kInternalError,
                   "dispatch failed with a non-standard exception"),
             /*ok=*/false);
    }
  }
}

core::Expected<core::SolverPlan> SolveService::plan_for(
    const sparse::CscMatrix& lower, core::SolveOptions options) {
  options.use_shared_pool = true;
  return cache_.get_or_analyze(lower, options);
}

core::Expected<core::SolverPlan> SolveService::plan_for(
    const sparse::CscMatrix& lower, std::string_view backend_key) {
  core::Expected<core::SolveOptions> opt =
      core::registry::service_options(backend_key);
  if (!opt.ok()) return core::Expected<core::SolverPlan>(opt.error());
  return cache_.get_or_analyze(lower, opt.value());
}

core::Expected<core::SolverPlan> SolveService::plan_for_preset(
    const sparse::CscMatrix& lower, std::string_view preset_key,
    core::Backend backend) {
  core::Expected<core::SolveOptions> opt =
      core::registry::service_preset_options(preset_key, backend);
  if (!opt.ok()) return core::Expected<core::SolverPlan>(opt.error());
  return cache_.get_or_analyze(lower, opt.value());
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [&] { return unanswered_ == 0; });
}

}  // namespace msptrsv::service
