// Bounded, plan-grouped request queue with priority- and deadline-aware
// time-window coalescing, and cross-plan packing of small tenants.
//
// The queue is the service's batching AND scheduling point. Requests are
// grouped by plan identity (SolverPlan::state_id()); a group becomes RIPE
// when its pending width reaches the maximum fused batch, when its oldest
// request has waited out its priority-scaled coalesce window, when a
// member's deadline is close enough that waiting longer would miss it, or
// at shutdown (drain). pop_batch() hands the dispatcher ONE dispatch --
// usually up to max_width right-hand sides of one ripe group (whole
// requests, never splitting one), which becomes a single fused solve_batch
// call; when the ripe group is SMALL (few rows, few rhs), other ripe small
// groups are PACKED into the same dispatch as sibling sub-batches so many
// tiny tenants ride one gang claim instead of queueing one dispatch each.
//
// Scheduling replaces PR 4's FIFO-across-plans rule with weighted
// deadline-aware ripening:
//
//  * each priority class scales the coalesce window (kHigh ripens
//    immediately -- latency traffic never waits for company it may not
//    get; kBackground waits a multiple of the window -- throughput traffic
//    trades latency for width);
//  * among ripe groups the dispatcher takes the one with the largest
//    priority-WEIGHTED head wait. Strictly higher classes win while waits
//    are comparable, but a background group's score grows without bound as
//    it waits, so a flood of one class can delay another by at most the
//    weight ratio times its own service time -- starvation-free in both
//    directions, by construction;
//  * a request with a deadline pulls its group's ripen time forward to
//    deadline minus one window of headroom, so an SLO'd request is
//    dispatched while it can still make it. Requests that nevertheless
//    START past their deadline are shed by the dispatcher with typed
//    kDeadlineExceeded instead of being solved late (the shed decision
//    lives in SolveService::execute, where execution start time is known).
//
// Admission control does NOT live here: the service bounds OUTSTANDING rhs
// (queued or executing), a strict superset of what this queue holds, so
// push() only ever refuses after shutdown.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "service/priority.hpp"

namespace msptrsv::service {

/// One admitted client request: a plan reference (copies share state), the
/// right-hand sides, scheduling fields, and the promise the dispatcher
/// answers through.
struct SolveRequest {
  core::SolverPlan plan;
  /// num_rhs columns of length plan.rows(), column-major.
  std::vector<value_t> rhs;
  index_t num_rhs = 1;
  Priority priority = Priority::kNormal;
  /// Absolute start-by time; time_point::max() = none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::promise<core::Expected<core::SolveResult>> promise;
  std::chrono::steady_clock::time_point submitted;
  /// Request-scoped trace identity (all-zero = untraced) and the span the
  /// submitting side opened for this request -- the dispatcher installs
  /// them as the executing thread's context so server-side spans stitch
  /// under the client's tree. See support/trace.hpp.
  support::trace::TraceId trace_id{};
  std::uint64_t parent_span = 0;
};

/// Scheduling configuration of one queue shard.
struct QueueOptions {
  /// Base coalesce window (Priority::kNormal's wait for company).
  std::chrono::microseconds window{200};
  /// Widest fused dispatch, in rhs.
  index_t max_width = 32;
  /// kBackground's window is window * background_window_scale.
  double background_window_scale = 4.0;
  /// Cross-plan packing: a ripe SMALL group (<= pack_small_rows rows and
  /// <= pack_narrow_width pending rhs) may carry up to pack_max_groups - 1
  /// other ripe small groups in its dispatch. 1 disables packing.
  std::size_t pack_max_groups = 8;
  index_t pack_narrow_width = 4;
  index_t pack_small_rows = 4096;
};

/// One popped dispatch: groups[0] is the scheduling winner; any further
/// entries are small-tenant sub-batches packed onto the same dispatch.
/// Every inner vector is non-empty and single-plan (ready for one fused
/// solve_batch); distinct entries are distinct plans. Empty `groups` means
/// shut down AND drained: the dispatcher's exit signal.
struct PoppedDispatch {
  std::vector<std::vector<SolveRequest>> groups;
};

class RequestQueue {
 public:
  explicit RequestQueue(QueueOptions options);

  /// Enqueues `r`; false only after shutdown() (the caller rolls its
  /// admission back).
  bool push(SolveRequest r);

  /// Blocks until a group is ripe and pops one dispatch (see
  /// PoppedDispatch). After shutdown() the windows stop applying (drain
  /// mode).
  PoppedDispatch pop_dispatch();

  /// Stops admission and switches pop_dispatch to drain mode. Idempotent.
  void shutdown();

  /// Pending right-hand sides (the backpressure/depth gauge), total and
  /// per priority class. (The service publishes its depth gauges from
  /// its own mirrored atomics; these locked accessors are for tests and
  /// direct queue users.)
  std::size_t depth_rhs() const;
  std::size_t depth_rhs(Priority p) const;

 private:
  struct Group {
    std::deque<SolveRequest> requests;
    /// Summed num_rhs of `requests`.
    index_t width = 0;
    /// Most urgent class among members (a high-priority rider promotes
    /// the whole group: it will be dispatched with it anyway).
    Priority priority = Priority::kBackground;
    /// Earliest member deadline (time_point::max() = none).
    std::chrono::steady_clock::time_point earliest_deadline;
  };
  using Clock = std::chrono::steady_clock;

  /// When the group ripens (<= now means ripe). Caller locks.
  Clock::time_point ripe_at_locked(const Group& g) const;
  /// True when `g` qualifies for cross-plan packing (small plan, narrow
  /// pending width). Caller locks.
  bool packable_locked(const Group& g) const;
  /// Pops up to `width_cap` rhs of `g` (whole requests, oldest first) into
  /// `out` and refreshes the group's derived fields; erases the group from
  /// the map when emptied. Caller locks.
  std::vector<SolveRequest> take_locked(const void* id, Group& g,
                                        index_t width_cap);

  const QueueOptions opt_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<const void*, Group> groups_;
  std::size_t pending_rhs_ = 0;
  std::size_t pending_by_class_[kNumPriorities] = {0, 0, 0};
  bool stopping_ = false;
};

}  // namespace msptrsv::service
