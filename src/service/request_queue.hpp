// Bounded, plan-grouped request queue with time-window coalescing.
//
// The queue is the service's batching point. Requests are grouped by plan
// identity (SolverPlan::state_id()); a group becomes RIPE when its oldest
// request has waited the coalesce window, or when its pending width
// reaches the maximum fused batch, or at shutdown (drain). pop_batch()
// hands the dispatcher up to max_width right-hand sides of ONE ripe group
// -- whole requests, never splitting one -- which the dispatcher turns
// into a single fused solve_batch call. Admission control does NOT live
// here: the service bounds OUTSTANDING rhs (queued or executing), a
// strict superset of what this queue holds, so push() only ever refuses
// after shutdown.
//
// The window trades latency for width: during a burst, requests that
// arrive within window_us of each other merge into one kernel sweep (the
// 3-7x per-rhs fused path of PR 2) at the cost of at most one window of
// added latency for the first arrival. window 0 still coalesces whatever
// accumulated while the dispatcher was busy -- natural batching under
// load, zero added latency when idle.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"

namespace msptrsv::service {

/// One admitted client request: a plan reference (copies share state), the
/// right-hand sides, and the promise the dispatcher answers through.
struct SolveRequest {
  core::SolverPlan plan;
  /// num_rhs columns of length plan.rows(), column-major.
  std::vector<value_t> rhs;
  index_t num_rhs = 1;
  std::promise<core::Expected<core::SolveResult>> promise;
  std::chrono::steady_clock::time_point submitted;
};

class RequestQueue {
 public:
  RequestQueue(std::chrono::microseconds coalesce_window, index_t max_width);

  /// Enqueues `r`; false only after shutdown() (the caller rolls its
  /// admission back).
  bool push(SolveRequest r);

  /// Blocks until a group is ripe, pops up to max_width rhs of it (whole
  /// requests, oldest first), and returns them -- all sharing one
  /// state_id(), ready for one fused solve_batch. After shutdown() the
  /// window stops applying (drain mode); an empty vector means shut down
  /// AND empty: the dispatcher's exit signal.
  std::vector<SolveRequest> pop_batch();

  /// Stops admission and switches pop_batch to drain mode. Idempotent.
  void shutdown();

  /// Pending right-hand sides (the backpressure/depth gauge).
  std::size_t depth_rhs() const;

 private:
  struct Group {
    std::deque<SolveRequest> requests;
    /// Summed num_rhs of `requests`.
    index_t width = 0;
  };
  using Clock = std::chrono::steady_clock;

  /// Ripe = width-triggered, window-expired, or draining. Caller locks.
  bool ripe_locked(const Group& g, Clock::time_point now) const;

  const std::chrono::microseconds window_;
  const index_t max_width_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<const void*, Group> groups_;
  std::size_t pending_rhs_ = 0;
  bool stopping_ = false;
};

}  // namespace msptrsv::service
