// Mergeable HDR-style latency histogram: the aggregation-grade companion
// of the ServiceStats latency rings.
//
// The rings (service_stats.hpp) answer "what are p50/p99 over the last N
// completions" cheaply, but they cannot be merged across shards and they
// forget everything older than the window. A fleet -- N server processes
// behind a plan-hash router -- needs quantiles over EVERYTHING each shard
// ever completed, combinable by plain bucket addition. This histogram is
// the standard high-dynamic-range construction:
//
//  * values are microseconds, bucketed log-linearly: 32 linear sub-buckets
//    per power-of-two octave, so every recorded value lands in a bucket
//    whose width is at most 1/32 (~3.2%) of its value -- quantile error is
//    bounded RELATIVE error, independent of the latency scale, from
//    sub-microsecond cache hits to multi-minute stalls;
//  * recording is one relaxed fetch_add into a fixed array -- lock-free,
//    wait-free, constant-time, safe from any thread;
//  * snapshots are plain count vectors: merging two is element-wise
//    addition (LatencyHistogramSnapshot::merge), which is exactly what the
//    router tier and the binary stats frame do, and what the Prometheus
//    text endpoint renders as a classic cumulative histogram.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace msptrsv::service {

/// A point-in-time copy of a LatencyHistogram, merge-able and queryable.
/// `counts` is trimmed to the last non-empty bucket (the wire and merge
/// formats stay small when latencies are small).
struct LatencyHistogramSnapshot {
  std::uint64_t count = 0;
  /// Sum of recorded values in integer microseconds (mean = sum / count).
  std::uint64_t sum_us = 0;
  std::vector<std::uint64_t> counts;

  /// Element-wise addition; the whole point of the representation.
  void merge(const LatencyHistogramSnapshot& other);

  /// The q-quantile (q in [0,1]) as the lower edge of the bucket holding
  /// the q-th sample -- within one sub-bucket (~3.2% relative) of the true
  /// value. 0 when empty.
  double quantile(double q) const;
  double mean_us() const;
  double max_us() const;
};

class LatencyHistogram {
 public:
  /// Sub-buckets per octave: 2^5 = 32 linear slots, ~3.2% relative
  /// resolution.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  /// Octaves above the linear region; covers values up to ~2^43 us
  /// (~101 days), everything larger clamps into the top bucket.
  static constexpr int kOctaves = 38;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kSub) * static_cast<std::size_t>(kOctaves + 1);

  LatencyHistogram();

  /// Records one latency (negative values clamp to 0). Lock-free.
  void record(double us);

  LatencyHistogramSnapshot snapshot() const;

  /// Bucket index of an integer-microsecond value.
  static std::size_t index_of(std::uint64_t us);
  /// Inclusive value range [floor, ceil] covered by bucket `idx`.
  static std::uint64_t bucket_floor(std::size_t idx);
  static std::uint64_t bucket_ceil(std::size_t idx);

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

}  // namespace msptrsv::service
