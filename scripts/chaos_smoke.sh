#!/usr/bin/env bash
# Chaos smoke test: a two-shard fleet loses its HOME shard to kill -9
# MID-TRAFFIC and must not lose a single request.
#
#  1. start two solve_serverd shards on ephemeral ports, pointed at one
#     shared --cache-dir (the fleet warm tier failover re-opens plans
#     from);
#  2. run example_fleet_client against both: it routes by plan hash,
#     writes the home shard's port to a file after the FIRST verified
#     solve (traffic provably live), and keeps solving;
#  3. kill -9 the home shard the moment that file appears -- no sleeps,
#     the signal lands with requests in flight;
#  4. require the client to exit 0: every solve answered bit-for-bit,
#     at least one via failover (--require-failover);
#  5. SIGTERM the surviving shard and require a clean drain (exit 0);
#  6. validate the survivor's --trace-dir dumps: well-formed trace-event
#     JSON with real spans (it served the failed-over traffic) and a
#     metrics file carrying the per-phase series.
#
# Usage: scripts/chaos_smoke.sh [build-dir]   (default: ./build)
set -u

build_dir="${1:-build}"
cd "$(dirname "$0")/.."

serverd="$build_dir/solve_serverd"
client="$build_dir/example_fleet_client"
for bin in "$serverd" "$client"; do
  if [ ! -x "$bin" ]; then
    echo "chaos smoke FAILED: $bin is missing (build first)"
    exit 1
  fi
done

workdir=$(mktemp -d)
trap 'kill -KILL $(jobs -p) 2>/dev/null; rm -rf "$workdir"' EXIT

# Wait (up to ~10s) for a --port-file to appear; echoes the port.
# Fails fast -- with a clear message -- when the daemon dies or never
# publishes, instead of hanging until the CI step timeout.
wait_port_file() {
  local file="$1" pid="$2" port=""
  for _ in $(seq 1 500); do
    if [ -s "$file" ]; then
      head -n1 "$file"
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "chaos smoke FAILED: shard died before listening" >&2
      return 1
    fi
    sleep 0.02
  done
  echo "chaos smoke FAILED: no port file $file after 10s" >&2
  return 1
}

pids=()
ports=()
for s in 0 1; do
  "$serverd" --port=0 --port-file="$workdir/port_$s" \
             --cache-dir="$workdir/plans" --threads=2 \
             --trace-dir="$workdir/obs" &
  pids[$s]=$!
  if ! ports[$s]=$(wait_port_file "$workdir/port_$s" "${pids[$s]}"); then
    exit 1
  fi
done
echo "fleet up: shards on ports ${ports[0]} and ${ports[1]}"

home_file="$workdir/home_port"
"$client" --ports="${ports[0]},${ports[1]}" --solves=300 --interval-us=5000 \
          --home-file="$home_file" --require-failover=true &
client_pid=$!

# The client publishes the home port only after a verified solve: when
# this file appears, traffic is live and the kill lands mid-run.
home_port=""
for _ in $(seq 1 500); do
  if [ -s "$home_file" ]; then
    home_port=$(head -n1 "$home_file")
    break
  fi
  if ! kill -0 "$client_pid" 2>/dev/null; then
    echo "chaos smoke FAILED: client died before its first solve"
    exit 1
  fi
  sleep 0.02
done
if [ -z "$home_port" ]; then
  echo "chaos smoke FAILED: client never reported a home shard"
  exit 1
fi

home_idx=0
[ "$home_port" = "${ports[1]}" ] && home_idx=1
survivor_idx=$((1 - home_idx))
echo "killing home shard (port $home_port) with traffic in flight"
kill -KILL "${pids[$home_idx]}"
wait "${pids[$home_idx]}" 2>/dev/null

wait "$client_pid"
client_rc=$?
if [ "$client_rc" -ne 0 ]; then
  echo "chaos smoke FAILED: client lost requests (exit $client_rc)"
  exit 1
fi

kill -TERM "${pids[$survivor_idx]}"
wait "${pids[$survivor_idx]}"
survivor_rc=$?
if [ "$survivor_rc" -ne 0 ]; then
  echo "chaos smoke FAILED: survivor did not drain cleanly (exit $survivor_rc)"
  exit 1
fi

# The survivor served the failed-over traffic, so its drain dump must
# hold real traced spans -- the home shard died by SIGKILL and gets no
# dump (that IS the failure mode the trace dir is for diagnosing).
survivor_port=${ports[$survivor_idx]}
if ! python3 scripts/check_trace.py "$workdir/obs/trace_$survivor_port.json" \
       --min-events=1 --require-span=net.rx; then
  echo "chaos smoke FAILED: survivor trace dump is missing or malformed"
  exit 1
fi
if ! grep -q msptrsv_solve_phase_seconds \
     "$workdir/obs/metrics_$survivor_port.prom"; then
  echo "chaos smoke FAILED: survivor metrics dump lacks phase series"
  exit 1
fi

echo "chaos smoke OK: home shard kill -9'd mid-traffic, zero lost requests," \
     "failover engaged, survivor drained clean and dumped a valid trace"
