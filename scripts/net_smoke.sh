#!/usr/bin/env bash
# Loopback smoke test of the network tier against a REAL server process:
#
#  1. start solve_serverd on an ephemeral port (--port=0), discovering the
#     chosen port through --port-file (written atomically once listening);
#  2. run example_solve_client against it -- open, content-dedup re-open,
#     bit-for-bit verified solves, drain, then a Prometheus metrics scrape
#     AND a trace dump over the wire (both endpoints must answer after the
#     drain barrier; the client exits non-zero on any mismatch);
#  3. SIGTERM the daemon and require a CLEAN drain: exit code 0 means
#     every admitted solve was answered before the process died;
#  4. validate the --trace-dir dumps the drained daemon wrote: the trace
#     must be well-formed trace-event JSON holding real server spans
#     (scripts/check_trace.py), the metrics file must carry the per-phase
#     and plan-cache series.
#
# Usage: scripts/net_smoke.sh [build-dir]   (default: ./build)
set -u

build_dir="${1:-build}"
cd "$(dirname "$0")/.."

serverd="$build_dir/solve_serverd"
client="$build_dir/example_solve_client"
for bin in "$serverd" "$client"; do
  if [ ! -x "$bin" ]; then
    echo "net smoke FAILED: $bin is missing (build first)"
    exit 1
  fi
done

workdir=$(mktemp -d)
port_file="$workdir/port"
trap 'kill -KILL $(jobs -p) 2>/dev/null; rm -rf "$workdir"' EXIT

"$serverd" --port=0 --port-file="$port_file" --cache-dir="$workdir/plans" \
           --trace-dir="$workdir/obs" &
server_pid=$!

# Wait (up to ~10s) for the daemon to come up and publish its port.
# Every exit from this loop is EXPLICIT -- daemon died, or the deadline
# passed -- with the reason printed; nothing here can hang until a CI
# step timeout reaps the job with no diagnosis.
port=""
for _ in $(seq 1 500); do
  if [ -s "$port_file" ]; then
    port=$(head -n1 "$port_file")
    break
  fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "net smoke FAILED: solve_serverd died before listening"
    exit 1
  fi
  sleep 0.02
done
if [ -z "$port" ]; then
  echo "net smoke FAILED: solve_serverd never wrote $port_file within 10s" \
       "(still running; killing it)"
  kill -KILL "$server_pid" 2>/dev/null
  exit 1
fi

# The client verifies bits itself; the timeout guards against a wedged
# server turning this step into a silent hang.
timeout 120 "$client" --port="$port" --solves=8 --n=2000
client_rc=$?
if [ "$client_rc" -eq 124 ]; then
  echo "net smoke FAILED: client hung for 120s (server wedged?)"
  kill -KILL "$server_pid" 2>/dev/null
  exit 1
fi

# Bounded drain: a SIGTERM'd daemon that cannot finish its in-flight
# work within 30s is a failed drain, reported as such.
kill -TERM "$server_pid"
server_rc=1
for _ in $(seq 1 1500); do
  if ! kill -0 "$server_pid" 2>/dev/null; then
    wait "$server_pid"
    server_rc=$?
    break
  fi
  sleep 0.02
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "net smoke FAILED: server did not exit within 30s of SIGTERM"
  kill -KILL "$server_pid" 2>/dev/null
  exit 1
fi

if [ "$client_rc" -ne 0 ]; then
  echo "net smoke FAILED: client exited $client_rc"
  exit 1
fi
if [ "$server_rc" -ne 0 ]; then
  echo "net smoke FAILED: server did not drain cleanly (exit $server_rc)"
  exit 1
fi

# The drained daemon dumped its observability state: a Perfetto-loadable
# trace with real server spans (net.rx proves requests were traced at the
# wire) and a metrics file carrying the per-phase + plan-cache series.
trace_json="$workdir/obs/trace_$port.json"
metrics_prom="$workdir/obs/metrics_$port.prom"
if ! python3 scripts/check_trace.py "$trace_json" \
       --min-events=1 --require-span=net.rx; then
  echo "net smoke FAILED: --trace-dir dump is missing or malformed"
  exit 1
fi
for series in msptrsv_solve_phase_seconds msptrsv_plan_cache_hits_total; do
  if ! grep -q "$series" "$metrics_prom"; then
    echo "net smoke FAILED: $metrics_prom lacks $series"
    exit 1
  fi
done
echo "net smoke OK: served bit-for-bit over the wire, scraped metrics and" \
     "trace endpoints, drained on SIGTERM, and dumped a valid trace"
