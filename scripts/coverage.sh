#!/usr/bin/env bash
# Line-coverage gate for the solver core.
#
# Builds a Debug tree with --coverage instrumentation, runs the full test
# suite, and aggregates LINE coverage over the library's two load-bearing
# layers -- src/core/ and src/sparse/ (.cpp files; the glue under net/,
# service/, support/ is exercised by its own smokes and not gated here).
# The number is compared against scripts/coverage_baseline.txt: a PR that
# drops core coverage below the recorded floor fails, a PR that raises it
# should raise the floor in the same commit.
#
# Uses gcovr when available (CI installs it); falls back to parsing
# `gcov -n` output so the gate also runs on a bare toolchain.
#
#   scripts/coverage.sh            # build + test + gate
#   MSPTRSV_COV_SKIP_GATE=1 ...    # report only (for measuring a new floor)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${MSPTRSV_COV_BUILD:-build-cov}
BASELINE_FILE=scripts/coverage_baseline.txt

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage
cmake --build "$BUILD" -j "$(nproc)"
# Stale counters from a previous run would inflate the number.
find "$BUILD" -name '*.gcda' -delete
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")

if command -v gcovr >/dev/null 2>&1; then
  gcovr --root . --object-directory "$BUILD" \
    --filter 'src/core/' --filter 'src/sparse/' \
    --txt "$BUILD/coverage.txt" --html-details "$BUILD/coverage.html" || true
  [ -f "$BUILD/coverage.txt" ] && cat "$BUILD/coverage.txt"
  PCT=$(gcovr --root . --object-directory "$BUILD" \
    --filter 'src/core/' --filter 'src/sparse/' --print-summary 2>/dev/null |
    awk '/^lines:/ { sub(/%.*/, "", $2); print $2 }')
else
  # Bare-gcov fallback: every test links the static library, so its
  # per-object .gcda counters already hold the union of all test runs.
  # Count each layer .cpp once (headers would be multi-counted per
  # including object, so they are left to gcovr runs).
  PCT=$(gcov -n $(find "$BUILD/CMakeFiles/msptrsv.dir" -name '*.gcda') 2>/dev/null |
    awk '
      /^File /            { keep = ($0 ~ /src\/(core|sparse)\/[^\/]+\.cpp/) }
      keep && /^Lines executed:/ {
        split($0, a, ":"); split(a[2], b, "% of ")
        exec_lines += b[1] / 100.0 * b[2]; total += b[2]; keep = 0
      }
      END {
        if (total == 0) { print "0.0"; exit }
        printf "%.1f\n", 100.0 * exec_lines / total
      }')
fi

if [ -z "${PCT:-}" ] || [ "$PCT" = "0.0" ]; then
  echo "coverage: no counters found under $BUILD -- instrumentation broken" >&2
  exit 1
fi
echo "coverage: src/core + src/sparse line coverage = ${PCT}%"

if [ "${MSPTRSV_COV_SKIP_GATE:-0}" = "1" ]; then
  exit 0
fi
BASELINE=$(cat "$BASELINE_FILE")
# Gate: measured >= baseline (awk handles the decimal compare).
if ! awk -v got="$PCT" -v floor="$BASELINE" 'BEGIN { exit !(got + 0 >= floor + 0) }'; then
  echo "coverage gate FAILED: ${PCT}% < baseline ${BASELINE}% (${BASELINE_FILE})" >&2
  echo "either restore the lost tests or lower the floor deliberately in this commit" >&2
  exit 1
fi
echo "coverage gate OK: ${PCT}% >= baseline ${BASELINE}%"
