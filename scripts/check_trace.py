#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON document (Perfetto-loadable).

Usage: scripts/check_trace.py TRACE.json [--min-events=N] [--require-span=NAME]

Checks, in order:
  * the file parses as JSON and is an object with a `traceEvents` array
    (the envelope trace_collect_json / --trace-dir / kTraceDump emit);
  * every event is an object carrying the complete-event essentials --
    string `name`, `ph`, numeric `ts`, integer `pid`/`tid` -- and every
    ph=="X" event has a numeric `dur` >= 0 (a negative duration means a
    clock bug, not a slow span);
  * optionally, at least --min-events events (default 0: an EMPTY trace
    is valid -- a disarmed or idle server dumps `[]`);
  * optionally, some event is named --require-span (repeatable), so CI
    can pin "the kernel actually traced" and not just "valid JSON".

Exit 0 = valid; exit 1 = malformed, with the first offense printed.
Stdlib only -- runs anywhere CI has python3.
"""
import argparse
import json
import numbers
import sys


def fail(msg):
    print(f"check_trace FAILED: {msg}")
    return 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-events", type=int, default=0)
    ap.add_argument("--require-span", action="append", default=[])
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(f"{args.trace}: no traceEvents object envelope")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail(f"{args.trace}: traceEvents is not an array")

    names = set()
    for i, ev in enumerate(events):
        where = f"{args.trace}: event {i}"
        if not isinstance(ev, dict):
            return fail(f"{where} is not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            return fail(f"{where} has no name")
        if not isinstance(ev.get("ph"), str):
            return fail(f"{where} ({ev['name']}) has no phase")
        if not isinstance(ev.get("ts"), numbers.Real):
            return fail(f"{where} ({ev['name']}) has no numeric ts")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                return fail(f"{where} ({ev['name']}) has no integer {field}")
        if ev["ph"] == "X":
            dur = ev.get("dur")
            if not isinstance(dur, numbers.Real):
                return fail(f"{where} ({ev['name']}) ph=X without numeric dur")
            if dur < 0:
                return fail(f"{where} ({ev['name']}) has negative dur {dur}")
        names.add(ev["name"])

    if len(events) < args.min_events:
        return fail(
            f"{args.trace}: {len(events)} events, required >= {args.min_events}"
        )
    for span in args.require_span:
        if span not in names:
            return fail(f"{args.trace}: required span '{span}' never appears")

    print(f"check_trace OK: {args.trace}: {len(events)} valid events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
