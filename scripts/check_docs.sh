#!/usr/bin/env bash
# Docs integrity check, run by the CI docs job:
#
#  1. every relative markdown link in docs/*.md (and README.md) resolves
#     to an existing file or directory;
#  2. every repo path named in docs/*.md prose and tables
#     (src/..., bench/..., examples/..., scripts/..., tests/...) exists
#     -- so ARCHITECTURE.md cannot drift from the tree it describes;
#  3. required sections exist: docs features that CI gates on (kernel
#     tuning, failure modes, ...) must keep their operator docs -- a
#     refactor that drops the section fails here, not in a reader's lap.
#
# Pure grep/sed; no dependencies beyond coreutils.
set -u
cd "$(dirname "$0")/.."

broken=$(
  # 1. relative markdown links [text](target)
  for md in docs/*.md README.md; do
    [ -f "$md" ] || continue
    base_dir=$(dirname "$md")
    grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//' |
    while IFS= read -r target; do
      case "$target" in
        http://*|https://*|mailto:*|'#'*) continue ;;
      esac
      path="${target%%#*}"   # strip in-page anchors
      [ -n "$path" ] || continue
      [ -e "$base_dir/$path" ] || echo "BROKEN link in $md: $target"
    done
  done
  # 3. required sections (file<TAB>heading pairs, literal match)
  while IFS='	' read -r file heading; do
    [ -n "$file" ] || continue
    if [ ! -f "$file" ]; then
      echo "BROKEN required-doc file missing: $file"
    elif ! grep -qF "$heading" "$file"; then
      echo "BROKEN required section missing in $file: $heading"
    fi
  done <<'SECTIONS'
docs/OPERATIONS.md	## Kernel tuning
docs/OPERATIONS.md	### Reading BENCH_kernel.json
docs/OPERATIONS.md	## Autotuner
docs/OPERATIONS.md	### Reading BENCH_taskgraph.json
docs/ARCHITECTURE.md	## The task-graph schedule and the autotuner
docs/OPERATIONS.md	## Failure modes & recovery
docs/OPERATIONS.md	## Backpressure and overload semantics
docs/OPERATIONS.md	## Tracing a slow solve
docs/ARCHITECTURE.md	## Invariants
docs/PROTOCOL.md	## Framing
docs/PROTOCOL.md	## Error statuses and retryability
docs/PROTOCOL.md	## Trace propagation
SECTIONS
  # 2. repo paths mentioned in the docs
  for md in docs/*.md; do
    [ -f "$md" ] || continue
    grep -oE '(src|bench|examples|scripts|tests)/[A-Za-z0-9_./-]+' "$md" |
    sed 's/[.,;:]$//' | sort -u |
    while IFS= read -r path; do
      [ -e "$path" ] || echo "BROKEN path reference in $md: $path"
    done
  done
)

if [ -n "$broken" ]; then
  printf '%s\n' "$broken"
  echo "docs check FAILED: $(printf '%s\n' "$broken" | wc -l) broken reference(s)"
  exit 1
fi
echo "docs check OK: all links and path references resolve"
