// Fleet client: drives routed traffic against N running solve_serverd
// shards through a net::Router -- plan-hash affinity, circuit breakers,
// and failover re-homing all engaged. The chaos smoke test
// (scripts/chaos_smoke.sh) runs this against two shards, kill -9's the
// plan's HOME shard mid-run, and requires every request to keep
// answering bit-for-bit via failover.
//
//   ./example_fleet_client --ports=7450,7451 --solves=400
//
// Every solve must return the locally computed bits; any typed error or
// mismatch is a LOST REQUEST and fails the run. --home-file names a file
// that receives the home shard's port after the first verified solve --
// the signal a supervising script uses to kill the right process with
// live traffic in flight. --require-failover additionally demands that
// at least one answer came from a non-home shard (proof the fleet
// actually healed, not that the fault never landed).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "net/router.hpp"
#include "support/blob.hpp"
#include "support/cli.hpp"

using namespace msptrsv;

namespace {

std::vector<std::uint16_t> parse_ports(const std::string& csv) {
  std::vector<std::uint16_t> ports;
  std::string token;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == ',') {
      if (!token.empty()) {
        ports.push_back(static_cast<std::uint16_t>(std::atoi(token.c_str())));
        token.clear();
      }
    } else {
      token += csv[i];
    }
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "Routed fleet client: verified solves across solve_serverd shards "
      "with breakers and failover engaged (chaos smoke driver)");
  cli.add_option("ports", "", "comma-separated shard ports (required)");
  cli.add_option("host", "127.0.0.1", "shard host");
  cli.add_option("backend", "cpu-syncfree", "registry backend key");
  cli.add_option("solves", "400", "verified solves to run");
  cli.add_option("interval-us", "5000", "pause between solves");
  cli.add_option("n", "2000", "generated factor dimension");
  cli.add_option("home-file", "",
                 "write the home shard's port here (atomic rename) after "
                 "the first verified solve");
  cli.add_option("require-failover", "false",
                 "fail unless >=1 answer came from a non-home shard");
  if (!cli.parse(argc, argv)) return 0;

  const std::vector<std::uint16_t> ports = parse_ports(cli.get_string("ports"));
  if (ports.size() < 1) {
    std::fprintf(stderr, "--ports is required (running solve_serverd shards)\n");
    return 2;
  }
  const std::string backend = cli.get_string("backend");
  const index_t n = static_cast<index_t>(cli.get_int("n"));
  const int solves = static_cast<int>(cli.get_int("solves"));
  const auto interval =
      std::chrono::microseconds(cli.get_int("interval-us"));

  const sparse::CscMatrix lower =
      sparse::gen_layered_dag(n, 24, 6 * n, 0.5, 17);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(lower, sparse::gen_solution(n, 18));

  const auto local_options = core::registry::service_options(backend);
  if (!local_options.ok()) {
    std::fprintf(stderr, "bad backend '%s': %s\n", backend.c_str(),
                 local_options.message().c_str());
    return 2;
  }
  const auto local_plan =
      core::SolverPlan::analyze(lower, local_options.value());
  const std::vector<value_t> expected =
      local_plan.value().solve(b).value().x;

  net::RouterOptions ropt;
  for (const std::uint16_t port : ports) {
    ropt.endpoints.push_back({cli.get_string("host"), port});
  }
  // Chaos posture: trip on the first transport failure, retry the trial
  // quickly, fail individual attempts fast -- a killed shard costs one
  // failed attempt before traffic re-homes, not a backoff ladder.
  ropt.breaker_failure_threshold = 1;
  ropt.breaker_cooldown = std::chrono::milliseconds(250);
  ropt.client.retry.max_attempts = 2;
  ropt.client.retry.initial_backoff = std::chrono::microseconds(1000);
  ropt.client.retry.max_backoff = std::chrono::microseconds(10000);
  net::Router router(ropt);

  const auto handle = router.open(lower, backend);
  if (!handle.ok()) {
    std::fprintf(stderr, "routed open failed: %s\n",
                 handle.message().c_str());
    return 1;
  }
  const std::size_t home = handle.value().shard;
  std::printf("fleet: %zu shards, home=%u (shard %zu)\n", ports.size(),
              ports[home], home);

  int lost = 0;
  int mismatched = 0;
  for (int i = 0; i < solves; ++i) {
    const auto x = router.solve(handle.value(), b);
    if (!x.ok()) {
      std::fprintf(stderr, "request %d LOST: %s\n", i, x.message().c_str());
      ++lost;
      continue;
    }
    if (x.value() != expected) ++mismatched;
    if (i == 0 && !cli.get_string("home-file").empty()) {
      // First answer verified end to end: traffic is live. Tell the
      // supervisor which process to kill.
      const std::string text = std::to_string(ports[home]) + "\n";
      if (!support::write_file(
              cli.get_string("home-file"),
              {reinterpret_cast<const std::uint8_t*>(text.data()),
               text.size()})) {
        std::fprintf(stderr, "cannot write %s\n",
                     cli.get_string("home-file").c_str());
        return 2;
      }
    }
    if (interval.count() > 0) std::this_thread::sleep_for(interval);
  }

  std::uint64_t failovers = 0;
  std::uint64_t hedges = 0;
  for (std::size_t s = 0; s < ports.size(); ++s) {
    const net::ClientMetrics m = router.shard_client(s).metrics_local();
    failovers += m.failovers;
    hedges += m.hedges;
  }
  std::printf("%d solves: %d lost, %d mismatched, %llu failovers\n", solves,
              lost, mismatched,
              static_cast<unsigned long long>(failovers));
  (void)hedges;

  for (const net::ShardStatus& st : router.fleet_status()) {
    std::printf("shard %s:%u: breaker=%s reachable=%d failures=%llu\n",
                st.endpoint.host.c_str(), st.endpoint.port,
                net::to_string(st.breaker), st.reachable ? 1 : 0,
                static_cast<unsigned long long>(st.failures_total));
  }

  if (lost > 0 || mismatched > 0) return 1;
  if (cli.get_bool("require-failover") && failovers == 0) {
    std::fprintf(stderr,
                 "no failover happened -- the fault never landed on the "
                 "serving shard\n");
    return 1;
  }
  return 0;
}
