// Standalone wire-protocol client: connects to a running solve_serverd,
// uploads a generated factor, and verifies the served solutions
// BIT-FOR-BIT against a locally analyzed plan -- the loopback smoke test
// CI runs against a real server process (scripts/net_smoke.sh), and a
// template for applications talking to a remote solve fleet.
//
//   ./example_solve_client --port=7450 [--host 127.0.0.1]
//                          [--backend cpu-syncfree] [--solves 32] [--n 4000]
#include <cstdio>
#include <string>
#include <vector>

#include "core/msptrsv.hpp"
#include "net/client.hpp"
#include "support/cli.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Wire-protocol solve client: open a plan on a remote solve server, "
      "verify served solutions bit-for-bit against a local plan");
  cli.add_option("host", "127.0.0.1", "server host");
  cli.add_option("port", "0", "server port (required)");
  cli.add_option("backend", "cpu-syncfree", "registry backend key");
  cli.add_option("solves", "32", "verification solves to run");
  cli.add_option("n", "4000", "generated factor dimension");
  if (!cli.parse(argc, argv)) return 0;

  const std::string backend = cli.get_string("backend");
  const index_t n = static_cast<index_t>(cli.get_int("n"));
  const int solves = static_cast<int>(cli.get_int("solves"));

  net::ClientOptions options;
  options.host = cli.get_string("host");
  options.port = static_cast<std::uint16_t>(cli.get_int("port"));
  options.client_name = "example_solve_client";
  if (options.port == 0) {
    std::fprintf(stderr, "--port is required (a running solve_serverd)\n");
    return 1;
  }

  const sparse::CscMatrix lower = sparse::gen_layered_dag(n, 32, 6 * n, 0.5, 7);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(lower, sparse::gen_solution(n, 11));

  // Local ground truth under the same service options the server uses.
  const auto local_options = core::registry::service_options(backend);
  if (!local_options.ok()) {
    std::fprintf(stderr, "bad backend '%s': %s\n", backend.c_str(),
                 local_options.message().c_str());
    return 1;
  }
  const auto local_plan =
      core::SolverPlan::analyze(lower, local_options.value());
  const std::vector<value_t> expected = local_plan.value().solve(b).value().x;

  net::SolveClient client(options);
  const auto connected = client.connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "connect to %s:%u failed: %s\n",
                 options.host.c_str(), options.port,
                 connected.message().c_str());
    return 1;
  }

  const auto handle = client.open(lower, backend);
  if (!handle.ok()) {
    std::fprintf(stderr, "open failed: %s\n", handle.message().c_str());
    return 1;
  }
  std::printf("opened plan: n=%d, source=%s, hash=%016llx\n",
              handle.value().rows, handle.value().source.c_str(),
              static_cast<unsigned long long>(handle.value().hash.pattern));

  // A second open of the same factor must dedup server-side.
  const auto again = client.open(lower, backend);
  if (!again.ok() || again.value().source != "open") {
    std::fprintf(stderr, "repeat open did not dedup (source=%s)\n",
                 again.ok() ? again.value().source.c_str() : "error");
    return 1;
  }

  int wrong = 0;
  for (int i = 0; i < solves; ++i) {
    const auto x = client.solve(handle.value(), b);
    if (!x.ok()) {
      std::fprintf(stderr, "solve %d failed: %s\n", i,
                   x.message().c_str());
      return 1;
    }
    if (x.value() != expected) ++wrong;  // bit-for-bit comparison
  }
  std::printf("%d solves served, %d mismatches\n", solves, wrong);

  const auto drained = client.drain();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.message().c_str());
    return 1;
  }

  const auto metrics = client.metrics();
  if (!metrics.ok() ||
      metrics.value().find("msptrsv_rhs_completed_total") ==
          std::string::npos) {
    std::fprintf(stderr, "metrics fetch failed or incomplete\n");
    return 1;
  }
  std::printf("server metrics scraped (%zu bytes of Prometheus text)\n",
              metrics.value().size());

  // The trace endpoint must answer alongside metrics -- even after the
  // drain barrier, and whether or not the server is armed (a disarmed
  // server serves a valid empty document, never an error).
  const auto trace = client.trace_dump();
  if (!trace.ok() ||
      trace.value().json.rfind("{\"traceEvents\":[", 0) != 0) {
    std::fprintf(stderr, "trace dump failed or malformed: %s\n",
                 trace.ok() ? "bad envelope" : trace.message().c_str());
    return 1;
  }
  std::printf("server trace dumped (%zu bytes of trace-event JSON)\n",
              trace.value().json.size());

  const net::ClientMetrics m = client.metrics_local();
  std::printf("client: %llu attempts for %llu solves, %llu retries\n",
              static_cast<unsigned long long>(m.attempts),
              static_cast<unsigned long long>(m.solves),
              static_cast<unsigned long long>(m.retries));
  return wrong == 0 ? 0 : 1;
}
