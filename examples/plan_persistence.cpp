// Plan persistence walkthrough -- and the CI cross-process smoke test.
//
//   example_plan_persistence save <path> [backend]   analyze + save a plan
//   example_plan_persistence load <path> [backend]   load it in THIS process
//                                                    and verify the solve
//   example_plan_persistence roundtrip [backend]     save + load in one run
//
// The save and load halves regenerate the same deterministic matrix and
// right-hand side (fixed generator seeds), so a `load` in a FRESH process
// -- a different CI step, a different machine of the same byte order --
// can verify bit-for-bit that the restored plan solves exactly like the
// plan that was saved. Exit code 0 = verified.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/msptrsv.hpp"

using namespace msptrsv;

namespace {

constexpr index_t kRows = 20000;

sparse::CscMatrix demo_matrix() {
  return sparse::gen_layered_dag(kRows, /*num_levels=*/50,
                                 /*target_nnz=*/6 * kRows, /*locality=*/0.5,
                                 /*seed=*/2024);
}

std::vector<value_t> demo_rhs(const sparse::CscMatrix& l) {
  return sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 11));
}

int save_plan(const std::string& path, const std::string& backend) {
  const sparse::CscMatrix l = demo_matrix();
  core::SolveOptions opt = core::registry::options_for(backend).value();
  opt.cpu_threads = 2;
  const auto plan = core::SolverPlan::analyze(l, opt);
  if (!plan.ok()) {
    std::printf("analyze failed: %s\n", plan.message().c_str());
    return 1;
  }
  const auto saved = plan->save(path);
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.message().c_str());
    return 1;
  }
  std::printf("analyzed %s in %.1f ms and saved the plan to %s\n",
              backend.c_str(), plan->analysis_seconds() * 1e3, path.c_str());
  return 0;
}

int load_plan(const std::string& path, const std::string& backend) {
  core::SolveOptions opt = core::registry::options_for(backend).value();
  opt.cpu_threads = 2;
  const auto loaded = core::SolverPlan::load(path, opt);
  if (!loaded.ok()) {
    std::printf("load failed [%s]: %s\n",
                std::string(core::to_string(loaded.status())).c_str(),
                loaded.message().c_str());
    return 1;
  }
  if (loaded->analysis_us() != 0.0) {
    std::printf("FAIL: loaded plan reports a nonzero analysis charge\n");
    return 1;
  }
  std::printf("loaded plan from %s in %.0f us (analysis charge: 0)\n",
              path.c_str(), loaded->load_us());

  // Verify against a freshly analyzed plan on the regenerated matrix: the
  // loaded plan must produce the IDENTICAL bits.
  const sparse::CscMatrix l = demo_matrix();
  const std::vector<value_t> b = demo_rhs(l);
  const auto fresh = core::SolverPlan::analyze(l, opt);
  if (!fresh.ok()) {
    std::printf("re-analyze failed: %s\n", fresh.message().c_str());
    return 1;
  }
  const auto r_loaded = loaded->solve(b);
  const auto r_fresh = fresh->solve(b);
  if (!r_loaded.ok() || !r_fresh.ok()) {
    std::printf("solve failed: %s%s\n", r_loaded.message().c_str(),
                r_fresh.message().c_str());
    return 1;
  }
  if (r_loaded.value().x != r_fresh.value().x) {
    std::printf("FAIL: loaded-plan solution differs from fresh analysis\n");
    return 1;
  }
  std::printf("loaded plan solves bit-for-bit like a fresh analysis "
              "(n=%d, backend=%s)\n",
              l.rows, backend.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "roundtrip";
  const std::string backend = argc > 3 ? argv[3]
                              : (mode == "roundtrip" && argc > 2) ? argv[2]
                                                                  : "mg-zerocopy";
  if (mode == "save" && argc > 2) return save_plan(argv[2], backend);
  if (mode == "load" && argc > 2) return load_plan(argv[2], backend);
  if (mode == "roundtrip") {
    const std::string path = "plan_persistence_demo.plan";
    const int rc = save_plan(path, backend);
    if (rc != 0) return rc;
    return load_plan(path, backend);
  }
  std::printf("usage: %s save|load <path> [backend] | roundtrip [backend]\n",
              argv[0]);
  return 2;
}
