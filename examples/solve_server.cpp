// Network solve-server walkthrough: a real net::SolveServer on loopback,
// hammered by net::SolveClient connections speaking the binary wire
// protocol (docs/PROTOCOL.md).
//
// What it demonstrates, end to end:
//  * plan opens over the wire (factor upload, analyze-on-first-use on the
//    server, content-keyed dedup across connections);
//  * pipelined solves whose results are BIT-FOR-BIT what a local
//    plan.solve() produces -- the service's fused-batch guarantee
//    survives the socket;
//  * typed backpressure and deadline shedding arriving as client-visible
//    statuses (kOverloaded triggers the client's backoff-retry tier);
//  * the Prometheus /metrics answer and the drain barrier.
//
//   ./example_solve_server [--backend cpu-syncfree] [--clients 4]
//                          [--requests 100] [--tenants 3]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "support/cli.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Network solve server demo: wire-protocol clients against a loopback "
      "net::SolveServer -- opens, pipelined solves, retry, metrics, drain");
  cli.add_option("backend", "cpu-syncfree", "registry backend key to serve");
  cli.add_option("clients", "4", "concurrent client connections");
  cli.add_option("requests", "100", "solves per client");
  cli.add_option("tenants", "3", "distinct factors being served");
  if (!cli.parse(argc, argv)) return 0;

  const std::string backend = cli.get_string("backend");
  const int clients = static_cast<int>(cli.get_int("clients"));
  const int requests = static_cast<int>(cli.get_int("requests"));
  const int tenants = static_cast<int>(cli.get_int("tenants"));

  std::printf("msptrsv %s network server demo: %d clients x %d solves over "
              "%d tenants on '%s'\n\n",
              kVersion, clients, requests, tenants, backend.c_str());

  // The server: ephemeral port, bounded admission so backpressure is
  // reachable, 200us coalesce window.
  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.service.max_pending_rhs = 512;
  server_options.service.coalesce_window = std::chrono::microseconds(200);
  net::SolveServer server(server_options);
  const core::Expected<bool> started = server.start();
  if (!started.ok()) {
    std::printf("server start failed: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u\n\n", server.port());

  struct Tenant {
    sparse::CscMatrix lower;
    std::vector<value_t> b;
    std::vector<value_t> expected;
  };
  std::vector<Tenant> workloads;
  for (int t = 0; t < tenants; ++t) {
    const index_t n = 6000 + 2000 * t;
    Tenant w;
    w.lower = sparse::gen_layered_dag(n, 48, 6 * n, 0.5,
                                      static_cast<std::uint64_t>(t) + 1);
    w.b = sparse::gen_rhs_for_solution(w.lower, sparse::gen_solution(n, 7));
    // Local ground truth: the wire answer must match this bit for bit.
    const auto options = core::registry::service_options(backend);
    const auto plan = core::SolverPlan::analyze(w.lower, options.value());
    w.expected = plan.value().solve(w.b).value().x;
    workloads.push_back(std::move(w));
  }

  std::atomic<int> wrong{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> shed{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::ClientOptions copt;
      copt.port = server.port();
      copt.client_name = "demo-client-" + std::to_string(c);
      net::SolveClient client(copt);
      // Every client opens every tenant: the server deduplicates by
      // content hash, so tenant analysis still happens exactly once.
      std::vector<net::PlanHandle> handles;
      for (const Tenant& w : workloads) {
        const auto handle = client.open(w.lower, backend);
        if (!handle.ok()) {
          std::printf("open failed: %s\n", handle.message().c_str());
          wrong.fetch_add(requests);
          return;
        }
        handles.push_back(handle.value());
      }
      // Client 0 is the latency tenant: high priority with a 50 ms
      // start-by deadline; shed requests come back typed.
      const bool latency_tenant = c == 0;
      for (int i = 0; i < requests; ++i) {
        const std::size_t t = static_cast<std::size_t>((c + i) % tenants);
        const auto x = client.solve(
            handles[t], workloads[t].b,
            latency_tenant ? service::Priority::kHigh
                           : service::Priority::kNormal,
            latency_tenant ? std::chrono::milliseconds(50)
                           : std::chrono::microseconds(0));
        if (!x.ok()) {
          if (x.error().status == core::SolveStatus::kOverloaded) {
            overloaded.fetch_add(1);
          } else if (x.error().status ==
                     core::SolveStatus::kDeadlineExceeded) {
            shed.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
        } else if (x.value() != workloads[t].expected) {
          wrong.fetch_add(1);  // bit-for-bit or bust
        }
      }
      const net::ClientMetrics m = client.metrics_local();
      if (m.retries > 0) {
        std::printf("client %d: %llu attempts for %llu solves (%llu "
                    "retries, %llu us backing off)\n",
                    c, static_cast<unsigned long long>(m.attempts),
                    static_cast<unsigned long long>(m.solves),
                    static_cast<unsigned long long>(m.retries),
                    static_cast<unsigned long long>(m.backoff_us));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // One more connection for control traffic: drain barrier, then stats.
  net::ClientOptions copt;
  copt.port = server.port();
  net::SolveClient control(copt);
  const auto drained = control.drain();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const net::WireStats s = server.wire_stats();
  std::printf("\nanswered %llu rhs in %.2f s  (%.0f rhs/s), %d wrong, %d "
              "overloaded, %d shed\n",
              static_cast<unsigned long long>(s.completed), seconds,
              static_cast<double>(s.completed) / seconds, wrong.load(),
              overloaded.load(), shed.load());
  std::printf("wire: %llu connections, %llu frames, %llu protocol errors, "
              "%llu plans open (opened by every client, analyzed once)\n",
              static_cast<unsigned long long>(s.connections_accepted),
              static_cast<unsigned long long>(s.frames_received),
              static_cast<unsigned long long>(s.protocol_errors),
              static_cast<unsigned long long>(s.plans_open));
  std::printf("latency (full-history histogram): p50 %.0f us  p99 %.0f us  "
              "mean %.0f us\n",
              s.latency.quantile(0.50), s.latency.quantile(0.99),
              s.latency.mean_us());
  if (drained.ok()) {
    std::printf("drain barrier: %llu rhs completed at drain\n",
                static_cast<unsigned long long>(drained.value()));
  }

  const auto metrics = control.metrics();
  if (metrics.ok()) {
    const std::string& text = metrics.value();
    std::printf("\n/metrics (first lines):\n");
    std::size_t pos = 0;
    for (int line = 0; line < 8 && pos < text.size(); ++line) {
      const std::size_t eol = text.find('\n', pos);
      std::printf("  %s\n", text.substr(pos, eol - pos).c_str());
      pos = eol + 1;
    }
  }

  server.stop();
  return wrong.load() == 0 ? 0 : 1;
}
