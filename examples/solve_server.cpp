// Solve server walkthrough: many client threads hammer one
// service::SolveService with single-RHS requests against a handful of
// factors, and the service turns that traffic into fused batches on the
// process-wide shared worker pool -- analyze-on-first-use through the plan
// cache, typed kOverloaded backpressure past the admission bound, and a
// live ServiceStats snapshot at the end. One client plays the
// latency-sensitive tenant: it submits Priority::kHigh with a start-by
// deadline, so its requests dispatch first (and are shed with
// kDeadlineExceeded rather than answered uselessly late); the rest run
// kNormal. The final stats print the per-class split.
//
//   ./example_solve_server [--backend cpu-syncfree] [--clients 8]
//                          [--requests 200] [--tenants 3]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "support/cli.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Multi-tenant solve service demo: concurrent clients, request "
      "coalescing, backpressure, live metrics");
  cli.add_option("backend", "cpu-syncfree", "registry backend key to serve");
  cli.add_option("clients", "8", "concurrent client threads");
  cli.add_option("requests", "200", "requests per client");
  cli.add_option("tenants", "3", "distinct factors being served");
  if (!cli.parse(argc, argv)) return 0;

  const std::string backend = cli.get_string("backend");
  const int clients = static_cast<int>(cli.get_int("clients"));
  const int requests = static_cast<int>(cli.get_int("requests"));
  const int tenants = static_cast<int>(cli.get_int("tenants"));

  std::printf("msptrsv %s solve server demo: %d clients x %d requests over "
              "%d tenants on '%s'\n\n",
              kVersion, clients, requests, tenants, backend.c_str());

  // One service for the whole process: a bounded queue, a 200us coalesce
  // window, and a plan cache that analyzes each tenant's factor exactly
  // once -- on the first request that needs it.
  service::ServiceOptions options;
  options.max_pending_rhs = 512;
  options.coalesce_window = std::chrono::microseconds(200);
  options.max_coalesce = 32;
  service::SolveService svc(options);

  struct Tenant {
    sparse::CscMatrix lower;
    std::vector<value_t> b;
    std::vector<value_t> expected;
  };
  std::vector<Tenant> workloads;
  for (int t = 0; t < tenants; ++t) {
    const index_t n = 8000 + 2000 * t;
    Tenant w;
    w.lower = sparse::gen_layered_dag(n, 48, 6 * n, 0.5,
                                      static_cast<std::uint64_t>(t) + 1);
    w.b = sparse::gen_rhs_for_solution(w.lower, sparse::gen_solution(n, 7));
    workloads.push_back(std::move(w));
  }

  // Ground truth per tenant (also warms the service's plan cache).
  for (Tenant& w : workloads) {
    const auto plan = svc.plan_for(w.lower, backend);
    if (!plan.ok()) {
      std::printf("plan_for failed: %s\n", plan.message().c_str());
      return 1;
    }
    w.expected = plan->solve(w.b).value().x;
  }

  std::atomic<int> wrong{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> shed{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Client 0 is the latency tenant: high priority, 50 ms start-by
      // deadline. Everyone else is normal-priority throughput traffic.
      const bool latency_tenant = c == 0;
      service::SubmitOptions submit;
      if (latency_tenant) {
        submit.priority = service::Priority::kHigh;
        submit.deadline = std::chrono::milliseconds(50);
      }
      for (int i = 0; i < requests; ++i) {
        Tenant& w = workloads[static_cast<std::size_t>((c + i) % tenants)];
        // Analyze-on-first-use is an O(1) cache hit from here on.
        const auto plan = svc.plan_for(w.lower, backend);
        if (!plan.ok()) {
          wrong.fetch_add(1);
          continue;
        }
        service::SolveService::Reply r =
            svc.submit(*plan, w.b, submit).get();
        if (!r.ok()) {
          if (r.status() == core::SolveStatus::kOverloaded) {
            overloaded.fetch_add(1);  // typed backpressure: retry later
          } else if (r.status() == core::SolveStatus::kDeadlineExceeded) {
            shed.fetch_add(1);  // too late to be useful: shed, not solved
          } else {
            wrong.fetch_add(1);
          }
        } else if (r.value().x != w.expected) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  svc.drain();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const service::ServiceStatsSnapshot s = svc.stats();
  std::printf("answered %llu rhs in %.2f s  (%.0f rhs/s), %d wrong, %d "
              "overloaded, %d shed\n\n",
              static_cast<unsigned long long>(s.completed), seconds,
              static_cast<double>(s.completed) / seconds, wrong.load(),
              overloaded.load(), shed.load());
  std::printf("dispatches: %llu fused batches, mean width %.2f; %llu "
              "packed dispatches (%llu plans ganged together)\n",
              static_cast<unsigned long long>(s.batches),
              s.mean_coalesce_width,
              static_cast<unsigned long long>(s.packed_dispatches),
              static_cast<unsigned long long>(s.packed_plans));
  for (std::size_t c = 0; c < service::kNumPriorities; ++c) {
    const service::PriorityClassStats& pc = s.per_class[c];
    if (pc.submitted == 0) continue;
    std::printf("class %-10s: %6llu submitted  %6llu completed  %4llu "
                "shed  p50 %8.0f us  p99 %8.0f us\n",
                std::string(to_string(static_cast<service::Priority>(c)))
                    .c_str(),
                static_cast<unsigned long long>(pc.submitted),
                static_cast<unsigned long long>(pc.completed),
                static_cast<unsigned long long>(pc.shed),
                pc.p50_latency_us, pc.p99_latency_us);
  }
  std::printf("coalesce width histogram (1, 2, 3-4, 5-8, 9-16, 17-32, "
              "33-64, 65+):\n  ");
  for (std::uint64_t bucket : s.coalesce_hist) {
    std::printf("%llu  ", static_cast<unsigned long long>(bucket));
  }
  std::printf("\nlatency: p50 %.0f us, p99 %.0f us, max %.0f us\n",
              s.p50_latency_us, s.p99_latency_us, s.max_latency_us);
  std::printf("queue: peak depth %llu rhs (bound %zu)\n",
              static_cast<unsigned long long>(s.peak_queue_depth),
              options.max_pending_rhs);
  std::printf("tenants served:\n");
  for (const service::PlanActivity& a : s.per_plan) {
    std::printf("  plan %p  n=%d  %llu solves\n", a.plan, a.rows,
                static_cast<unsigned long long>(a.solves));
  }
  const core::PlanCache::Stats cs = svc.plan_cache().stats();
  std::printf("plan cache: %llu misses (one analysis per tenant), %llu "
              "hits\n",
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.hits));
  const core::SharedWorkerPool::Stats ps = svc.pool().stats();
  std::printf("shared pool: %llu dispatch tasks (%llu stolen), %llu gangs "
              "(%llu members, %llu shrunk under contention, %llu capped by "
              "reservation)\n",
              static_cast<unsigned long long>(ps.tasks_run),
              static_cast<unsigned long long>(ps.tasks_stolen),
              static_cast<unsigned long long>(ps.gangs),
              static_cast<unsigned long long>(ps.gang_members),
              static_cast<unsigned long long>(ps.gang_shrinks),
              static_cast<unsigned long long>(ps.gang_capped));

  return wrong.load() == 0 ? 0 : 1;
}
