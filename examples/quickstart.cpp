// Quickstart: generate a lower-triangular factor, analyze it ONCE into a
// SolverPlan, and solve it repeatedly with the zero-copy multi-GPU solver
// on a simulated 4-GPU DGX-1. This is the 60-second tour of the public
// API: the analyze/solve split, the batched multi-RHS path, the backend
// registry, and the run report.
#include <cstdio>

#include "core/msptrsv.hpp"

using namespace msptrsv;

int main() {
  std::printf("msptrsv %s quickstart\n\n", kVersion);

  // 1. A workload: a layered DAG with 64 level sets, ~6 nonzeros per row.
  //    (Any solvable lower-triangular CSC works; see sparse/mmio.hpp to
  //    load a Matrix Market file instead.)
  const index_t n = 50000;
  const sparse::CscMatrix L = sparse::gen_layered_dag(
      n, /*num_levels=*/64, /*target_nnz=*/6 * n, /*locality=*/0.5,
      /*seed=*/42);
  const sparse::LevelAnalysis analysis = sparse::analyze_levels(L);
  std::printf("matrix: n=%d nnz=%lld levels=%d parallelism=%.0f dependency=%.2f\n",
              L.rows, static_cast<long long>(L.nnz()), analysis.num_levels,
              analysis.parallelism_metric(), analysis.dependency_metric());

  // 2. A right-hand side with a known solution, so we can check the answer.
  const std::vector<value_t> x_ref = sparse::gen_solution(n, 7);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(L, x_ref);

  // 3. Pick the paper's zero-copy design from the registry (NVSHMEM
  //    read-only communication + round-robin task pool on a 4-GPU DGX-1)
  //    and run the symbolic phase once.
  const core::SolveOptions opt =
      core::registry::options_for("mg-zerocopy").value();
  const auto plan = core::SolverPlan::analyze(L, opt);
  if (!plan.ok()) {
    std::printf("analysis rejected the input: %s\n", plan.message().c_str());
    return 1;
  }
  std::printf("\nanalysis: %.1f simulated us (charged once, reused below)\n",
              plan->analysis_us());

  // 4. Numeric phase: every solve reuses the cached analysis.
  const core::SolveResult r = plan->solve(b).value();
  std::printf("solved in %.1f simulated us (report analysis: %.1f us)\n",
              r.report.solve_us, r.report.analysis_us);
  std::printf("max |x - x_ref| (relative): %.2e\n",
              core::max_relative_difference(r.x, x_ref));
  std::printf("relative residual ||Lx-b||/||b||: %.2e\n\n",
              core::relative_residual(L, r.x, b));
  std::printf("%s\n", r.report.summary().c_str());

  // 5. Batched multi-RHS: the preconditioner-application shape. Four
  //    right-hand sides, column-major, one call.
  const index_t num_rhs = 4;
  std::vector<value_t> batch;
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::vector<value_t> bj = sparse::gen_rhs_for_solution(
        L, sparse::gen_solution(n, 70 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), bj.begin(), bj.end());
  }
  const core::SolveResult rb = plan->solve_batch(batch, num_rhs).value();
  std::printf("batch of %d rhs: %.1f simulated us total, slowest %.1f us\n\n",
              rb.report.num_rhs, rb.report.solve_us, rb.report.max_solve_us);

  // 6. Compare against the unified-memory baseline the paper improves on
  //    (one-shot convenience API; it builds a throwaway plan internally).
  const core::SolveOptions baseline =
      core::registry::options_for("mg-unified").value();
  const core::SolveResult u = core::solve(L, b, baseline);
  std::printf("unified-memory baseline: %.1f us  ->  zero-copy speedup %.2fx\n",
              u.report.total_us(),
              u.report.total_us() / (r.report.solve_us + plan->analysis_us()));
  return 0;
}
