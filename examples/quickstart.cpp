// Quickstart: generate a lower-triangular factor, solve it with the
// zero-copy multi-GPU solver on a simulated 4-GPU DGX-1, and inspect the
// run report. This is the 60-second tour of the public API.
#include <cstdio>

#include "core/msptrsv.hpp"

using namespace msptrsv;

int main() {
  std::printf("msptrsv %s quickstart\n\n", kVersion);

  // 1. A workload: a layered DAG with 64 level sets, ~6 nonzeros per row.
  //    (Any solvable lower-triangular CSC works; see sparse/mmio.hpp to
  //    load a Matrix Market file instead.)
  const index_t n = 50000;
  const sparse::CscMatrix L = sparse::gen_layered_dag(
      n, /*num_levels=*/64, /*target_nnz=*/6 * n, /*locality=*/0.5,
      /*seed=*/42);
  const sparse::LevelAnalysis analysis = sparse::analyze_levels(L);
  std::printf("matrix: n=%d nnz=%lld levels=%d parallelism=%.0f dependency=%.2f\n",
              L.rows, static_cast<long long>(L.nnz()), analysis.num_levels,
              analysis.parallelism_metric(), analysis.dependency_metric());

  // 2. A right-hand side with a known solution, so we can check the answer.
  const std::vector<value_t> x_ref = sparse::gen_solution(n, 7);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(L, x_ref);

  // 3. Solve with the paper's zero-copy design: NVSHMEM read-only
  //    communication + round-robin task pool, on a 4-GPU DGX-1 model.
  core::SolveOptions opt;
  opt.backend = core::Backend::kMgZeroCopy;
  opt.machine = sim::Machine::dgx1(4);
  opt.tasks_per_gpu = 8;
  const core::SolveResult r = core::solve(L, b, opt);

  std::printf("\nsolved in %.1f simulated us (+%.1f us analysis)\n",
              r.report.solve_us, r.report.analysis_us);
  std::printf("max |x - x_ref| (relative): %.2e\n",
              core::max_relative_difference(r.x, x_ref));
  std::printf("relative residual ||Lx-b||/||b||: %.2e\n\n",
              core::relative_residual(L, r.x, b));
  std::printf("%s\n", r.report.summary().c_str());

  // 4. Compare against the unified-memory baseline the paper improves on.
  core::SolveOptions baseline = opt;
  baseline.backend = core::Backend::kMgUnified;
  const core::SolveResult u = core::solve(L, b, baseline);
  std::printf("unified-memory baseline: %.1f us  ->  zero-copy speedup %.2fx\n",
              u.report.total_us(), u.report.total_us() / r.report.total_us());
  return 0;
}
