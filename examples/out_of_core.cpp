// Out-of-core execution (the paper's motivating scenario): the twitter7 and
// uk-2005 factors do not fit a single 16 GB V100, so the solver must be
// partitioned across GPUs. This example runs the capacity model at paper
// scale, picks the smallest feasible GPU count, and solves the scaled
// analog on that configuration.
#include <cstdio>

#include "core/msptrsv.hpp"

using namespace msptrsv;

namespace {

void plan_and_solve(const std::string& name, index_t analog_rows) {
  const sparse::SuiteMatrix m = sparse::generate_suite_matrix(name, analog_rows);
  std::printf("\n=== %s ===\n", name.c_str());
  std::printf("paper scale: %d rows, %lld nnz (analog: %d rows, scale %.5f)\n",
              m.entry.paper_rows, static_cast<long long>(m.entry.paper_nnz),
              m.lower.rows, m.scale);

  const sim::Machine machine = sim::Machine::dgx1(8);
  const double inv = 1.0 / m.scale;

  // Capacity planning at PAPER scale: per-GPU bytes for 1..8 GPUs, using
  // the direct-solver pipeline footprint (original matrix + LU factors +
  // workspace ~ 2.5x the lower factor, see DESIGN.md).
  int chosen = -1;
  for (int g = 1; g <= 8; ++g) {
    const sparse::Partition p = sparse::Partition::round_robin_tasks(
        m.lower.rows, g, 8);
    const sparse::FootprintEstimate est = sparse::estimate_footprint(
        m.lower, p, sparse::StateLayout::kSymmetricHeap, inv, inv);
    double worst = 0.0;
    for (int d = 0; d < g; ++d) {
      const double pipeline =
          2.5 * (est.bytes_per_gpu[static_cast<std::size_t>(d)] -
                 est.replicated_state_bytes / g) +
          est.replicated_state_bytes / g;
      worst = std::max(worst, pipeline);
    }
    const bool fits = worst <= machine.gpu.memory_bytes;
    std::printf("  %d GPU%s: %7.2f GiB/GPU %s\n", g, g > 1 ? "s" : " ",
                worst / (1024.0 * 1024.0 * 1024.0), fits ? "fits" : "OOM");
    if (fits && chosen < 0) chosen = g;
  }
  if (chosen < 0) {
    std::printf("  does not fit this node at paper scale\n");
    chosen = 8;
  }
  std::printf("  -> smallest feasible configuration: %d GPUs\n", chosen);

  // Solve the analog on the chosen configuration and on the full node.
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(
      m.lower, sparse::gen_solution(m.lower.rows, 3));
  for (int g : {chosen, 8}) {
    if (g > machine.num_gpus()) continue;
    core::SolveOptions opt = core::registry::options_for("mg-zerocopy").value();
    opt.machine = sim::Machine::dgx1(g);
    opt.tasks_per_gpu = 8;
    const core::SolveResult r = core::solve(m.lower, b, opt);
    std::printf("  zero-copy on %d GPUs: %9.1f us  (residual %.1e, "
                "%llu remote updates, %.2f MiB over NVLink)\n",
                g, r.report.total_us(),
                core::relative_residual(m.lower, r.x, b),
                static_cast<unsigned long long>(r.report.remote_updates),
                r.report.link_bytes / (1024.0 * 1024.0));
    if (g == chosen && g > 1) {
      core::SolveOptions um = core::registry::options_for("mg-unified").value();
      um.machine = opt.machine;
      um.tasks_per_gpu = opt.tasks_per_gpu;
      const core::SolveResult ur = core::solve(m.lower, b, um);
      std::printf("  unified-memory baseline:   %9.1f us  (%llu page faults)"
                  "  -> zero-copy %.2fx\n",
                  ur.report.total_us(),
                  static_cast<unsigned long long>(ur.report.page_faults),
                  ur.report.total_us() / r.report.total_us());
    }
  }
}

}  // namespace

int main() {
  std::printf("out-of-core SpTRSV: paper-scale capacity planning on a "
              "16 GiB-per-GPU DGX-1\n");
  plan_and_solve("twitter7", 30000);
  plan_and_solve("uk-2005", 30000);
  return 0;
}
