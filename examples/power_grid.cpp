// Power-grid simulation scenario (one of the paper's motivating HPC
// applications): solve the grid's admittance system Y v = i with an
// ILU(0)-preconditioned Richardson iteration whose inner kernels are the
// library's forward/backward triangular solves, running on the simulated
// multi-GPU machine. SpTRSV dominates such solvers' runtime, which is why
// its multi-GPU scaling matters.
#include <cmath>
#include <cstdio>

#include "core/msptrsv.hpp"
#include "support/rng.hpp"

using namespace msptrsv;

namespace {

/// A synthetic power network: a service-area transmission mesh with a few
/// long-range interconnection ties, yielding a diagonally dominant sparse
/// admittance-like matrix.
sparse::CsrMatrix build_grid_admittance(index_t buses, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  sparse::CooMatrix coo;
  coo.rows = coo.cols = buses;
  std::vector<double> diag(static_cast<std::size_t>(buses), 0.1);
  auto add_branch = [&](index_t a, index_t b_bus, double admittance) {
    coo.add(a, b_bus, -admittance);
    coo.add(b_bus, a, -admittance);
    diag[static_cast<std::size_t>(a)] += admittance;
    diag[static_cast<std::size_t>(b_bus)] += admittance;
  };
  // Transmission backbone: buses laid out on a service-area mesh, each
  // connected to its east and north neighbors (real grids have 2D area
  // structure, which is also what gives the factor usable parallelism).
  const index_t side = static_cast<index_t>(std::sqrt((double)buses));
  for (index_t i = 0; i < buses; ++i) {
    if ((i % side) + 1 < side && i + 1 < buses) {
      add_branch(i, i + 1, rng.uniform_real(1.0, 4.0));
    }
    if (i + side < buses) add_branch(i, i + side, rng.uniform_real(1.0, 4.0));
  }
  // A few long-range interconnection ties.
  for (index_t t = 0; t < buses / 50; ++t) {
    const index_t a = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(buses)));
    const index_t b_bus = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(buses)));
    if (a != b_bus) add_branch(a, b_bus, rng.uniform_real(0.5, 2.0));
  }
  for (index_t i = 0; i < buses; ++i) coo.add(i, i, diag[static_cast<std::size_t>(i)]);
  coo.normalize();
  return sparse::csr_from_coo(std::move(coo));
}

}  // namespace

int main() {
  const index_t buses = 20000;
  std::printf("power grid: %d buses\n", buses);
  const sparse::CsrMatrix y = build_grid_admittance(buses, 2024);
  const sparse::CscMatrix y_csc = sparse::csc_from_csr(y);

  // Factorize once (the paper uses MA48; we use ILU(0) -- see DESIGN.md).
  const sparse::IluResult f = sparse::ilu0(y);
  const sparse::LevelAnalysis analysis = sparse::analyze_levels(f.lower);
  std::printf("L factor: nnz=%lld levels=%d parallelism=%.0f\n",
              static_cast<long long>(f.lower.nnz()), analysis.num_levels,
              analysis.parallelism_metric());

  // Injection currents with a known bus-voltage profile.
  const std::vector<value_t> v_true = sparse::gen_solution(buses, 5);
  const std::vector<value_t> injections = sparse::multiply(y_csc, v_true);

  // Preconditioned Richardson: v += (LU)^{-1} (i - Y v). Both triangular
  // solves run through the zero-copy multi-GPU backend. This is exactly
  // the workload the phase-split API exists for: analyze each factor ONCE,
  // then every iteration is a pure numeric solve against the cached
  // analysis (the paper's amortized analyze/solve split).
  const core::SolveOptions opt =
      core::registry::options_for("mg-zerocopy").value();
  const core::SolverPlan fwd_plan =
      core::SolverPlan::analyze(f.lower, opt).value();
  const core::SolverPlan bwd_plan =
      core::SolverPlan::analyze_upper(f.upper, opt).value();
  std::printf("one-time analysis: %.1f us forward, %.1f us backward\n",
              fwd_plan.analysis_us(), bwd_plan.analysis_us());

  std::vector<value_t> v(static_cast<std::size_t>(buses), 0.0);
  double sptrsv_us = 0.0;
  int iters = 0;
  value_t rel = 1.0;
  for (; iters < 200 && rel > 1e-10; ++iters) {
    const std::vector<value_t> yv = sparse::multiply(y_csc, v);
    std::vector<value_t> r(static_cast<std::size_t>(buses));
    value_t rnorm = 0.0, bnorm = 0.0;
    for (std::size_t k = 0; k < r.size(); ++k) {
      r[k] = injections[k] - yv[k];
      rnorm = std::max(rnorm, std::abs(r[k]));
      bnorm = std::max(bnorm, std::abs(injections[k]));
    }
    rel = bnorm > 0 ? rnorm / bnorm : rnorm;
    if (rel <= 1e-10) break;
    const core::SolveResult fwd = fwd_plan.solve(r).value();
    const core::SolveResult bwd = bwd_plan.solve(fwd.x).value();
    sptrsv_us += fwd.report.solve_us + bwd.report.solve_us;
    for (std::size_t k = 0; k < v.size(); ++k) v[k] += bwd.x[k];
  }

  std::printf("converged to relative residual %.2e in %d iterations\n", rel,
              iters);
  std::printf("max bus-voltage error: %.2e\n",
              core::max_relative_difference(v, v_true));
  std::printf("simulated SpTRSV time across all iterations: %.1f us "
              "(%.1f us per pair of solves)\n",
              sptrsv_us, sptrsv_us / std::max(1, iters));
  std::printf("analysis amortization: %.1f us charged once vs %.1f us had "
              "every iteration re-analyzed\n",
              fwd_plan.analysis_us() + bwd_plan.analysis_us(),
              (fwd_plan.analysis_us() + bwd_plan.analysis_us()) *
                  static_cast<double>(std::max(1, iters)));
  return 0;
}
