// Topology and backend exploration: how the same workload behaves across
// machines (DGX-1, DGX-2, a hypothetical slow all-to-all node) and across
// every solver design point -- the kind of study Section VI-D ends on
// ("the scalability ... depends on the intra-node network design").
#include <cstdio>

#include "core/msptrsv.hpp"
#include "support/table.hpp"

using namespace msptrsv;

int main() {
  const sparse::CscMatrix L =
      sparse::gen_layered_dag(40000, 50, 240000, 0.3, 11);
  const sparse::LevelAnalysis a = sparse::analyze_levels(L);
  std::printf("workload: n=%d nnz=%lld levels=%d parallelism=%.0f\n\n",
              L.rows, static_cast<long long>(L.nnz()), a.num_levels,
              a.parallelism_metric());
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(L, sparse::gen_solution(L.rows, 1));

  struct MachineChoice {
    const char* label;
    sim::Machine machine;
  };
  const MachineChoice machines[] = {
      {"DGX-1 x4", sim::Machine::dgx1(4)},
      {"DGX-2 x4", sim::Machine::dgx2(4)},
      {"DGX-2 x16", sim::Machine::dgx2(16)},
      {"slow-fabric x4", sim::Machine::custom(4, 8.0)},
  };
  const char* backend_keys[] = {"mg-unified", "mg-shmem", "mg-zerocopy"};

  support::Table table({"Machine", "Backend", "Time (us)", "Imbalance",
                        "NVLink MiB", "Faults", "Gets"});
  for (const MachineChoice& mc : machines) {
    for (const char* key : backend_keys) {
      core::SolveOptions opt = core::registry::options_for(key).value();
      opt.machine = mc.machine;
      opt.tasks_per_gpu = 8;
      const core::SolveResult r = core::solve(L, b, opt);
      table.begin_row();
      table.add_cell(mc.label);
      table.add_cell(core::backend_name(opt.backend));
      table.add_cell(r.report.total_us(), 1);
      table.add_cell(r.report.load_imbalance(), 2);
      table.add_cell(r.report.link_bytes / (1024.0 * 1024.0), 2);
      table.add_cell(r.report.page_faults);
      table.add_cell(r.report.nvshmem_gets);
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());

  // Single-GPU baselines for context.
  core::SolveOptions ls = core::registry::options_for("gpu-levelset").value();
  const core::SolveResult rl = core::solve(L, b, ls);
  core::SolveOptions sf = core::registry::options_for("mg-zerocopy").value();
  sf.machine = sim::Machine::dgx1(1);
  sf.tasks_per_gpu = 1;
  const core::SolveResult rs = core::solve(L, b, sf);
  std::printf("single-GPU level-set (csrsv2): %.1f us; single-GPU sync-free: "
              "%.1f us\n",
              rl.report.total_us(), rs.report.total_us());
  return 0;
}
