// solve_serverd: the deployable solve-server daemon.
//
//   solve_serverd --port=7450 --backend=cpu-syncfree --threads=8 \
//                 --cache-dir=/var/lib/msptrsv/plans
//
// Serves the wire protocol (docs/PROTOCOL.md) until SIGTERM/SIGINT, then
// DRAINS: in-flight solves complete and are flushed before exit(0) -- a
// rolling restart behind a router never drops an admitted request.
//
// Scale-out: run N of these (one per shard) behind a net::Router. Use
// --threads to cap each shard's worker pool so N shards share a machine
// honestly, and point every shard's --cache-dir at the same directory so
// a plan analyzed by one shard is a disk hit for the rest (hash-ref
// opens).
//
//   --port=0 picks an ephemeral port; --port-file writes the chosen port
//   (atomically, via rename) for supervisors that need to discover it.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "core/worker_pool.hpp"
#include "net/metrics.hpp"
#include "net/server.hpp"
#include "support/blob.hpp"
#include "support/cli.hpp"
#include "support/trace.hpp"

namespace {

// Self-pipe: the signal handler writes one byte; main blocks on read.
// Everything a handler may touch must be async-signal-safe -- write(2)
// is, the server's mutex-taking stop() is not.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msptrsv;

  support::CliParser cli(
      "msptrsv solve server: serves the binary wire protocol in front of a "
      "multi-tenant SolveService; drains on SIGTERM.");
  cli.add_option("port", "0", "TCP port to listen on (0 = ephemeral)");
  cli.add_option("port-file", "",
                 "write the chosen port to this file (atomic rename)");
  cli.add_option("threads", "0",
                 "worker-pool size cap for this process (0 = all cores); "
                 "use to split a machine across shards");
  cli.add_option("cache-dir", "",
                 "plan-blob directory (shared across shards = fleet warm "
                 "tier for hash-ref opens)");
  cli.add_option("max-pending", "1024",
                 "admission bound in outstanding right-hand sides");
  cli.add_option("max-connections", "64", "concurrent connection bound");
  cli.add_option("name", "msptrsv", "server name (hello-ok + metrics label)");
  cli.add_option("enable-failpoints", "false",
                 "accept failpoint frames (fault injection) over the wire; "
                 "chaos tests only -- never in production");
  cli.add_option("trace-dir", "",
                 "arm span tracing and, on drain, dump trace_<port>.json "
                 "(buffered + slow-sampled spans, Perfetto-loadable) and "
                 "metrics_<port>.prom into this directory");
  if (!cli.parse(argc, argv)) return 0;

  // Must precede any plan/service work: the process-wide pool is sized
  // once, on first use.
  core::SharedWorkerPool::configure_instance_threads(
      static_cast<int>(cli.get_int("threads")));

  net::ServerOptions options;
  options.port = static_cast<std::uint16_t>(cli.get_int("port"));
  options.max_connections =
      static_cast<std::size_t>(cli.get_int("max-connections"));
  options.server_name = cli.get_string("name");
  options.service.max_pending_rhs =
      static_cast<std::size_t>(cli.get_int("max-pending"));
  options.service.cache_dir = cli.get_string("cache-dir");
  if (!options.service.cache_dir.empty()) {
    // Create the blob directory up front: the cache's disk stores fail
    // SILENTLY on a missing directory (by design -- the warm tier is an
    // optimization), which in a fleet means every failover hash-ref open
    // misses. Refuse to start rather than run with a dark warm tier.
    std::error_code ec;
    std::filesystem::create_directories(options.service.cache_dir, ec);
    if (ec) {
      std::fprintf(stderr, "solve_serverd: cannot create --cache-dir %s: %s\n",
                   options.service.cache_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  options.allow_failpoint_control = cli.get_bool("enable-failpoints");

  const std::string trace_dir = cli.get_string("trace-dir");
  if (!trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec) {
      std::fprintf(stderr, "solve_serverd: cannot create --trace-dir %s: %s\n",
                   trace_dir.c_str(), ec.message().c_str());
      return 1;
    }
    if (!support::trace::trace_set_enabled(true)) {
      std::fprintf(stderr,
                   "solve_serverd: --trace-dir set but span tracing is "
                   "compiled out (MSPTRSV_TRACE=OFF); dumps will hold only "
                   "empty documents\n");
    }
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  net::SolveServer server(options);
  core::Expected<bool> started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "solve_serverd: %s\n",
                 started.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "solve_serverd: listening on 127.0.0.1:%u\n",
               server.port());

  const std::string port_file = cli.get_string("port-file");
  if (!port_file.empty()) {
    const std::string text = std::to_string(server.port()) + "\n";
    if (!support::write_file(
            port_file,
            {reinterpret_cast<const std::uint8_t*>(text.data()),
             text.size()})) {
      std::fprintf(stderr, "solve_serverd: cannot write %s\n",
                   port_file.c_str());
      return 1;
    }
  }

  // Block until a signal arrives (EINTR restarts the read).
  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) < 0) {
  }
  std::fprintf(stderr, "solve_serverd: draining...\n");
  server.stop();
  const net::WireStats final_stats = server.wire_stats();
  if (!trace_dir.empty()) {
    // One Perfetto-loadable document per shard: the live rings plus the
    // slow sampler's retained trees, spliced into a single traceEvents
    // array (both documents are our own trace_collect_json output, so
    // the string-level splice is against a known grammar).
    std::string body;
    for (const std::string& doc : {support::trace::trace_collect_json(),
                                   support::trace::trace_slow_json()}) {
      const std::size_t open = doc.find('[');
      const std::size_t close = doc.rfind(']');
      if (open == std::string::npos || close == std::string::npos ||
          close <= open + 1) {
        continue;
      }
      if (!body.empty()) body += ",";
      body += doc.substr(open + 1, close - open - 1);
    }
    const std::string trace_doc = "{\"traceEvents\":[" + body + "]}";
    const std::string trace_path =
        trace_dir + "/trace_" + std::to_string(server.port()) + ".json";
    const std::string metrics_text =
        net::render_prometheus(final_stats, options.server_name);
    const std::string metrics_path =
        trace_dir + "/metrics_" + std::to_string(server.port()) + ".prom";
    const auto dump = [](const std::string& path, const std::string& text) {
      return support::write_file(
          path, {reinterpret_cast<const std::uint8_t*>(text.data()),
                 text.size()});
    };
    if (!dump(trace_path, trace_doc) || !dump(metrics_path, metrics_text)) {
      std::fprintf(stderr, "solve_serverd: cannot write trace dumps to %s\n",
                   trace_dir.c_str());
    } else {
      std::fprintf(stderr, "solve_serverd: wrote %s (%zu bytes)\n",
                   trace_path.c_str(), trace_doc.size());
    }
  }
  std::fprintf(stderr,
               "solve_serverd: drained; %llu rhs completed, %llu frames, "
               "%llu protocol errors\n",
               static_cast<unsigned long long>(final_stats.completed),
               static_cast<unsigned long long>(final_stats.frames_received),
               static_cast<unsigned long long>(final_stats.protocol_errors));
  return 0;
}
