// Machine-sensitivity ablation for the paper's closing observation
// (Section VI-D): "the scalability of SpTRSV ... depends not only on the
// dependency and parallelism metrics for a sparse matrix, but also on the
// intra-node network design and the signaling technologies."
//
// Sweeps the interconnect of a hypothetical future node (link bandwidth and
// per-hop latency) and the GPU's warp residency, and reports zero-copy
// SpTRSV time on a fixed mid-range workload.
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

namespace {

double run_with(const bench::BenchMatrix& m, const core::SolveOptions& base,
                sim::Machine machine) {
  core::SolveOptions o = base;
  o.machine = std::move(machine);
  o.tasks_per_gpu = 8;
  return bench::timed_solve_us(m, o);
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "Machine ablation: zero-copy SpTRSV vs link bandwidth, hop latency "
      "and warp residency on a 4-GPU all-to-all node.");
  bench::add_common_options(cli);
  bench::add_backend_option(cli, "mg-zerocopy");
  if (!cli.parse(argc, argv)) return 0;
  bench::BenchContext ctx = bench::context_from(cli);
  const core::SolveOptions base = bench::backend_options_from(cli);
  if (!core::registry::entry_of(base.backend).multi_gpu) {
    std::fprintf(stderr,
                 "backend '%s' does not run on the simulated multi-GPU "
                 "machine; this ablation sweeps machine parameters and "
                 "needs one of the mg-* backends\n",
                 core::backend_name(base.backend).c_str());
    return 2;
  }
  if (ctx.matrix_names.empty()) {
    ctx.matrix_names = {"belgium_osm", "dblp-2010", "nlpkkt160", "Wordnet3"};
  }
  const std::vector<bench::BenchMatrix> matrices = bench::load_matrices(ctx);

  // --- link bandwidth sweep (per-pair GB/s) -------------------------------
  {
    support::Table t({"Matrix", "8 GB/s (us)", "25 GB/s x", "50 GB/s x",
                      "200 GB/s x"});
    for (const bench::BenchMatrix& m : matrices) {
      const double t0 = run_with(m, base, sim::Machine::custom(4, 8.0));
      t.begin_row();
      t.add_cell(m.suite.entry.name);
      t.add_cell(t0, 1);
      for (double bw : {25.0, 50.0, 200.0}) {
        t.add_cell(t0 / run_with(m, base, sim::Machine::custom(4, bw)), 2);
      }
    }
    bench::print_table(
        "Ablation A -- link bandwidth (speedup over an 8 GB/s fabric):", t,
        ctx.csv);
  }

  // --- hop latency sweep ----------------------------------------------------
  {
    support::Table t({"Matrix", "0.1us (us)", "0.3us x", "1us x", "3us x"});
    for (const bench::BenchMatrix& m : matrices) {
      auto at_latency = [&](double lat) {
        sim::CostModel c;
        c.hop_latency_us = lat;
        return run_with(m, base, sim::Machine::custom(4, 25.0, c));
      };
      const double t0 = at_latency(0.1);
      t.begin_row();
      t.add_cell(m.suite.entry.name);
      t.add_cell(t0, 1);
      for (double lat : {0.3, 1.0, 3.0}) {
        t.add_cell(t0 / at_latency(lat), 2);
      }
    }
    bench::print_table(
        "Ablation B -- per-hop signaling latency (values < 1: slower; "
        "deep matrices suffer most, matching the paper's latency-bound "
        "analysis):",
        t, ctx.csv);
  }

  // --- warp residency sweep -------------------------------------------------
  {
    support::Table t({"Matrix", "64 slots (us)", "192 x", "512 x", "2048 x"});
    for (const bench::BenchMatrix& m : matrices) {
      auto at_slots = [&](int slots) {
        sim::CostModel c;
        c.warp_slots_per_gpu = slots;
        return run_with(m, base, sim::Machine::custom(4, 25.0, c));
      };
      const double t0 = at_slots(64);
      t.begin_row();
      t.add_cell(m.suite.entry.name);
      t.add_cell(t0, 1);
      for (int slots : {192, 512, 2048}) {
        t.add_cell(t0 / at_slots(slots), 2);
      }
    }
    bench::print_table(
        "Ablation C -- warp residency (wide matrices gain; chains do not):",
        t, ctx.csv);
  }
  return 0;
}
