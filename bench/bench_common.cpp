#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/contracts.hpp"
#include "support/stats.hpp"

namespace msptrsv::bench {

void add_common_options(support::CliParser& cli) {
  cli.add_option("max-rows", "40000",
                 "cap on generated matrix rows (suite analogs are scaled)");
  cli.add_option("matrices", "",
                 "comma-separated Table I subset (default: all)");
  cli.add_option("csv", "false", "emit CSV after the table");
}

BenchContext context_from(const support::CliParser& cli) {
  BenchContext ctx;
  ctx.max_rows = static_cast<index_t>(cli.get_int("max-rows"));
  ctx.matrix_names = cli.get_list("matrices");
  ctx.csv = cli.get_bool("csv");
  return ctx;
}

std::vector<BenchMatrix> load_matrices(const BenchContext& ctx) {
  std::vector<BenchMatrix> out;
  for (sparse::SuiteMatrix& sm :
       sparse::generate_suite(ctx.max_rows, ctx.matrix_names)) {
    BenchMatrix bm;
    bm.b = sparse::gen_rhs_for_solution(
        sm.lower, sparse::gen_solution(sm.lower.rows, 1234));
    bm.suite = std::move(sm);
    out.push_back(std::move(bm));
  }
  return out;
}

core::SolveOptions options_for_backend(const std::string& key) {
  const core::Expected<core::SolveOptions> opt = core::registry::options_for(key);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.message().c_str());
    std::exit(2);
  }
  return opt.value();
}

void add_backend_option(support::CliParser& cli,
                        const std::string& default_key) {
  cli.add_option("backend", default_key,
                 "solver backend (" + core::registry::backend_keys() + ")");
}

core::SolveOptions backend_options_from(const support::CliParser& cli) {
  return options_for_backend(cli.get_string("backend"));
}

double timed_solve_us(const BenchMatrix& m, const core::SolveOptions& options) {
  const core::SolveResult r = core::solve(m.suite.lower, m.b, options);
  const value_t rel = core::relative_residual(m.suite.lower, r.x, m.b);
  MSPTRSV_ENSURE(rel < 1e-9,
                 "backend " + core::backend_name(options.backend) +
                     " produced a wrong solution on " + m.suite.entry.name +
                     " (relative residual " + std::to_string(rel) + ")");
  return r.report.total_us();
}


void print_table(const std::string& caption, const support::Table& table,
                 bool csv) {
  std::printf("%s\n%s", caption.c_str(), table.to_string().c_str());
  if (csv) std::printf("\nCSV:\n%s", table.to_csv().c_str());
  std::printf("\n");
}

double average_speedup(const std::vector<double>& speedups) {
  return support::geomean(speedups);
}

PairedStudy paired_median_study(const std::function<double()>& baseline,
                                const std::function<double()>& candidate,
                                int rounds) {
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  std::vector<double> ratios, noises, baselines, candidates;
  for (int round = 0; round < rounds; ++round) {
    const double a = baseline();
    const double mid = candidate();
    const double b = baseline();
    ratios.push_back(mid / (0.5 * (a + b)));
    noises.push_back(std::abs(a - b) / std::min(a, b));
    baselines.push_back(0.5 * (a + b));
    candidates.push_back(mid);
  }
  PairedStudy s;
  s.baseline_us = median(baselines);
  s.candidate_us = median(candidates);
  s.ratio = median(ratios);
  s.noise_pct = 100.0 * median(noises);
  s.overhead_pct = 100.0 * (s.ratio - 1.0);
  return s;
}

}  // namespace msptrsv::bench
