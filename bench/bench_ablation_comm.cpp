// Ablation of the Section IV design choices inside the NVSHMEM solver:
//   read-only model (paper)  vs  naive Get-Update-Put with fences;
//   r.in_degree poll cache   vs  gathering from every PE;
//   O(log P) warp reduction  vs  O(P) loop summation.
// All on a 4-GPU DGX-1 with the paper's 8 tasks/GPU.
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Ablation: NVSHMEM communication-model design choices (Section IV).");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const bench::BenchContext ctx = bench::context_from(cli);

  support::Table table({"Matrix", "Zerocopy (us)", "Naive GUP x",
                        "Gather-all x", "Linear-red. x"});
  std::vector<double> s_naive, s_all, s_linear;

  for (const bench::BenchMatrix& m : bench::load_matrices(ctx)) {
    core::SolveOptions base = bench::options_for_backend("mg-zerocopy");
    base.machine = sim::Machine::dgx1(4);
    const double zerocopy = bench::timed_solve_us(m, base);

    core::SolveOptions naive = base;
    naive.nvshmem.naive_get_update_put = true;
    const double naive_us = bench::timed_solve_us(m, naive);

    core::SolveOptions all = base;
    all.nvshmem.gather_from_all_pes = true;
    const double all_us = bench::timed_solve_us(m, all);

    core::SolveOptions linear = base;
    linear.nvshmem.linear_reduction = true;
    const double linear_us = bench::timed_solve_us(m, linear);

    s_naive.push_back(zerocopy / naive_us);
    s_all.push_back(zerocopy / all_us);
    s_linear.push_back(zerocopy / linear_us);

    table.begin_row();
    table.add_cell(m.suite.entry.name);
    table.add_cell(zerocopy, 1);
    table.add_cell(s_naive.back(), 2);
    table.add_cell(s_all.back(), 2);
    table.add_cell(s_linear.back(), 2);
  }

  table.add_separator();
  table.begin_row();
  table.add_cell("Avg. (geomean)");
  table.add_cell("");
  table.add_cell(bench::average_speedup(s_naive), 2);
  table.add_cell(bench::average_speedup(s_all), 2);
  table.add_cell(bench::average_speedup(s_linear), 2);

  bench::print_table(
      "Ablation -- alternative communication designs relative to the "
      "read-only zero-copy model (values < 1 mean the alternative is "
      "SLOWER; the paper's design should win everywhere):",
      table, ctx.csv);
  return 0;
}
