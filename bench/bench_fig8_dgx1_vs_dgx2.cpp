// Figure 8: 4-GPU DGX-1 vs DGX-2, Unified vs Zerocopy, all normalized to
// DGX-1-Unified. Paper shape: zero-copy improves ~3.53x on DGX-1 and
// ~3.66x on DGX-2 -- nearly the same despite DGX-2's extra bandwidth,
// because the zero-copy design already overlaps communication with
// computation.
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Figure 8: SpTRSV on 4-GPU DGX-1 and DGX-2, normalized to "
      "DGX-1-Unified.");
  bench::add_common_options(cli);
  cli.add_option("tasks-per-gpu", "8", "task-pool granularity");
  if (!cli.parse(argc, argv)) return 0;
  const bench::BenchContext ctx = bench::context_from(cli);
  const int tasks = static_cast<int>(cli.get_int("tasks-per-gpu"));

  support::Table table({"Matrix", "DGX1-Unified (us)", "DGX2-Unified x",
                        "DGX1-Zerocopy x", "DGX2-Zerocopy x"});
  std::vector<double> sp_u2, sp_z1, sp_z2;

  auto run_one = [&](const bench::BenchMatrix& m, const std::string& key,
                     sim::Machine machine) {
    core::SolveOptions o = bench::options_for_backend(key);
    o.machine = std::move(machine);
    o.tasks_per_gpu = tasks;
    return bench::timed_solve_us(m, o);
  };

  for (const bench::BenchMatrix& m : bench::load_matrices(ctx)) {
    const double d1u = run_one(m, "mg-unified", sim::Machine::dgx1(4));
    const double d2u = run_one(m, "mg-unified", sim::Machine::dgx2(4));
    const double d1z = run_one(m, "mg-zerocopy", sim::Machine::dgx1(4));
    const double d2z = run_one(m, "mg-zerocopy", sim::Machine::dgx2(4));
    sp_u2.push_back(d1u / d2u);
    sp_z1.push_back(d1u / d1z);
    sp_z2.push_back(d1u / d2z);

    table.begin_row();
    table.add_cell(m.suite.entry.name);
    table.add_cell(d1u, 1);
    table.add_cell(sp_u2.back(), 2);
    table.add_cell(sp_z1.back(), 2);
    table.add_cell(sp_z2.back(), 2);
  }

  table.add_separator();
  table.begin_row();
  table.add_cell("Avg. (geomean)");
  table.add_cell("");
  table.add_cell(bench::average_speedup(sp_u2), 2);
  table.add_cell(bench::average_speedup(sp_z1), 2);
  table.add_cell(bench::average_speedup(sp_z2), 2);

  bench::print_table("Figure 8 -- DGX-1 vs DGX-2 with 4 GPUs (normalized to "
                     "DGX-1-Unified):",
                     table, ctx.csv);
  std::printf("Paper reference: Zerocopy ~3.53x on DGX-1, ~3.66x on DGX-2 "
              "(similar despite different interconnects).\n");
  return 0;
}
