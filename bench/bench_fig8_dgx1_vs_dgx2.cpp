// Figure 8: 4-GPU DGX-1 vs DGX-2, Unified vs Zerocopy, all normalized to
// DGX-1-Unified. Paper shape: zero-copy improves ~3.53x on DGX-1 and
// ~3.66x on DGX-2 -- nearly the same despite DGX-2's extra bandwidth,
// because the zero-copy design already overlaps communication with
// computation.
//
// Machines come from the registry's named presets (dgx1x4/dgx2x4 for the
// paper's 4-GPU study; dgx1x8/dgx2x16 for the full-machine extension
// table), so the bench and any config-file-driven service agree on what
// "a DGX-2" means. --tasks-per-gpu overrides the preset tuning.
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Figure 8: SpTRSV on 4-GPU DGX-1 and DGX-2, normalized to "
      "DGX-1-Unified.");
  bench::add_common_options(cli);
  cli.add_option("tasks-per-gpu", "0",
                 "task-pool granularity (0 = the preset's tuning)");
  if (!cli.parse(argc, argv)) return 0;
  const bench::BenchContext ctx = bench::context_from(cli);
  const int tasks = static_cast<int>(cli.get_int("tasks-per-gpu"));

  auto run_one = [&](const bench::BenchMatrix& m, const std::string& key,
                     const std::string& preset) {
    const auto backend = core::registry::parse_backend(key);
    core::SolveOptions o =
        core::registry::preset_options(preset, backend.value()).value();
    if (tasks > 0) o.tasks_per_gpu = tasks;
    return bench::timed_solve_us(m, o);
  };

  const std::vector<bench::BenchMatrix> matrices = bench::load_matrices(ctx);

  support::Table table({"Matrix", "DGX1-Unified (us)", "DGX2-Unified x",
                        "DGX1-Zerocopy x", "DGX2-Zerocopy x"});
  std::vector<double> sp_u2, sp_z1, sp_z2;

  for (const bench::BenchMatrix& m : matrices) {
    const double d1u = run_one(m, "mg-unified", "dgx1x4");
    const double d2u = run_one(m, "mg-unified", "dgx2x4");
    const double d1z = run_one(m, "mg-zerocopy", "dgx1x4");
    const double d2z = run_one(m, "mg-zerocopy", "dgx2x4");
    sp_u2.push_back(d1u / d2u);
    sp_z1.push_back(d1u / d1z);
    sp_z2.push_back(d1u / d2z);

    table.begin_row();
    table.add_cell(m.suite.entry.name);
    table.add_cell(d1u, 1);
    table.add_cell(sp_u2.back(), 2);
    table.add_cell(sp_z1.back(), 2);
    table.add_cell(sp_z2.back(), 2);
  }

  table.add_separator();
  table.begin_row();
  table.add_cell("Avg. (geomean)");
  table.add_cell("");
  table.add_cell(bench::average_speedup(sp_u2), 2);
  table.add_cell(bench::average_speedup(sp_z1), 2);
  table.add_cell(bench::average_speedup(sp_z2), 2);

  bench::print_table("Figure 8 -- DGX-1 vs DGX-2 with 4 GPUs (normalized to "
                     "DGX-1-Unified):",
                     table, ctx.csv);
  std::printf("Paper reference: Zerocopy ~3.53x on DGX-1, ~3.66x on DGX-2 "
              "(similar despite different interconnects).\n\n");

  // Full-machine extension: the dgx1x8 / dgx2x16 presets, zero-copy only
  // (Unified Memory past 4 GPUs leaves the fully P2P-connected quad).
  support::Table full({"Matrix", "dgx1x8 Zerocopy (us)", "dgx2x16 Zerocopy x"});
  std::vector<double> sp_full;
  for (const bench::BenchMatrix& m : matrices) {
    const double z8 = run_one(m, "mg-zerocopy", "dgx1x8");
    const double z16 = run_one(m, "mg-zerocopy", "dgx2x16");
    sp_full.push_back(z8 / z16);
    full.begin_row();
    full.add_cell(m.suite.entry.name);
    full.add_cell(z8, 1);
    full.add_cell(sp_full.back(), 2);
  }
  full.add_separator();
  full.begin_row();
  full.add_cell("Avg. (geomean)");
  full.add_cell("");
  full.add_cell(bench::average_speedup(sp_full), 2);
  bench::print_table(
      "Full-machine presets -- dgx1x8 vs dgx2x16 (registry presets, "
      "zero-copy):",
      full, ctx.csv);
  return 0;
}
