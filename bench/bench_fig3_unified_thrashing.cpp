// Figure 3: the unified-memory characterization. For the four
// representative matrices, runs the Algorithm-2 solver on a DGX-1 with
// 2, 4 and 8 GPUs and reports
//   (a) page-fault counts normalized to the 2-GPU run, and
//   (b) performance (1/time) normalized to the 2-GPU run.
// Paper shape: faults GROW with GPU count (up to ~11.7x at 8 GPUs) and
// performance DROPS -- except for the high-parallelism nlpkkt160.
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Figure 3: page thrashing of SpTRSV with Unified Memory on DGX-1.");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::BenchContext ctx = bench::context_from(cli);
  if (ctx.matrix_names.empty()) ctx.matrix_names = sparse::fig3_matrix_names();

  support::Table faults({"Matrix", "Faults 2GPU", "4GPU (norm)", "8GPU (norm)"});
  support::Table perf({"Matrix", "Time 2GPU (us)", "4GPU speedup",
                       "8GPU speedup"});

  for (const bench::BenchMatrix& m : bench::load_matrices(ctx)) {
    double time_us[3];
    std::uint64_t fault_count[3];
    const int gpu_counts[3] = {2, 4, 8};
    for (int i = 0; i < 3; ++i) {
      core::SolveOptions o = bench::options_for_backend("mg-unified");
      o.machine = sim::Machine::dgx1(gpu_counts[i]);
      const core::SolveResult r = core::solve(m.suite.lower, m.b, o);
      time_us[i] = r.report.total_us();
      fault_count[i] = r.report.page_faults;
    }
    faults.begin_row();
    faults.add_cell(m.suite.entry.name);
    faults.add_cell(fault_count[0]);
    faults.add_cell(static_cast<double>(fault_count[1]) /
                        static_cast<double>(fault_count[0]), 2);
    faults.add_cell(static_cast<double>(fault_count[2]) /
                        static_cast<double>(fault_count[0]), 2);

    perf.begin_row();
    perf.add_cell(m.suite.entry.name);
    perf.add_cell(time_us[0], 1);
    perf.add_cell(time_us[0] / time_us[1], 2);
    perf.add_cell(time_us[0] / time_us[2], 2);
  }

  bench::print_table(
      "Figure 3a -- page-fault count, normalized to 2 GPUs (higher = more "
      "thrashing):",
      faults, ctx.csv);
  bench::print_table(
      "Figure 3b -- performance normalized to 2 GPUs (values < 1 mean MORE "
      "GPUs run SLOWER):",
      perf, ctx.csv);
  std::printf("Paper shape: fault count grows 2->4->8 GPUs; performance "
              "degrades except for the high-parallelism nlpkkt160.\n");
  return 0;
}
