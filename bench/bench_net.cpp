// Network-tier benchmark: what the wire costs, and what scale-out buys.
//
// Two studies:
//
//  * WIRE TAX -- the same closed-loop workload is driven twice: straight
//    into an in-process SolveService (no sockets), then through a
//    net::SolveClient against a loopback net::SolveServer. The ratio is
//    the protocol's overhead -- framing, CRC, a TCP round-trip -- and the
//    loopback answers are verified BIT-FOR-BIT against direct
//    plan.solve_batch throughout (a bench that prints numbers for wrong
//    answers is worse than no bench).
//
//  * ROUTED SCALE-OUT -- 1 versus 2 REAL solve_serverd processes
//    (fork/exec, ephemeral ports discovered through --port-file), each
//    worker-capped to a slice of the machine, behind a plan-hash
//    net::Router on a mixed workload of >= 4 distinct factors. Plans
//    spread across shards by rendezvous hashing, so adding a process
//    adds capacity instead of splitting one plan's coalescable traffic.
//
// ACCEPTANCE GATE (exits non-zero on violation): with >= 4 hardware
// threads, 2-shard routed throughput must be >= 1.3x the 1-shard figure.
// On smaller machines the study still runs and reports, but the gate is
// recorded as skipped -- two processes cannot out-run one core.
//
// Emits BENCH_net.json (override with MSPTRSV_BENCH_NET_JSON); the
// routed_study block is what CI greps for.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/msptrsv.hpp"
#include "net/client.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "service/latency_histogram.hpp"
#include "support/cli.hpp"

namespace {

using namespace msptrsv;
using Clock = std::chrono::steady_clock;

struct Workload {
  sparse::CscMatrix lower;
  std::vector<value_t> rhs;       // num_rhs columns, column-major
  std::vector<value_t> expected;  // direct plan.solve_batch answer
};

struct LoopResult {
  double seconds = 0.0;
  std::uint64_t completed_rhs = 0;
  std::uint64_t failures = 0;
  double throughput = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

std::vector<Workload> make_workloads(int plans, index_t n, index_t num_rhs,
                                     const std::string& backend) {
  std::vector<Workload> out;
  for (int p = 0; p < plans; ++p) {
    Workload w;
    w.lower = sparse::gen_layered_dag(n, 24, 6 * n, 0.5,
                                      static_cast<std::uint64_t>(p) + 1);
    for (index_t r = 0; r < num_rhs; ++r) {
      const auto col = sparse::gen_rhs_for_solution(
          w.lower, sparse::gen_solution(n, 100 + static_cast<std::uint64_t>(
                                                     p * num_rhs + r)));
      w.rhs.insert(w.rhs.end(), col.begin(), col.end());
    }
    const auto options = core::registry::service_options(backend);
    const auto plan = core::SolverPlan::analyze(w.lower, options.value());
    w.expected = plan.value().solve_batch(w.rhs, num_rhs).value().x;
    out.push_back(std::move(w));
  }
  return out;
}

/// Closed-loop drive: `drivers` threads, each solving its round-robin
/// workload and waiting for the answer, until `seconds` elapse. `solve`
/// returns the solution or an error; answers are checked bit-for-bit.
template <typename SolveFn>
LoopResult drive_closed_loop(const std::vector<Workload>& workloads,
                             index_t num_rhs, int drivers, double seconds,
                             SolveFn&& solve) {
  service::LatencyHistogram hist;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failures{0};
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int d = 0; d < drivers; ++d) {
    threads.emplace_back([&, d] {
      std::size_t i = static_cast<std::size_t>(d);
      while (Clock::now() < deadline) {
        const Workload& w = workloads[i++ % workloads.size()];
        const auto start = Clock::now();
        const core::Expected<std::vector<value_t>> x = solve(w);
        if (!x.ok() || x.value() != w.expected) {
          failures.fetch_add(1);
          continue;
        }
        hist.record(std::chrono::duration<double, std::micro>(Clock::now() -
                                                              start)
                        .count());
        completed.fetch_add(static_cast<std::uint64_t>(num_rhs));
      }
    });
  }
  for (auto& t : threads) t.join();

  LoopResult r;
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.completed_rhs = completed.load();
  r.failures = failures.load();
  r.throughput = static_cast<double>(r.completed_rhs) / r.seconds;
  const auto snap = hist.snapshot();
  r.p50_us = snap.quantile(0.50);
  r.p99_us = snap.quantile(0.99);
  return r;
}

// ---- child server processes ------------------------------------------------

struct Shard {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// fork/execs one solve_serverd (--port=0) and waits for its port file.
bool spawn_shard(const std::string& serverd, const std::string& cache_dir,
                 int threads, const std::string& tag, Shard* out) {
  const std::string port_file = cache_dir + "/port_" + tag;
  std::filesystem::remove(port_file);
  const std::string port_arg = "--port-file=" + port_file;
  const std::string threads_arg = "--threads=" + std::to_string(threads);
  const std::string cache_arg = "--cache-dir=" + cache_dir;

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    execl(serverd.c_str(), serverd.c_str(), "--port=0", port_arg.c_str(),
          threads_arg.c_str(), cache_arg.c_str(), "--max-pending=8192",
          static_cast<const char*>(nullptr));
    std::perror("execl solve_serverd");
    _exit(127);
  }

  // The daemon writes the chosen port atomically once it is listening.
  for (int tries = 0; tries < 750; ++tries) {
    std::vector<std::uint8_t> bytes;
    if (support::read_file(port_file, bytes) && !bytes.empty()) {
      out->pid = pid;
      out->port = static_cast<std::uint16_t>(
          std::atoi(std::string(bytes.begin(), bytes.end()).c_str()));
      return out->port != 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::fprintf(stderr, "shard %s never wrote %s\n", tag.c_str(),
               port_file.c_str());
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);
  return false;
}

/// SIGTERM (graceful drain) and reap; true iff the daemon exited 0.
bool stop_shard(const Shard& shard) {
  kill(shard.pid, SIGTERM);
  int status = 0;
  waitpid(shard.pid, &status, 0);
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// One routed measurement against `shard_count` fresh server processes.
bool run_routed_point(const std::string& serverd, const std::string& cache_dir,
                      int shard_count, int threads_per_shard,
                      const std::vector<Workload>& workloads, index_t num_rhs,
                      const std::string& backend, int drivers, double seconds,
                      LoopResult* out) {
  std::vector<Shard> shards(static_cast<std::size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    if (!spawn_shard(serverd, cache_dir, threads_per_shard,
                     std::to_string(shard_count) + "_" + std::to_string(s),
                     &shards[static_cast<std::size_t>(s)])) {
      return false;
    }
  }

  bool ok = true;
  {
    net::RouterOptions ropt;
    for (const Shard& s : shards) ropt.endpoints.push_back({"127.0.0.1", s.port});
    net::Router router(ropt);

    std::vector<net::RoutedHandle> handles;
    for (const Workload& w : workloads) {
      const auto h = router.open(w.lower, backend);
      if (!h.ok()) {
        std::fprintf(stderr, "routed open failed: %s\n", h.message().c_str());
        ok = false;
        break;
      }
      handles.push_back(h.value());
    }

    if (ok) {
      *out = drive_closed_loop(
          workloads, num_rhs, drivers, seconds, [&](const Workload& w) {
            const std::size_t idx =
                static_cast<std::size_t>(&w - workloads.data());
            return router.solve_batch(handles[idx], w.rhs, num_rhs);
          });
    }
  }  // router (and its connections) closed before the shards stop

  for (const Shard& s : shards) {
    if (!stop_shard(s)) {
      std::fprintf(stderr, "shard on port %u did not drain cleanly\n", s.port);
      ok = false;
    }
  }
  return ok && out->failures == 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "Network-tier benchmark: wire tax vs an in-process service, and the "
      "1- vs 2-shard routed scale-out study (emits BENCH_net.json)");
  cli.add_option("backend", "cpu-syncfree", "registry backend key");
  cli.add_option("n", "3000", "rows per generated factor");
  cli.add_option("num-rhs", "4", "right-hand sides per solve frame");
  cli.add_option("plans", "6", "distinct factors in the mixed workload");
  cli.add_option("drivers", "8", "closed-loop driver threads");
  cli.add_option("seconds", "1.5", "measured wall time per configuration");
  cli.add_option("serverd", "",
                 "path to solve_serverd (default: next to this binary)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string backend = cli.get_string("backend");
  const index_t n = static_cast<index_t>(cli.get_int("n"));
  const index_t num_rhs = static_cast<index_t>(cli.get_int("num-rhs"));
  const int plans = static_cast<int>(cli.get_int("plans"));
  const int drivers = static_cast<int>(cli.get_int("drivers"));
  const double seconds = cli.get_double("seconds");

  std::string serverd = cli.get_string("serverd");
  if (serverd.empty()) {
    const std::filesystem::path self(argv[0]);
    serverd = (self.parent_path() / "solve_serverd").string();
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int threads_per_shard = std::max(1, static_cast<int>(hw) / 4);
  const bool gated = hw >= 4;

  std::printf("bench_net: %d plans x n=%d, %d rhs/frame, %d drivers, "
              "%.1fs/point, %u hw threads (%d per shard)\n\n",
              plans, n, num_rhs, drivers, seconds, hw, threads_per_shard);

  const std::vector<Workload> workloads =
      make_workloads(plans, n, num_rhs, backend);

  // ---- study 1: wire tax ---------------------------------------------------
  LoopResult direct;
  {
    service::ServiceOptions sopt;
    sopt.max_pending_rhs = 8192;
    service::SolveService svc(sopt);
    std::vector<core::SolverPlan> svc_plans;
    for (const Workload& w : workloads) {
      svc_plans.push_back(svc.plan_for(w.lower, backend).value());
    }
    direct = drive_closed_loop(
        workloads, num_rhs, drivers, seconds, [&](const Workload& w) {
          const std::size_t idx =
              static_cast<std::size_t>(&w - workloads.data());
          service::SolveService::Reply r =
              svc.submit_batch(svc_plans[idx], w.rhs, num_rhs, {}).get();
          using Out = core::Expected<std::vector<value_t>>;
          if (!r.ok()) return Out(r.error());
          return Out(std::move(r.value().x));
        });
  }
  std::printf("direct (no wire):   %8.0f rhs/s   p50 %6.0f us   p99 %6.0f us\n",
              direct.throughput, direct.p50_us, direct.p99_us);

  LoopResult loopback;
  {
    net::ServerOptions sopt;
    sopt.service.max_pending_rhs = 8192;
    net::SolveServer server(sopt);
    if (!server.start().ok()) {
      std::fprintf(stderr, "loopback server failed to start\n");
      return 2;
    }
    net::ClientOptions copt;
    copt.port = server.port();
    net::SolveClient client(copt);
    std::vector<net::PlanHandle> handles;
    for (const Workload& w : workloads) {
      handles.push_back(client.open(w.lower, backend).value());
    }
    loopback = drive_closed_loop(
        workloads, num_rhs, drivers, seconds, [&](const Workload& w) {
          const std::size_t idx =
              static_cast<std::size_t>(&w - workloads.data());
          return client.solve_batch(handles[idx], w.rhs, num_rhs);
        });
    server.stop();
  }
  const double wire_ratio =
      direct.throughput > 0.0 ? loopback.throughput / direct.throughput : 0.0;
  std::printf("loopback (framed):  %8.0f rhs/s   p50 %6.0f us   p99 %6.0f us   "
              "(%.2fx of direct)\n\n",
              loopback.throughput, loopback.p50_us, loopback.p99_us,
              wire_ratio);
  if (direct.failures != 0 || loopback.failures != 0) {
    std::fprintf(stderr, "wire-tax study saw failures/mismatches\n");
    return 2;
  }

  // ---- study 2: routed scale-out -------------------------------------------
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("bench_net_" + std::to_string(getpid())))
          .string();
  std::filesystem::create_directories(cache_dir);

  LoopResult one_shard, two_shard;
  const bool routed_ok =
      run_routed_point(serverd, cache_dir, 1, threads_per_shard, workloads,
                       num_rhs, backend, drivers, seconds, &one_shard) &&
      run_routed_point(serverd, cache_dir, 2, threads_per_shard, workloads,
                       num_rhs, backend, drivers, seconds, &two_shard);
  std::filesystem::remove_all(cache_dir);
  if (!routed_ok) {
    std::fprintf(stderr, "routed study failed\n");
    return 2;
  }

  const double speedup = one_shard.throughput > 0.0
                             ? two_shard.throughput / one_shard.throughput
                             : 0.0;
  std::printf("routed, 1 shard:    %8.0f rhs/s   p99 %6.0f us\n",
              one_shard.throughput, one_shard.p99_us);
  std::printf("routed, 2 shards:   %8.0f rhs/s   p99 %6.0f us   (%.2fx)\n",
              two_shard.throughput, two_shard.p99_us, speedup);

  const bool gate_pass = !gated || speedup >= 1.3;
  if (gated) {
    std::printf("gate: 2-shard >= 1.3x 1-shard: %s\n",
                gate_pass ? "PASS" : "FAIL");
  } else {
    std::printf("gate: skipped (%u hw threads; scale-out needs >= 4)\n", hw);
  }

  // ---- report --------------------------------------------------------------
  const char* path_env = std::getenv("MSPTRSV_BENCH_NET_JSON");
  const std::string path = path_env ? path_env : "BENCH_net.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 2;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"network solve server\",\n"
               "  \"backend\": \"%s\",\n"
               "  \"matrix\": {\"rows\": %d, \"plans\": %d, \"num_rhs\": %d},\n"
               "  \"drivers\": %d,\n  \"hw_threads\": %u,\n",
               backend.c_str(), n, plans, num_rhs, drivers, hw);
  std::fprintf(f,
               "  \"wire_tax\": {\"direct_rhs_per_s\": %.1f, "
               "\"loopback_rhs_per_s\": %.1f, \"ratio\": %.3f, "
               "\"direct_p99_us\": %.1f, \"loopback_p99_us\": %.1f},\n",
               direct.throughput, loopback.throughput, wire_ratio,
               direct.p99_us, loopback.p99_us);
  std::fprintf(f,
               "  \"routed_study\": {\"threads_per_shard\": %d, "
               "\"one_shard_rhs_per_s\": %.1f, \"two_shard_rhs_per_s\": %.1f, "
               "\"speedup\": %.3f, \"gate\": 1.3, \"gated\": %s, "
               "\"pass\": %s}\n}\n",
               threads_per_shard, one_shard.throughput, two_shard.throughput,
               speedup, gated ? "true" : "false", gate_pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  return gate_pass ? 0 : 1;
}
