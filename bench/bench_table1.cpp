// Table I: the test-matrix suite. Prints the paper's published statistics
// next to the generated analogs' measured statistics (rows, nonzeros,
// levels, parallelism = rows/levels, dependency = nnz/rows) plus the scale
// factor applied to the oversized inputs.
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli("Table I: test matrices (paper vs generated analog).");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const bench::BenchContext ctx = bench::context_from(cli);

  support::Table table({"Name", "Rows(paper)", "NNZ(paper)", "Lvl(paper)",
                        "Par(paper)", "Rows(gen)", "NNZ(gen)", "Lvl(gen)",
                        "Par(gen)", "Dep(gen)", "Scale"});

  for (const bench::BenchMatrix& m : bench::load_matrices(ctx)) {
    const sparse::SuiteEntry& e = m.suite.entry;
    const sparse::LevelAnalysis& a = m.suite.analysis;
    table.begin_row();
    table.add_cell(e.name + (e.out_of_core ? " (ooc)" : ""));
    table.add_cell(static_cast<std::int64_t>(e.paper_rows));
    table.add_cell(static_cast<std::int64_t>(e.paper_nnz));
    table.add_cell(static_cast<std::int64_t>(e.paper_levels));
    table.add_cell(e.paper_parallelism, 0);
    table.add_cell(static_cast<std::int64_t>(a.n));
    table.add_cell(static_cast<std::int64_t>(a.nnz));
    table.add_cell(static_cast<std::int64_t>(a.num_levels));
    table.add_cell(a.parallelism_metric(), 0);
    table.add_cell(a.dependency_metric(), 2);
    table.add_cell(m.suite.scale, 4);
  }

  bench::print_table("Table I -- test matrices (synthetic analogs):", table,
                     ctx.csv);
  std::printf("Note: shipsec1/copter2 rows-nnz swap and the uk-2005 "
              "parallelism typo in the published table are corrected "
              "(see DESIGN.md).\n");
  return 0;
}
