// Figure 9: sensitivity to tasks/GPU. Runs the zero-copy solver on a 4-GPU
// DGX-1 with 4, 8, 16 and 32 tasks per GPU, normalized to the 4-task
// configuration. Paper shape: finer tasks help (avg +22% at 16 vs 4; up to
// +78%) but some matrices (webbase-1M) peak at 8 and then degrade --
// the balance-vs-launch-overhead trade-off.
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Figure 9: zero-copy SpTRSV vs tasks-per-GPU on a 4-GPU DGX-1, "
      "normalized to 4 tasks/GPU.");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const bench::BenchContext ctx = bench::context_from(cli);

  const int task_counts[4] = {4, 8, 16, 32};
  support::Table table(
      {"Matrix", "4 t/GPU (us)", "8 t/GPU x", "16 t/GPU x", "32 t/GPU x"});
  std::vector<double> norm[4];

  for (const bench::BenchMatrix& m : bench::load_matrices(ctx)) {
    double t[4];
    for (int i = 0; i < 4; ++i) {
      core::SolveOptions o = bench::options_for_backend("mg-zerocopy");
      o.machine = sim::Machine::dgx1(4);
      o.tasks_per_gpu = task_counts[i];
      t[i] = bench::timed_solve_us(m, o);
    }
    table.begin_row();
    table.add_cell(m.suite.entry.name);
    table.add_cell(t[0], 1);
    for (int i = 1; i < 4; ++i) {
      norm[i].push_back(t[0] / t[i]);
      table.add_cell(t[0] / t[i], 2);
    }
  }

  table.add_separator();
  table.begin_row();
  table.add_cell("Avg. (geomean)");
  table.add_cell("");
  for (int i = 1; i < 4; ++i) {
    table.add_cell(bench::average_speedup(norm[i]), 2);
  }

  bench::print_table(
      "Figure 9 -- normalized performance vs tasks per GPU (DGX-1, 4 GPUs):",
      table, ctx.csv);
  std::printf("Paper reference: 16 tasks/GPU ~1.22x over 4 on average (up to "
              "1.78x); webbase-1M peaks at 8 tasks then degrades.\n");
  return 0;
}
