// Figure 10: strong scaling of zero-copy SpTRSV, normalized to the
// single-GPU cuSPARSE csrsv2() stand-in (simulated level-set solver).
//  (a) DGX-1 with 1..4 GPUs (NVSHMEM needs P2P-connected GPUs; the first
//      four form the fully connected quad);
//  (b) DGX-2 with 1, 4, 8, 12, 16 GPUs.
// The paper fixes the TOTAL task count at 32. Shapes: speedup over csrsv2
// throughout; DGX-1 gains with more GPUs (active bandwidth per GPU grows);
// single-GPU often beats 2-3 GPUs; DGX-2 curve is flatter; low-dependency /
// high-parallelism matrices scale best.
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

namespace {

void run_machine_sweep(const std::vector<bench::BenchMatrix>& matrices,
                       const std::vector<int>& gpu_counts, bool dgx2,
                       int total_tasks, bool csv) {
  std::vector<std::string> headers = {"Matrix", "csrsv2 (us)"};
  for (int g : gpu_counts) headers.push_back(std::to_string(g) + " GPU x");
  support::Table table(headers);
  std::vector<std::vector<double>> speedups(gpu_counts.size());

  for (const bench::BenchMatrix& m : matrices) {
    core::SolveOptions base = bench::options_for_backend("gpu-levelset");
    base.machine = dgx2 ? sim::Machine::dgx2(1) : sim::Machine::dgx1(1);
    // csrsv2 comparisons conventionally time the solve phase; its (heavy)
    // analysis phase is reported separately by the library.
    base.include_analysis = false;
    const double csrsv2_us = bench::timed_solve_us(m, base);

    table.begin_row();
    table.add_cell(m.suite.entry.name);
    table.add_cell(csrsv2_us, 1);
    for (std::size_t i = 0; i < gpu_counts.size(); ++i) {
      const int g = gpu_counts[i];
      core::SolveOptions o = bench::options_for_backend("mg-zerocopy");
      o.machine = dgx2 ? sim::Machine::dgx2(g) : sim::Machine::dgx1(g);
      o.tasks_per_gpu = std::max(1, total_tasks / g);
      const double t = bench::timed_solve_us(m, o);
      speedups[i].push_back(csrsv2_us / t);
      table.add_cell(csrsv2_us / t, 2);
    }
  }

  table.add_separator();
  table.begin_row();
  table.add_cell("Avg. (geomean)");
  table.add_cell("");
  for (auto& s : speedups) table.add_cell(bench::average_speedup(s), 2);

  bench::print_table(
      std::string("Figure 10") + (dgx2 ? "b -- DGX-2" : "a -- DGX-1") +
          " strong scaling, speedup over single-GPU csrsv2 (total tasks = " +
          std::to_string(total_tasks) + "):",
      table, csv);
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "Figure 10: strong scaling of zero-copy SpTRSV vs cuSPARSE csrsv2 on "
      "DGX-1 (1-4 GPUs) and DGX-2 (1-16 GPUs).");
  bench::add_common_options(cli);
  cli.add_option("total-tasks", "32", "fixed total task count (paper: 32)");
  if (!cli.parse(argc, argv)) return 0;
  bench::BenchContext ctx = bench::context_from(cli);
  if (ctx.matrix_names.empty()) ctx.matrix_names = sparse::fig10_matrix_names();
  const int total_tasks = static_cast<int>(cli.get_int("total-tasks"));

  const std::vector<bench::BenchMatrix> matrices = bench::load_matrices(ctx);
  run_machine_sweep(matrices, {1, 2, 3, 4}, /*dgx2=*/false, total_tasks,
                    ctx.csv);
  run_machine_sweep(matrices, {1, 4, 8, 12, 16}, /*dgx2=*/true, total_tasks,
                    ctx.csv);
  std::printf("Paper shape: DGX-1 speedup grows with GPUs (1 GPU often beats "
              "2-3); DGX-2 curve is flatter; high-parallelism matrices "
              "(nlpkkt160, Wordnet3) scale best.\n");
  return 0;
}
